//! Backend sweep: quantized int8 vs full-precision f64 inference across the
//! three daily-routine presets.
//!
//! For every routine the sweep runs the same cohort twice — once entirely on
//! the f64 [`Mlp`] backend and once on the int8 `QuantizedMlp` — and reports
//! accuracy and mean current per backend plus the int8 accuracy delta.  It
//! then runs a mixed (half f64, half int8) cohort per routine at 1 *and* 4
//! worker threads and exits non-zero unless the two `FleetReport`s are
//! bit-identical (the determinism gate for heterogeneous-backend fleets).
//! Finally it measures batched inference wall-clock for both backends on
//! feature rows drawn from the training distribution and reports the int8
//! speedup.
//!
//! The binary exits non-zero if any routine's int8 accuracy degradation
//! exceeds 1 accuracy point, if a mixed-backend report is not worker-count
//! deterministic, or if the int8 batch path clearly regresses below the f64
//! path (< 0.9x; a near-parity result on unknown hardware only warns, since
//! the ~1.06x reference-container margin is machine-dependent).
//!
//! Run with `cargo run --release -p adasense-bench --bin backend_sweep -- --quick`.
//! Flags: `--devices N` and `--duration S` resize the cohorts, `--batch N`
//! sets the microbenchmark batch size.

use adasense::prelude::*;
use adasense_bench::{int_arg, train_system, RunScale};
use adasense_data::WindowDataset;
use adasense_dsp::FeatureExtractor;

/// Median wall-clock seconds per `predict_batch_into` call for each backend.
///
/// The two backends are timed in strict alternation so ambient noise (CPU
/// frequency shifts, scheduler preemption) hits both distributions equally,
/// and the median discards the outliers it still causes.
fn time_batch_pair(
    f64_backend: &dyn Classifier,
    int8_backend: &dyn Classifier,
    rows: &[Vec<f64>],
    reps: usize,
) -> (f64, f64) {
    let mut out = Vec::new();
    let time_one = |classifier: &dyn Classifier, out: &mut Vec<Prediction>| {
        let start = std::time::Instant::now();
        classifier.predict_batch_into(rows, out);
        start.elapsed().as_secs_f64()
    };
    // Warm-up: grows every retained buffer and spins the core up.
    for _ in 0..10 {
        f64_backend.predict_batch_into(rows, &mut out);
        int8_backend.predict_batch_into(rows, &mut out);
    }
    let (mut f64_samples, mut int8_samples) = (Vec::new(), Vec::new());
    for _ in 0..reps {
        f64_samples.push(time_one(f64_backend, &mut out));
        int8_samples.push(time_one(int8_backend, &mut out));
    }
    f64_samples.sort_by(f64::total_cmp);
    int8_samples.sort_by(f64::total_cmp);
    (f64_samples[reps / 2], int8_samples[reps / 2])
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = RunScale::from_args();
    let devices = int_arg("--devices")?.unwrap_or(if scale == RunScale::Quick { 8 } else { 48 });
    let duration_s =
        int_arg("--duration")?.unwrap_or(if scale == RunScale::Quick { 120 } else { 360 }) as f64;
    let batch = int_arg("--batch")?.unwrap_or(256) as usize;

    let (spec, system) = train_system(scale)?;

    println!("Backend sweep — {devices} devices × {duration_s} s per cohort\n");
    println!("routine          backend  acc(%)  current(uA)   delta(pts)");
    let mut worst_delta = 0.0f64;
    for routine in RoutinePreset::ALL {
        let mut accuracy = [0.0f64; 2];
        for (slot, kind) in BackendKind::ALL.into_iter().enumerate() {
            let fleet = FleetSpec {
                population: PopulationSpec::single(routine, FaultLevel::None)
                    .with_backend(BackendSpec::Uniform(kind)),
                lockstep_devices: 4,
                ..FleetSpec::new(devices, duration_s, 131)
            };
            let report = FleetScheduler::new(&spec, &system).run(&fleet)?;
            accuracy[slot] = report.mean_accuracy();
            let delta = if kind == BackendKind::F64 {
                "-".to_string()
            } else {
                format!("{:+.2}", 100.0 * (accuracy[1] - accuracy[0]))
            };
            println!(
                "{:<16} {:<7} {:>7.2} {:>12.1} {:>12}",
                routine.label(),
                kind.label(),
                100.0 * report.mean_accuracy(),
                report.mean_current_ua(),
                delta
            );
        }
        worst_delta = worst_delta.max(100.0 * (accuracy[0] - accuracy[1]));

        // Heterogeneous cohorts must stay worker-count deterministic.
        let mixed = FleetSpec {
            population: PopulationSpec::single(routine, FaultLevel::None)
                .with_backend(BackendSpec::half_int8()),
            lockstep_devices: 4,
            ..FleetSpec::new(devices, duration_s, 131)
        };
        let scheduler = FleetScheduler::new(&spec, &system);
        let parallel = scheduler.with_threads(4).run(&mixed)?;
        let serial = scheduler.with_threads(1).run(&mixed)?;
        if serial != parallel {
            return Err(format!(
                "mixed-backend 4-worker report differs from the 1-worker report ({routine})"
            )
            .into());
        }
    }
    println!("\nworst int8 accuracy degradation: {worst_delta:.2} pts");
    if worst_delta > 1.0 {
        return Err(format!("int8 degraded accuracy by {worst_delta:.2} pts (budget: 1.00)").into());
    }
    println!("determinism: all mixed-backend cohorts are bit-identical at 1 vs 4 workers");

    // Batched-inference microbenchmark on training-distribution features.
    let dataset = WindowDataset::generate(&spec.dataset, spec.seed.wrapping_add(77));
    let extractor = FeatureExtractor::paper();
    let rows: Vec<Vec<f64>> = dataset
        .iter()
        .take(batch)
        .map(|w| extractor.extract(&w.samples, w.config.frequency.hz()).into_inner())
        .collect();
    let reps = 301;
    let (f64_s, int8_s) = time_batch_pair(
        system.backend(BackendKind::F64),
        system.backend(BackendKind::Int8),
        &rows,
        reps,
    );
    let speedup = f64_s / int8_s;
    println!(
        "\nbatch inference ({} rows, median of {reps}): f64 {:.1} µs, int8 {:.1} µs — {speedup:.2}x",
        rows.len(),
        1e6 * f64_s,
        1e6 * int8_s
    );
    // Hard-fail only on a clear regression: the measured margin is real but
    // modest (~1.06x on the reference container), and shared CI runners span
    // CPU generations whose autovectorization profiles can erase it.  A
    // below-parity-but-close result is reported loudly instead of turning
    // every unrelated PR red.
    if speedup < 0.90 {
        return Err(format!("int8 batch inference regressed well below f64 ({speedup:.2}x)").into());
    }
    if speedup <= 1.0 {
        eprintln!(
            "[backend_sweep] warning: int8 batch speedup is {speedup:.2}x on this machine \
             (expected > 1.0x on hardware matching the reference container)"
        );
    }
    Ok(())
}
