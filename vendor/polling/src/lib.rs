//! # polling — offline stand-in
//!
//! A thin, safe wrapper over `poll(2)` for readiness-multiplexing many
//! nonblocking file descriptors on one thread.  This is the vendored-deps
//! policy's answer to "the reactor needs a syscall the standard library does
//! not expose": one `extern "C"` declaration against the platform libc that
//! every Rust binary already links, wrapped so downstream crates (which
//! `forbid(unsafe_code)`) never see a raw pointer.
//!
//! Only Unix is supported — the reactor that consumes this crate is
//! `cfg(unix)`-gated alongside it.

#![deny(missing_docs)]

#[cfg(unix)]
mod unix {
    use std::io;

    /// Readiness: there is data to read (or a pending connection to accept).
    pub const POLLIN: i16 = 0x001;
    /// Readiness: writing now will not block.
    pub const POLLOUT: i16 = 0x004;
    /// Revent: an error condition on the descriptor (output only).
    pub const POLLERR: i16 = 0x008;
    /// Revent: the peer hung up (output only).
    pub const POLLHUP: i16 = 0x010;
    /// Revent: the descriptor is not open (output only).
    pub const POLLNVAL: i16 = 0x020;

    /// One descriptor's poll request/response slot, layout-compatible with
    /// `struct pollfd` from `<poll.h>` on every Unix this workspace targets
    /// (Linux, macOS, BSDs: `int fd; short events; short revents;`).
    #[repr(C)]
    #[derive(Debug, Clone, Copy)]
    pub struct PollFd {
        fd: i32,
        events: i16,
        revents: i16,
    }

    impl PollFd {
        /// A slot asking for `events` readiness on `fd`.
        pub fn new(fd: i32, events: i16) -> Self {
            PollFd { fd, events, revents: 0 }
        }

        /// A slot the kernel ignores (negative fd), for parking an entry in a
        /// dense poll array without re-packing it.
        pub fn parked() -> Self {
            PollFd { fd: -1, events: 0, revents: 0 }
        }

        /// The descriptor this slot polls, or a negative value if parked.
        pub fn fd(&self) -> i32 {
            self.fd
        }

        /// Replaces the requested readiness events.
        pub fn set_events(&mut self, events: i16) {
            self.events = events;
        }

        /// The returned readiness events from the last `poll_fds` call.
        pub fn revents(&self) -> i16 {
            self.revents
        }

        /// True if the last poll flagged readability (or an error/hangup,
        /// which reads also observe — a read must be attempted to see it).
        pub fn readable(&self) -> bool {
            self.revents & (POLLIN | POLLERR | POLLHUP | POLLNVAL) != 0
        }

        /// True if the last poll flagged writability (or an error/hangup).
        pub fn writable(&self) -> bool {
            self.revents & (POLLOUT | POLLERR | POLLHUP | POLLNVAL) != 0
        }
    }

    // The libc `poll(2)` symbol.  `nfds_t` is `c_ulong` on Linux and `c_uint`
    // on the BSD family; `usize` matches the width of both on the LP64
    // platforms this workspace supports.
    extern "C" {
        fn poll(fds: *mut PollFd, nfds: usize, timeout: i32) -> i32;
    }

    /// Blocks until at least one slot in `fds` is ready, the timeout elapses,
    /// or a non-`EINTR` error occurs.  Returns the number of ready slots
    /// (0 on timeout); each ready slot's [`PollFd::revents`] is populated.
    ///
    /// `timeout_ms < 0` blocks indefinitely; `0` polls without blocking.
    /// `EINTR` is retried internally so callers never observe it.
    ///
    /// # Errors
    ///
    /// Any `poll(2)` failure other than `EINTR` (e.g. `ENOMEM`).
    pub fn poll_fds(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
        loop {
            // SAFETY boundary lives in this crate alone: `fds` is a valid,
            // exclusive slice of `#[repr(C)]` pollfd-layout structs, and the
            // kernel writes only within `fds.len()` entries.
            let rc = unsafe { poll(fds.as_mut_ptr(), fds.len(), timeout_ms) };
            if rc >= 0 {
                return Ok(rc as usize);
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        }
    }
}

#[cfg(unix)]
pub use unix::{poll_fds, PollFd, POLLERR, POLLHUP, POLLIN, POLLNVAL, POLLOUT};

#[cfg(all(test, unix))]
mod tests {
    use super::*;
    use std::io::Write;
    use std::os::unix::io::AsRawFd;

    #[test]
    fn timeout_returns_zero_ready() {
        let (a, _b) = std::os::unix::net::UnixStream::pair().unwrap();
        let mut fds = [PollFd::new(a.as_raw_fd(), POLLIN)];
        let n = poll_fds(&mut fds, 10).unwrap();
        assert_eq!(n, 0);
        assert!(!fds[0].readable());
    }

    #[test]
    fn written_byte_flags_readable() {
        let (a, mut b) = std::os::unix::net::UnixStream::pair().unwrap();
        b.write_all(&[42]).unwrap();
        let mut fds = [PollFd::new(a.as_raw_fd(), POLLIN)];
        let n = poll_fds(&mut fds, 1000).unwrap();
        assert_eq!(n, 1);
        assert!(fds[0].readable());
        assert!(!fds[0].writable());
    }

    #[test]
    fn parked_slots_are_ignored() {
        let (a, mut b) = std::os::unix::net::UnixStream::pair().unwrap();
        b.write_all(&[1]).unwrap();
        let mut fds = [PollFd::parked(), PollFd::new(a.as_raw_fd(), POLLIN)];
        let n = poll_fds(&mut fds, 1000).unwrap();
        assert_eq!(n, 1);
        assert!(!fds[0].readable());
        assert!(fds[1].readable());
    }

    #[test]
    fn hangup_is_observed_as_readable() {
        let (a, b) = std::os::unix::net::UnixStream::pair().unwrap();
        drop(b);
        let mut fds = [PollFd::new(a.as_raw_fd(), POLLIN)];
        let n = poll_fds(&mut fds, 1000).unwrap();
        assert_eq!(n, 1);
        assert!(fds[0].readable());
    }
}
