//! Scenario sweep: SPOT vs static-hold across daily-routine presets and sensor
//! fault levels, run through the parallel fleet scheduler.
//!
//! For every `(routine, fault level)` combination the sweep runs a single-routine
//! cohort twice — once under the paper's best adaptive controller (SPOT with
//! confidence) and once under the static high-power hold — and reports mean
//! accuracy, mean current and fault exposure.  Every fleet is executed at 4
//! worker threads *and* at 1, and the binary exits non-zero unless the two
//! `FleetReport`s are bit-identical, which is the determinism gate the CI
//! scenario matrix relies on.
//!
//! Run with `cargo run --release -p adasense-bench --bin scenario_sweep -- --quick`.
//! Flags: `--routine <office_day|active_commute|sedentary_night>` and
//! `--fault <none|light|heavy>` restrict the sweep to one combination;
//! `--devices N` and `--duration S` resize the cohorts.

use adasense::prelude::*;
use adasense_bench::{int_arg, string_arg, train_system, RunScale};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = RunScale::from_args();

    let routines: Vec<RoutinePreset> = match string_arg("--routine")? {
        Some(name) => vec![RoutinePreset::from_name(&name)
            .ok_or_else(|| format!("unknown routine `{name}` (try office_day)"))?],
        None => RoutinePreset::ALL.to_vec(),
    };
    let faults: Vec<FaultLevel> = match string_arg("--fault")? {
        Some(name) => vec![FaultLevel::from_name(&name)
            .ok_or_else(|| format!("unknown fault level `{name}` (none, light or heavy)"))?],
        None => FaultLevel::ALL.to_vec(),
    };
    let devices = int_arg("--devices")?.unwrap_or(if scale == RunScale::Quick { 8 } else { 48 });
    // Quick cohorts still need to outlive the longest routine blocks
    // (sedentary_night opens with a 72–108 s lying segment): 120 s guarantees
    // every preset crosses at least one activity transition, so the CI matrix
    // gates real routine dynamics rather than degenerate single-segment runs.
    let duration_s =
        int_arg("--duration")?.unwrap_or(if scale == RunScale::Quick { 120 } else { 360 }) as f64;

    let (spec, system) = train_system(scale)?;
    let controllers = [
        (
            "SPOT+conf",
            ControllerKind::SpotWithConfidence {
                stability_threshold: 10,
                confidence_threshold: 0.85,
            },
        ),
        ("static-hold", ControllerKind::StaticHigh),
    ];

    println!(
        "Scenario sweep — {devices} devices × {duration_s} s per cohort \
         ({} routines × {} fault levels)\n",
        routines.len(),
        faults.len()
    );
    println!("routine          fault   controller    acc(%)  current(uA)  faulted(%)");
    let mut combinations = 0usize;
    for &routine in &routines {
        for &fault in &faults {
            for (tag, controller) in controllers {
                let fleet = FleetSpec {
                    controller,
                    population: PopulationSpec::single(routine, fault),
                    lockstep_devices: 4,
                    ..FleetSpec::new(devices, duration_s, 97)
                };
                let scheduler = FleetScheduler::new(&spec, &system);
                let parallel = scheduler.with_threads(4).run(&fleet)?;
                let serial = scheduler.with_threads(1).run(&fleet)?;
                if serial != parallel {
                    return Err(format!(
                        "4-worker report differs from the 1-worker report \
                         (routine {routine}, fault {fault}, {tag})"
                    )
                    .into());
                }
                println!(
                    "{:<16} {:<7} {:<12} {:>6.2} {:>12.1} {:>11.1}",
                    routine.label(),
                    fault.label(),
                    tag,
                    100.0 * parallel.mean_accuracy(),
                    parallel.mean_current_ua(),
                    100.0 * parallel.mean_faulted_fraction()
                );
            }
            combinations += 1;
        }
    }
    println!(
        "\ndeterminism: all {combinations} routine x fault cohorts are bit-identical \
         at 1 vs 4 workers"
    );
    Ok(())
}
