//! The scenario library: daily-routine scripts, population priors and sensor
//! fault injection.
//!
//! The paper evaluates AdaSense only on dwell-time-randomized activity switches
//! (the High/Medium/Low settings of Fig. 7).  Real deployments are harsher and
//! more structured at the same time: people live *routines* (office days,
//! active commutes, nights in bed), populations mix those routines in uneven
//! proportions, and sensors fail transiently.  This module provides the three
//! missing axes as composable pieces:
//!
//! * [`RoutineScript`] — a cycle of [`JitteredSegment`]s realized into an
//!   [`ActivitySchedule`] of any duration; [`RoutinePreset`] names the built-in
//!   scripts (`office_day`, `active_commute`, `sedentary_night`).
//! * [`PopulationPrior`] / [`PopulationSpec`] — per-device routine assignment
//!   and per-device dwell-time bias, both derived deterministically from the
//!   device seed, so heterogeneous cohorts stay bit-reproducible at any worker
//!   count.
//! * [`FaultLevel`] / [`FaultPlan`] / [`FaultInjector`] — a decorator over any
//!   [`SampleSource`] that injects sensor dropout windows, stuck axes and noise
//!   bursts ([`FaultKind`]) into the captured sample stream, with per-kind time
//!   budgets that never exceed the configured fractions.
//! * [`BackendSpec`] — per-device inference-backend assignment (full-precision
//!   f64 vs quantized int8, see [`BackendKind`]), again a pure function of the
//!   device seed.
//!
//! The fleet scheduler ([`crate::fleet`]) wires all three through
//! [`FleetSpec::population`](crate::fleet::FleetSpec::population), and the
//! `scenario_sweep` binary reports SPOT vs static-hold accuracy/power under
//! each routine and fault level.

use adasense_data::{Activity, ActivitySchedule, JitteredSegment};
use adasense_ml::BackendKind;
use adasense_sensor::{FaultKind, Sample3, SensorConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::error::AdaSenseError;
use crate::fleet::device_seed;
use crate::runtime::{SampleSource, SourceStatus};
use crate::simulation::ScenarioSpec;

/// Salt mixed into the device seed to derive the routine-assignment stream.
const ROUTINE_SALT: u64 = 0x0052_4F55_5449_4E45;
/// Salt mixed into the device seed to derive the fault-plan stream.
const FAULT_PLAN_SALT: u64 = 0xFA17_9A11;
/// Salt mixed into the device seed to derive the fault-application stream
/// (noise-burst randomness).
const FAULT_RNG_SALT: u64 = 0xFA17_0B57;
/// Salt mixed into the device seed to derive the backend-assignment stream.
const BACKEND_SALT: u64 = 0x00BA_C4E2_D000_0001;

/// The per-device dwell-scale factors accepted by [`RoutineScript::realize`]
/// and [`PopulationPrior::validate`].  The bounds cap how many segments one
/// realized routine can hold: a microscopic scale would otherwise build a
/// multi-million-segment schedule per device instead of failing fast.
pub const DWELL_SCALE_BOUNDS: std::ops::RangeInclusive<f64> = 0.01..=100.0;

// ---------------------------------------------------------------------------
// Routine scripts
// ---------------------------------------------------------------------------

/// The built-in daily-routine scripts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RoutinePreset {
    /// Long sitting blocks broken by short walks, stair trips and stand-ups.
    OfficeDay,
    /// Mostly walking with stairs, waits and a short sit.
    ActiveCommute,
    /// Lying down with brief interruptions (a typical night).
    SedentaryNight,
}

impl RoutinePreset {
    /// All built-in presets, in the order the `scenario_sweep` binary reports.
    pub const ALL: [RoutinePreset; 3] =
        [RoutinePreset::OfficeDay, RoutinePreset::ActiveCommute, RoutinePreset::SedentaryNight];

    /// The snake_case name used by reports and the CLI.
    pub fn label(self) -> &'static str {
        match self {
            RoutinePreset::OfficeDay => "office_day",
            RoutinePreset::ActiveCommute => "active_commute",
            RoutinePreset::SedentaryNight => "sedentary_night",
        }
    }

    /// Parses a preset from its [`label`](RoutinePreset::label).
    pub fn from_name(name: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|p| p.label() == name)
    }

    /// The script this preset names.
    pub fn script(self) -> RoutineScript {
        match self {
            RoutinePreset::OfficeDay => RoutineScript::office_day(),
            RoutinePreset::ActiveCommute => RoutineScript::active_commute(),
            RoutinePreset::SedentaryNight => RoutineScript::sedentary_night(),
        }
    }
}

impl std::fmt::Display for RoutinePreset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A daily-routine script: a named cycle of jittered segments.
///
/// Realizing a script walks the cycle, drawing each segment's dwell time from
/// its jitter range (scaled by the device's dwell bias), until the requested
/// duration is covered — so the same script yields statistically matched but
/// distinct timelines across seeds.
///
/// # Examples
///
/// ```
/// use adasense::scenario::RoutineScript;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let script = RoutineScript::office_day();
/// let schedule = script.realize(600.0, 1.0, &mut StdRng::seed_from_u64(7));
/// assert!(schedule.total_duration_s() >= 600.0);
/// // The same seed realizes the same timeline.
/// let again = script.realize(600.0, 1.0, &mut StdRng::seed_from_u64(7));
/// assert_eq!(schedule, again);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoutineScript {
    /// Name used in reports.
    pub name: String,
    /// The repeating cycle of jittered segments.
    pub blocks: Vec<JitteredSegment>,
}

impl RoutineScript {
    /// Creates a script from an explicit block cycle.
    ///
    /// # Panics
    ///
    /// Panics if `blocks` is empty.
    pub fn new(name: impl Into<String>, blocks: Vec<JitteredSegment>) -> Self {
        assert!(!blocks.is_empty(), "a routine script needs at least one block");
        Self { name: name.into(), blocks }
    }

    /// Office day: long sitting blocks broken by short walks, one stair trip
    /// and stand-ups.
    pub fn office_day() -> Self {
        Self::new(
            "office_day",
            vec![
                JitteredSegment::new(Activity::Sit, 40.0, 0.3),
                JitteredSegment::new(Activity::Walk, 8.0, 0.4),
                JitteredSegment::new(Activity::Sit, 35.0, 0.3),
                JitteredSegment::new(Activity::Stand, 6.0, 0.5),
                JitteredSegment::new(Activity::Upstairs, 4.0, 0.4),
                JitteredSegment::new(Activity::Sit, 30.0, 0.3),
                JitteredSegment::new(Activity::Walk, 6.0, 0.4),
                JitteredSegment::new(Activity::Downstairs, 4.0, 0.4),
            ],
        )
    }

    /// Active commute: mostly walking, with stairs, platform waits and a short
    /// ride.
    pub fn active_commute() -> Self {
        Self::new(
            "active_commute",
            vec![
                JitteredSegment::new(Activity::Walk, 25.0, 0.3),
                JitteredSegment::new(Activity::Upstairs, 6.0, 0.3),
                JitteredSegment::new(Activity::Walk, 20.0, 0.3),
                JitteredSegment::new(Activity::Stand, 8.0, 0.5),
                JitteredSegment::new(Activity::Downstairs, 6.0, 0.3),
                JitteredSegment::new(Activity::Walk, 15.0, 0.4),
                JitteredSegment::new(Activity::Sit, 10.0, 0.5),
            ],
        )
    }

    /// Sedentary night: long lying blocks with brief interruptions.
    pub fn sedentary_night() -> Self {
        Self::new(
            "sedentary_night",
            vec![
                JitteredSegment::new(Activity::LieDown, 90.0, 0.2),
                JitteredSegment::new(Activity::Sit, 10.0, 0.5),
                JitteredSegment::new(Activity::LieDown, 70.0, 0.2),
                JitteredSegment::new(Activity::Stand, 4.0, 0.5),
                JitteredSegment::new(Activity::Walk, 5.0, 0.4),
                JitteredSegment::new(Activity::LieDown, 80.0, 0.2),
            ],
        )
    }

    /// Realizes the script into a schedule covering at least `duration_s`
    /// seconds, cycling the blocks and scaling every dwell by `dwell_scale`
    /// (the per-device transition bias; `1.0` is neutral).
    ///
    /// # Panics
    ///
    /// Panics if `dwell_scale` is outside [`DWELL_SCALE_BOUNDS`] — a microscopic
    /// scale would otherwise grow the segment list without practical bound
    /// before the duration is covered.
    pub fn realize<R: Rng + ?Sized>(
        &self,
        duration_s: f64,
        dwell_scale: f64,
        rng: &mut R,
    ) -> ActivitySchedule {
        assert!(
            DWELL_SCALE_BOUNDS.contains(&dwell_scale),
            "dwell scale {dwell_scale} is outside {DWELL_SCALE_BOUNDS:?}"
        );
        let mut segments = Vec::new();
        let mut elapsed = 0.0;
        'outer: loop {
            for block in &self.blocks {
                let segment = block.realize(dwell_scale, rng);
                elapsed += segment.duration_s;
                segments.push(segment);
                if elapsed >= duration_s {
                    break 'outer;
                }
            }
        }
        segments.into_iter().collect()
    }

    /// Realizes the script into a [`ScenarioSpec`] for `seed` — the routine
    /// counterpart of [`ScenarioSpec::random`].  The schedule rng and the
    /// scenario's subject/noise seeds all derive from `seed`.
    pub fn scenario(&self, duration_s: f64, dwell_scale: f64, seed: u64) -> ScenarioSpec {
        let mut rng = StdRng::seed_from_u64(seed);
        ScenarioSpec::from_schedule(self.realize(duration_s, dwell_scale, &mut rng), seed)
    }
}

// ---------------------------------------------------------------------------
// Population priors
// ---------------------------------------------------------------------------

/// What one device was assigned by a [`PopulationPrior`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeviceProfile {
    /// The routine the device lives, or `None` for the legacy dwell-randomized
    /// timeline of [`FleetSpec::setting`](crate::fleet::FleetSpec::setting).
    pub routine: Option<RoutinePreset>,
    /// The device's dwell-time bias: every routine dwell is scaled by this
    /// factor (slow movers > 1, restless subjects < 1).
    pub dwell_scale: f64,
}

/// Population-level activity prior: which routines a cohort lives, in which
/// proportions, and how much per-subject dwell bias to apply.
///
/// Assignment is a pure function of the device seed, so a population splits
/// identically across any sharding or worker count.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PopulationPrior {
    /// `(routine, weight)` mix.  Weights are relative; an empty mix means every
    /// device replays the legacy dwell-randomized setting.
    pub mix: Vec<(RoutinePreset, f64)>,
    /// Range the per-device dwell-time bias is drawn from (uniform).
    pub dwell_scale_range: (f64, f64),
}

impl PopulationPrior {
    /// The legacy prior: no routines, neutral dwell bias — every device replays
    /// the fleet's dwell-randomized [`ActivityChangeSetting`]
    /// (matching the pre-scenario-library behaviour bit for bit).
    ///
    /// [`ActivityChangeSetting`]: adasense_data::ActivityChangeSetting
    pub fn legacy() -> Self {
        Self { mix: Vec::new(), dwell_scale_range: (1.0, 1.0) }
    }

    /// A single-routine cohort with neutral dwell bias.
    pub fn single(routine: RoutinePreset) -> Self {
        Self { mix: vec![(routine, 1.0)], dwell_scale_range: (1.0, 1.0) }
    }

    /// A default heterogeneous cohort: half office days, a third commutes, the
    /// rest nights, with ±25 % per-subject dwell bias.
    pub fn mixed() -> Self {
        Self {
            mix: vec![
                (RoutinePreset::OfficeDay, 3.0),
                (RoutinePreset::ActiveCommute, 2.0),
                (RoutinePreset::SedentaryNight, 1.0),
            ],
            dwell_scale_range: (0.75, 1.25),
        }
    }

    /// Checks the prior for consistency.
    ///
    /// # Errors
    ///
    /// Returns [`AdaSenseError::InvalidSpec`] for negative/non-finite weights,
    /// an all-zero mix, or a degenerate dwell-scale range.
    pub fn validate(&self) -> Result<(), AdaSenseError> {
        let mut total = 0.0;
        for (routine, weight) in &self.mix {
            if !weight.is_finite() || *weight < 0.0 {
                return Err(AdaSenseError::invalid_spec(format!(
                    "routine {routine} has invalid weight {weight}"
                )));
            }
            total += weight;
        }
        if !self.mix.is_empty() && total <= 0.0 {
            return Err(AdaSenseError::invalid_spec("the routine mix has no positive weight"));
        }
        let (lo, hi) = self.dwell_scale_range;
        let bounded = lo.is_finite() && hi.is_finite() && DWELL_SCALE_BOUNDS.contains(&lo);
        if !bounded || hi < lo || hi > *DWELL_SCALE_BOUNDS.end() {
            return Err(AdaSenseError::invalid_spec(format!(
                "dwell-scale range ({lo}, {hi}) must satisfy \
                 {} <= lo <= hi <= {}",
                DWELL_SCALE_BOUNDS.start(),
                DWELL_SCALE_BOUNDS.end()
            )));
        }
        Ok(())
    }

    /// Assigns a routine and dwell bias to the device with the given seed.
    ///
    /// The assignment stream is decorrelated from the device's schedule/noise
    /// streams by salting the seed, so adding a population to an existing fleet
    /// never perturbs the underlying signal randomness.
    pub fn assign(&self, seed: u64) -> DeviceProfile {
        let mut rng = StdRng::seed_from_u64(device_seed(seed, ROUTINE_SALT));
        let routine = if self.mix.is_empty() {
            None
        } else {
            let total: f64 = self.mix.iter().map(|(_, w)| w).sum();
            let mut pick = rng.random_range(0.0..total);
            let mut chosen = self.mix.last().map(|(r, _)| *r);
            for (routine, weight) in &self.mix {
                if pick < *weight {
                    chosen = Some(*routine);
                    break;
                }
                pick -= weight;
            }
            chosen
        };
        let (lo, hi) = self.dwell_scale_range;
        let dwell_scale = if hi > lo { rng.random_range(lo..hi) } else { lo };
        DeviceProfile { routine, dwell_scale }
    }
}

impl Default for PopulationPrior {
    fn default() -> Self {
        Self::legacy()
    }
}

/// How a cohort's devices are assigned their inference backend
/// ([`BackendKind`]): uniformly, or as a deterministic per-device mix.
///
/// Like routine assignment, the backend of one device is a pure function of
/// its seed (via a salted stream), so heterogeneous-backend fleets stay
/// bit-reproducible at any worker count or sharding.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum BackendSpec {
    /// Every device runs the same backend.  `Uniform(BackendKind::F64)` is the
    /// default and reproduces the historic full-precision fleet bit for bit.
    Uniform(BackendKind),
    /// Each device is assigned int8 with probability `int8_fraction` (and f64
    /// otherwise), deterministically from its seed.
    Mixed {
        /// Fraction of the cohort on the int8 backend, in `[0, 1]`.
        int8_fraction: f64,
    },
    /// Each device is assigned the early-exit cascade with probability
    /// `cascade_fraction` (and f64 otherwise), deterministically from its
    /// seed — the heterogeneous cohort for comparing the cascade against the
    /// full-precision path within one fleet.
    MixedCascade {
        /// Fraction of the cohort on the cascade backend, in `[0, 1]`.
        cascade_fraction: f64,
    },
}

impl BackendSpec {
    /// A half-and-half f64/int8 cohort.
    pub fn half_int8() -> Self {
        BackendSpec::Mixed { int8_fraction: 0.5 }
    }

    /// A half-and-half f64/cascade cohort.
    pub fn half_cascade() -> Self {
        BackendSpec::MixedCascade { cascade_fraction: 0.5 }
    }

    /// Checks the spec for consistency.
    ///
    /// # Errors
    ///
    /// Returns [`AdaSenseError::InvalidSpec`] if the int8 fraction is outside
    /// `[0, 1]` or not finite.
    pub fn validate(&self) -> Result<(), AdaSenseError> {
        let (name, fraction) = match self {
            BackendSpec::Uniform(_) => return Ok(()),
            BackendSpec::Mixed { int8_fraction } => ("int8_fraction", *int8_fraction),
            BackendSpec::MixedCascade { cascade_fraction } => {
                ("cascade_fraction", *cascade_fraction)
            }
        };
        if !fraction.is_finite() || !(0.0..=1.0).contains(&fraction) {
            return Err(AdaSenseError::invalid_spec(format!(
                "{name} {fraction} must lie in [0, 1]"
            )));
        }
        Ok(())
    }

    /// The backend of the device with the given seed.  A pure function of
    /// `(self, seed)`: the assignment stream is salted so it never perturbs
    /// the device's schedule, noise or fault randomness.
    pub fn assign(&self, seed: u64) -> BackendKind {
        match self {
            BackendSpec::Uniform(kind) => *kind,
            BackendSpec::Mixed { int8_fraction } => {
                let mut rng = StdRng::seed_from_u64(device_seed(seed, BACKEND_SALT));
                if rng.random_range(0.0..1.0) < *int8_fraction {
                    BackendKind::Int8
                } else {
                    BackendKind::F64
                }
            }
            BackendSpec::MixedCascade { cascade_fraction } => {
                // Same salted stream as `Mixed`: a device sitting at the same
                // fraction quantile gets the non-f64 backend either way.
                let mut rng = StdRng::seed_from_u64(device_seed(seed, BACKEND_SALT));
                if rng.random_range(0.0..1.0) < *cascade_fraction {
                    BackendKind::Cascade
                } else {
                    BackendKind::F64
                }
            }
        }
    }
}

impl Default for BackendSpec {
    fn default() -> Self {
        BackendSpec::Uniform(BackendKind::F64)
    }
}

/// A full population description: the routine prior, the fault level every
/// device's sensor is exposed to, and the inference-backend assignment.
/// [`FleetSpec`](crate::fleet::FleetSpec) carries one of these.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct PopulationSpec {
    /// Routine mix and per-device dwell bias.
    pub prior: PopulationPrior,
    /// Sensor-fault exposure of the cohort.
    pub fault: FaultLevel,
    /// How devices are assigned their inference backend.
    pub backend: BackendSpec,
}

impl PopulationSpec {
    /// The legacy population: dwell-randomized timelines, no faults, every
    /// device on the full-precision f64 backend.  Fleets built with this
    /// population reproduce the pre-scenario-library reports bit for bit.
    pub fn legacy() -> Self {
        Self {
            prior: PopulationPrior::legacy(),
            fault: FaultLevel::None,
            backend: BackendSpec::default(),
        }
    }

    /// A single-routine cohort under the given fault level (f64 backend).
    pub fn single(routine: RoutinePreset, fault: FaultLevel) -> Self {
        Self { prior: PopulationPrior::single(routine), fault, backend: BackendSpec::default() }
    }

    /// The default heterogeneous cohort under the given fault level (f64
    /// backend).
    pub fn mixed(fault: FaultLevel) -> Self {
        Self { prior: PopulationPrior::mixed(), fault, backend: BackendSpec::default() }
    }

    /// Replaces the backend assignment of this population.
    pub fn with_backend(mut self, backend: BackendSpec) -> Self {
        self.backend = backend;
        self
    }

    /// Checks the population for consistency (see [`PopulationPrior::validate`]
    /// and [`BackendSpec::validate`]).
    ///
    /// # Errors
    ///
    /// Returns [`AdaSenseError::InvalidSpec`] for an inconsistent prior or
    /// backend mix.
    pub fn validate(&self) -> Result<(), AdaSenseError> {
        self.prior.validate()?;
        self.backend.validate()
    }
}

// ---------------------------------------------------------------------------
// Fault levels, plans and the injector
// ---------------------------------------------------------------------------

/// How much transient sensor failure a cohort is exposed to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum FaultLevel {
    /// Pristine sensors (the paper's implicit assumption).
    #[default]
    None,
    /// Occasional short faults: ~2 % dropout, ~3 % stuck axis, ~5 % noise
    /// bursts.
    Light,
    /// Degraded hardware: ~10 % dropout, ~10 % stuck axis, ~15 % noise bursts.
    Heavy,
}

impl FaultLevel {
    /// All levels, mildest first.
    pub const ALL: [FaultLevel; 3] = [FaultLevel::None, FaultLevel::Light, FaultLevel::Heavy];

    /// The name used by reports and the CLI.
    pub fn label(self) -> &'static str {
        match self {
            FaultLevel::None => "none",
            FaultLevel::Light => "light",
            FaultLevel::Heavy => "heavy",
        }
    }

    /// Parses a level from its [`label`](FaultLevel::label).
    pub fn from_name(name: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|l| l.label() == name)
    }

    /// The concrete time-budget parameters of this level.
    pub fn profile(self) -> FaultProfile {
        match self {
            FaultLevel::None => FaultProfile {
                dropout_fraction: 0.0,
                stuck_fraction: 0.0,
                burst_fraction: 0.0,
                burst_std_g: 0.0,
                window_s: (1.0, 4.0),
                gap_s: (10.0, 30.0),
            },
            FaultLevel::Light => FaultProfile {
                dropout_fraction: 0.02,
                stuck_fraction: 0.03,
                burst_fraction: 0.05,
                burst_std_g: 0.15,
                window_s: (1.0, 4.0),
                gap_s: (10.0, 30.0),
            },
            FaultLevel::Heavy => FaultProfile {
                dropout_fraction: 0.10,
                stuck_fraction: 0.10,
                burst_fraction: 0.15,
                burst_std_g: 0.35,
                window_s: (2.0, 8.0),
                gap_s: (4.0, 15.0),
            },
        }
    }
}

impl std::fmt::Display for FaultLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Time-budget parameters of one fault level: for each fault kind, the maximum
/// fraction of the run it may cover, plus the window/gap length ranges.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultProfile {
    /// Maximum fraction of the run covered by dropout windows.
    pub dropout_fraction: f64,
    /// Maximum fraction covered by stuck-axis windows.
    pub stuck_fraction: f64,
    /// Maximum fraction covered by noise bursts.
    pub burst_fraction: f64,
    /// Standard deviation of burst noise, in g.
    pub burst_std_g: f64,
    /// Length range of one fault window, in seconds.
    pub window_s: (f64, f64),
    /// Gap range between consecutive windows of the same kind, in seconds.
    pub gap_s: (f64, f64),
}

/// One scheduled fault: a time window and the transform active inside it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultWindow {
    /// Start of the window, in seconds.
    pub start_s: f64,
    /// End of the window (exclusive), in seconds.
    pub end_s: f64,
    /// The fault active during the window.
    pub kind: FaultKind,
}

impl FaultWindow {
    /// Length of the window, in seconds.
    pub fn duration_s(&self) -> f64 {
        self.end_s - self.start_s
    }
}

/// The precomputed fault timeline of one device: which transform is active
/// when.  Generated once per device from a salted seed, so the plan — like the
/// schedule — is a pure function of `(base_seed, device_id)`.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultPlan {
    windows: Vec<FaultWindow>,
}

impl FaultPlan {
    /// An empty plan (pristine sensor).
    pub fn none() -> Self {
        Self::default()
    }

    /// Generates the fault timeline for a run of `duration_s` seconds.
    ///
    /// Each fault kind gets its own derived randomness stream and its own time
    /// budget (`fraction × duration_s`); the summed window lengths of a kind
    /// never exceed that budget.  Windows of different kinds may overlap, which
    /// mirrors real failure modes (a noisy axis can also drop out).
    pub fn generate(profile: FaultProfile, duration_s: f64, seed: u64) -> Self {
        let mut windows = Vec::new();
        let stuck_axis_of = |rng: &mut StdRng| FaultKind::StuckAxis(rng.random_range(0..3usize));
        Self::fill(
            &mut windows,
            profile.dropout_fraction,
            duration_s,
            profile,
            StdRng::seed_from_u64(device_seed(seed, 1)),
            |_| FaultKind::Dropout,
        );
        Self::fill(
            &mut windows,
            profile.stuck_fraction,
            duration_s,
            profile,
            StdRng::seed_from_u64(device_seed(seed, 2)),
            stuck_axis_of,
        );
        Self::fill(
            &mut windows,
            profile.burst_fraction,
            duration_s,
            profile,
            StdRng::seed_from_u64(device_seed(seed, 3)),
            |_| FaultKind::NoiseBurst { std_g: profile.burst_std_g },
        );
        windows.sort_by(|a, b| a.start_s.total_cmp(&b.start_s));
        Self { windows }
    }

    /// Lays out the windows of one fault kind along the run.
    fn fill(
        windows: &mut Vec<FaultWindow>,
        fraction: f64,
        duration_s: f64,
        profile: FaultProfile,
        mut rng: StdRng,
        kind_of: impl Fn(&mut StdRng) -> FaultKind,
    ) {
        if fraction <= 0.0 || duration_s <= 0.0 {
            return;
        }
        let mut budget = fraction * duration_s;
        let (win_lo, win_hi) = profile.window_s;
        let (gap_lo, gap_hi) = profile.gap_s;
        // Start after a partial gap so faults are not synchronized to t = 0.
        let mut t = rng.random_range(0.0..gap_hi);
        while budget > 0.25 && t < duration_s {
            let len = rng.random_range(win_lo..win_hi).min(budget).min(duration_s - t);
            if len <= 0.0 {
                break;
            }
            let kind = kind_of(&mut rng);
            windows.push(FaultWindow { start_s: t, end_s: t + len, kind });
            budget -= len;
            t += len + rng.random_range(gap_lo..gap_hi);
        }
    }

    /// The scheduled fault windows, sorted by start time.
    pub fn windows(&self) -> &[FaultWindow] {
        &self.windows
    }

    /// Whether the plan schedules no faults at all.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// Total seconds covered by dropout windows.
    pub fn dropout_seconds(&self) -> f64 {
        self.seconds_of(|k| matches!(k, FaultKind::Dropout))
    }

    /// Total seconds covered by stuck-axis windows.
    pub fn stuck_seconds(&self) -> f64 {
        self.seconds_of(|k| matches!(k, FaultKind::StuckAxis(_)))
    }

    /// Total seconds covered by noise-burst windows.
    pub fn burst_seconds(&self) -> f64 {
        self.seconds_of(|k| matches!(k, FaultKind::NoiseBurst { .. }))
    }

    fn seconds_of(&self, select: impl Fn(&FaultKind) -> bool) -> f64 {
        self.windows.iter().filter(|w| select(&w.kind)).map(FaultWindow::duration_s).sum()
    }
}

/// A composable [`SampleSource`] decorator that injects the faults of a
/// [`FaultPlan`] into the captured sample stream.
///
/// Ground truth passes through untouched — faults corrupt what the *sensor*
/// reports, not what the user does — so recognition accuracy under faults is
/// scored against the true activity.
///
/// # Examples
///
/// ```
/// use adasense::prelude::*;
/// use adasense::scenario::{FaultInjector, FaultPlan};
///
/// let spec = ExperimentSpec::quick();
/// let scenario = ScenarioSpec::sit_then_walk(10.0, 10.0);
/// // An empty plan is a bit-exact pass-through decorator.
/// let mut source =
///     FaultInjector::new(ScenarioSource::new(&spec, &scenario), FaultPlan::none(), 1);
/// let mut window = Vec::new();
/// source.capture_window(SensorConfig::paper_pareto_front()[0], 2.0, 2.0, &mut window);
/// assert!(!window.is_empty());
/// assert_eq!(source.faulted_captures(), 0);
/// ```
#[derive(Debug, Clone)]
pub struct FaultInjector<S> {
    inner: S,
    plan: FaultPlan,
    rng: StdRng,
    captures: usize,
    faulted_captures: usize,
}

impl<S> FaultInjector<S> {
    /// Wraps `inner`, injecting the faults of `plan`.  `seed` drives the
    /// randomness of noise bursts (pure transforms consume none).
    pub fn new(inner: S, plan: FaultPlan, seed: u64) -> Self {
        Self { inner, plan, rng: StdRng::seed_from_u64(seed), captures: 0, faulted_captures: 0 }
    }

    /// Convenience constructor from a fault level: generates the plan for a run
    /// of `duration_s` seconds using streams salted off the device seed.
    pub fn for_device(
        inner: S,
        level: FaultLevel,
        duration_s: f64,
        device_seed_value: u64,
    ) -> Self {
        let plan = FaultPlan::generate(
            level.profile(),
            duration_s,
            device_seed(device_seed_value, FAULT_PLAN_SALT),
        );
        Self::new(inner, plan, device_seed(device_seed_value, FAULT_RNG_SALT))
    }

    /// The fault timeline being injected.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Number of windows captured so far.
    pub fn captures(&self) -> usize {
        self.captures
    }

    /// Number of captured windows that overlapped at least one fault window —
    /// the device's fault exposure in classification epochs.
    pub fn faulted_captures(&self) -> usize {
        self.faulted_captures
    }

    /// Consumes the decorator, returning the wrapped source.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: SampleSource> SampleSource for FaultInjector<S> {
    fn capture_window(
        &mut self,
        config: SensorConfig,
        t_end: f64,
        window_s: f64,
        out: &mut Vec<Sample3>,
    ) {
        self.inner.capture_window(config, t_end, window_s, out);
        self.captures += 1;
        let start = t_end - window_s;
        let mut faulted = false;
        for fault in &self.plan.windows {
            if fault.end_s <= start {
                continue;
            }
            if fault.start_s >= t_end {
                break; // windows are sorted by start time
            }
            // The captured samples are evenly spaced from `start`; restrict the
            // transform to the ones inside the fault window.
            let lo = out.partition_point(|s| s.t < fault.start_s);
            let hi = out.partition_point(|s| s.t < fault.end_s);
            if lo < hi {
                fault.kind.apply(&mut out[lo..hi], &mut self.rng);
                faulted = true;
            }
        }
        if faulted {
            self.faulted_captures += 1;
        }
    }

    fn ground_truth(&self, t_s: f64) -> Option<Activity> {
        self.inner.ground_truth(t_s)
    }

    fn status(&mut self) -> SourceStatus {
        self.inner.status()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::ScenarioSource;
    use crate::training::ExperimentSpec;

    #[test]
    fn presets_round_trip_their_names() {
        for preset in RoutinePreset::ALL {
            assert_eq!(RoutinePreset::from_name(preset.label()), Some(preset));
            assert!(!preset.script().blocks.is_empty());
        }
        assert_eq!(RoutinePreset::from_name("couch_surfing"), None);
        for level in FaultLevel::ALL {
            assert_eq!(FaultLevel::from_name(level.label()), Some(level));
        }
    }

    #[test]
    fn realized_routines_cover_the_requested_duration() {
        let mut rng = StdRng::seed_from_u64(11);
        for preset in RoutinePreset::ALL {
            let schedule = preset.script().realize(300.0, 1.0, &mut rng);
            assert!(schedule.total_duration_s() >= 300.0, "{preset}");
            assert!(schedule.activity_at(299.0).is_some());
        }
    }

    #[test]
    fn dwell_scale_stretches_the_timeline() {
        let script = RoutineScript::office_day();
        let fast = script.realize(600.0, 0.5, &mut StdRng::seed_from_u64(3));
        let slow = script.realize(600.0, 2.0, &mut StdRng::seed_from_u64(3));
        assert!(
            fast.len() > 2 * slow.len(),
            "halved dwells should need ~4x the segments of doubled dwells ({} vs {})",
            fast.len(),
            slow.len()
        );
    }

    #[test]
    #[should_panic(expected = "dwell scale")]
    fn microscopic_dwell_scales_panic_instead_of_hanging() {
        // realize() is public API; an unvalidated tiny scale must fail fast
        // rather than grow a multi-million-segment schedule.
        let _ = RoutineScript::office_day().realize(600.0, 1e-6, &mut StdRng::seed_from_u64(1));
    }

    #[test]
    fn office_day_is_mostly_sitting_and_night_mostly_lying() {
        let mut rng = StdRng::seed_from_u64(8);
        let office = RoutineScript::office_day().realize(2000.0, 1.0, &mut rng);
        assert!(office.time_in(Activity::Sit) > 0.6 * office.total_duration_s());
        let night = RoutineScript::sedentary_night().realize(2000.0, 1.0, &mut rng);
        assert!(night.time_in(Activity::LieDown) > 0.7 * night.total_duration_s());
        let commute = RoutineScript::active_commute().realize(2000.0, 1.0, &mut rng);
        assert!(commute.time_in(Activity::Walk) > 0.4 * commute.total_duration_s());
    }

    #[test]
    fn prior_assignment_is_deterministic_and_respects_the_mix() {
        let prior = PopulationPrior::mixed();
        prior.validate().unwrap();
        let mut counts = std::collections::BTreeMap::new();
        for id in 0..600u64 {
            let seed = device_seed(42, id);
            let a = prior.assign(seed);
            let b = prior.assign(seed);
            assert_eq!(a, b, "assignment must be a pure function of the seed");
            let routine = a.routine.expect("mixed prior always assigns a routine");
            *counts.entry(routine.label()).or_insert(0usize) += 1;
            assert!(a.dwell_scale >= 0.75 && a.dwell_scale < 1.25);
        }
        // 3:2:1 mix over 600 devices — allow generous sampling slack.
        assert!(counts["office_day"] > counts["active_commute"]);
        assert!(counts["active_commute"] > counts["sedentary_night"]);
        assert!(counts["sedentary_night"] > 40);
    }

    #[test]
    fn legacy_prior_assigns_no_routine() {
        let profile = PopulationPrior::legacy().assign(7);
        assert_eq!(profile.routine, None);
        assert_eq!(profile.dwell_scale, 1.0);
    }

    #[test]
    fn invalid_priors_are_rejected() {
        let negative = PopulationPrior {
            mix: vec![(RoutinePreset::OfficeDay, -1.0)],
            ..PopulationPrior::legacy()
        };
        assert!(negative.validate().is_err());
        let zero_sum = PopulationPrior {
            mix: vec![(RoutinePreset::OfficeDay, 0.0)],
            ..PopulationPrior::legacy()
        };
        assert!(zero_sum.validate().is_err());
        let bad_range =
            PopulationPrior { dwell_scale_range: (0.0, 1.0), ..PopulationPrior::legacy() };
        assert!(bad_range.validate().is_err());
        let inverted =
            PopulationPrior { dwell_scale_range: (2.0, 1.0), ..PopulationPrior::legacy() };
        assert!(inverted.validate().is_err());
        // Scales outside [0.01, 100] would realize absurdly dense (or endless)
        // schedules; they must fail fast instead of hanging in realize().
        let microscopic =
            PopulationPrior { dwell_scale_range: (1e-6, 1.0), ..PopulationPrior::legacy() };
        assert!(microscopic.validate().is_err());
        let astronomic =
            PopulationPrior { dwell_scale_range: (1.0, 1e6), ..PopulationPrior::legacy() };
        assert!(astronomic.validate().is_err());
        assert!(PopulationSpec::mixed(FaultLevel::Heavy).validate().is_ok());
    }

    #[test]
    fn backend_assignment_is_deterministic_and_respects_the_fraction() {
        let spec = BackendSpec::Mixed { int8_fraction: 0.25 };
        spec.validate().unwrap();
        let mut int8 = 0usize;
        for id in 0..800u64 {
            let seed = device_seed(7, id);
            let a = spec.assign(seed);
            assert_eq!(a, spec.assign(seed), "assignment must be a pure function of the seed");
            if a == BackendKind::Int8 {
                int8 += 1;
            }
        }
        // 25 % of 800 with generous sampling slack.
        assert!((120..=280).contains(&int8), "expected ~200 int8 devices, got {int8}");

        assert_eq!(BackendSpec::default().assign(1), BackendKind::F64);
        assert_eq!(BackendSpec::Uniform(BackendKind::Int8).assign(1), BackendKind::Int8);
        assert_eq!(BackendSpec::Mixed { int8_fraction: 0.0 }.assign(9), BackendKind::F64);
        assert_eq!(BackendSpec::Mixed { int8_fraction: 1.0 }.assign(9), BackendKind::Int8);
        assert_eq!(BackendSpec::MixedCascade { cascade_fraction: 0.0 }.assign(9), BackendKind::F64);
        assert_eq!(
            BackendSpec::MixedCascade { cascade_fraction: 1.0 }.assign(9),
            BackendKind::Cascade
        );
        // Same salted draw as `Mixed`: equal fractions pick the same devices.
        for seed in 0..32u64 {
            let int8 = BackendSpec::Mixed { int8_fraction: 0.5 }.assign(seed);
            let cascade = BackendSpec::MixedCascade { cascade_fraction: 0.5 }.assign(seed);
            assert_eq!(int8 == BackendKind::Int8, cascade == BackendKind::Cascade);
        }
    }

    #[test]
    fn invalid_backend_specs_are_rejected() {
        assert!(BackendSpec::Mixed { int8_fraction: -0.1 }.validate().is_err());
        assert!(BackendSpec::Mixed { int8_fraction: 1.1 }.validate().is_err());
        assert!(BackendSpec::Mixed { int8_fraction: f64::NAN }.validate().is_err());
        assert!(BackendSpec::half_int8().validate().is_ok());
        assert!(BackendSpec::MixedCascade { cascade_fraction: 2.0 }.validate().is_err());
        assert!(BackendSpec::half_cascade().validate().is_ok());
        let population =
            PopulationSpec::legacy().with_backend(BackendSpec::Mixed { int8_fraction: 2.0 });
        assert!(population.validate().is_err());
    }

    #[test]
    fn fault_plans_respect_their_budgets() {
        for level in [FaultLevel::Light, FaultLevel::Heavy] {
            let profile = level.profile();
            for seed in 0..50u64 {
                let duration = 400.0;
                let plan = FaultPlan::generate(profile, duration, seed);
                assert!(plan.dropout_seconds() <= profile.dropout_fraction * duration + 1e-9);
                assert!(plan.stuck_seconds() <= profile.stuck_fraction * duration + 1e-9);
                assert!(plan.burst_seconds() <= profile.burst_fraction * duration + 1e-9);
                for w in plan.windows() {
                    assert!(w.start_s >= 0.0 && w.end_s <= duration + 1e-9);
                    assert!(w.duration_s() > 0.0);
                }
                for pair in plan.windows().windows(2) {
                    assert!(pair[0].start_s <= pair[1].start_s, "windows must be sorted");
                }
            }
        }
    }

    #[test]
    fn none_level_generates_an_empty_plan() {
        let plan = FaultPlan::generate(FaultLevel::None.profile(), 1000.0, 9);
        assert!(plan.is_empty());
        assert_eq!(plan.dropout_seconds(), 0.0);
    }

    #[test]
    fn empty_plan_injector_is_a_bit_exact_no_op() {
        let spec = ExperimentSpec::quick();
        let scenario = ScenarioSpec::random(adasense_data::ActivityChangeSetting::Medium, 30.0, 5);
        let mut plain = ScenarioSource::new(&spec, &scenario);
        let mut wrapped =
            FaultInjector::new(ScenarioSource::new(&spec, &scenario), FaultPlan::none(), 77);
        let config = SensorConfig::paper_pareto_front()[0];
        let (mut a, mut b) = (Vec::new(), Vec::new());
        for tick in 2..30 {
            let t_end = tick as f64;
            plain.capture_window(config, t_end, 2.0, &mut a);
            wrapped.capture_window(config, t_end, 2.0, &mut b);
            assert_eq!(a, b, "a fault-free injector must not alter the stream");
            assert_eq!(plain.ground_truth(t_end - 1e-6), wrapped.ground_truth(t_end - 1e-6));
        }
        assert_eq!(wrapped.faulted_captures(), 0);
        assert_eq!(wrapped.captures(), 28);
    }

    #[test]
    fn dropout_windows_zero_the_affected_samples_only() {
        let spec = ExperimentSpec::quick();
        let scenario = ScenarioSpec::sit_then_walk(10.0, 10.0);
        let plan = FaultPlan {
            windows: vec![FaultWindow { start_s: 4.0, end_s: 6.0, kind: FaultKind::Dropout }],
        };
        let mut injector = FaultInjector::new(ScenarioSource::new(&spec, &scenario), plan, 3);
        let config = SensorConfig::paper_pareto_front()[0];
        let mut out = Vec::new();
        injector.capture_window(config, 6.0, 2.0, &mut out);
        assert!(!out.is_empty());
        assert!(out.iter().all(|s| s.axes() == [0.0, 0.0, 0.0]), "window inside the fault");
        injector.capture_window(config, 9.0, 2.0, &mut out);
        assert!(out.iter().any(|s| s.axes() != [0.0, 0.0, 0.0]), "window outside the fault");
        assert_eq!(injector.faulted_captures(), 1);
        assert_eq!(injector.captures(), 2);
    }

    #[test]
    fn heavy_faults_visibly_corrupt_the_stream() {
        let spec = ExperimentSpec::quick();
        let scenario = ScenarioSpec::random(adasense_data::ActivityChangeSetting::Low, 120.0, 21);
        let mut clean = ScenarioSource::new(&spec, &scenario);
        let mut faulty = FaultInjector::for_device(
            ScenarioSource::new(&spec, &scenario),
            FaultLevel::Heavy,
            120.0,
            21,
        );
        let config = SensorConfig::paper_pareto_front()[1];
        let (mut a, mut b) = (Vec::new(), Vec::new());
        let mut differing = 0usize;
        for tick in 2..120 {
            clean.capture_window(config, tick as f64, 2.0, &mut a);
            faulty.capture_window(config, tick as f64, 2.0, &mut b);
            if a != b {
                differing += 1;
            }
        }
        assert!(differing > 5, "heavy faults must corrupt multiple windows, got {differing}");
        assert_eq!(faulty.faulted_captures(), differing);
    }
}
