//! The decoded telemetry frame payload exchanged between devices and hosts.
//!
//! A wearable streaming its accelerometer windows off-device sends one
//! [`TelemetryBatch`] per classification epoch: the sensor configuration the
//! window was captured under, the window's end time and length, the
//! ground-truth class label (when the stream carries supervision, e.g. for
//! replayed benchmark traces) and the samples themselves.  The binary wire
//! encoding of a batch lives in the ingestion layer (`adasense::ingest`, spec
//! in `docs/WIRE_FORMAT.md`); this module only defines the in-memory form so
//! the substrate crates can produce and consume batches without depending on
//! the framework crate.

use serde::{Deserialize, Serialize};

use crate::config::SensorConfig;
use crate::sample::Sample3;

/// The class label carried by a telemetry batch: a raw classifier class index.
///
/// The sensor substrate does not know the activity taxonomy (that lives in
/// `adasense-data`), so labels travel as the bare `u8` class index and are
/// converted to/from `Activity` at the ingestion layer.
pub type ClassLabel = u8;

/// One decoded telemetry frame: a timestamped window of samples plus its
/// sensor-configuration tag and ground-truth label.
///
/// A batch is the unit a sample source replaying live telemetry (the
/// framework crate's `adasense::runtime::SampleSource` implementations) hands
/// to the device runtime once per classified epoch.  The `samples` buffer is
/// designed for reuse: decoders refill an existing batch in place (see
/// [`TelemetryBatch::reset`]) instead of allocating a fresh one per frame.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TelemetryBatch {
    /// Sensor configuration the window was captured under.
    pub config: SensorConfig,
    /// End time of the window, in seconds from the start of the stream.
    pub t_end: f64,
    /// Length of the window, in seconds.
    pub window_s: f64,
    /// Ground-truth class index for the epoch ending at `t_end` (the
    /// classifier class order of `adasense-data`'s `Activity`).
    pub label: ClassLabel,
    /// The captured samples, oldest first.
    pub samples: Vec<Sample3>,
}

impl TelemetryBatch {
    /// Creates a batch from its parts.
    pub fn new(
        config: SensorConfig,
        t_end: f64,
        window_s: f64,
        label: ClassLabel,
        samples: Vec<Sample3>,
    ) -> Self {
        Self { config, t_end, window_s, label, samples }
    }

    /// An empty placeholder batch (no samples, zeroed times), useful as the
    /// reusable target of an in-place decoder.
    pub fn placeholder() -> Self {
        Self {
            config: SensorConfig::paper_pareto_front()[0],
            t_end: 0.0,
            window_s: 0.0,
            label: 0,
            samples: Vec::new(),
        }
    }

    /// Resets the header fields and clears the sample buffer, keeping its
    /// allocation — the first step of refilling the batch in place.
    pub fn reset(&mut self, config: SensorConfig, t_end: f64, window_s: f64, label: ClassLabel) {
        self.config = config;
        self.t_end = t_end;
        self.window_s = window_s;
        self.label = label;
        self.samples.clear();
    }

    /// Start time of the window, in seconds.
    pub fn t_start(&self) -> f64 {
        self.t_end - self.window_s
    }

    /// Number of samples in the window.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the window holds no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reset_keeps_the_sample_allocation() {
        let mut batch = TelemetryBatch::placeholder();
        batch.samples.extend((0..32).map(|i| Sample3::new(i as f64, 0.0, 0.0, 1.0)));
        let capacity = batch.samples.capacity();
        let config = SensorConfig::paper_pareto_front()[1];
        batch.reset(config, 10.0, 2.0, 3);
        assert_eq!(batch.config, config);
        assert_eq!(batch.t_end, 10.0);
        assert_eq!(batch.t_start(), 8.0);
        assert_eq!(batch.label, 3);
        assert!(batch.is_empty());
        assert_eq!(batch.samples.capacity(), capacity, "reset must keep the allocation");
    }

    #[test]
    fn placeholder_is_empty() {
        let batch = TelemetryBatch::placeholder();
        assert!(batch.is_empty());
        assert_eq!(batch.len(), 0);
    }
}
