//! Ablation behind Section III-C: how much accuracy does AdaSense's single unified
//! classifier give up, per configuration, compared with retraining a dedicated
//! classifier for each configuration — and how much memory does it save in return.
//!
//! Run with `cargo run --release -p adasense-bench --bin ablation_unified_classifier`
//! (add `--quick` for a reduced dataset).

use adasense::experiments::unified_vs_bank;
use adasense_bench::{train_system, RunScale};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = RunScale::from_args();
    let (spec, system) = train_system(scale)?;

    let report = unified_vs_bank(&spec, &system)?;
    println!("Ablation — single unified classifier vs one classifier per configuration\n");
    println!("{}", report.to_table_string());
    println!(
        "largest accuracy advantage of the dedicated classifiers: {:.2} points\n\
         paper claim: training one network on data from all configurations performs well\n\
         while using k-times less memory than k per-configuration networks.",
        100.0 * report.max_dedicated_advantage()
    );
    Ok(())
}
