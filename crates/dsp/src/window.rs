//! The classification batch buffer of the HAR framework (Fig. 1).
//!
//! The paper buffers the accelerometer stream and, every second, pushes the most
//! recent *two seconds* of data through feature extraction and classification —
//! i.e. consecutive batches overlap by one second so the classifier sees some
//! context from the previous batch.
//!
//! [`BatchBuffer`] implements exactly that: samples are pushed as they arrive, and
//! every `hop_s` seconds of new data a batch covering the last `window_s` seconds is
//! emitted.

use adasense_sensor::Sample3;
use serde::{Deserialize, Serialize};

/// A sliding window buffer that emits overlapping batches.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatchBuffer {
    window_s: f64,
    hop_s: f64,
    samples: Vec<Sample3>,
    /// End time (exclusive) of the last emitted batch, if any.
    last_emit_end: Option<f64>,
    /// Time of the first sample ever pushed.
    start_time: Option<f64>,
}

impl BatchBuffer {
    /// Creates a buffer emitting `window_s`-second batches every `hop_s` seconds.
    ///
    /// # Panics
    ///
    /// Panics if `window_s` or `hop_s` is not strictly positive, or if the hop is
    /// larger than the window (that would drop samples between batches).
    pub fn new(window_s: f64, hop_s: f64) -> Self {
        assert!(window_s > 0.0, "window must be positive");
        assert!(hop_s > 0.0, "hop must be positive");
        assert!(hop_s <= window_s, "hop must not exceed the window");
        Self { window_s, hop_s, samples: Vec::new(), last_emit_end: None, start_time: None }
    }

    /// The paper's buffer: 2-second window, 1-second hop.
    pub fn paper() -> Self {
        Self::new(2.0, 1.0)
    }

    /// Window length in seconds.
    pub fn window_s(&self) -> f64 {
        self.window_s
    }

    /// Hop (emission period) in seconds.
    pub fn hop_s(&self) -> f64 {
        self.hop_s
    }

    /// Number of samples currently retained.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the buffer currently holds no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Pushes one sample; returns a batch if this sample completes one.
    ///
    /// The first batch is emitted once `window_s` seconds of data have accumulated;
    /// subsequent batches every `hop_s` seconds.  Batches contain every retained
    /// sample whose timestamp lies within the last `window_s` seconds.
    pub fn push(&mut self, sample: Sample3) -> Option<Vec<Sample3>> {
        let mut batch = Vec::new();
        self.push_into(sample, &mut batch).then_some(batch)
    }

    /// Pushes one sample, writing the completed batch (if any) into `batch`.
    ///
    /// Returns `true` when this sample completed a batch; `batch` is cleared
    /// first and its allocation reused, so a streaming loop that keeps one batch
    /// buffer alive never allocates per emission.  Behaves exactly like
    /// [`BatchBuffer::push`] otherwise.
    pub fn push_into(&mut self, sample: Sample3, batch: &mut Vec<Sample3>) -> bool {
        if self.start_time.is_none() {
            self.start_time = Some(sample.t);
        }
        self.samples.push(sample);
        let start = self.start_time.expect("set above");
        let now = sample.t;
        let due = match self.last_emit_end {
            None => now - start >= self.window_s - 1e-9,
            Some(last) => now - last >= self.hop_s - 1e-9,
        };
        if !due {
            return false;
        }
        self.last_emit_end = Some(now);
        // Drop samples that can never appear in a future window again.
        let horizon = now - self.window_s + 1e-9;
        batch.clear();
        batch.extend(self.samples.iter().copied().filter(|s| s.t >= horizon));
        self.samples.retain(|s| s.t >= horizon - self.hop_s);
        true
    }

    /// Pushes a slice of samples, collecting every batch they complete.
    pub fn push_all(&mut self, samples: &[Sample3]) -> Vec<Vec<Sample3>> {
        samples.iter().filter_map(|&s| self.push(s)).collect()
    }

    /// Clears all buffered samples and emission state.
    pub fn reset(&mut self) {
        self.samples.clear();
        self.last_emit_end = None;
        self.start_time = None;
    }
}

impl Default for BatchBuffer {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream(rate_hz: f64, seconds: f64) -> Vec<Sample3> {
        let n = (rate_hz * seconds).round() as usize;
        (0..n).map(|k| Sample3::new(k as f64 / rate_hz, 0.0, 0.0, 1.0)).collect()
    }

    #[test]
    fn paper_buffer_emits_after_two_seconds_then_every_second() {
        let mut buffer = BatchBuffer::paper();
        let batches = buffer.push_all(&stream(50.0, 6.0));
        // 6 seconds of data: batches at t≈2,3,4,5 (within the pushed range).
        assert_eq!(batches.len(), 4);
        // Each batch covers ~2 seconds => ~100 samples at 50 Hz.
        for batch in &batches {
            assert!((95..=101).contains(&batch.len()), "batch had {} samples", batch.len());
        }
    }

    #[test]
    fn batches_overlap_by_one_second() {
        let mut buffer = BatchBuffer::paper();
        let batches = buffer.push_all(&stream(25.0, 5.0));
        assert!(batches.len() >= 2);
        let first = &batches[0];
        let second = &batches[1];
        let first_times: std::collections::BTreeSet<i64> =
            first.iter().map(|s| (s.t * 1000.0).round() as i64).collect();
        let shared = second
            .iter()
            .filter(|s| first_times.contains(&((s.t * 1000.0).round() as i64)))
            .count();
        // Roughly one second of 25 Hz data is shared.
        assert!((20..=27).contains(&shared), "shared {shared} samples");
    }

    #[test]
    fn works_at_the_lowest_sampling_rate() {
        let mut buffer = BatchBuffer::paper();
        let batches = buffer.push_all(&stream(6.25, 4.0));
        assert!(!batches.is_empty());
        for batch in &batches {
            assert!(batch.len() >= 12, "2 s at 6.25 Hz is at least 12 samples");
        }
    }

    #[test]
    fn push_into_matches_push() {
        let mut a = BatchBuffer::paper();
        let mut b = BatchBuffer::paper();
        let mut batch = Vec::new();
        for s in stream(25.0, 5.0) {
            let emitted = b.push_into(s, &mut batch);
            match a.push(s) {
                Some(expected) => {
                    assert!(emitted);
                    assert_eq!(batch, expected);
                }
                None => assert!(!emitted),
            }
        }
    }

    #[test]
    fn reset_clears_state() {
        let mut buffer = BatchBuffer::paper();
        let _ = buffer.push_all(&stream(50.0, 3.0));
        assert!(!buffer.is_empty());
        buffer.reset();
        assert!(buffer.is_empty());
        // After a reset the next batch again requires a full window of data.
        let batches = buffer.push_all(&stream(50.0, 1.5));
        assert!(batches.is_empty());
    }

    #[test]
    fn custom_window_and_hop() {
        let mut buffer = BatchBuffer::new(1.0, 0.5);
        let batches = buffer.push_all(&stream(20.0, 3.0));
        // Batches due at 1.0, 1.5, 2.0, 2.5 (2.95 is the last sample).
        assert_eq!(batches.len(), 4);
    }

    #[test]
    #[should_panic(expected = "hop must not exceed the window")]
    fn rejects_hop_larger_than_window() {
        let _ = BatchBuffer::new(1.0, 2.0);
    }

    #[test]
    fn batch_contents_are_time_ordered_and_recent() {
        let mut buffer = BatchBuffer::paper();
        let batches = buffer.push_all(&stream(100.0, 10.0));
        let last = batches.last().unwrap();
        for pair in last.windows(2) {
            assert!(pair[1].t > pair[0].t);
        }
        let span = last.last().unwrap().t - last.first().unwrap().t;
        assert!(span <= 2.0 + 1e-9);
        assert!(span >= 1.9);
    }
}
