//! Benchmarks of the sensor substrate backing Table I and Fig. 2: the duty-cycle
//! energy model and the simulated accelerometer capture path.

use adasense_sensor::prelude::*;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn walk_like(t: f64) -> [f64; 3] {
    let tau = std::f64::consts::TAU;
    [
        0.1 + 0.05 * (tau * 0.95 * t).sin(),
        0.08 + 0.16 * (tau * 1.9 * t).sin(),
        0.985 + 0.27 * (tau * 1.9 * t).sin() + 0.12 * (tau * 3.8 * t).sin(),
    ]
}

fn bench_energy_model(c: &mut Criterion) {
    let model = EnergyModel::bmi160();
    let table = SensorConfig::table_i();
    c.bench_function("energy_model/current_ua_table_i", |b| {
        b.iter(|| {
            let total: f64 = table.iter().map(|&cfg| model.current_ua(black_box(cfg))).sum();
            black_box(total)
        })
    });
    c.bench_function("energy_model/charge_accounting_1h", |b| {
        b.iter(|| {
            let mut charge = Charge::ZERO;
            for second in 0..3600 {
                let config = table[second % table.len()];
                charge += model.charge_over(black_box(config), 1.0);
            }
            black_box(charge)
        })
    });
}

fn bench_capture(c: &mut Criterion) {
    let mut group = c.benchmark_group("accelerometer_capture_2s");
    for config in SensorConfig::paper_pareto_front() {
        let accel = Accelerometer::new(config);
        group.bench_function(config.label(), |b| {
            b.iter_batched(
                || StdRng::seed_from_u64(7),
                |mut rng| black_box(accel.capture(&walk_like, 0.0, 2.0, &mut rng)),
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_energy_model, bench_capture);
criterion_main!(benches);
