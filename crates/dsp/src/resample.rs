//! Linear-interpolation resampling.
//!
//! The related work discussed in Section II (Liu et al. / Williamson et al. \[17\])
//! normalizes variable-rate sensor data by linear interpolation before
//! classification.  AdaSense itself does not need resampling — that is the point of
//! its unified feature extraction — but the function is provided so the alternative
//! strategy can be compared and used in ablations.

use adasense_sensor::Sample3;

/// Resamples `samples` to `target_rate_hz` by linear interpolation.
///
/// The output covers the same time span as the input (from the first to the last
/// input timestamp).  Returns an empty vector for fewer than two input samples or a
/// non-positive target rate.
pub fn resample_linear(samples: &[Sample3], target_rate_hz: f64) -> Vec<Sample3> {
    if samples.len() < 2 || target_rate_hz <= 0.0 {
        return Vec::new();
    }
    let start = samples.first().expect("len >= 2").t;
    let end = samples.last().expect("len >= 2").t;
    let period = 1.0 / target_rate_hz;
    let count = ((end - start) / period).floor() as usize + 1;
    let mut out = Vec::with_capacity(count);
    let mut cursor = 0usize;
    for k in 0..count {
        let t = start + k as f64 * period;
        while cursor + 1 < samples.len() - 1 && samples[cursor + 1].t <= t {
            cursor += 1;
        }
        let a = samples[cursor];
        let b = samples[(cursor + 1).min(samples.len() - 1)];
        let span = b.t - a.t;
        let w = if span <= 0.0 { 0.0 } else { ((t - a.t) / span).clamp(0.0, 1.0) };
        out.push(Sample3::new(
            t,
            a.x + w * (b.x - a.x),
            a.y + w * (b.y - a.y),
            a.z + w * (b.z - a.z),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(rate_hz: f64, seconds: f64) -> Vec<Sample3> {
        let n = (rate_hz * seconds).round() as usize;
        (0..n)
            .map(|k| {
                let t = k as f64 / rate_hz;
                Sample3::new(t, t, 2.0 * t, -t)
            })
            .collect()
    }

    #[test]
    fn upsampling_a_ramp_is_exact() {
        let input = ramp(10.0, 2.0);
        let output = resample_linear(&input, 40.0);
        assert!(output.len() > input.len());
        for s in &output {
            assert!((s.x - s.t).abs() < 1e-9);
            assert!((s.y - 2.0 * s.t).abs() < 1e-9);
            assert!((s.z + s.t).abs() < 1e-9);
        }
    }

    #[test]
    fn downsampling_preserves_time_span() {
        let input = ramp(100.0, 2.0);
        let output = resample_linear(&input, 12.5);
        let last_in = input.last().unwrap().t;
        let last_out = output.last().unwrap().t;
        assert!(last_out <= last_in + 1e-9);
        assert!(last_in - last_out < 1.0 / 12.5);
    }

    #[test]
    fn output_rate_is_the_requested_rate() {
        let input = ramp(25.0, 4.0);
        let output = resample_linear(&input, 50.0);
        for pair in output.windows(2) {
            assert!((pair[1].t - pair[0].t - 0.02).abs() < 1e-9);
        }
    }

    #[test]
    fn degenerate_inputs_yield_empty_output() {
        assert!(resample_linear(&[], 10.0).is_empty());
        assert!(resample_linear(&[Sample3::new(0.0, 1.0, 1.0, 1.0)], 10.0).is_empty());
        assert!(resample_linear(&ramp(10.0, 1.0), 0.0).is_empty());
        assert!(resample_linear(&ramp(10.0, 1.0), -5.0).is_empty());
    }
}
