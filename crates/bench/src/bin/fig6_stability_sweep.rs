//! Regenerates Fig. 6a (classification accuracy vs stability threshold) and Fig. 6b
//! (total sensor power vs stability threshold) for the static baseline, SPOT and
//! SPOT with confidence 0.85, and reports the sweep-average power reductions the
//! paper quotes (60 % for SPOT, 69 % for SPOT with confidence).
//!
//! Run with `cargo run --release -p adasense-bench --bin fig6_stability_sweep`
//! (add `--quick` for a reduced sweep).

use adasense::experiments::stability_sweep;
use adasense_bench::{train_system, RunScale};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = RunScale::from_args();
    let (spec, system) = train_system(scale)?;
    let settings = scale.sweep_settings();

    eprintln!(
        "[fig6] sweeping {} thresholds × {} scenarios × 3 controllers…",
        settings.thresholds.len(),
        settings.scenarios_per_point
    );
    let report = stability_sweep(&spec, &system, &settings)?;

    println!("Fig. 6 — AdaSense power and accuracy vs stability threshold\n");
    println!("{}", report.to_table_string());
    println!(
        "paper: accuracy rises from ~91% to within 1.5% of the baseline once the threshold\n\
         exceeds ~20 s; average power reduction 60% (SPOT) and 69% (SPOT with confidence).\n\
         measured: max SPOT accuracy drop {:.2} points, SPOT reduction {:.1}%, SPOT+confidence {:.1}%",
        100.0 * report.max_spot_accuracy_drop(),
        100.0 * report.average_spot_reduction(),
        100.0 * report.average_spot_confidence_reduction()
    );
    Ok(())
}
