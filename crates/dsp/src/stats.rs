//! Per-axis statistics of an accelerometer batch.
//!
//! The paper's statistical features are the mean and standard deviation of each axis
//! over the buffered batch (Section III-B).  A few extra quantities (RMS, min, max,
//! peak-to-peak) are provided for analyses and the intensity-based baseline.

use adasense_sensor::Sample3;
use serde::{Deserialize, Serialize};

/// Summary statistics of a scalar sequence.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct AxisStats {
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std: f64,
    /// Root mean square.
    pub rms: f64,
    /// Minimum value.
    pub min: f64,
    /// Maximum value.
    pub max: f64,
}

impl AxisStats {
    /// Computes statistics over `values`.
    ///
    /// Returns all-zero statistics for an empty slice.
    ///
    /// ```
    /// use adasense_dsp::AxisStats;
    /// let s = AxisStats::of(&[1.0, 2.0, 3.0]);
    /// assert_eq!(s.mean, 2.0);
    /// assert!((s.std - (2.0f64 / 3.0).sqrt()).abs() < 1e-12);
    /// ```
    pub fn of(values: &[f64]) -> Self {
        Self::of_sequence(values.len(), || values.iter().copied())
    }

    /// Computes statistics over any re-iterable scalar sequence of length `n` —
    /// for example one axis of an interleaved 3-axis sample buffer — without
    /// copying it into a contiguous slice first.  Bit-identical to
    /// [`AxisStats::of`] on the equivalent contiguous slice.
    ///
    /// The sequence is fused into two passes (sum/RMS/min/max, then the
    /// mean-centered variance); each accumulator still adds values in sequence
    /// order, so the results match the naive one-pass-per-statistic evaluation
    /// exactly.
    pub fn of_sequence<I: Iterator<Item = f64>>(n: usize, values: impl Fn() -> I) -> Self {
        if n == 0 {
            return Self::default();
        }
        let count = n as f64;
        let mut sum = 0.0f64;
        let mut sum_sq = 0.0f64;
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for v in values() {
            sum += v;
            sum_sq += v * v;
            min = min.min(v);
            max = max.max(v);
        }
        let mean = sum / count;
        let var = values().map(|v| (v - mean).powi(2)).sum::<f64>() / count;
        Self { mean, std: var.sqrt(), rms: (sum_sq / count).sqrt(), min, max }
    }

    /// Peak-to-peak range (`max - min`).
    pub fn peak_to_peak(&self) -> f64 {
        self.max - self.min
    }
}

/// Splits a batch of 3-axis samples into per-axis scalar vectors `[x, y, z]`.
pub fn split_axes(samples: &[Sample3]) -> [Vec<f64>; 3] {
    let mut x = Vec::with_capacity(samples.len());
    let mut y = Vec::with_capacity(samples.len());
    let mut z = Vec::with_capacity(samples.len());
    for s in samples {
        x.push(s.x);
        y.push(s.y);
        z.push(s.z);
    }
    [x, y, z]
}

/// Per-axis statistics of a batch of 3-axis samples, in `[x, y, z]` order.
///
/// Reads the axes through strided views of `samples` — no per-axis copies.
pub fn per_axis_stats(samples: &[Sample3]) -> [AxisStats; 3] {
    let n = samples.len();
    [
        AxisStats::of_sequence(n, || samples.iter().map(|s| s.x)),
        AxisStats::of_sequence(n, || samples.iter().map(|s| s.y)),
        AxisStats::of_sequence(n, || samples.iter().map(|s| s.z)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_sequence_has_zero_std() {
        let s = AxisStats::of(&[5.0; 10]);
        assert_eq!(s.mean, 5.0);
        assert_eq!(s.std, 0.0);
        assert_eq!(s.rms, 5.0);
        assert_eq!(s.peak_to_peak(), 0.0);
    }

    #[test]
    fn empty_input_gives_default() {
        assert_eq!(AxisStats::of(&[]), AxisStats::default());
    }

    #[test]
    fn known_values() {
        let s = AxisStats::of(&[1.0, -1.0, 1.0, -1.0]);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.std, 1.0);
        assert_eq!(s.rms, 1.0);
        assert_eq!(s.min, -1.0);
        assert_eq!(s.max, 1.0);
        assert_eq!(s.peak_to_peak(), 2.0);
    }

    #[test]
    fn per_axis_stats_separates_axes() {
        let samples = vec![Sample3::new(0.0, 1.0, 2.0, 3.0), Sample3::new(0.1, 3.0, 2.0, 1.0)];
        let [x, y, z] = per_axis_stats(&samples);
        assert_eq!(x.mean, 2.0);
        assert_eq!(y.std, 0.0);
        assert_eq!(z.mean, 2.0);
    }

    #[test]
    fn split_axes_preserves_order() {
        let samples = vec![
            Sample3::new(0.0, 1.0, 4.0, 7.0),
            Sample3::new(0.1, 2.0, 5.0, 8.0),
            Sample3::new(0.2, 3.0, 6.0, 9.0),
        ];
        let [x, y, z] = split_axes(&samples);
        assert_eq!(x, vec![1.0, 2.0, 3.0]);
        assert_eq!(y, vec![4.0, 5.0, 6.0]);
        assert_eq!(z, vec![7.0, 8.0, 9.0]);
    }

    #[test]
    fn rms_exceeds_mean_for_oscillating_signal() {
        let values: Vec<f64> = (0..100).map(|k| (k as f64 * 0.3).sin()).collect();
        let s = AxisStats::of(&values);
        assert!(s.rms > s.mean.abs());
    }
}
