//! The closed-loop AdaSense simulator.
//!
//! The simulator plays a scheduled activity timeline through the simulated
//! accelerometer, classifying the most recent two-second window once per second
//! (Fig. 1) and letting the configured controller pick the sensor configuration for
//! the next second (Fig. 3).  The sensor's charge consumption is integrated per
//! one-second residency interval, which is exactly the accounting behind the
//! paper's power numbers (Figs. 5–7).
//!
//! The per-second loop itself lives in [`crate::runtime::DeviceRuntime`];
//! [`Simulator`] is a thin batch driver that builds a scenario-backed runtime,
//! steps it to completion and returns the report.  Use the runtime directly to
//! stream tick by tick, or [`crate::fleet`] to run whole populations of devices.
//!
//! One simplification relative to real hardware: after a configuration switch the
//! next window is re-sampled entirely under the new configuration instead of mixing
//! samples from two configurations.  Residency is dominated by seconds-long stable
//! periods, so this does not change any of the reported quantities noticeably.

use std::collections::BTreeMap;

use adasense_data::{Activity, ActivityChangeSetting, ActivitySchedule};
use adasense_ml::Classifier;
use adasense_sensor::{Charge, SensorConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::controller::ControllerKind;
use crate::error::AdaSenseError;
use crate::runtime::DeviceRuntime;
use crate::training::{ExperimentSpec, TrainedSystem};

/// A scenario to simulate: an activity timeline plus the randomness seed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioSpec {
    /// The ground-truth activity timeline.
    pub schedule: ActivitySchedule,
    /// Seed for subject variation and sensor noise.
    pub seed: u64,
}

impl ScenarioSpec {
    /// Creates a scenario from an explicit schedule.
    pub fn from_schedule(schedule: ActivitySchedule, seed: u64) -> Self {
        Self { schedule, seed }
    }

    /// The Fig. 5 scenario: sit for `sit_s` seconds, then walk for `walk_s` seconds.
    pub fn sit_then_walk(sit_s: f64, walk_s: f64) -> Self {
        Self { schedule: ActivitySchedule::sit_then_walk(sit_s, walk_s), seed: 5 }
    }

    /// A randomized scenario with the dwell-time distribution of the given user
    /// activity setting (High / Medium / Low, as in Fig. 7).
    pub fn random(setting: ActivityChangeSetting, duration_s: f64, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        Self { schedule: ActivitySchedule::random(setting, duration_s, &mut rng), seed }
    }

    /// Total duration of the scenario, in seconds.
    pub fn duration_s(&self) -> f64 {
        self.schedule.total_duration_s()
    }
}

/// One per-second record of the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EpochRecord {
    /// End time of the epoch (the classification instant), in seconds.
    pub t_s: f64,
    /// Sensor configuration active during this epoch.
    pub config: SensorConfig,
    /// Sensor current during this epoch, in µA.
    pub current_ua: f64,
    /// The classifier's output for the window ending at `t_s`.
    pub predicted: Activity,
    /// The ground-truth activity at `t_s`.
    pub actual: Activity,
    /// The classifier's confidence for `predicted`.
    pub confidence: f64,
    /// Whether `predicted == actual`.
    pub correct: bool,
}

/// The result of one closed-loop simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimulationReport {
    /// Label of the controller that produced this run.
    pub controller: String,
    /// Per-epoch records (one per second once the first window has filled).
    pub records: Vec<EpochRecord>,
    /// Total sensor charge over the run, in µC.
    pub total_charge: Charge,
    /// Simulated duration, in seconds.
    pub duration_s: f64,
    /// Seconds spent in each configuration (keyed by configuration label).
    pub seconds_in_config: BTreeMap<String, f64>,
}

impl SimulationReport {
    /// Recognition accuracy over every classified epoch (0–1).
    pub fn accuracy(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        self.records.iter().filter(|r| r.correct).count() as f64 / self.records.len() as f64
    }

    /// Average sensor current over the whole run, in µA.
    pub fn average_current_ua(&self) -> f64 {
        self.total_charge.average_current_ua(self.duration_s)
    }

    /// The per-epoch records.
    pub fn records(&self) -> &[EpochRecord] {
        &self.records
    }

    /// Fractional power reduction of this run relative to a baseline current
    /// (e.g. the static `F100_A128` run), in the range `0..=1` for an improvement.
    pub fn power_reduction_vs(&self, baseline_current_ua: f64) -> f64 {
        if baseline_current_ua <= 0.0 {
            return 0.0;
        }
        1.0 - self.average_current_ua() / baseline_current_ua
    }

    /// The fraction of time spent in the given configuration.
    pub fn residency(&self, config: SensorConfig) -> f64 {
        if self.duration_s <= 0.0 {
            return 0.0;
        }
        self.seconds_in_config.get(&config.label()).copied().unwrap_or(0.0) / self.duration_s
    }

    /// Renders the per-second current trace as `(t, µA)` pairs — the series plotted
    /// in Fig. 5b.
    pub fn current_trace(&self) -> Vec<(f64, f64)> {
        self.records.iter().map(|r| (r.t_s, r.current_ua)).collect()
    }
}

/// The closed-loop simulator.
#[derive(Clone)]
pub struct Simulator<'a> {
    spec: &'a ExperimentSpec,
    system: &'a TrainedSystem,
    controller: ControllerKind,
    classifier: Option<&'a dyn Classifier>,
}

impl<'a> Simulator<'a> {
    /// Creates a simulator around a trained system.  The controller defaults to the
    /// static high-power baseline; select another one with
    /// [`Simulator::with_controller`].  The inference backend defaults to the
    /// system's full-precision unified classifier; swap it with
    /// [`Simulator::with_classifier`].
    pub fn new(spec: &'a ExperimentSpec, system: &'a TrainedSystem) -> Self {
        Self { spec, system, controller: ControllerKind::StaticHigh, classifier: None }
    }

    /// Selects the adaptive sensing controller to simulate.
    pub fn with_controller(mut self, controller: ControllerKind) -> Self {
        self.controller = controller;
        self
    }

    /// Selects the inference backend the simulated device runs (for example
    /// `system.quantized_classifier()` for the int8 path).
    pub fn with_classifier(mut self, classifier: &'a dyn Classifier) -> Self {
        self.classifier = Some(classifier);
        self
    }

    /// The controller this simulator will run.
    pub fn controller(&self) -> ControllerKind {
        self.controller
    }

    /// Runs the closed loop over `scenario` by stepping a [`DeviceRuntime`]
    /// to completion.
    ///
    /// # Errors
    ///
    /// Returns [`AdaSenseError::Simulation`] if the scenario is empty or shorter
    /// than one classification window.
    pub fn run(&self, scenario: ScenarioSpec) -> Result<SimulationReport, AdaSenseError> {
        let mut runtime =
            DeviceRuntime::for_scenario(self.spec, self.system, self.controller, &scenario)?;
        if let Some(classifier) = self.classifier {
            runtime = runtime.with_classifier(classifier);
        }
        runtime.run_to_completion();
        Ok(runtime.into_report())
    }
}

impl std::fmt::Debug for Simulator<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulator")
            .field("controller", &self.controller)
            .field("custom_backend", &self.classifier.map(|c| c.label().to_string()))
            .finish_non_exhaustive()
    }
}

/// Converts the fixed-array residency accumulator of the runtime (seconds per
/// [`SensorConfig::index`]) into the label-keyed map [`SimulationReport`] exposes.
/// Only visited configurations appear, matching the historic map-based accounting.
pub(crate) fn residency_map(residency_s: &[f64; SensorConfig::COUNT]) -> BTreeMap<String, f64> {
    residency_s
        .iter()
        .enumerate()
        .filter(|&(_, &seconds)| seconds > 0.0)
        .map(|(index, &seconds)| {
            let config = SensorConfig::from_index(index).expect("index is in range");
            (config.label(), seconds)
        })
        .collect()
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use adasense_data::DatasetSpec;
    use adasense_ml::TrainerConfig;
    use std::sync::OnceLock;

    /// A small trained system shared by the simulation, runtime and fleet tests
    /// (training takes a little while, so build it once per test binary).
    ///
    /// The dataset must be large enough that the unified classifier learns to lean
    /// on the noise-robust mean features in the noisy `F12.5_A8` configuration;
    /// with much fewer windows per class the classifier flickers on
    /// population-tail subjects there, and SPOT can never hold the lowest state.
    pub(crate) fn shared_system() -> &'static (ExperimentSpec, TrainedSystem) {
        static SYSTEM: OnceLock<(ExperimentSpec, TrainedSystem)> = OnceLock::new();
        SYSTEM.get_or_init(|| {
            let spec = ExperimentSpec {
                dataset: DatasetSpec { windows_per_class_per_config: 40, ..DatasetSpec::quick() },
                trainer: TrainerConfig { epochs: 45, ..TrainerConfig::default() },
                ..ExperimentSpec::quick()
            };
            let system = TrainedSystem::train(&spec).expect("training succeeds");
            (spec, system)
        })
    }

    #[test]
    fn static_baseline_never_leaves_the_high_power_configuration() {
        let (spec, system) = shared_system();
        let report = Simulator::new(spec, system)
            .with_controller(ControllerKind::StaticHigh)
            .run(ScenarioSpec::sit_then_walk(15.0, 15.0))
            .expect("simulation runs");
        assert_eq!(report.seconds_in_config.len(), 1);
        assert!(report.residency(SensorConfig::paper_pareto_front()[0]) > 0.999);
        assert!(report.average_current_ua() > 150.0);
        // 30 one-second epochs, classified from the end of the first 2 s window on.
        assert_eq!(report.records().len(), 29, "one record per second after the first window");
    }

    #[test]
    fn spot_reduces_power_compared_to_the_static_baseline() {
        let (spec, system) = shared_system();
        let scenario = ScenarioSpec::sit_then_walk(30.0, 30.0);
        let baseline = Simulator::new(spec, system)
            .with_controller(ControllerKind::StaticHigh)
            .run(scenario.clone())
            .unwrap();
        let spot = Simulator::new(spec, system)
            .with_controller(ControllerKind::Spot { stability_threshold: 3 })
            .run(scenario)
            .unwrap();
        assert!(
            spot.average_current_ua() < baseline.average_current_ua(),
            "SPOT {} µA should be below the baseline {} µA",
            spot.average_current_ua(),
            baseline.average_current_ua()
        );
        assert!(spot.power_reduction_vs(baseline.average_current_ua()) > 0.0);
    }

    #[test]
    fn spot_visits_lower_power_states_when_the_activity_is_stable() {
        let (spec, system) = shared_system();
        let report = Simulator::new(spec, system)
            .with_controller(ControllerKind::Spot { stability_threshold: 2 })
            .run(ScenarioSpec::sit_then_walk(40.0, 5.0))
            .unwrap();
        let lowest = SensorConfig::paper_pareto_front()[3];
        assert!(
            report.residency(lowest) > 0.2,
            "expected noticeable residency in {lowest}, got {}",
            report.residency(lowest)
        );
    }

    #[test]
    fn reports_are_internally_consistent() {
        let (spec, system) = shared_system();
        let report = Simulator::new(spec, system)
            .with_controller(ControllerKind::SpotWithConfidence {
                stability_threshold: 2,
                confidence_threshold: 0.85,
            })
            .run(ScenarioSpec::sit_then_walk(10.0, 10.0))
            .unwrap();
        // Residencies sum to the duration.
        let total: f64 = report.seconds_in_config.values().sum();
        assert!((total - report.duration_s).abs() < 1e-9);
        // The accuracy is the fraction of correct records.
        let correct = report.records().iter().filter(|r| r.correct).count();
        assert!((report.accuracy() - correct as f64 / report.records().len() as f64).abs() < 1e-12);
        // The current trace has one point per record.
        assert_eq!(report.current_trace().len(), report.records().len());
    }

    #[test]
    fn degenerate_scenarios_are_rejected() {
        let (spec, system) = shared_system();
        let simulator = Simulator::new(spec, system);
        let empty = ScenarioSpec::from_schedule(ActivitySchedule::default(), 0);
        assert!(matches!(simulator.run(empty), Err(AdaSenseError::Simulation { .. })));
        let too_short = ScenarioSpec::sit_then_walk(0.5, 0.5);
        assert!(simulator.run(too_short).is_err());
    }

    #[test]
    fn intensity_baseline_switches_between_its_two_configurations() {
        let (spec, system) = shared_system();
        let report = Simulator::new(spec, system)
            .with_controller(ControllerKind::IntensityBased)
            .run(ScenarioSpec::sit_then_walk(20.0, 20.0))
            .unwrap();
        let [high, low] = spec.intensity_configs();
        let high_res = report.residency(high);
        let low_res = report.residency(low);
        assert!(high_res > 0.0, "walking should keep the sensor in normal mode some of the time");
        assert!(low_res > 0.0, "sitting should allow the low-power configuration");
        assert!((high_res + low_res - 1.0).abs() < 1e-9);
    }
}
