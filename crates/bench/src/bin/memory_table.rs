//! Regenerates the Section V-D memory comparison: AdaSense's single unified
//! classifier vs one classifier per sensor configuration.
//!
//! Run with `cargo run --release -p adasense-bench --bin memory_table`.

use adasense::experiments::paper_memory_report;
use adasense_ml::MlpConfig;

fn main() {
    let report = paper_memory_report(&MlpConfig::paper());
    println!("Section V-D — classifier memory requirements\n");
    println!("{}", report.to_table_string());
    println!(
        "paper: AdaSense consumes 2x less memory than the intensity-based approach\n\
         (which retrains one network per sampling frequency) and 4x less than retraining\n\
         one network per SPOT state."
    );
}
