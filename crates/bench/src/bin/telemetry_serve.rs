//! `telemetry_serve`: exposes a simulated fleet as live telemetry sockets.
//!
//! Trains the HAR system, records one wire-format trace per fleet device,
//! then serves the whole cohort from ONE listening socket on one poll-driven
//! thread (`adasense::ingest::serve::TelemetryServe`) — TCP by default, or a
//! Unix-domain socket with `--uds PATH`.  Each connection asks for a device
//! with a RESUME frame and receives that device's stream (opened by a JOIN
//! handshake naming the device, its config and its fleet start-epoch);
//! `--kill-at BYTES` additionally tears first streams at a byte offset to
//! force clients through the RESUME reconnect path, and `--kill-below N`
//! restricts those kills to devices with id below `N`.
//!
//! With `--churn`, the cohort follows the deterministic churn schedule from
//! `adasense_bench::churn_plan`: half the devices join the fleet clock late
//! (their JOIN frames carry nonzero start-epochs) and a quarter stream only
//! part of the run (their traces end early).  The consuming `reactor_fleet
//! --churn` derives the same schedule and gates on report byte-identity.
//!
//! Pair it with `reactor_fleet` in another process for a production-like
//! soak test (the CI `serve-smoke` and `churn-smoke` jobs run exactly that
//! at ≥512 concurrent connections):
//!
//! ```text
//! telemetry_serve --quick --devices 512 --addr-file /tmp/serve.addr &
//! reactor_fleet   --quick --devices 512 --connect-file /tmp/serve.addr
//! ```
//!
//! Flags: `--quick` (reduced training set), `--devices N` (default 64),
//! `--duration S` (default 20), `--routine NAME` (default office_day),
//! `--seed N` (default 42), `--port P` (default 0 = ephemeral),
//! `--uds PATH` (serve a Unix-domain socket instead of TCP),
//! `--addr-file PATH` (write the bound address atomically for scripting),
//! `--kill-at BYTES` (chaos: tear first streams), `--kill-below N` (only
//! chaos-kill devices with id < N), `--churn` (per-lifetime cohort),
//! `--streams N` (serve exactly N completed streams then exit; default
//! `devices`).  The fleet-shaping flags must match the consuming
//! `reactor_fleet` run, or its byte-identity gate will (correctly) fail.

#[cfg(not(unix))]
fn main() {
    eprintln!("telemetry_serve needs poll(2) and is only built on Unix platforms");
    std::process::exit(2);
}

#[cfg(unix)]
fn main() -> Result<(), Box<dyn std::error::Error>> {
    use adasense::prelude::*;
    use adasense_bench::{
        churn_plan, int_arg, record_churn_traces, record_fleet_traces, string_arg, train_system,
        RunScale,
    };

    let scale = RunScale::from_args();
    let devices = int_arg("--devices")?.unwrap_or(64);
    let duration_s = int_arg("--duration")?.unwrap_or(20) as f64;
    let routine = string_arg("--routine")?.unwrap_or_else(|| "office_day".to_string());
    let seed = int_arg("--seed")?.unwrap_or(42);
    let port = int_arg("--port")?.unwrap_or(0);
    let uds = string_arg("--uds")?;
    let addr_file = string_arg("--addr-file")?;
    let kill_at = int_arg("--kill-at")?;
    let kill_below = int_arg("--kill-below")?;
    let churn = std::env::args().any(|a| a == "--churn");
    let preset =
        RoutinePreset::from_name(&routine).ok_or_else(|| format!("unknown routine `{routine}`"))?;
    // Each device's trace completes exactly once even under `--kill-at`: the
    // torn first stream counts as killed, only the resumed one as completed.
    let expected = int_arg("--streams")?.unwrap_or(devices);

    let (spec, system) = train_system(scale)?;
    let mut fleet = FleetSpec::new(devices, duration_s, seed);
    fleet.population = PopulationSpec::single(preset, FaultLevel::None);

    let plan = churn.then(|| churn_plan(devices, duration_s));
    let traces = match &plan {
        Some(plan) => {
            eprintln!("[telemetry_serve] recording {devices} per-lifetime churn traces…");
            record_churn_traces(&spec, &system, &fleet, plan)?
        }
        None => {
            eprintln!("[telemetry_serve] recording {devices} device traces…");
            record_fleet_traces(&spec, &system, &fleet)?
        }
    };
    let batches: usize = traces.iter().map(|(_, t)| t.len()).sum();

    let mut serve = match &uds {
        Some(path) => TelemetryServe::bind_unix(path, traces)?,
        None => TelemetryServe::bind(&format!("127.0.0.1:{port}"), traces)?,
    };
    if let Some(plan) = &plan {
        for entry in plan {
            serve.set_start_epoch(entry.device_id, entry.start_epoch);
        }
    }
    if let Some(bytes) = kill_at {
        serve = serve.with_kill_at(bytes as usize);
    }
    if let Some(below) = kill_below {
        serve = serve.with_kill_below(below);
    }
    let addr = match &uds {
        Some(path) => format!("unix:{path}"),
        None => serve.local_addr().to_string(),
    };
    println!("listening on {addr} ({devices} devices, {batches} batches)");
    use std::io::Write as _;
    std::io::stdout().flush()?;
    if let Some(path) = addr_file {
        // Write-then-rename so a polling client never reads a torn address.
        let tmp = format!("{path}.tmp");
        std::fs::write(&tmp, format!("{addr}\n"))?;
        std::fs::rename(&tmp, &path)?;
    }

    serve.serve_streams(expected, 200)?;
    let stats = serve.stats();
    println!(
        "served {} streams ({} resumed, {} killed, {} rejected, {} parked, {} dropped), \
         peak {} concurrent connections",
        stats.streams_completed,
        stats.resume_requests,
        stats.killed_streams,
        stats.rejected_requests,
        stats.parked,
        stats.dropped,
        stats.peak_open
    );
    Ok(())
}
