//! Property-based tests for the core framework: Pareto dominance, controller
//! construction and report invariants that must hold for arbitrary inputs.

use adasense::dse::ConfigEvaluation;
use adasense::pareto::{dominated_points, dominates, pareto_front};
use adasense::prelude::*;
use proptest::prelude::*;

fn any_config() -> impl Strategy<Value = SensorConfig> {
    prop::sample::select(SensorConfig::table_i())
}

fn any_evaluation() -> impl Strategy<Value = ConfigEvaluation> {
    (any_config(), 0.5f64..1.0, 5.0f64..250.0).prop_map(|(config, accuracy, current_ua)| {
        ConfigEvaluation { config, accuracy, current_ua }
    })
}

proptest! {
    /// No member of the Pareto front is dominated by any evaluated point, and every
    /// non-member is dominated by at least one point.
    #[test]
    fn pareto_front_is_exactly_the_non_dominated_set(
        evaluations in prop::collection::vec(any_evaluation(), 1..24)
    ) {
        let front = pareto_front(&evaluations);
        prop_assert!(!front.is_empty());
        for member in &front {
            for other in &evaluations {
                prop_assert!(!dominates(other, member));
            }
        }
        let dominated = dominated_points(&evaluations);
        // Every evaluation is either on the front or listed as dominated (points
        // that tie exactly with a front member on both axes count as non-dominated).
        for e in &evaluations {
            let on_front = front.iter().any(|f| f.config == e.config
                && f.accuracy == e.accuracy
                && f.current_ua == e.current_ua);
            let is_dominated = dominated.iter().any(|d| d.dominated.config == e.config
                && d.dominated.accuracy == e.accuracy
                && d.dominated.current_ua == e.current_ua);
            prop_assert!(on_front || !dominates(&front[0], e) || is_dominated);
        }
    }

    /// Dominance is irreflexive and asymmetric.
    #[test]
    fn dominance_is_a_strict_partial_order(a in any_evaluation(), b in any_evaluation()) {
        prop_assert!(!dominates(&a, &a));
        if dominates(&a, &b) {
            prop_assert!(!dominates(&b, &a));
        }
    }

    /// The front is sorted from the high-power end to the low-power end, which is
    /// the order SPOT expects its states in.
    #[test]
    fn pareto_front_is_sorted_by_decreasing_current(
        evaluations in prop::collection::vec(any_evaluation(), 1..24)
    ) {
        let front = pareto_front(&evaluations);
        for pair in front.windows(2) {
            prop_assert!(pair[0].current_ua >= pair[1].current_ua);
        }
    }

    /// A SPOT controller built over any non-empty suffix of the Table I list starts
    /// at its first state and never reports a configuration outside its state list.
    #[test]
    fn spot_only_reports_configured_states(
        start in 0usize..15,
        len in 1usize..6,
        threshold in 0u32..10,
        seed in 0u64..1000,
    ) {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let table = SensorConfig::table_i();
        let states: Vec<SensorConfig> =
            table.iter().cycle().skip(start).take(len).copied().collect();
        let mut spot = SpotController::new(states.clone(), threshold);
        prop_assert_eq!(spot.config(), states[0]);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..50 {
            let activity = Activity::ALL[rng.random_range(0..Activity::COUNT)];
            let config = spot.observe(&ControllerInput {
                predicted: activity,
                confidence: rng.random_range(0.3..1.0),
                intensity_g_per_s: rng.random_range(0.0..15.0),
            });
            prop_assert!(states.contains(&config));
        }
    }

    /// Scenario construction: a random scenario of any setting and duration covers
    /// at least the requested duration and reports a ground-truth activity at every
    /// probed instant.
    #[test]
    fn scenarios_cover_their_duration(
        duration in 10.0f64..400.0,
        seed in 0u64..500,
        setting_index in 0usize..3,
    ) {
        let setting = ActivityChangeSetting::ALL[setting_index];
        let scenario = ScenarioSpec::random(setting, duration, seed);
        prop_assert!(scenario.duration_s() >= duration);
        for k in 0..10 {
            let t = duration * k as f64 / 10.0;
            prop_assert!(scenario.schedule.activity_at(t).is_some());
        }
    }
}
