//! Property-based tests for the machine-learning substrate.

use adasense_ml::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn finite_vec(len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-5.0f64..5.0, len)
}

proptest! {
    /// Softmax always produces a probability distribution.
    #[test]
    fn softmax_is_a_distribution(logits in prop::collection::vec(-50.0f64..50.0, 1..10)) {
        let p = softmax(&logits);
        prop_assert_eq!(p.len(), logits.len());
        prop_assert!(p.iter().all(|v| (0.0..=1.0).contains(v)));
        prop_assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    /// Matrix multiplication is associative (within floating-point tolerance) and the
    /// transpose reverses the product order.
    #[test]
    fn matmul_transpose_identity(a in finite_vec(6), b in finite_vec(6), c in finite_vec(4)) {
        let m_a = Matrix::from_vec(2, 3, a);
        let m_b = Matrix::from_vec(3, 2, b);
        let m_c = Matrix::from_vec(2, 2, c);
        let left = m_a.matmul(&m_b).matmul(&m_c);
        let right = m_a.matmul(&m_b.matmul(&m_c));
        for (x, y) in left.as_slice().iter().zip(right.as_slice()) {
            prop_assert!((x - y).abs() < 1e-9);
        }
        let t = m_a.matmul(&m_b).transpose();
        let t2 = m_b.transpose().matmul(&m_a.transpose());
        for (x, y) in t.as_slice().iter().zip(t2.as_slice()) {
            prop_assert!((x - y).abs() < 1e-9);
        }
    }

    /// An untrained network still outputs valid probability distributions with a
    /// consistent argmax/confidence pair, for any input.
    #[test]
    fn predictions_are_well_formed(features in finite_vec(15), seed in 0u64..500) {
        let model = Mlp::new(MlpConfig::paper(), &mut StdRng::seed_from_u64(seed));
        let p = model.predict(&features);
        prop_assert!(p.class < 6);
        prop_assert!((p.probabilities.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        prop_assert!((p.probabilities[p.class] - p.confidence).abs() < 1e-12);
        for (i, prob) in p.probabilities.iter().enumerate() {
            prop_assert!(*prob <= p.confidence + 1e-12, "class {i} beats the argmax");
        }
    }

    /// Normalized training data has zero mean and unit variance per feature, and the
    /// normalizer never produces non-finite values on in-range inputs.
    #[test]
    fn normalizer_standardizes(rows in prop::collection::vec(finite_vec(4), 2..40)) {
        let normalizer = Normalizer::fit(&rows);
        let transformed = normalizer.transform_all(&rows);
        prop_assert!(transformed.iter().flatten().all(|v| v.is_finite()));
        let n = rows.len() as f64;
        for c in 0..4 {
            let mean: f64 = transformed.iter().map(|r| r[c]).sum::<f64>() / n;
            prop_assert!(mean.abs() < 1e-9);
        }
    }

    /// The memory footprint scales linearly in the number of stored models.
    #[test]
    fn memory_scales_with_bank_size(models in 1usize..16) {
        let single = MemoryFootprint::single(&MlpConfig::paper(), 4);
        let bank = MemoryFootprint::bank(&MlpConfig::paper(), models, 4);
        prop_assert_eq!(bank.total_bytes(), models * single.total_bytes());
    }

    /// `QuantizedMlp::predict_batch_into` rows are bit-identical to repeated
    /// single-row `predict` calls — the contract the fleet's worker-count
    /// determinism rests on — for arbitrary inputs and seeds.
    #[test]
    fn quantized_batch_rows_equal_single_rows(
        rows in prop::collection::vec(finite_vec(15), 1..12),
        seed in 0u64..200,
    ) {
        let model = Mlp::new(MlpConfig::paper(), &mut StdRng::seed_from_u64(seed));
        let quantized = QuantizedMlp::from_mlp(&model);
        let mut batch = Vec::new();
        quantized.predict_batch_into(&rows, &mut batch);
        prop_assert_eq!(batch.len(), rows.len());
        for (row, prediction) in rows.iter().zip(&batch) {
            let single = Classifier::predict(&quantized, row);
            prop_assert_eq!(&single.probabilities, &prediction.probabilities);
            prop_assert_eq!(single.class, prediction.class);
            prop_assert!(single.confidence == prediction.confidence);
        }
    }

    /// Symmetric int8 quantization round-trips within half a quantization step
    /// for in-range values, regardless of the data's spread.
    #[test]
    fn quantize_round_trip_error_is_bounded(values in prop::collection::vec(-100.0f64..100.0, 1..64)) {
        let scale = adasense_ml::quantized::symmetric_scale(&values);
        let q = adasense_ml::quantized::quantize_symmetric(&values, scale);
        let restored = adasense_ml::quantized::dequantize(&q, scale);
        for (v, r) in values.iter().zip(&restored) {
            prop_assert!((v - r).abs() <= scale / 2.0 + 1e-12);
        }
    }
}

/// Training on a tiny synthetic problem reaches high accuracy from a variety of
/// seeds — this is a smoke property rather than an exhaustive one, so it uses a
/// handful of cases only.
#[test]
fn training_succeeds_across_seeds() {
    let x: Vec<Vec<f64>> = (0..45)
        .map(|i| {
            let class = i % 3;
            vec![class as f64 * 2.0, (class as f64 - 1.0) * 1.5]
        })
        .collect();
    let y: Vec<usize> = (0..45).map(|i| i % 3).collect();
    for seed in [1u64, 7, 42] {
        let outcome = Trainer::new(TrainerConfig { epochs: 80, ..TrainerConfig::default() }).train(
            &MlpConfig::new(2, vec![8], 3),
            &x,
            &y,
            seed,
        );
        assert!(
            accuracy(&outcome.model, &x, &y) > 0.95,
            "seed {seed} failed to learn the toy problem"
        );
    }
}
