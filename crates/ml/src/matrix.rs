//! A minimal dense row-major matrix.
//!
//! Only the operations needed by the MLP forward/backward passes are provided; the
//! goal is clarity and testability, not BLAS-level performance (the paper's network
//! has a few hundred weights, so even a naive implementation classifies a window in
//! microseconds).

use serde::{Deserialize, Serialize};

/// A dense row-major matrix of `f64` values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates a matrix from a flat row-major vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "matrix data length must be rows × cols");
        Self { rows, cols, data }
    }

    /// Creates a matrix from nested rows.
    ///
    /// # Panics
    ///
    /// Panics if the rows have inconsistent lengths.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        if rows.is_empty() {
            return Self::zeros(0, 0);
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for row in rows {
            assert_eq!(row.len(), cols, "all rows must have the same length");
            data.extend_from_slice(row);
        }
        Self { rows: rows.len(), cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The `(rows, cols)` shape.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// The element at (`r`, `c`).
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    pub fn get(&self, r: usize, c: usize) -> f64 {
        assert!(r < self.rows && c < self.cols, "index ({r}, {c}) out of bounds");
        self.data[r * self.cols + c]
    }

    /// Sets the element at (`r`, `c`).
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    pub fn set(&mut self, r: usize, c: usize, value: f64) {
        assert!(r < self.rows && c < self.cols, "index ({r}, {c}) out of bounds");
        self.data[r * self.cols + c] = value;
    }

    /// A view of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(r < self.rows, "row {r} out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The underlying flat row-major data.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable access to the underlying flat row-major data.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Matrix product `self × rhs`.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions do not match.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.rows,
            "inner dimensions must match: {}×{} times {}×{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                let rhs_row = &rhs.data[k * rhs.cols..(k + 1) * rhs.cols];
                let out_row = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
                for (o, &b) in out_row.iter_mut().zip(rhs_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// The transpose of the matrix.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Applies `f` to every element, returning a new matrix.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Matrix {
        Matrix { rows: self.rows, cols: self.cols, data: self.data.iter().map(|&v| f(v)).collect() }
    }

    /// Element-wise product with another matrix of the same shape.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn hadamard(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "shapes must match for element-wise product");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().zip(&rhs.data).map(|(a, b)| a * b).collect(),
        }
    }

    /// Adds a row vector to every row (broadcast), returning a new matrix.
    ///
    /// # Panics
    ///
    /// Panics if `bias.len() != cols`.
    pub fn add_row_broadcast(&self, bias: &[f64]) -> Matrix {
        assert_eq!(bias.len(), self.cols, "bias length must equal the number of columns");
        let mut out = self.clone();
        for r in 0..self.rows {
            for (c, &b) in bias.iter().enumerate() {
                out.data[r * self.cols + c] += b;
            }
        }
        out
    }

    /// Sum of every column, as a vector of length `cols`.
    pub fn column_sums(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.cols];
        for r in 0..self.rows {
            for (c, sum) in out.iter_mut().enumerate() {
                *sum += self.data[r * self.cols + c];
            }
        }
        out
    }

    /// `self += scale × rhs` for a matrix of the same shape.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn add_scaled(&mut self, rhs: &Matrix, scale: f64) {
        assert_eq!(self.shape(), rhs.shape(), "shapes must match");
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a += scale * b;
        }
    }

    /// Total number of elements.
    pub fn element_count(&self) -> usize {
        self.data.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_indexing() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(1, 2), 6.0);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
    }

    #[test]
    fn from_rows_matches_from_vec() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "rows × cols")]
    fn from_vec_rejects_wrong_length() {
        let _ = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[vec![19.0, 22.0], vec![43.0, 50.0]]));
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let identity =
            Matrix::from_rows(&[vec![1.0, 0.0, 0.0], vec![0.0, 1.0, 0.0], vec![0.0, 0.0, 1.0]]);
        assert_eq!(a.matmul(&identity), a);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn matmul_rejects_mismatched_shapes() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn transpose_round_trips() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let t = a.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t.get(2, 1), 6.0);
        assert_eq!(t.transpose(), a);
    }

    #[test]
    fn broadcast_and_column_sums() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = a.add_row_broadcast(&[10.0, 20.0]);
        assert_eq!(b, Matrix::from_rows(&[vec![11.0, 22.0], vec![13.0, 24.0]]));
        assert_eq!(a.column_sums(), vec![4.0, 6.0]);
    }

    #[test]
    fn map_hadamard_and_add_scaled() {
        let a = Matrix::from_rows(&[vec![1.0, -2.0], vec![3.0, -4.0]]);
        assert_eq!(a.map(f64::abs).as_slice(), &[1.0, 2.0, 3.0, 4.0]);
        let h = a.hadamard(&a);
        assert_eq!(h.as_slice(), &[1.0, 4.0, 9.0, 16.0]);
        let mut m = Matrix::zeros(2, 2);
        m.add_scaled(&a, 2.0);
        assert_eq!(m.as_slice(), &[2.0, -4.0, 6.0, -8.0]);
    }

    #[test]
    fn empty_from_rows_is_empty_matrix() {
        let m = Matrix::from_rows(&[]);
        assert_eq!(m.shape(), (0, 0));
        assert_eq!(m.element_count(), 0);
    }
}
