//! The confidence-gated early-exit inference cascade.
//!
//! CASNN-style early exit for HAR: most windows are easy (a clear posture or a
//! steady gait), so a tiny first-stage network over the **time-domain**
//! features alone classifies them, and only windows where the first stage is
//! uncertain escalate to the full-feature classifier.  The gate is the
//! first-stage *margin* — the gap between the top-2 softmax probabilities — so
//! escalation is a pure function of the feature row and the fleet's 1-vs-N
//! worker bit-identity contract carries through unchanged.
//!
//! The margin threshold is not a magic number: it is **calibrated** offline by
//! [`calibrate_margin_threshold`], which scans every achievable operating point
//! on a labelled calibration set and picks the highest exit rate whose cascade
//! accuracy stays within a caller-chosen budget of the full classifier's.

use crate::classifier::{CascadeStage, Classifier};
use crate::network::Prediction;
use crate::quantized::QuantizedMlp;

use std::cell::RefCell;

/// The margin (top-1 minus top-2 softmax probability) of a prediction — the
/// cascade's confidence gate.  A one-class output has margin equal to its only
/// probability.
pub fn prediction_margin(prediction: &Prediction) -> f64 {
    let mut top = f64::NEG_INFINITY;
    let mut second = f64::NEG_INFINITY;
    for &p in &prediction.probabilities {
        if p > top {
            second = top;
            top = p;
        } else if p > second {
            second = p;
        }
    }
    if second == f64::NEG_INFINITY {
        top
    } else {
        top - second
    }
}

/// One operating point of a calibrated cascade.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CascadeOperatingPoint {
    /// The margin threshold (exit when the stage-1 margin is ≥ this).
    pub margin_threshold: f64,
    /// Fraction of calibration rows that exit at stage 1.
    pub exit_rate: f64,
    /// Cascade accuracy on the calibration set.
    pub cascade_accuracy: f64,
    /// Full (stage-2-only) accuracy on the calibration set.
    pub full_accuracy: f64,
}

/// Calibrates the cascade's margin threshold on a labelled set.
///
/// For every achievable threshold (each distinct stage-1 margin in the set)
/// the cascade accuracy is `stage-1 correctness` on exiting rows plus
/// `stage-2 correctness` on escalated rows.  The chosen operating point is the
/// one with the **highest exit rate** whose cascade accuracy is at least
/// `full accuracy − accuracy_budget`; if no threshold qualifies the gate is
/// [`f64::INFINITY`] (every row escalates, accuracy exactly the full model's).
///
/// Deterministic: ties between thresholds resolve toward the larger exit rate
/// first and the smaller threshold second.
///
/// # Panics
///
/// Panics if `rows` is empty, if `rows` and `labels` differ in length, or if a
/// row is shorter than either stage's input dimension.
pub fn calibrate_margin_threshold(
    stage1: &QuantizedMlp,
    stage2: &QuantizedMlp,
    rows: &[Vec<f64>],
    labels: &[usize],
    accuracy_budget: f64,
) -> CascadeOperatingPoint {
    assert!(!rows.is_empty(), "calibration set must not be empty");
    assert_eq!(rows.len(), labels.len(), "one label per calibration row required");
    let stage1_dim = stage1.input_dim();
    let n = rows.len();

    // Per-row: stage-1 margin and the correctness of each stage.
    let mut points: Vec<(f64, bool, bool)> = Vec::with_capacity(n);
    let mut full_correct = 0usize;
    for (row, &label) in rows.iter().zip(labels) {
        let first = stage1.predict(&row[..stage1_dim]);
        let second = stage2.predict(row);
        let margin = prediction_margin(&first);
        let s1_ok = first.class == label;
        let s2_ok = second.class == label;
        full_correct += usize::from(s2_ok);
        points.push((margin, s1_ok, s2_ok));
    }
    let full_accuracy = full_correct as f64 / n as f64;

    // Sort by margin descending: a threshold at points[k].margin exits rows
    // 0..=k.  Prefix sums give every operating point in O(n log n).
    points.sort_by(|a, b| b.0.total_cmp(&a.0));
    let mut best = CascadeOperatingPoint {
        margin_threshold: f64::INFINITY,
        exit_rate: 0.0,
        cascade_accuracy: full_accuracy,
        full_accuracy,
    };
    let mut exited_s1_correct = 0usize;
    let mut exited_s2_correct = 0usize;
    for (k, &(margin, s1_ok, s2_ok)) in points.iter().enumerate() {
        exited_s1_correct += usize::from(s1_ok);
        exited_s2_correct += usize::from(s2_ok);
        // Rows with a margin equal to the candidate threshold all exit; only
        // the last index of a tie group is a valid operating point.
        if points.get(k + 1).is_some_and(|next| next.0 == margin) {
            continue;
        }
        let cascade_correct = exited_s1_correct + (full_correct - exited_s2_correct);
        let cascade_accuracy = cascade_correct as f64 / n as f64;
        if cascade_accuracy + 1e-12 >= full_accuracy - accuracy_budget {
            let exit_rate = (k + 1) as f64 / n as f64;
            if exit_rate > best.exit_rate {
                best = CascadeOperatingPoint {
                    margin_threshold: margin,
                    exit_rate,
                    cascade_accuracy,
                    full_accuracy,
                };
            }
        }
    }
    best
}

/// The two-stage early-exit classifier.
///
/// Stage 1 is a tiny int8 network over the leading *time-domain* features of a
/// row (means and standard deviations — no spectral content); stage 2 is the
/// full int8 classifier over the whole row.  A row exits at stage 1 when the
/// stage-1 margin is at least the calibrated threshold, so the common-case
/// device tick runs integer-only inference over a fraction of the weights.
///
/// Escalation is a pure, deterministic function of the row, and both stages
/// honour the batch ≡ single bit-identity contract of [`Classifier`], so the
/// cascade honours it too: the batched path computes the same margins, makes
/// the same exit decisions, and produces bit-identical predictions.
#[derive(Debug, Clone, PartialEq)]
pub struct CascadeClassifier {
    stage1: QuantizedMlp,
    stage2: QuantizedMlp,
    margin_threshold: f64,
}

std::thread_local! {
    /// Reusable batch scratch (stage-1 truncated rows, escalated rows and the
    /// per-stage prediction buffers), so batched cascade inference performs no
    /// steady-state allocation beyond what the stage backends already reuse.
    static SCRATCH: RefCell<CascadeScratch> = RefCell::new(CascadeScratch::default());
}

#[derive(Debug, Default)]
struct CascadeScratch {
    stage1_rows: Vec<Vec<f64>>,
    stage1_out: Vec<Prediction>,
    escalated_rows: Vec<Vec<f64>>,
    escalated_indices: Vec<usize>,
    escalated_out: Vec<Prediction>,
}

impl CascadeClassifier {
    /// Builds a cascade from its two stages and a calibrated margin threshold
    /// (see [`calibrate_margin_threshold`]).
    ///
    /// # Panics
    ///
    /// Panics if stage 1 needs more inputs than stage 2, if the stages disagree
    /// on the number of classes, or if the threshold is NaN.
    pub fn new(stage1: QuantizedMlp, stage2: QuantizedMlp, margin_threshold: f64) -> Self {
        assert!(
            stage1.input_dim() <= stage2.input_dim(),
            "stage 1 must consume a prefix of the stage-2 feature row ({} > {})",
            stage1.input_dim(),
            stage2.input_dim()
        );
        assert_eq!(
            stage1.output_dim(),
            stage2.output_dim(),
            "cascade stages must predict the same classes"
        );
        assert!(!margin_threshold.is_nan(), "margin threshold must not be NaN");
        Self { stage1, stage2, margin_threshold }
    }

    /// The tiny first-stage network.
    pub fn stage1(&self) -> &QuantizedMlp {
        &self.stage1
    }

    /// The full second-stage network.
    pub fn stage2(&self) -> &QuantizedMlp {
        &self.stage2
    }

    /// The calibrated margin threshold (exit when the stage-1 margin ≥ this).
    pub fn margin_threshold(&self) -> f64 {
        self.margin_threshold
    }

    /// Classifies one row, reporting which stage produced the prediction.
    pub fn predict_staged(&self, features: &[f64]) -> (Prediction, CascadeStage) {
        assert_eq!(features.len(), self.input_dim(), "feature row has the wrong length");
        let first = self.stage1.predict(&features[..self.stage1.input_dim()]);
        if prediction_margin(&first) >= self.margin_threshold {
            (first, CascadeStage::EarlyExit)
        } else {
            (self.stage2.predict(features), CascadeStage::Escalated)
        }
    }
}

impl Classifier for CascadeClassifier {
    fn input_dim(&self) -> usize {
        self.stage2.input_dim()
    }

    fn output_dim(&self) -> usize {
        self.stage2.output_dim()
    }

    fn label(&self) -> &str {
        "cascade"
    }

    fn predict(&self, features: &[f64]) -> Prediction {
        self.predict_staged(features).0
    }

    fn predict_batch_into(&self, rows: &[Vec<f64>], out: &mut Vec<Prediction>) {
        let mut stages = Vec::new();
        self.predict_batch_staged(rows, out, &mut stages);
    }

    fn predict_with_stage(&self, features: &[f64]) -> (Prediction, CascadeStage) {
        self.predict_staged(features)
    }

    fn predict_batch_staged(
        &self,
        rows: &[Vec<f64>],
        out: &mut Vec<Prediction>,
        stages: &mut Vec<CascadeStage>,
    ) {
        let stage1_dim = self.stage1.input_dim();
        SCRATCH.with(|cell| {
            let scratch = &mut *cell.borrow_mut();
            // Stage 1 over every row's time-domain prefix, batched.
            scratch.stage1_rows.resize_with(rows.len(), Vec::new);
            for (row, truncated) in rows.iter().zip(&mut scratch.stage1_rows) {
                assert_eq!(row.len(), self.stage2.input_dim(), "feature row has the wrong length");
                truncated.clear();
                truncated.extend_from_slice(&row[..stage1_dim]);
            }
            self.stage1
                .predict_batch_into(&scratch.stage1_rows[..rows.len()], &mut scratch.stage1_out);

            // Gather the uncertain rows and escalate them in one batch.
            scratch.escalated_indices.clear();
            scratch.escalated_rows.resize_with(rows.len(), Vec::new);
            stages.clear();
            stages.reserve(rows.len());
            for (index, (row, first)) in rows.iter().zip(&scratch.stage1_out).enumerate() {
                if prediction_margin(first) >= self.margin_threshold {
                    stages.push(CascadeStage::EarlyExit);
                } else {
                    stages.push(CascadeStage::Escalated);
                    let slot = scratch.escalated_indices.len();
                    scratch.escalated_rows[slot].clear();
                    scratch.escalated_rows[slot].extend_from_slice(row);
                    scratch.escalated_indices.push(index);
                }
            }
            let escalated = scratch.escalated_indices.len();
            self.stage2.predict_batch_into(
                &scratch.escalated_rows[..escalated],
                &mut scratch.escalated_out,
            );

            // Scatter: early exits keep their stage-1 prediction.  Escalated
            // predictions are *moved* out of the scratch (their probability
            // vectors are heap allocations; a clone here would put one
            // allocation per escalated row back on the hot path).
            out.clear();
            out.append(&mut scratch.stage1_out);
            for (&index, resolved) in
                scratch.escalated_indices.iter().zip(scratch.escalated_out.drain(..))
            {
                out[index] = resolved;
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::MlpConfig;
    use crate::trainer::{Trainer, TrainerConfig};

    fn toy_training_set() -> (Vec<Vec<f64>>, Vec<usize>) {
        // Two well-separated clusters in the leading features plus a noisy
        // tail only the full row resolves.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for k in 0..60 {
            let wiggle = (k as f64 * 0.37).sin() * 0.05;
            let class = k % 2;
            let base = if class == 0 { -1.0 } else { 1.0 };
            let mut row = vec![base + wiggle; 4];
            row.extend_from_slice(&[wiggle, -wiggle, base * 0.5, wiggle * 2.0]);
            x.push(row);
            y.push(class);
        }
        (x, y)
    }

    fn trained_pair() -> (QuantizedMlp, QuantizedMlp) {
        let (x, y) = toy_training_set();
        let trainer = Trainer::new(TrainerConfig { epochs: 40, ..TrainerConfig::default() });
        let truncated: Vec<Vec<f64>> = x.iter().map(|row| row[..4].to_vec()).collect();
        let stage1 = trainer.train(&MlpConfig::new(4, vec![4], 2), &truncated, &y, 11).model;
        let stage2 = trainer.train(&MlpConfig::new(8, vec![8], 2), &x, &y, 12).model;
        (QuantizedMlp::from_mlp(&stage1), QuantizedMlp::from_mlp(&stage2))
    }

    #[test]
    fn margin_is_the_top2_probability_gap() {
        let p = Prediction { class: 0, confidence: 0.7, probabilities: vec![0.7, 0.2, 0.1] };
        assert!((prediction_margin(&p) - 0.5).abs() < 1e-12);
        let single = Prediction { class: 0, confidence: 1.0, probabilities: vec![1.0] };
        assert!((prediction_margin(&single) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_threshold_always_exits_and_infinite_always_escalates() {
        let (stage1, stage2) = trained_pair();
        let (x, _) = toy_training_set();
        let always_exit = CascadeClassifier::new(stage1.clone(), stage2.clone(), 0.0);
        let never_exit = CascadeClassifier::new(stage1.clone(), stage2.clone(), f64::INFINITY);
        for row in x.iter().take(8) {
            let (p1, s1) = always_exit.predict_staged(row);
            assert_eq!(s1, CascadeStage::EarlyExit);
            assert_eq!(p1, stage1.predict(&row[..4]));
            let (p2, s2) = never_exit.predict_staged(row);
            assert_eq!(s2, CascadeStage::Escalated);
            assert_eq!(p2, stage2.predict(row));
        }
    }

    #[test]
    fn batch_is_bit_identical_to_single_rows() {
        let (stage1, stage2) = trained_pair();
        let cascade = CascadeClassifier::new(stage1, stage2, 0.35);
        let (x, _) = toy_training_set();
        let mut out = Vec::new();
        let mut stages = Vec::new();
        cascade.predict_batch_staged(&x, &mut out, &mut stages);
        assert_eq!(out.len(), x.len());
        let mut exits = 0usize;
        for ((row, prediction), stage) in x.iter().zip(&out).zip(&stages) {
            let (single, single_stage) = cascade.predict_staged(row);
            assert_eq!(prediction, &single, "batched row must be bit-identical");
            assert_eq!(*stage, single_stage);
            exits += usize::from(*stage == CascadeStage::EarlyExit);
        }
        assert!(exits > 0, "threshold 0.35 should let some rows exit early");
        // The plain Classifier batch entry point agrees too.
        let mut plain = Vec::new();
        Classifier::predict_batch_into(&cascade, &x, &mut plain);
        assert_eq!(plain, out);
    }

    #[test]
    fn calibration_maximizes_exit_rate_within_budget() {
        let (stage1, stage2) = trained_pair();
        let (x, y) = toy_training_set();
        let point = calibrate_margin_threshold(&stage1, &stage2, &x, &y, 0.01);
        assert!(point.exit_rate > 0.5, "easy clusters should mostly exit: {point:?}");
        assert!(
            point.cascade_accuracy + 1e-12 >= point.full_accuracy - 0.01,
            "calibrated point must honour the budget: {point:?}"
        );
        // A zero budget still yields a valid (possibly never-exit) gate.
        let strict = calibrate_margin_threshold(&stage1, &stage2, &x, &y, 0.0);
        assert!(strict.cascade_accuracy + 1e-12 >= strict.full_accuracy);
    }

    #[test]
    fn escalating_rows_match_the_full_classifier_exactly() {
        let (stage1, stage2) = trained_pair();
        let cascade = CascadeClassifier::new(stage1, stage2.clone(), 0.6);
        let (x, _) = toy_training_set();
        for row in &x {
            let (prediction, stage) = cascade.predict_staged(row);
            if stage == CascadeStage::Escalated {
                assert_eq!(prediction, stage2.predict(row));
            }
        }
    }

    #[test]
    fn stage_codes_are_stable() {
        assert_eq!(CascadeStage::Single.code(), 0);
        assert_eq!(CascadeStage::EarlyExit.code(), 1);
        assert_eq!(CascadeStage::Escalated.code(), 2);
        assert_eq!(CascadeStage::default(), CascadeStage::Single);
    }

    #[test]
    #[should_panic(expected = "same classes")]
    fn mismatched_stages_are_rejected() {
        let (x, y) = toy_training_set();
        let trainer = Trainer::new(TrainerConfig { epochs: 2, ..TrainerConfig::default() });
        let a = trainer
            .train(
                &MlpConfig::new(4, vec![4], 2),
                &x.iter().map(|r| r[..4].to_vec()).collect::<Vec<_>>(),
                &y,
                1,
            )
            .model;
        let b = trainer.train(&MlpConfig::new(8, vec![4], 3), &x, &y, 2).model;
        let _ = CascadeClassifier::new(QuantizedMlp::from_mlp(&a), QuantizedMlp::from_mlp(&b), 0.5);
    }
}
