//! Fleet smoke run: simulates a population of wearables through the parallel
//! fleet scheduler and verifies that the multi-threaded result is bit-identical
//! to the single-threaded one with the same base seed.
//!
//! Run with `cargo run --release -p adasense-bench --bin fleet_sim`
//! (add `--quick` for a reduced training set; `--devices N` and `--duration S`
//! to change the population; `--backend <f64|int8|cascade|mixed|mixed-cascade>`
//! selects the inference backend assignment; `--bench-json` additionally
//! writes the throughput measurement to `BENCH_fleet.json` — `--bench-out
//! PATH` to move it; `--bench-baseline PATH` turns the run into the
//! `perf-track` ratchet, exiting non-zero when measured device-ticks/s fall
//! more than 20% below the committed baseline).  Exits non-zero if the
//! determinism check fails.

use adasense::prelude::*;
use adasense_bench::{int_arg, peak_rss_bytes, string_arg, train_system, FleetBench, RunScale};

/// Largest tolerated throughput drop vs the committed baseline before the
/// ratchet fails the run.  20% is far above shared-runner noise on the
/// interleaved cohort sizes CI uses, yet small enough that a hot-path
/// regression cannot hide behind variance for more than one PR.
const RATCHET_REGRESSION_BUDGET: f64 = 0.20;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = RunScale::from_args();
    let (spec, system) = train_system(scale)?;

    let mut fleet = FleetSpec::smoke();
    if let Some(devices) = int_arg("--devices")? {
        fleet.devices = devices;
    }
    if let Some(duration) = int_arg("--duration")? {
        fleet.duration_s = duration as f64;
    }
    let mut backend_label = "f64".to_string();
    if let Some(backend) = string_arg("--backend")? {
        fleet.population.backend = match backend.as_str() {
            "mixed" => BackendSpec::half_int8(),
            "mixed-cascade" => BackendSpec::half_cascade(),
            name => BackendSpec::Uniform(BackendKind::from_name(name).ok_or_else(|| {
                format!("unknown backend `{name}` (f64, int8, cascade, mixed or mixed-cascade)")
            })?),
        };
        backend_label = backend;
    }
    let (devices, duration_s) = (fleet.devices, fleet.duration_s);

    // Use at least 4 workers so the determinism check below always compares a
    // genuinely multi-threaded run against the serial one, even on 1-core CI.
    let scheduler = FleetScheduler::new(&spec, &system);
    let scheduler = scheduler.with_threads(scheduler.worker_threads().max(4));
    let threads = scheduler.worker_threads();
    eprintln!("[fleet_sim] running {devices} devices × {duration_s} s on {threads} workers…");
    let start = std::time::Instant::now();
    let parallel = scheduler.run(&fleet)?;
    let wall = start.elapsed();

    println!("Fleet simulation — {devices} devices × {duration_s} s\n");
    println!("{}", parallel.to_table_string());
    let simulated_s = parallel.total_duration_s();
    println!(
        "wall clock: {:.2} s on {threads} workers ({:.0}x realtime)",
        wall.as_secs_f64(),
        simulated_s / wall.as_secs_f64().max(1e-9)
    );

    let bench = FleetBench {
        devices,
        duration_s,
        backend: backend_label,
        device_ticks: parallel.total_epochs(),
        wall_s: wall.as_secs_f64(),
        threads,
        peak_rss_bytes: peak_rss_bytes(),
    };
    if std::env::args().any(|a| a == "--bench-json") {
        let path = string_arg("--bench-out")?.unwrap_or_else(|| "BENCH_fleet.json".to_string());
        std::fs::write(&path, bench.to_json())?;
        println!(
            "bench: {:.0} device-ticks/s, peak RSS {} → {path}",
            bench.device_ticks_per_sec(),
            bench
                .peak_rss_bytes
                .map_or("n/a".to_string(), |b| format!("{:.1} MiB", b as f64 / (1024.0 * 1024.0)))
        );
    }

    // Throughput ratchet: compare against a committed baseline measurement
    // and fail loudly on a regression beyond the budget.  Comparing
    // device-ticks/s (not wall seconds) keeps the ratchet meaningful even if
    // the cohort shape on the command line drifts from the baseline's, but we
    // still flag a shape mismatch so a misconfigured CI job cannot pass by
    // accident on an easier cohort.
    if let Some(baseline_path) = string_arg("--bench-baseline")? {
        let text = std::fs::read_to_string(&baseline_path)
            .map_err(|e| format!("cannot read baseline `{baseline_path}`: {e}"))?;
        let baseline = FleetBench::from_json(&text)
            .map_err(|e| format!("malformed baseline `{baseline_path}`: {e}"))?;
        if (baseline.devices, baseline.duration_s) != (devices, duration_s) {
            return Err(format!(
                "ratchet cohort mismatch: baseline is {} devices × {} s, this run is \
                 {devices} × {duration_s} s",
                baseline.devices, baseline.duration_s
            )
            .into());
        }
        let (measured, reference) = (bench.device_ticks_per_sec(), baseline.device_ticks_per_sec());
        let floor = reference * (1.0 - RATCHET_REGRESSION_BUDGET);
        println!(
            "ratchet: measured {measured:.0} ticks/s vs baseline {reference:.0} \
             (backend {}, floor {floor:.0})",
            baseline.backend
        );
        if measured < floor {
            return Err(format!(
                "throughput ratchet failed: {measured:.0} device-ticks/s is more than \
                 {:.0}% below the committed baseline of {reference:.0} \
                 (floor {floor:.0}; if the regression is intended, regenerate \
                 BENCH_fleet.json with --bench-json and commit it)",
                100.0 * RATCHET_REGRESSION_BUDGET
            )
            .into());
        }
    }

    eprintln!("[fleet_sim] verifying bit-identity against a single-threaded run…");
    let serial = scheduler.with_threads(1).run(&fleet)?;
    if serial != parallel {
        return Err("multi-threaded fleet run differs from the single-threaded run".into());
    }
    println!("determinism: {threads}-worker report is bit-identical to the 1-worker report");
    Ok(())
}
