//! Per-activity continuous acceleration signal models.
//!
//! Each [`Activity`] gets a canonical [`ActivitySignalModel`]: a gravity orientation
//! (how the 1 g gravity vector projects onto the wearable's axes for that posture),
//! a set of periodic gait/sway harmonics, and a small deterministic tremor.
//! [`SubjectParams`] perturbs the canonical model (gait cadence, amplitude,
//! orientation, phases) so that different generated windows of the same activity are
//! not identical — this is what gives the classifier a non-trivial learning problem
//! and reproduces the qualitative accuracy spread of the paper's Fig. 2.
//!
//! The resulting [`ActivitySignal`] is a deterministic, continuous function of time
//! and implements [`SignalSource`], so the simulated accelerometer can sample it at
//! any rate and averaging window.

use adasense_sensor::SignalSource;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::activity::Activity;

/// One periodic component of an activity signal.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Harmonic {
    /// Frequency of the component, in Hz (before per-subject cadence scaling).
    pub frequency_hz: f64,
    /// Per-axis amplitude of the component, in g.
    pub amplitude_g: [f64; 3],
    /// Phase offset of the component, in radians.
    pub phase: f64,
}

impl Harmonic {
    /// Creates a harmonic component.
    pub fn new(frequency_hz: f64, amplitude_g: [f64; 3], phase: f64) -> Self {
        Self { frequency_hz, amplitude_g, phase }
    }
}

/// Canonical (population-level) signal model of one activity.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ActivitySignalModel {
    /// The activity this model describes.
    pub activity: Activity,
    /// Projection of gravity onto the device axes for this posture, in g.
    pub orientation_g: [f64; 3],
    /// Periodic gait/sway components.
    pub harmonics: Vec<Harmonic>,
    /// Amplitude of the slow deterministic tremor, in g.
    pub tremor_g: f64,
}

impl ActivitySignalModel {
    /// The canonical model for `activity`.
    ///
    /// The static postures (sit / stand / lie down) are distinguished mainly by their
    /// gravity orientation and by low-amplitude sway; the locomotion activities
    /// (walk / upstairs / downstairs) are distinguished by gait frequency and the
    /// relative strength of their harmonics, which is exactly the information the
    /// paper's statistical + low-frequency-Fourier features capture.
    pub fn canonical(activity: Activity) -> Self {
        match activity {
            Activity::Sit => Self {
                activity,
                // A seated posture tilts the device noticeably towards the x axis —
                // well clear of the ±0.05 g per-subject orientation jitter, so sit
                // and stand stay separable in every sensor configuration.
                orientation_g: [0.27, 0.12, 0.955],
                harmonics: vec![
                    // breathing
                    Harmonic::new(0.25, [0.004, 0.002, 0.007], 0.0),
                ],
                tremor_g: 0.006,
            },
            Activity::Stand => Self {
                activity,
                orientation_g: [0.05, 0.03, 0.998],
                harmonics: vec![
                    // postural sway
                    Harmonic::new(0.4, [0.014, 0.006, 0.004], 0.3),
                    Harmonic::new(0.9, [0.006, 0.009, 0.003], 1.1),
                ],
                tremor_g: 0.008,
            },
            Activity::LieDown => Self {
                activity,
                orientation_g: [0.965, 0.18, 0.11],
                harmonics: vec![
                    // breathing, mostly along the now-horizontal device z axis
                    Harmonic::new(0.22, [0.006, 0.002, 0.004], 0.0),
                ],
                tremor_g: 0.004,
            },
            Activity::Walk => Self {
                activity,
                orientation_g: [0.10, 0.08, 0.985],
                harmonics: vec![
                    Harmonic::new(1.9, [0.05, 0.16, 0.27], 0.0),
                    Harmonic::new(3.8, [0.02, 0.05, 0.12], 0.9),
                    Harmonic::new(0.95, [0.09, 0.03, 0.03], 0.4),
                ],
                tremor_g: 0.012,
            },
            Activity::Upstairs => Self {
                activity,
                orientation_g: [0.26, 0.10, 0.955],
                harmonics: vec![
                    Harmonic::new(1.55, [0.05, 0.12, 0.30], 0.0),
                    Harmonic::new(3.1, [0.02, 0.04, 0.17], 0.7),
                    Harmonic::new(0.775, [0.07, 0.03, 0.04], 1.3),
                ],
                tremor_g: 0.014,
            },
            Activity::Downstairs => Self {
                activity,
                orientation_g: [0.17, 0.05, 0.975],
                harmonics: vec![
                    Harmonic::new(1.75, [0.06, 0.10, 0.35], 0.0),
                    Harmonic::new(3.5, [0.02, 0.03, 0.13], 0.5),
                    Harmonic::new(5.25, [0.01, 0.02, 0.09], 1.8),
                    Harmonic::new(0.875, [0.08, 0.02, 0.03], 0.9),
                ],
                tremor_g: 0.016,
            },
        }
    }

    /// Canonical models for all six activities, in class-index order.
    pub fn all_canonical() -> Vec<ActivitySignalModel> {
        Activity::ALL.iter().map(|&a| Self::canonical(a)).collect()
    }

    /// Instantiates a concrete signal realization for one subject/window.
    pub fn realize(&self, subject: &SubjectParams) -> ActivitySignal {
        ActivitySignal { model: self.clone(), subject: subject.clone() }
    }
}

/// Per-subject (or per-window) variation of the canonical activity model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SubjectParams {
    /// Multiplicative scaling of all harmonic frequencies (gait cadence), ~1.0.
    pub cadence_scale: f64,
    /// Multiplicative scaling of all harmonic amplitudes, ~1.0.
    pub amplitude_scale: f64,
    /// Additive perturbation of the gravity orientation, in g.
    pub orientation_jitter_g: [f64; 3],
    /// Global phase offset of the gait, in radians.
    pub gait_phase: f64,
    /// Frequencies of the two tremor components, in Hz.
    pub tremor_frequencies_hz: [f64; 2],
    /// Phases of the two tremor components, in radians.
    pub tremor_phases: [f64; 2],
    /// Multiplicative scaling of the tremor amplitude, ~1.0.
    pub tremor_scale: f64,
}

impl SubjectParams {
    /// A neutral subject: exactly the canonical model.
    pub fn neutral() -> Self {
        Self {
            cadence_scale: 1.0,
            amplitude_scale: 1.0,
            orientation_jitter_g: [0.0; 3],
            gait_phase: 0.0,
            tremor_frequencies_hz: [0.7, 2.3],
            tremor_phases: [0.0, 0.0],
            tremor_scale: 1.0,
        }
    }

    /// Draws a random subject from the population distribution.
    ///
    /// Cadence varies by ±8 %, amplitude by ±20 %, orientation by ±0.05 g per axis,
    /// tremor by ±30 %; phases are uniform.
    pub fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        let tau = std::f64::consts::TAU;
        Self {
            cadence_scale: rng.random_range(0.92..1.08),
            amplitude_scale: rng.random_range(0.80..1.20),
            orientation_jitter_g: [
                rng.random_range(-0.05..0.05),
                rng.random_range(-0.05..0.05),
                rng.random_range(-0.03..0.03),
            ],
            gait_phase: rng.random_range(0.0..tau),
            tremor_frequencies_hz: [rng.random_range(0.4..1.2), rng.random_range(1.8..3.2)],
            tremor_phases: [rng.random_range(0.0..tau), rng.random_range(0.0..tau)],
            tremor_scale: rng.random_range(0.7..1.3),
        }
    }
}

impl Default for SubjectParams {
    fn default() -> Self {
        Self::neutral()
    }
}

/// A concrete, continuous activity signal (canonical model × subject variation).
#[derive(Debug, Clone, PartialEq)]
pub struct ActivitySignal {
    model: ActivitySignalModel,
    subject: SubjectParams,
}

impl ActivitySignal {
    /// The activity this signal realizes.
    pub fn activity(&self) -> Activity {
        self.model.activity
    }

    /// The analog acceleration at time `t` seconds, as `[x, y, z]` in g.
    pub fn value(&self, t: f64) -> [f64; 3] {
        let tau = std::f64::consts::TAU;
        let mut out = [0.0f64; 3];
        for (axis, v) in out.iter_mut().enumerate() {
            *v = self.model.orientation_g[axis] + self.subject.orientation_jitter_g[axis];
        }
        for h in &self.model.harmonics {
            let omega = tau * h.frequency_hz * self.subject.cadence_scale;
            let s = (omega * t + h.phase + self.subject.gait_phase).sin();
            for (axis, v) in out.iter_mut().enumerate() {
                *v += h.amplitude_g[axis] * self.subject.amplitude_scale * s;
            }
        }
        let tremor = self.model.tremor_g * self.subject.tremor_scale;
        if tremor > 0.0 {
            let t1 = (tau * self.subject.tremor_frequencies_hz[0] * t
                + self.subject.tremor_phases[0])
                .sin();
            let t2 = (tau * self.subject.tremor_frequencies_hz[1] * t
                + self.subject.tremor_phases[1])
                .sin();
            let v = tremor * 0.7 * (t1 + 0.6 * t2);
            out[0] += v;
            out[1] += 0.5 * v;
            out[2] += 0.8 * v;
        }
        out
    }
}

impl SignalSource for ActivitySignal {
    fn sample(&self, t: f64) -> [f64; 3] {
        self.value(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn every_activity_has_a_canonical_model() {
        let models = ActivitySignalModel::all_canonical();
        assert_eq!(models.len(), 6);
        for (model, activity) in models.iter().zip(Activity::ALL.iter()) {
            assert_eq!(model.activity, *activity);
        }
    }

    #[test]
    fn gravity_magnitude_is_close_to_one_g() {
        for model in ActivitySignalModel::all_canonical() {
            let m = (model.orientation_g.iter().map(|v| v * v).sum::<f64>()).sqrt();
            assert!(
                (0.9..1.1).contains(&m),
                "{}: orientation magnitude {m} should be ~1 g",
                model.activity
            );
        }
    }

    #[test]
    fn locomotion_activities_move_more_than_postures() {
        let energy = |activity: Activity| {
            let signal =
                ActivitySignalModel::canonical(activity).realize(&SubjectParams::neutral());
            let n = 400;
            let mean: f64 =
                (0..n).map(|k| signal.value(k as f64 * 0.01)[2]).sum::<f64>() / n as f64;
            (0..n).map(|k| (signal.value(k as f64 * 0.01)[2] - mean).powi(2)).sum::<f64>()
                / n as f64
        };
        for moving in [Activity::Walk, Activity::Upstairs, Activity::Downstairs] {
            for still in [Activity::Sit, Activity::Stand, Activity::LieDown] {
                assert!(
                    energy(moving) > 10.0 * energy(still),
                    "{moving} should have much more vertical energy than {still}"
                );
            }
        }
    }

    #[test]
    fn lie_down_orientation_differs_from_upright_postures() {
        let lie = ActivitySignalModel::canonical(Activity::LieDown).orientation_g;
        let sit = ActivitySignalModel::canonical(Activity::Sit).orientation_g;
        assert!(lie[0] > 0.5 && sit[0] < 0.3, "lying rotates gravity onto the x axis");
    }

    #[test]
    fn signal_is_deterministic_for_fixed_subject() {
        let subject = SubjectParams::neutral();
        let a = ActivitySignalModel::canonical(Activity::Walk).realize(&subject);
        let b = ActivitySignalModel::canonical(Activity::Walk).realize(&subject);
        for k in 0..50 {
            let t = k as f64 * 0.037;
            assert_eq!(a.value(t), b.value(t));
        }
    }

    #[test]
    fn subjects_differ_but_stay_in_a_plausible_range() {
        let mut rng = StdRng::seed_from_u64(11);
        let s1 = SubjectParams::sample(&mut rng);
        let s2 = SubjectParams::sample(&mut rng);
        assert_ne!(s1, s2);
        for s in [s1, s2] {
            assert!((0.9..1.1).contains(&s.cadence_scale));
            assert!((0.7..1.3).contains(&s.amplitude_scale));
            assert!(s.orientation_jitter_g.iter().all(|v| v.abs() < 0.06));
        }
    }

    #[test]
    fn signal_source_impl_matches_value() {
        let signal =
            ActivitySignalModel::canonical(Activity::Downstairs).realize(&SubjectParams::neutral());
        assert_eq!(signal.sample(1.234), signal.value(1.234));
    }
}
