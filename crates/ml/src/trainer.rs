//! Mini-batch training loop for the [`Mlp`] classifier.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::loss::softmax_cross_entropy_grad;
use crate::matrix::Matrix;
use crate::network::{Mlp, MlpConfig};
use crate::normalize::Normalizer;
use crate::optimizer::{Optimizer, OptimizerKind};

/// Hyper-parameters of the training loop.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainerConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Learning rate.
    pub learning_rate: f64,
    /// Optimization algorithm.
    pub optimizer: OptimizerKind,
    /// Whether to shuffle the training set every epoch.
    pub shuffle: bool,
    /// Whether to fit and attach a z-score input normalizer.
    pub normalize: bool,
}

impl Default for TrainerConfig {
    fn default() -> Self {
        Self {
            epochs: 60,
            batch_size: 32,
            learning_rate: 0.05,
            optimizer: OptimizerKind::default(),
            shuffle: true,
            normalize: true,
        }
    }
}

/// The result of a training run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainingOutcome {
    /// The trained model (with its input normalizer attached, if requested).
    pub model: Mlp,
    /// Mean training loss after each epoch.
    pub epoch_losses: Vec<f64>,
}

impl TrainingOutcome {
    /// The training loss after the final epoch.
    pub fn final_loss(&self) -> f64 {
        self.epoch_losses.last().copied().unwrap_or(f64::NAN)
    }
}

/// Trains [`Mlp`] classifiers with mini-batch gradient descent.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Trainer {
    config: TrainerConfig,
}

impl Trainer {
    /// Creates a trainer with the given hyper-parameters.
    pub fn new(config: TrainerConfig) -> Self {
        Self { config }
    }

    /// The trainer's hyper-parameters.
    pub fn config(&self) -> &TrainerConfig {
        &self.config
    }

    /// Trains a fresh network of architecture `architecture` on `(x, y)`.
    ///
    /// Training is fully deterministic in `seed` (weight initialization, shuffling
    /// and batching all derive from it).
    ///
    /// # Panics
    ///
    /// Panics if `x` is empty, if `x` and `y` have different lengths, if any feature
    /// vector does not match the architecture's input dimension, or if any label is
    /// outside the architecture's output range.
    pub fn train(
        &self,
        architecture: &MlpConfig,
        x: &[Vec<f64>],
        y: &[usize],
        seed: u64,
    ) -> TrainingOutcome {
        assert!(!x.is_empty(), "training set must not be empty");
        assert_eq!(x.len(), y.len(), "one label per feature vector required");
        for row in x {
            assert_eq!(
                row.len(),
                architecture.input_dim,
                "feature vector length must match the architecture's input dimension"
            );
        }
        for &label in y {
            assert!(label < architecture.output_dim, "label {label} out of range");
        }

        let mut rng = StdRng::seed_from_u64(seed);
        let mut model = Mlp::new(architecture.clone(), &mut rng);
        if self.config.normalize {
            model.set_normalizer(Normalizer::fit(x));
        }

        // One optimizer parameter group per layer weight matrix and bias vector.
        let group_sizes: Vec<usize> = model
            .layers()
            .iter()
            .flat_map(|l| [l.weights.element_count(), l.biases.len()])
            .collect();
        let mut optimizer =
            Optimizer::new(self.config.optimizer, self.config.learning_rate, &group_sizes);

        let mut order: Vec<usize> = (0..x.len()).collect();
        let batch_size = self.config.batch_size.max(1);
        let mut epoch_losses = Vec::with_capacity(self.config.epochs);

        for _ in 0..self.config.epochs {
            if self.config.shuffle {
                for i in (1..order.len()).rev() {
                    let j = rng.random_range(0..=i);
                    order.swap(i, j);
                }
            }
            let mut epoch_loss = 0.0;
            let mut batches = 0usize;
            for chunk in order.chunks(batch_size) {
                let batch_x: Vec<Vec<f64>> = chunk.iter().map(|&i| x[i].clone()).collect();
                let batch_y: Vec<usize> = chunk.iter().map(|&i| y[i]).collect();
                epoch_loss += self.train_batch(&mut model, &mut optimizer, &batch_x, &batch_y);
                batches += 1;
            }
            epoch_losses.push(epoch_loss / batches.max(1) as f64);
        }

        TrainingOutcome { model, epoch_losses }
    }

    /// Runs one forward/backward pass over a batch and applies the optimizer.
    /// Returns the batch loss.
    fn train_batch(
        &self,
        model: &mut Mlp,
        optimizer: &mut Optimizer,
        batch_x: &[Vec<f64>],
        batch_y: &[usize],
    ) -> f64 {
        let input = Matrix::from_rows(batch_x);
        let trace = model.forward_trace(&input);
        let logits = trace.last().expect("trace is never empty");
        let (loss, mut delta) = softmax_cross_entropy_grad(logits, batch_y);

        optimizer.begin_step();
        let layer_count = model.layers().len();
        for i in (0..layer_count).rev() {
            let layer_input = &trace[i];
            let grad_w = layer_input.transpose().matmul(&delta);
            let grad_b = delta.column_sums();

            // Propagate the error to the previous layer before the weights change.
            if i > 0 {
                let weights_t = model.layers()[i].weights.transpose();
                let propagated = delta.matmul(&weights_t);
                // ReLU derivative: pass gradient only where the activation was > 0.
                let mask = trace[i].map(|v| if v > 0.0 { 1.0 } else { 0.0 });
                delta = propagated.hadamard(&mask);
            }

            let layer = &mut model.layers_mut()[i];
            optimizer.update(2 * i, layer.weights.as_mut_slice(), grad_w.as_slice());
            optimizer.update(2 * i + 1, &mut layer.biases, &grad_b);
        }
        loss
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::accuracy;

    /// Three well-separated Gaussian-ish blobs in 2-D.
    fn blobs(n_per_class: usize) -> (Vec<Vec<f64>>, Vec<usize>) {
        let centers = [[0.0, 0.0], [4.0, 0.0], [0.0, 4.0]];
        let mut x = Vec::new();
        let mut y = Vec::new();
        let mut rng = StdRng::seed_from_u64(99);
        for (label, center) in centers.iter().enumerate() {
            for _ in 0..n_per_class {
                x.push(vec![
                    center[0] + rng.random_range(-0.5..0.5),
                    center[1] + rng.random_range(-0.5..0.5),
                ]);
                y.push(label);
            }
        }
        (x, y)
    }

    #[test]
    fn training_loss_decreases() {
        let (x, y) = blobs(30);
        let trainer = Trainer::new(TrainerConfig { epochs: 30, ..TrainerConfig::default() });
        let outcome = trainer.train(&MlpConfig::new(2, vec![8], 3), &x, &y, 3);
        let first = outcome.epoch_losses.first().copied().unwrap();
        let last = outcome.final_loss();
        assert!(last < first * 0.5, "loss should drop substantially: {first} -> {last}");
    }

    #[test]
    fn learns_separable_blobs_to_high_accuracy() {
        let (x, y) = blobs(40);
        let trainer = Trainer::new(TrainerConfig { epochs: 60, ..TrainerConfig::default() });
        let outcome = trainer.train(&MlpConfig::new(2, vec![8], 3), &x, &y, 5);
        assert!(accuracy(&outcome.model, &x, &y) > 0.97);
    }

    #[test]
    fn adam_also_learns() {
        let (x, y) = blobs(30);
        let trainer = Trainer::new(TrainerConfig {
            epochs: 40,
            optimizer: OptimizerKind::Adam,
            learning_rate: 0.01,
            ..TrainerConfig::default()
        });
        let outcome = trainer.train(&MlpConfig::new(2, vec![8], 3), &x, &y, 5);
        assert!(accuracy(&outcome.model, &x, &y) > 0.95);
    }

    #[test]
    fn training_is_deterministic_in_the_seed() {
        let (x, y) = blobs(10);
        let trainer = Trainer::new(TrainerConfig { epochs: 5, ..TrainerConfig::default() });
        let config = MlpConfig::new(2, vec![4], 3);
        let a = trainer.train(&config, &x, &y, 11);
        let b = trainer.train(&config, &x, &y, 11);
        assert_eq!(a.model, b.model);
        assert_eq!(a.epoch_losses, b.epoch_losses);
    }

    #[test]
    fn normalizer_is_attached_when_requested() {
        let (x, y) = blobs(5);
        let with = Trainer::new(TrainerConfig { epochs: 1, ..TrainerConfig::default() }).train(
            &MlpConfig::new(2, vec![4], 3),
            &x,
            &y,
            0,
        );
        assert!(with.model.normalizer().is_some());
        let without =
            Trainer::new(TrainerConfig { epochs: 1, normalize: false, ..TrainerConfig::default() })
                .train(&MlpConfig::new(2, vec![4], 3), &x, &y, 0);
        assert!(without.model.normalizer().is_none());
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn empty_training_set_panics() {
        let trainer = Trainer::default();
        let _ = trainer.train(&MlpConfig::paper(), &[], &[], 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_label_panics() {
        let trainer = Trainer::default();
        let _ = trainer.train(&MlpConfig::new(2, vec![4], 2), &[vec![0.0, 1.0]], &[5], 0);
    }

    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
}
