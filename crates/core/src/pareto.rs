//! Pareto-front extraction over the accuracy / current trade-off.
//!
//! Fig. 2 of the paper plots the 16 Table I configurations in the (current,
//! accuracy) plane and keeps the four that "dominate the others": no other
//! configuration has both higher accuracy and lower current.  This module provides
//! that dominance analysis for arbitrary evaluation sets.

use serde::{Deserialize, Serialize};

use crate::dse::ConfigEvaluation;

/// Whether `a` dominates `b` in the accuracy-vs-current sense: at least as accurate
/// and at most as power-hungry, and strictly better in at least one of the two.
pub fn dominates(a: &ConfigEvaluation, b: &ConfigEvaluation) -> bool {
    let no_worse = a.accuracy >= b.accuracy && a.current_ua <= b.current_ua;
    let strictly_better = a.accuracy > b.accuracy || a.current_ua < b.current_ua;
    no_worse && strictly_better
}

/// Returns the Pareto-optimal subset of `evaluations`, sorted from highest to lowest
/// current (i.e. from the high-accuracy end to the low-power end, the order SPOT
/// uses for its states).
pub fn pareto_front(evaluations: &[ConfigEvaluation]) -> Vec<ConfigEvaluation> {
    let mut front: Vec<ConfigEvaluation> = evaluations
        .iter()
        .filter(|candidate| !evaluations.iter().any(|other| dominates(other, candidate)))
        .cloned()
        .collect();
    front.sort_by(|a, b| {
        b.current_ua
            .partial_cmp(&a.current_ua)
            .expect("currents are finite")
            .then(b.accuracy.partial_cmp(&a.accuracy).expect("accuracies are finite"))
    });
    front
}

/// A point of the accuracy/current plane that was dominated, together with one of
/// the configurations that dominate it (for reporting, e.g. the paper's
/// `F6.25_A128` vs `F12.5_A16` example).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DominatedBy {
    /// The dominated evaluation.
    pub dominated: ConfigEvaluation,
    /// One evaluation that dominates it.
    pub by: ConfigEvaluation,
}

/// Lists every dominated configuration together with a configuration dominating it.
pub fn dominated_points(evaluations: &[ConfigEvaluation]) -> Vec<DominatedBy> {
    let mut out = Vec::new();
    for candidate in evaluations {
        if let Some(better) = evaluations.iter().find(|other| dominates(other, candidate)) {
            out.push(DominatedBy { dominated: candidate.clone(), by: better.clone() });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use adasense_sensor::SensorConfig;

    fn eval(label_index: usize, accuracy: f64, current_ua: f64) -> ConfigEvaluation {
        let configs = SensorConfig::table_i();
        ConfigEvaluation { config: configs[label_index], accuracy, current_ua }
    }

    #[test]
    fn dominance_requires_strict_improvement_somewhere() {
        let a = eval(0, 0.95, 100.0);
        let b = eval(1, 0.95, 100.0);
        assert!(!dominates(&a, &b));
        assert!(!dominates(&b, &a));
        let c = eval(2, 0.96, 100.0);
        assert!(dominates(&c, &a));
        let d = eval(3, 0.95, 90.0);
        assert!(dominates(&d, &a));
    }

    #[test]
    fn pareto_front_removes_dominated_points() {
        let points = vec![
            eval(0, 0.98, 190.0),
            eval(8, 0.96, 95.0),
            eval(10, 0.94, 30.0),
            eval(14, 0.92, 16.0),
            // Dominated: same current as eval(10) but lower accuracy.
            eval(4, 0.90, 95.0),
        ];
        let front = pareto_front(&points);
        assert_eq!(front.len(), 4);
        assert!(front.iter().all(|e| e.accuracy >= 0.92));
        // Sorted from highest to lowest current.
        for pair in front.windows(2) {
            assert!(pair[0].current_ua >= pair[1].current_ua);
        }
    }

    #[test]
    fn dominated_points_reports_a_dominating_witness() {
        let points = vec![eval(0, 0.98, 190.0), eval(4, 0.93, 95.0), eval(10, 0.95, 30.0)];
        let dominated = dominated_points(&points);
        assert_eq!(dominated.len(), 1);
        assert_eq!(dominated[0].dominated.config, points[1].config);
        assert_eq!(dominated[0].by.config, points[2].config);
    }

    #[test]
    fn single_point_is_its_own_front() {
        let points = vec![eval(5, 0.9, 50.0)];
        assert_eq!(pareto_front(&points), points);
        assert!(dominated_points(&points).is_empty());
    }

    #[test]
    fn empty_input_gives_empty_front() {
        assert!(pareto_front(&[]).is_empty());
    }
}
