//! Property-based tests for the sharded-fleet algebra: the exact sums and
//! quantile sketches behind `FleetReport` must merge associatively and
//! commutatively (up to the documented ascending-shard-index order, which the
//! algebra does not actually require), merged reports must encode to exactly
//! the monolithic bytes for any partition of the rows, empty shards must merge
//! as the identity, and the summary spool must round-trip rows bit for bit.

use adasense::prelude::*;
use proptest::prelude::*;

/// Values that stress every path of the accumulators: both signs, zeros,
/// subnormals, huge/tiny magnitudes, infinities and NaN.
fn any_metric_value() -> impl Strategy<Value = f64> {
    let specials = prop::sample::select(vec![
        0.0,
        -0.0,
        1.0,
        -1.0,
        f64::MIN_POSITIVE,
        f64::MIN_POSITIVE / 4.0,
        f64::MAX,
        -f64::MAX,
        f64::INFINITY,
        f64::NEG_INFINITY,
        f64::NAN,
        1.0 + f64::EPSILON,
    ]);
    // The vendored proptest has no `prop_oneof!`; mix by picking a lane.
    (0u32..10, -1.0e6f64..1.0e6, specials)
        .prop_map(|(lane, regular, special)| if lane < 8 { regular } else { special })
}

/// Finite, well-scaled values for summary rows (rows produced by the
/// simulator are always finite).
fn any_row_value() -> impl Strategy<Value = f64> {
    let specials = prop::sample::select(vec![0.0, -0.0, 1.0 + f64::EPSILON, f64::MIN_POSITIVE]);
    (0u32..9, 0.0f64..1.0e5, specials)
        .prop_map(|(lane, regular, special)| if lane < 8 { regular } else { special })
}

fn any_summary() -> impl Strategy<Value = DeviceSummary> {
    (
        (0u64..1_000_000, 0u64..u64::MAX),
        prop::sample::select(vec!["office_day", "active_day", "dwell-medium"]),
        prop::sample::select(vec!["f64", "int8", "cascade"]),
        (0usize..100, 0usize..100, 0u64..10_000),
        prop::collection::vec(any_row_value(), 4),
        prop::collection::vec(0.0f64..3600.0, SensorConfig::COUNT),
    )
        .prop_map(
            |(
                (device_id, seed),
                routine,
                backend,
                (epochs, exits, tx_base),
                values,
                residency_s,
            )| {
                // Cascade rows split their epochs between the two stages (the
                // split fraction varies per row); single-stage rows keep the
                // stage counters at zero.
                let early_exit_epochs = if backend == "cascade" { epochs * exits / 100 } else { 0 };
                let escalated_epochs =
                    if backend == "cascade" { epochs - early_exit_epochs } else { 0 };
                // Per-policy transmission counters, derived so rows vary but
                // stay internally consistent (bytes/charge follow the epochs).
                let tx_epochs = vec![tx_base % 7, tx_base % 11, tx_base % 5];
                let tx_bytes: Vec<u64> = tx_epochs.iter().map(|e| e * 148).collect();
                let tx_charge_uc: Vec<f64> = tx_bytes.iter().map(|b| *b as f64 * 12.0).collect();
                DeviceSummary {
                    device_id,
                    seed,
                    routine: routine.to_string(),
                    backend: backend.to_string(),
                    faulted_epochs: epochs / 3,
                    epochs,
                    correct_epochs: epochs / 2,
                    early_exit_epochs,
                    early_exit_correct: early_exit_epochs.saturating_sub(1),
                    escalated_epochs,
                    escalated_correct: escalated_epochs / 2,
                    accuracy: values[0],
                    average_current_ua: values[1],
                    total_charge_uc: values[2],
                    duration_s: values[3],
                    residency_s,
                    tx_epochs,
                    tx_bytes,
                    tx_charge_uc,
                    // Vary the lifetime window so shard merges exercise the
                    // churn timeline: late joiners and early departures.
                    start_epoch: tx_base % 13,
                    departed: tx_base % 3 == 0,
                }
            },
        )
}

fn sum_of(values: &[f64]) -> ExactSum {
    let mut sum = ExactSum::new();
    for &v in values {
        sum.add(v);
    }
    sum
}

fn sketch_of(values: &[f64]) -> QuantileSketch {
    let mut sketch = QuantileSketch::new();
    for &v in values {
        sketch.insert(v);
    }
    sketch
}

fn report_of(rows: &[DeviceSummary]) -> FleetReport {
    let mut report = FleetReport::new("prop");
    for row in rows {
        report.observe(row);
    }
    report
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The exact sum is a function of the input *multiset*: any permutation
    /// and any two-way split produce bit-identical state and value.
    #[test]
    fn exact_sums_are_order_and_partition_independent(
        values in prop::collection::vec(any_metric_value(), 0..64),
        cut in 0usize..64,
        rotate in 0usize..64,
    ) {
        let reference = sum_of(&values);

        let mut rotated = values.clone();
        rotated.rotate_left(rotate % values.len().max(1));
        prop_assert_eq!(sum_of(&rotated), reference.clone());

        let cut = cut % (values.len() + 1);
        let mut merged = sum_of(&values[..cut]);
        merged.merge(&sum_of(&values[cut..]));
        prop_assert_eq!(&merged, &reference);
        prop_assert_eq!(merged.value().to_bits(), reference.value().to_bits());
    }

    /// Sketch merging is associative and commutative, with the empty sketch
    /// as identity — so any shard partition yields the monolithic sketch.
    #[test]
    fn sketch_merge_is_associative_commutative_with_identity(
        a in prop::collection::vec(any_metric_value(), 0..32),
        b in prop::collection::vec(any_metric_value(), 0..32),
        c in prop::collection::vec(any_metric_value(), 0..32),
    ) {
        let (sa, sb, sc) = (sketch_of(&a), sketch_of(&b), sketch_of(&c));

        // (a ∪ b) ∪ c == a ∪ (b ∪ c)
        let mut left = sa.clone();
        left.merge(&sb);
        left.merge(&sc);
        let mut right_tail = sb.clone();
        right_tail.merge(&sc);
        let mut right = sa.clone();
        right.merge(&right_tail);
        prop_assert_eq!(&left, &right);

        // a ∪ b == b ∪ a
        let mut ab = sa.clone();
        ab.merge(&sb);
        let mut ba = sb.clone();
        ba.merge(&sa);
        prop_assert_eq!(&ab, &ba);

        // a ∪ ∅ == a, and the merged sketch matches one built in one pass.
        let mut padded = sa.clone();
        padded.merge(&QuantileSketch::new());
        prop_assert_eq!(&padded, &sa);
        let whole: Vec<f64> = a.iter().chain(&b).copied().collect();
        prop_assert_eq!(&ab, &sketch_of(&whole));
    }

    /// Merged percentiles are bit-identical to the monolithic sketch's for
    /// every partition, and NaN inputs order last (PR 3 NaN semantics: an
    /// empty sketch answers NaN rather than fabricating a number).
    #[test]
    fn merged_percentiles_match_the_monolithic_sketch(
        values in prop::collection::vec(any_metric_value(), 0..96),
        cut_a in 0usize..97,
        cut_b in 0usize..97,
    ) {
        let reference = sketch_of(&values);
        let (mut lo, mut hi) = (cut_a % (values.len() + 1), cut_b % (values.len() + 1));
        if lo > hi {
            std::mem::swap(&mut lo, &mut hi);
        }
        let mut merged = sketch_of(&values[..lo]);
        merged.merge(&sketch_of(&values[lo..hi]));
        merged.merge(&sketch_of(&values[hi..]));
        prop_assert_eq!(&merged, &reference);
        for p in [1.0, 10.0, 50.0, 90.0, 99.0, 100.0] {
            prop_assert_eq!(merged.percentile(p).to_bits(), reference.percentile(p).to_bits());
        }
        if values.is_empty() {
            prop_assert!(merged.percentile(50.0).is_nan());
        }
        if values.iter().any(|v| v.is_nan()) {
            prop_assert!(merged.percentile(100.0).is_nan(), "NaN inputs order last");
        }
    }

    /// Any partition of the summary rows into shards merges — in ascending
    /// shard order — into a report that encodes to exactly the monolithic
    /// bytes, and empty shards merge as the identity.
    #[test]
    fn sharded_reports_encode_to_the_monolithic_bytes(
        rows in prop::collection::vec(any_summary(), 0..24),
        cuts in prop::collection::vec(0usize..25, 0..4),
    ) {
        let reference = report_of(&rows);

        let mut bounds: Vec<usize> = cuts.iter().map(|c| c % (rows.len() + 1)).collect();
        bounds.push(0);
        bounds.push(rows.len());
        bounds.sort_unstable();

        let mut merged = FleetReport::new("prop");
        merged.merge(&FleetReport::new("prop")).unwrap(); // empty identity up front
        for pair in bounds.windows(2) {
            merged.merge(&report_of(&rows[pair[0]..pair[1]])).unwrap();
        }
        prop_assert_eq!(&merged, &reference);
        prop_assert_eq!(merged.encode(), reference.encode());

        // The per-policy transmission counters are part of the same algebra:
        // any shard partition reproduces the monolithic totals exactly.
        for policy in TxPolicy::ALL {
            prop_assert_eq!(merged.tx_epochs(policy), reference.tx_epochs(policy));
            prop_assert_eq!(merged.tx_bytes(policy), reference.tx_bytes(policy));
            prop_assert_eq!(
                merged.tx_charge_uc(policy).to_bits(),
                reference.tx_charge_uc(policy).to_bits()
            );
        }

        let decoded = FleetReport::decode(&merged.encode()).unwrap();
        prop_assert_eq!(&decoded, &reference);
        if rows.is_empty() {
            prop_assert!(merged.mean_accuracy().is_nan(), "empty fleets answer NaN, not 0");
        }
    }

    /// The on-disk spool round-trips every row bit for bit and rejects
    /// truncation at any byte boundary.
    #[test]
    fn spools_round_trip_rows_bit_for_bit(
        rows in prop::collection::vec(any_summary(), 0..12),
        cut in 0usize..4096,
    ) {
        let mut writer = SpoolWriter::new(Vec::new()).unwrap();
        for row in &rows {
            writer.push(row).unwrap();
        }
        prop_assert_eq!(writer.rows(), rows.len() as u64);
        let bytes = writer.finish().unwrap();

        let decoded: Vec<DeviceSummary> =
            SpoolReader::new(&bytes[..]).unwrap().collect::<Result<_, _>>().unwrap();
        prop_assert_eq!(&decoded, &rows);
        // Bit-level check on the float fields (PartialEq conflates 0.0/-0.0).
        for (a, b) in decoded.iter().zip(&rows) {
            prop_assert_eq!(a.accuracy.to_bits(), b.accuracy.to_bits());
            prop_assert_eq!(a.duration_s.to_bits(), b.duration_s.to_bits());
            prop_assert_eq!(&a.tx_epochs, &b.tx_epochs);
            prop_assert_eq!(&a.tx_bytes, &b.tx_bytes);
            for (x, y) in a.tx_charge_uc.iter().zip(&b.tx_charge_uc) {
                prop_assert_eq!(x.to_bits(), y.to_bits());
            }
        }

        let cut = cut % bytes.len();
        let truncated: Result<Vec<_>, _> = match SpoolReader::new(&bytes[..cut]) {
            Err(_) => return Ok(()), // torn header: rejected at open
            Ok(reader) => reader.collect(),
        };
        prop_assert!(truncated.is_err(), "a spool cut at byte {} must not decode", cut);
    }
}
