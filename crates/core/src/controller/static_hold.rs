//! The fixed-configuration baseline controller.

use adasense_sensor::{AveragingWindow, SamplingFrequency, SensorConfig};
use serde::{Deserialize, Serialize};

use super::{ControllerInput, SensorController};

/// A controller that never changes the sensor configuration.
///
/// With the high-power `F100_A128` configuration this is the paper's baseline: "we
/// prevented the controller from switching among different sensor configurations"
/// (Section V-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StaticController {
    config: SensorConfig,
}

impl StaticController {
    /// Creates a controller pinned to `config`.
    pub fn new(config: SensorConfig) -> Self {
        Self { config }
    }

    /// The paper's baseline: pinned to `F100_A128`.
    pub fn high_power() -> Self {
        Self::new(SensorConfig::new(SamplingFrequency::F100, AveragingWindow::A128))
    }
}

impl SensorController for StaticController {
    fn config(&self) -> SensorConfig {
        self.config
    }

    fn observe(&mut self, _input: &ControllerInput) -> SensorConfig {
        self.config
    }

    fn reset(&mut self) {}

    fn name(&self) -> String {
        format!("static {}", self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adasense_data::Activity;

    #[test]
    fn never_changes_configuration() {
        let mut controller = StaticController::high_power();
        let initial = controller.config();
        for activity in Activity::ALL {
            let next = controller.observe(&ControllerInput {
                predicted: activity,
                confidence: 0.3,
                intensity_g_per_s: 100.0,
                escalated: true,
            });
            assert_eq!(next, initial);
        }
        controller.reset();
        assert_eq!(controller.config(), initial);
    }

    #[test]
    fn high_power_baseline_is_f100_a128() {
        assert_eq!(StaticController::high_power().config().label(), "F100_A128");
        assert!(StaticController::high_power().name().contains("F100_A128"));
    }

    #[test]
    fn arbitrary_configurations_are_held() {
        let config = SensorConfig::new(SamplingFrequency::F12_5, AveragingWindow::A8);
        let controller = StaticController::new(config);
        assert_eq!(controller.config(), config);
    }
}
