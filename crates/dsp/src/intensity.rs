//! Activity-intensity estimation for the intensity-based baseline.
//!
//! NK et al. \[8\] — the baseline AdaSense is compared against in Fig. 7 — "define the
//! intensity of the activity using the first derivative of the accelerometer
//! readings" and switch the sensor to low-power mode for low-intensity activities.
//! This module provides that computation; the paper notes that AdaSense avoids it
//! ("Data Processing Overhead", Section V-D), which is one of the reasons it saves
//! more energy.

use adasense_sensor::Sample3;
use serde::{Deserialize, Serialize};

/// Mean absolute first derivative of the accelerometer readings, summed over the
/// three axes, in g/s.
///
/// Returns 0 for fewer than two samples.
pub fn mean_absolute_derivative(samples: &[Sample3]) -> f64 {
    if samples.len() < 2 {
        return 0.0;
    }
    let mut total = 0.0;
    let mut count = 0usize;
    for pair in samples.windows(2) {
        let dt = pair[1].t - pair[0].t;
        if dt <= 0.0 {
            continue;
        }
        let d = pair[1] - pair[0];
        total += (d.x.abs() + d.y.abs() + d.z.abs()) / dt;
        count += 1;
    }
    if count == 0 {
        0.0
    } else {
        total / count as f64
    }
}

/// Moving-average smoothing over a time window (used before differentiation so that
/// measurement noise — whose raw derivative grows with the sampling rate — does not
/// drown the gait signal).
fn smooth(samples: &[Sample3], window_s: f64) -> Vec<Sample3> {
    if samples.len() < 2 || window_s <= 0.0 {
        return samples.to_vec();
    }
    let dt = (samples.last().expect("len >= 2").t - samples[0].t) / (samples.len() - 1) as f64;
    let k = if dt > 0.0 { ((window_s / dt).round() as usize).max(1) } else { 1 };
    if k <= 1 {
        return samples.to_vec();
    }
    let half = k / 2;
    (0..samples.len())
        .map(|i| {
            let lo = i.saturating_sub(half);
            let hi = (i + half + 1).min(samples.len());
            let n = (hi - lo) as f64;
            let mut acc = Sample3::new(samples[i].t, 0.0, 0.0, 0.0);
            for s in &samples[lo..hi] {
                acc = acc + *s;
            }
            acc / n
        })
        .collect()
}

/// A thresholded intensity detector: is the wearer doing an intense (locomotion)
/// activity or a low-intensity (posture) activity?
///
/// The intensity is the mean absolute derivative of a lightly smoothed version of
/// the batch; without the smoothing, the derivative of white measurement noise grows
/// linearly with the sampling rate and would swamp the gait signal at the
/// high-power configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IntensityEstimator {
    /// Derivative threshold (g/s, summed over axes) above which the activity counts
    /// as intense.
    pub threshold_g_per_s: f64,
    /// Length of the moving-average smoothing window applied before
    /// differentiation, in seconds.
    pub smoothing_window_s: f64,
}

impl IntensityEstimator {
    /// A threshold calibrated for the default BMI160 noise model: postures land near
    /// the smoothed noise floor (≲2 g/s), locomotion well above (≳6 g/s).
    pub fn calibrated() -> Self {
        Self { threshold_g_per_s: 4.0, smoothing_window_s: 0.06 }
    }

    /// Creates an estimator with an explicit threshold and the default smoothing.
    pub fn with_threshold(threshold_g_per_s: f64) -> Self {
        Self { threshold_g_per_s, ..Self::calibrated() }
    }

    /// Estimates the intensity of a batch (mean absolute derivative of the smoothed
    /// signal, g/s).
    pub fn intensity(&self, samples: &[Sample3]) -> f64 {
        mean_absolute_derivative(&smooth(samples, self.smoothing_window_s))
    }

    /// Whether a batch looks like an intense (locomotion) activity.
    pub fn is_intense(&self, samples: &[Sample3]) -> bool {
        self.intensity(samples) > self.threshold_g_per_s
    }
}

impl Default for IntensityEstimator {
    fn default() -> Self {
        Self::calibrated()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch(rate_hz: f64, seconds: f64, f: impl Fn(f64) -> f64) -> Vec<Sample3> {
        let n = (rate_hz * seconds).round() as usize;
        (0..n)
            .map(|k| {
                let t = k as f64 / rate_hz;
                Sample3::new(t, 0.0, 0.0, f(t))
            })
            .collect()
    }

    #[test]
    fn constant_signal_has_zero_derivative() {
        let samples = batch(50.0, 2.0, |_| 1.0);
        assert_eq!(mean_absolute_derivative(&samples), 0.0);
        assert_eq!(IntensityEstimator::calibrated().intensity(&samples), 0.0);
    }

    #[test]
    fn faster_oscillations_have_larger_derivatives() {
        let slow = batch(50.0, 2.0, |t| (std::f64::consts::TAU * 0.5 * t).sin());
        let fast = batch(50.0, 2.0, |t| (std::f64::consts::TAU * 3.0 * t).sin());
        assert!(mean_absolute_derivative(&fast) > 3.0 * mean_absolute_derivative(&slow));
    }

    #[test]
    fn short_inputs_are_zero() {
        assert_eq!(mean_absolute_derivative(&[]), 0.0);
        assert_eq!(mean_absolute_derivative(&[Sample3::new(0.0, 1.0, 2.0, 3.0)]), 0.0);
        assert_eq!(IntensityEstimator::calibrated().intensity(&[]), 0.0);
    }

    #[test]
    fn estimator_separates_postures_from_locomotion_like_signals() {
        let estimator = IntensityEstimator::with_threshold(1.0);
        let posture = batch(50.0, 2.0, |t| 1.0 + 0.01 * (std::f64::consts::TAU * 0.4 * t).sin());
        let walking = batch(50.0, 2.0, |t| 1.0 + 0.3 * (std::f64::consts::TAU * 1.9 * t).sin());
        assert!(!estimator.is_intense(&posture));
        assert!(estimator.is_intense(&walking));
    }

    #[test]
    fn smoothing_suppresses_white_noise_but_keeps_the_gait_derivative() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(3);
        let mut noise = |std: f64| std * (rng.random::<f64>() - 0.5) * 3.46; // ~uniform with given std
        let noisy_posture: Vec<Sample3> = (0..200)
            .map(|k| {
                let t = k as f64 / 100.0;
                Sample3::new(t, noise(0.025), noise(0.025), 1.0 + noise(0.025))
            })
            .collect();
        let estimator = IntensityEstimator::calibrated();
        let raw = mean_absolute_derivative(&noisy_posture);
        let smoothed = estimator.intensity(&noisy_posture);
        assert!(smoothed < raw * 0.5, "smoothing should cut the noise floor ({smoothed} vs {raw})");
        assert!(
            smoothed < estimator.threshold_g_per_s,
            "a noisy posture must stay below the calibrated threshold ({smoothed})"
        );
    }

    #[test]
    fn derivative_is_rate_independent_for_the_same_waveform() {
        // The smoothed intensity approximates a property of the underlying analog
        // signal, so it should be roughly the same at 25 Hz and 100 Hz.
        let estimator = IntensityEstimator::calibrated();
        let f = |t: f64| 1.0 + 0.3 * (std::f64::consts::TAU * 1.9 * t).sin();
        let slow_rate = estimator.intensity(&batch(25.0, 2.0, f));
        let fast_rate = estimator.intensity(&batch(100.0, 2.0, f));
        let ratio = slow_rate / fast_rate;
        assert!((0.7..1.3).contains(&ratio), "ratio {ratio} should be near 1");
    }

    #[test]
    fn calibrated_threshold_sits_between_posture_and_locomotion_regimes() {
        let t = IntensityEstimator::calibrated().threshold_g_per_s;
        assert!(t > 2.0 && t < 7.0);
    }
}
