//! The pluggable inference backend abstraction.
//!
//! The paper's deployment target is a fixed-point microcontroller, so the
//! reproduction cannot stay hard-wired to the from-scratch `f64` [`Mlp`]: the
//! fleet layer needs to mix device cohorts running different inference
//! implementations (full-precision, quantized, eventually externally served).
//! [`Classifier`] is that seam — an **object-safe** trait over single-row and
//! batched prediction, implemented by [`Mlp`] and by
//! [`QuantizedMlp`](crate::quantized::QuantizedMlp), so a heterogeneous cohort
//! can hold `&dyn Classifier` backends side by side.
//!
//! [`BackendKind`] names the built-in backends; the fleet layer assigns one to
//! every device deterministically from its seed.

use serde::{Deserialize, Serialize};

use crate::network::{Mlp, Prediction};

/// Which stage of an early-exit cascade produced a prediction.
///
/// Single-stage backends report [`CascadeStage::Single`] from the staged
/// entry points; the [`CascadeClassifier`](crate::cascade::CascadeClassifier)
/// overrides them with [`EarlyExit`](CascadeStage::EarlyExit) /
/// [`Escalated`](CascadeStage::Escalated), which the fleet layer folds into
/// mergeable per-stage exit-rate and accuracy counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum CascadeStage {
    /// The backend has no cascade structure (or the row never entered one).
    #[default]
    Single,
    /// The first (cheap) stage was confident enough to exit early.
    EarlyExit,
    /// The first stage was uncertain and the row escalated to the full model.
    Escalated,
}

impl CascadeStage {
    /// Stable wire encoding of the stage (0 = single, 1 = early exit,
    /// 2 = escalated).
    pub fn code(self) -> u8 {
        match self {
            CascadeStage::Single => 0,
            CascadeStage::EarlyExit => 1,
            CascadeStage::Escalated => 2,
        }
    }
}

/// An activity-recognition inference backend.
///
/// The trait is object-safe: every method takes `&self` and plain slices, so
/// cohorts can mix backends behind `&dyn Classifier` and the fleet scheduler
/// can batch each backend's pending rows separately.  Implementations must
/// guarantee that [`predict_batch_into`](Classifier::predict_batch_into)
/// produces, row for row, **bit-identical** output to repeated
/// [`predict`](Classifier::predict) calls — the fleet's worker-count
/// determinism rests on that contract.
///
/// # Examples
///
/// ```
/// use adasense_ml::{Classifier, Mlp, MlpConfig};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mlp = Mlp::new(MlpConfig::new(3, vec![8], 2), &mut StdRng::seed_from_u64(7));
/// // Any backend can be driven through the object-safe trait.
/// let backend: &dyn Classifier = &mlp;
/// assert_eq!(backend.input_dim(), 3);
///
/// let rows = vec![vec![0.1, -0.4, 0.7], vec![1.0, 0.0, -1.0]];
/// let mut batch = Vec::new();
/// backend.predict_batch_into(&rows, &mut batch);
/// // Batched rows are bit-identical to single-row prediction.
/// assert_eq!(batch[0], backend.predict(&rows[0]));
/// assert_eq!(batch[1], backend.predict(&rows[1]));
/// ```
pub trait Classifier {
    /// Number of input features a row must have.
    fn input_dim(&self) -> usize;

    /// Number of output classes.
    fn output_dim(&self) -> usize;

    /// A short label naming the backend (used by fleet reports).
    fn label(&self) -> &str;

    /// Classifies a single feature vector.
    ///
    /// # Panics
    ///
    /// Panics if `features.len() != self.input_dim()`.
    fn predict(&self, features: &[f64]) -> Prediction;

    /// Classifies a batch of feature vectors into the caller-provided buffer.
    ///
    /// `out` is cleared first so its allocation can be reused across calls; on
    /// return it holds one [`Prediction`] per row of `rows`, each bit-identical
    /// to what [`predict`](Classifier::predict) would return for that row.
    ///
    /// # Panics
    ///
    /// Panics if any row's length differs from `self.input_dim()`.
    fn predict_batch_into(&self, rows: &[Vec<f64>], out: &mut Vec<Prediction>);

    /// Classifies a single feature vector, also reporting which cascade stage
    /// produced the prediction.
    ///
    /// Single-stage backends keep this default ([`CascadeStage::Single`] and a
    /// plain [`predict`](Classifier::predict)); early-exit cascades override it.
    fn predict_with_stage(&self, features: &[f64]) -> (Prediction, CascadeStage) {
        (self.predict(features), CascadeStage::Single)
    }

    /// Batched flavour of [`predict_with_stage`](Classifier::predict_with_stage).
    ///
    /// `out` and `stages` are cleared first and filled row for row; the same
    /// bit-identity contract as [`predict_batch_into`](Classifier::predict_batch_into)
    /// applies, extended to the reported stages.
    fn predict_batch_staged(
        &self,
        rows: &[Vec<f64>],
        out: &mut Vec<Prediction>,
        stages: &mut Vec<CascadeStage>,
    ) {
        self.predict_batch_into(rows, out);
        stages.clear();
        stages.resize(rows.len(), CascadeStage::Single);
    }
}

impl Classifier for Mlp {
    fn input_dim(&self) -> usize {
        self.config().input_dim
    }

    fn output_dim(&self) -> usize {
        self.config().output_dim
    }

    fn label(&self) -> &str {
        BackendKind::F64.label()
    }

    fn predict(&self, features: &[f64]) -> Prediction {
        Mlp::predict(self, features)
    }

    fn predict_batch_into(&self, rows: &[Vec<f64>], out: &mut Vec<Prediction>) {
        out.clear();
        out.extend(Mlp::predict_batch(self, rows));
    }
}

/// The built-in inference backends a device cohort can run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum BackendKind {
    /// The full-precision from-scratch [`Mlp`] (the historic default).
    #[default]
    F64,
    /// The post-training-quantized int8 copy of the trained [`Mlp`]
    /// ([`QuantizedMlp`](crate::quantized::QuantizedMlp)).
    Int8,
    /// The confidence-gated early-exit cascade
    /// ([`CascadeClassifier`](crate::cascade::CascadeClassifier)): a tiny int8
    /// time-domain first stage that escalates to the full int8 network only
    /// when its margin is below the calibrated threshold.
    Cascade,
}

impl BackendKind {
    /// All built-in backends, default first.
    pub const ALL: [BackendKind; 3] = [BackendKind::F64, BackendKind::Int8, BackendKind::Cascade];

    /// The name used by reports and the CLI.
    pub fn label(self) -> &'static str {
        match self {
            BackendKind::F64 => "f64",
            BackendKind::Int8 => "int8",
            BackendKind::Cascade => "cascade",
        }
    }

    /// Parses a backend from its [`label`](BackendKind::label).
    pub fn from_name(name: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|k| k.label() == name)
    }
}

impl std::fmt::Display for BackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::MlpConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn mlp_trait_impl_matches_the_inherent_methods() {
        let mlp = Mlp::new(MlpConfig::new(4, vec![6], 3), &mut StdRng::seed_from_u64(9));
        let backend: &dyn Classifier = &mlp;
        assert_eq!(backend.input_dim(), 4);
        assert_eq!(backend.output_dim(), 3);
        assert_eq!(backend.label(), "f64");

        let rows: Vec<Vec<f64>> =
            (0..7).map(|r| (0..4).map(|c| ((r * 4 + c) as f64).cos()).collect()).collect();
        let mut out = vec![Mlp::predict(&mlp, &rows[0])]; // non-empty: must be cleared
        backend.predict_batch_into(&rows, &mut out);
        assert_eq!(out.len(), rows.len());
        for (row, prediction) in rows.iter().zip(&out) {
            assert_eq!(prediction, &Mlp::predict(&mlp, row), "trait batch must be bit-identical");
        }
        backend.predict_batch_into(&[], &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn backend_kinds_round_trip_their_names() {
        for kind in BackendKind::ALL {
            assert_eq!(BackendKind::from_name(kind.label()), Some(kind));
            assert_eq!(format!("{kind}"), kind.label());
        }
        assert_eq!(BackendKind::from_name("fp16"), None);
        assert_eq!(BackendKind::default(), BackendKind::F64);
    }
}
