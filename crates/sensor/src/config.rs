//! Sensor configurations: sampling frequency × averaging window combinations.
//!
//! The paper explores 16 combinations (Table I) and finds that four of them form the
//! Pareto front of the accuracy / current trade-off:
//! `F100_A128`, `F50_A16`, `F12.5_A16` and `F12.5_A8`.

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

/// Output data rate of the accelerometer.
///
/// The paper uses the BMI160's 100, 50, 25, 12.5 and 6.25 Hz output data rates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum SamplingFrequency {
    /// 6.25 Hz output data rate.
    F6_25,
    /// 12.5 Hz output data rate.
    F12_5,
    /// 25 Hz output data rate.
    F25,
    /// 50 Hz output data rate.
    F50,
    /// 100 Hz output data rate.
    F100,
}

impl SamplingFrequency {
    /// All supported output data rates, from slowest to fastest.
    pub const ALL: [SamplingFrequency; 5] = [
        SamplingFrequency::F6_25,
        SamplingFrequency::F12_5,
        SamplingFrequency::F25,
        SamplingFrequency::F50,
        SamplingFrequency::F100,
    ];

    /// The output data rate in hertz.
    ///
    /// ```
    /// use adasense_sensor::SamplingFrequency;
    /// assert_eq!(SamplingFrequency::F12_5.hz(), 12.5);
    /// ```
    pub fn hz(self) -> f64 {
        match self {
            SamplingFrequency::F6_25 => 6.25,
            SamplingFrequency::F12_5 => 12.5,
            SamplingFrequency::F25 => 25.0,
            SamplingFrequency::F50 => 50.0,
            SamplingFrequency::F100 => 100.0,
        }
    }

    /// Number of output samples produced over `seconds` seconds.
    ///
    /// The count is rounded to the nearest integer, which matches how the buffered
    /// window sizes are described in the paper (e.g. 12 samples for a 2-second batch
    /// at 6.25 Hz).
    pub fn samples_in(self, seconds: f64) -> usize {
        (self.hz() * seconds).round() as usize
    }

    /// Sampling period in seconds.
    pub fn period_s(self) -> f64 {
        1.0 / self.hz()
    }

    /// The position of this frequency in [`SamplingFrequency::ALL`].
    pub fn index(self) -> usize {
        match self {
            SamplingFrequency::F6_25 => 0,
            SamplingFrequency::F12_5 => 1,
            SamplingFrequency::F25 => 2,
            SamplingFrequency::F50 => 3,
            SamplingFrequency::F100 => 4,
        }
    }

    /// The label fragment used by the paper, e.g. `"F12.5"`.
    pub fn label(self) -> &'static str {
        match self {
            SamplingFrequency::F6_25 => "F6.25",
            SamplingFrequency::F12_5 => "F12.5",
            SamplingFrequency::F25 => "F25",
            SamplingFrequency::F50 => "F50",
            SamplingFrequency::F100 => "F100",
        }
    }
}

impl fmt::Display for SamplingFrequency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Number of internal samples averaged to produce one output sample.
///
/// The BMI160's low-power mode supports "under-sampling averaging": the sensor wakes
/// up, takes `N` internal samples, averages them and goes back to sleep.  Larger
/// windows give less noisy readings but keep the sensor awake longer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum AveragingWindow {
    /// Average of 8 internal samples.
    A8,
    /// Average of 16 internal samples.
    A16,
    /// Average of 32 internal samples.
    A32,
    /// Average of 128 internal samples.
    A128,
}

impl AveragingWindow {
    /// All supported averaging windows, from smallest to largest.
    pub const ALL: [AveragingWindow; 4] =
        [AveragingWindow::A8, AveragingWindow::A16, AveragingWindow::A32, AveragingWindow::A128];

    /// Number of internal samples averaged per output sample.
    ///
    /// ```
    /// use adasense_sensor::AveragingWindow;
    /// assert_eq!(AveragingWindow::A32.samples(), 32);
    /// ```
    pub fn samples(self) -> u32 {
        match self {
            AveragingWindow::A8 => 8,
            AveragingWindow::A16 => 16,
            AveragingWindow::A32 => 32,
            AveragingWindow::A128 => 128,
        }
    }

    /// The position of this window in [`AveragingWindow::ALL`].
    pub fn index(self) -> usize {
        match self {
            AveragingWindow::A8 => 0,
            AveragingWindow::A16 => 1,
            AveragingWindow::A32 => 2,
            AveragingWindow::A128 => 3,
        }
    }

    /// The label fragment used by the paper, e.g. `"A16"`.
    pub fn label(self) -> &'static str {
        match self {
            AveragingWindow::A8 => "A8",
            AveragingWindow::A16 => "A16",
            AveragingWindow::A32 => "A32",
            AveragingWindow::A128 => "A128",
        }
    }
}

impl fmt::Display for AveragingWindow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The sensor operation mode implied by a configuration.
///
/// In normal mode the sensor core stays powered continuously, so the averaging window
/// does not affect current draw.  In low-power mode the sensor duty-cycles between
/// active and suspend, so both the sampling frequency and the averaging window matter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OperationMode {
    /// Sensor core continuously powered.
    Normal,
    /// Sensor duty-cycles between active and suspend.
    LowPower,
}

impl fmt::Display for OperationMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OperationMode::Normal => f.write_str("normal"),
            OperationMode::LowPower => f.write_str("low-power"),
        }
    }
}

/// A sampling-frequency / averaging-window combination (one point of Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SensorConfig {
    /// Output data rate.
    pub frequency: SamplingFrequency,
    /// Under-sampling averaging window.
    pub averaging: AveragingWindow,
}

impl SensorConfig {
    /// Creates a configuration from a sampling frequency and averaging window.
    ///
    /// ```
    /// use adasense_sensor::{AveragingWindow, SamplingFrequency, SensorConfig};
    /// let c = SensorConfig::new(SamplingFrequency::F50, AveragingWindow::A16);
    /// assert_eq!(c.label(), "F50_A16");
    /// ```
    pub fn new(frequency: SamplingFrequency, averaging: AveragingWindow) -> Self {
        Self { frequency, averaging }
    }

    /// The 16 combinations evaluated by the paper (Table I).
    pub fn table_i() -> Vec<SensorConfig> {
        use AveragingWindow::*;
        use SamplingFrequency::*;
        vec![
            SensorConfig::new(F100, A128),
            SensorConfig::new(F50, A128),
            SensorConfig::new(F25, A128),
            SensorConfig::new(F12_5, A128),
            SensorConfig::new(F6_25, A128),
            SensorConfig::new(F25, A32),
            SensorConfig::new(F12_5, A32),
            SensorConfig::new(F6_25, A32),
            SensorConfig::new(F50, A16),
            SensorConfig::new(F25, A16),
            SensorConfig::new(F12_5, A16),
            SensorConfig::new(F6_25, A16),
            SensorConfig::new(F50, A8),
            SensorConfig::new(F25, A8),
            SensorConfig::new(F12_5, A8),
            SensorConfig::new(F6_25, A8),
        ]
    }

    /// The full sampling-frequency × averaging-window cross product (20 combinations).
    pub fn all_combinations() -> Vec<SensorConfig> {
        let mut out = Vec::with_capacity(20);
        for &f in &SamplingFrequency::ALL {
            for &a in &AveragingWindow::ALL {
                out.push(SensorConfig::new(f, a));
            }
        }
        out
    }

    /// The four Pareto-optimal configurations reported by the paper (Fig. 2),
    /// ordered from highest to lowest power.
    ///
    /// These are the SPOT controller's states.
    pub fn paper_pareto_front() -> [SensorConfig; 4] {
        use AveragingWindow::*;
        use SamplingFrequency::*;
        [
            SensorConfig::new(F100, A128),
            SensorConfig::new(F50, A16),
            SensorConfig::new(F12_5, A16),
            SensorConfig::new(F12_5, A8),
        ]
    }

    /// Number of distinct sensor configurations (the full frequency × averaging
    /// cross product).  [`SensorConfig::index`] is always below this bound, so
    /// per-configuration accounting can use a plain fixed-size array.
    pub const COUNT: usize = SamplingFrequency::ALL.len() * AveragingWindow::ALL.len();

    /// A dense index in `0..SensorConfig::COUNT`, unique per configuration.
    ///
    /// The hot per-tick residency accounting of the simulator indexes a fixed
    /// array with this instead of hashing/comparing label strings.
    ///
    /// ```
    /// use adasense_sensor::SensorConfig;
    /// for config in SensorConfig::all_combinations() {
    ///     assert_eq!(SensorConfig::from_index(config.index()), Some(config));
    /// }
    /// ```
    pub fn index(&self) -> usize {
        self.frequency.index() * AveragingWindow::ALL.len() + self.averaging.index()
    }

    /// The configuration with the given dense index, if it is in range.
    pub fn from_index(index: usize) -> Option<SensorConfig> {
        let per_freq = AveragingWindow::ALL.len();
        let frequency = *SamplingFrequency::ALL.get(index / per_freq)?;
        let averaging = AveragingWindow::ALL[index % per_freq];
        Some(SensorConfig::new(frequency, averaging))
    }

    /// The configuration label in the paper's naming scheme, e.g. `"F12.5_A8"`.
    pub fn label(&self) -> String {
        format!("{}_{}", self.frequency.label(), self.averaging.label())
    }

    /// Number of output samples produced over `seconds` seconds.
    pub fn samples_in(&self, seconds: f64) -> usize {
        self.frequency.samples_in(seconds)
    }
}

impl fmt::Display for SensorConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// Error returned when parsing a [`SensorConfig`] label fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseConfigError {
    label: String,
}

impl fmt::Display for ParseConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unrecognized sensor configuration label `{}`", self.label)
    }
}

impl std::error::Error for ParseConfigError {}

impl FromStr for SensorConfig {
    type Err = ParseConfigError;

    /// Parses labels in the paper's naming scheme, e.g. `"F12.5_A8"`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || ParseConfigError { label: s.to_string() };
        let (f_part, a_part) = s.split_once('_').ok_or_else(err)?;
        let frequency =
            SamplingFrequency::ALL.iter().copied().find(|f| f.label() == f_part).ok_or_else(err)?;
        let averaging =
            AveragingWindow::ALL.iter().copied().find(|a| a.label() == a_part).ok_or_else(err)?;
        Ok(SensorConfig::new(frequency, averaging))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frequencies_are_ordered_by_rate() {
        let hz: Vec<f64> = SamplingFrequency::ALL.iter().map(|f| f.hz()).collect();
        for pair in hz.windows(2) {
            assert!(pair[0] < pair[1], "ALL must be sorted ascending");
        }
    }

    #[test]
    fn averaging_windows_are_ordered_by_size() {
        let n: Vec<u32> = AveragingWindow::ALL.iter().map(|a| a.samples()).collect();
        for pair in n.windows(2) {
            assert!(pair[0] < pair[1], "ALL must be sorted ascending");
        }
    }

    #[test]
    fn table_i_has_sixteen_unique_entries() {
        let table = SensorConfig::table_i();
        assert_eq!(table.len(), 16);
        let mut dedup = table.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), 16);
    }

    #[test]
    fn table_i_is_a_subset_of_all_combinations() {
        let all = SensorConfig::all_combinations();
        for config in SensorConfig::table_i() {
            assert!(all.contains(&config), "{config} missing from cross product");
        }
    }

    #[test]
    fn pareto_front_members_are_in_table_i() {
        let table = SensorConfig::table_i();
        for config in SensorConfig::paper_pareto_front() {
            assert!(table.contains(&config), "{config} not in Table I");
        }
    }

    #[test]
    fn config_indices_are_dense_and_round_trip() {
        let all = SensorConfig::all_combinations();
        assert_eq!(all.len(), SensorConfig::COUNT);
        let mut seen = [false; SensorConfig::COUNT];
        for config in all {
            let index = config.index();
            assert!(index < SensorConfig::COUNT, "{config} index {index} out of range");
            assert!(!seen[index], "index {index} assigned twice");
            seen[index] = true;
            assert_eq!(SensorConfig::from_index(index), Some(config));
        }
        assert!(seen.iter().all(|&s| s), "every index must be used");
        assert_eq!(SensorConfig::from_index(SensorConfig::COUNT), None);
    }

    #[test]
    fn labels_match_paper_naming() {
        assert_eq!(
            SensorConfig::new(SamplingFrequency::F12_5, AveragingWindow::A8).label(),
            "F12.5_A8"
        );
        assert_eq!(
            SensorConfig::new(SamplingFrequency::F100, AveragingWindow::A128).label(),
            "F100_A128"
        );
    }

    #[test]
    fn labels_round_trip_through_from_str() {
        for config in SensorConfig::all_combinations() {
            let parsed: SensorConfig = config.label().parse().expect("label should parse");
            assert_eq!(parsed, config);
        }
    }

    #[test]
    fn parsing_rejects_garbage() {
        assert!("F13_A9".parse::<SensorConfig>().is_err());
        assert!("hello".parse::<SensorConfig>().is_err());
        assert!("".parse::<SensorConfig>().is_err());
    }

    #[test]
    fn sample_counts_match_window_sizes_from_the_paper() {
        // Section III-A: 100 samples per second at 100 Hz, 50 at 50 Hz.
        assert_eq!(SamplingFrequency::F100.samples_in(1.0), 100);
        assert_eq!(SamplingFrequency::F50.samples_in(1.0), 50);
        assert_eq!(SamplingFrequency::F6_25.samples_in(2.0), 13); // 12.5 rounds to 13
    }

    #[test]
    fn display_is_nonempty_for_all_types() {
        assert!(!SamplingFrequency::F25.to_string().is_empty());
        assert!(!AveragingWindow::A8.to_string().is_empty());
        assert!(!OperationMode::Normal.to_string().is_empty());
        assert!(!SensorConfig::paper_pareto_front()[0].to_string().is_empty());
    }
}
