//! Regenerates Fig. 7: AdaSense vs the intensity-based approach (IbA, NK et al. \[8\])
//! in terms of power consumption and accuracy under the High / Medium / Low user
//! activity settings.
//!
//! Run with `cargo run --release -p adasense-bench --bin fig7_iba_comparison`
//! (add `--quick` for a reduced run).

use adasense::experiments::iba_comparison;
use adasense_bench::{train_system, RunScale};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = RunScale::from_args();
    let (spec, system) = train_system(scale)?;
    let settings = scale.iba_settings();

    eprintln!(
        "[fig7] simulating {} scenarios of {} s per activity setting…",
        settings.scenarios_per_setting, settings.scenario_duration_s
    );
    let report = iba_comparison(&spec, &system, &settings)?;

    println!("Fig. 7 — comparison between AdaSense and the Intensity-Based Approach\n");
    println!("{}", report.to_table_string());
    println!(
        "paper shape: IbA power is roughly constant across settings; AdaSense consumes more\n\
         than IbA when the activity changes every ~10 s (High) but at least 25% less for the\n\
         Medium/Low settings, at the cost of 1–1.5 accuracy points."
    );
    Ok(())
}
