//! Labelled window datasets across sensor configurations.
//!
//! The paper trains its single classifier on "an extensive data set of 7300 activity
//! windows of the four optimal accelerometer configurations" (Section V-A).  This
//! module generates the synthetic equivalent: for every requested sensor
//! configuration and every activity class it realizes fresh activity signals (new
//! subject variation per window) and records 2-second windows through the simulated
//! accelerometer.

use adasense_sensor::{Accelerometer, EnergyModel, NoiseModel, Sample3, SensorConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::activity::Activity;
use crate::signal::{ActivitySignalModel, SubjectParams};

/// One labelled accelerometer window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LabeledWindow {
    /// Ground-truth activity of the window.
    pub activity: Activity,
    /// Sensor configuration the window was recorded under.
    pub config: SensorConfig,
    /// The recorded samples (length depends on the configuration's data rate).
    pub samples: Vec<Sample3>,
}

/// Parameters controlling dataset generation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetSpec {
    /// Number of windows generated per (activity, configuration) pair.
    pub windows_per_class_per_config: usize,
    /// The sensor configurations to record under.
    pub configs: Vec<SensorConfig>,
    /// Window length in seconds (the paper buffers 2 seconds).
    pub window_s: f64,
    /// Energy model of the simulated sensor (affects operation mode and noise).
    pub energy_model: EnergyModel,
    /// Noise model of the simulated sensor.
    pub noise_model: NoiseModel,
}

impl DatasetSpec {
    /// The paper-scale dataset: ~7300 windows spread over the four Pareto
    /// configurations and six activities (304 windows per class per configuration).
    pub fn paper_scale() -> Self {
        Self {
            windows_per_class_per_config: 304,
            configs: SensorConfig::paper_pareto_front().to_vec(),
            window_s: 2.0,
            energy_model: EnergyModel::bmi160(),
            noise_model: NoiseModel::bmi160(),
        }
    }

    /// A small dataset suitable for unit tests and doc examples.
    pub fn quick() -> Self {
        Self { windows_per_class_per_config: 20, ..Self::paper_scale() }
    }

    /// Total number of windows this specification will generate.
    pub fn total_windows(&self) -> usize {
        self.windows_per_class_per_config * self.configs.len() * Activity::COUNT
    }
}

impl Default for DatasetSpec {
    fn default() -> Self {
        Self::paper_scale()
    }
}

/// A collection of labelled windows.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct WindowDataset {
    windows: Vec<LabeledWindow>,
}

impl WindowDataset {
    /// Creates a dataset from pre-existing windows.
    pub fn new(windows: Vec<LabeledWindow>) -> Self {
        Self { windows }
    }

    /// Generates a dataset according to `spec`, deterministically from `seed`.
    pub fn generate(spec: &DatasetSpec, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut windows = Vec::with_capacity(spec.total_windows());
        for &config in &spec.configs {
            let accel = Accelerometer::new(config)
                .with_energy_model(spec.energy_model)
                .with_noise_model(spec.noise_model);
            for &activity in &Activity::ALL {
                let model = ActivitySignalModel::canonical(activity);
                for _ in 0..spec.windows_per_class_per_config {
                    let subject = SubjectParams::sample(&mut rng);
                    let signal = model.realize(&subject);
                    // Random start offset so windows land on arbitrary gait phases.
                    let start: f64 = rng.random_range(0.0..10.0);
                    let samples = accel.capture(&signal, start, spec.window_s, &mut rng);
                    windows.push(LabeledWindow { activity, config, samples });
                }
            }
        }
        Self { windows }
    }

    /// The windows.
    pub fn windows(&self) -> &[LabeledWindow] {
        &self.windows
    }

    /// Number of windows.
    pub fn len(&self) -> usize {
        self.windows.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// Iterates over the windows.
    pub fn iter(&self) -> std::slice::Iter<'_, LabeledWindow> {
        self.windows.iter()
    }

    /// Returns the subset of windows recorded under `config`.
    pub fn for_config(&self, config: SensorConfig) -> WindowDataset {
        WindowDataset {
            windows: self.windows.iter().filter(|w| w.config == config).cloned().collect(),
        }
    }

    /// Splits into train and test sets, stratified by (activity, configuration).
    ///
    /// `train_fraction` is clamped to `[0, 1]`.  The split is deterministic in
    /// `seed`.
    pub fn split(&self, train_fraction: f64, seed: u64) -> TrainTestSplit {
        let train_fraction = train_fraction.clamp(0.0, 1.0);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut train = Vec::new();
        let mut test = Vec::new();
        // Group indices by stratum.
        let mut strata: std::collections::BTreeMap<(usize, String), Vec<usize>> =
            std::collections::BTreeMap::new();
        for (i, w) in self.windows.iter().enumerate() {
            strata.entry((w.activity.index(), w.config.label())).or_default().push(i);
        }
        for (_, mut indices) in strata {
            // Fisher–Yates shuffle, deterministic in the seed.
            for i in (1..indices.len()).rev() {
                let j = rng.random_range(0..=i);
                indices.swap(i, j);
            }
            let n_train = (indices.len() as f64 * train_fraction).round() as usize;
            for (k, &idx) in indices.iter().enumerate() {
                if k < n_train {
                    train.push(self.windows[idx].clone());
                } else {
                    test.push(self.windows[idx].clone());
                }
            }
        }
        TrainTestSplit { train: WindowDataset::new(train), test: WindowDataset::new(test) }
    }
}

impl FromIterator<LabeledWindow> for WindowDataset {
    fn from_iter<T: IntoIterator<Item = LabeledWindow>>(iter: T) -> Self {
        Self { windows: iter.into_iter().collect() }
    }
}

impl Extend<LabeledWindow> for WindowDataset {
    fn extend<T: IntoIterator<Item = LabeledWindow>>(&mut self, iter: T) {
        self.windows.extend(iter);
    }
}

impl<'a> IntoIterator for &'a WindowDataset {
    type Item = &'a LabeledWindow;
    type IntoIter = std::slice::Iter<'a, LabeledWindow>;
    fn into_iter(self) -> Self::IntoIter {
        self.windows.iter()
    }
}

impl IntoIterator for WindowDataset {
    type Item = LabeledWindow;
    type IntoIter = std::vec::IntoIter<LabeledWindow>;
    fn into_iter(self) -> Self::IntoIter {
        self.windows.into_iter()
    }
}

/// A train/test partition of a [`WindowDataset`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainTestSplit {
    /// Training windows.
    pub train: WindowDataset,
    /// Held-out evaluation windows.
    pub test: WindowDataset,
}

#[cfg(test)]
mod tests {
    use super::*;
    use adasense_sensor::{AveragingWindow, SamplingFrequency};

    fn tiny_spec() -> DatasetSpec {
        DatasetSpec {
            windows_per_class_per_config: 3,
            configs: vec![
                SensorConfig::new(SamplingFrequency::F100, AveragingWindow::A128),
                SensorConfig::new(SamplingFrequency::F12_5, AveragingWindow::A8),
            ],
            ..DatasetSpec::paper_scale()
        }
    }

    #[test]
    fn paper_scale_spec_is_about_7300_windows() {
        let spec = DatasetSpec::paper_scale();
        let total = spec.total_windows();
        assert!((7200..=7400).contains(&total), "got {total}");
    }

    #[test]
    fn generation_produces_the_requested_counts() {
        let spec = tiny_spec();
        let dataset = WindowDataset::generate(&spec, 1);
        assert_eq!(dataset.len(), spec.total_windows());
        for &config in &spec.configs {
            let subset = dataset.for_config(config);
            assert_eq!(subset.len(), 3 * Activity::COUNT);
            for w in subset.iter() {
                assert_eq!(w.samples.len(), config.frequency.samples_in(spec.window_s));
            }
        }
    }

    #[test]
    fn generation_is_deterministic_in_the_seed() {
        let spec = tiny_spec();
        let a = WindowDataset::generate(&spec, 7);
        let b = WindowDataset::generate(&spec, 7);
        let c = WindowDataset::generate(&spec, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn split_is_stratified_and_complete() {
        let spec = tiny_spec();
        let dataset = WindowDataset::generate(&spec, 3);
        let split = dataset.split(2.0 / 3.0, 9);
        assert_eq!(split.train.len() + split.test.len(), dataset.len());
        // Each (activity, config) stratum of 3 windows splits 2 / 1.
        for &config in &spec.configs {
            for &activity in &Activity::ALL {
                let in_train = split
                    .train
                    .iter()
                    .filter(|w| w.activity == activity && w.config == config)
                    .count();
                let in_test = split
                    .test
                    .iter()
                    .filter(|w| w.activity == activity && w.config == config)
                    .count();
                assert_eq!(in_train, 2, "{activity} {config}");
                assert_eq!(in_test, 1, "{activity} {config}");
            }
        }
    }

    #[test]
    fn split_fraction_is_clamped() {
        let spec = tiny_spec();
        let dataset = WindowDataset::generate(&spec, 3);
        let all_train = dataset.split(1.5, 0);
        assert_eq!(all_train.test.len(), 0);
        let all_test = dataset.split(-0.5, 0);
        assert_eq!(all_test.train.len(), 0);
    }

    #[test]
    fn dataset_collects_and_extends() {
        let spec = tiny_spec();
        let dataset = WindowDataset::generate(&spec, 2);
        let copied: WindowDataset = dataset.iter().cloned().collect();
        assert_eq!(copied.len(), dataset.len());
        let mut extended = WindowDataset::default();
        extended.extend(dataset.clone());
        assert_eq!(extended.len(), dataset.len());
    }
}
