//! Regenerates Fig. 2: the recognition-accuracy / current-consumption trade-off of
//! the 16 Table I configurations and the resulting Pareto front.
//!
//! Run with `cargo run --release -p adasense-bench --bin fig2_design_space`
//! (add `--quick` for a reduced dataset).

use adasense::dse::DesignSpaceExploration;
use adasense_bench::RunScale;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = RunScale::from_args();
    let spec = scale.spec();
    eprintln!("[fig2] evaluating 16 configurations (one dedicated classifier each)…");
    let report = DesignSpaceExploration::new(spec).run()?;

    println!("Fig. 2 — accelerometer configurations accuracy and power trade-off\n");
    println!("{}", report.to_table_string());
    println!(
        "measured Pareto front ({} points): {}",
        report.pareto.len(),
        report.pareto_configs().iter().map(|c| c.label()).collect::<Vec<_>>().join(" > ")
    );
    println!(
        "paper Pareto front    (4 points): {}",
        adasense_sensor::SensorConfig::paper_pareto_front()
            .iter()
            .map(|c| c.label())
            .collect::<Vec<_>>()
            .join(" > ")
    );
    if let Some(example) = report.dominated.first() {
        println!(
            "example dominated point: {} is dominated by {} (the paper's example is F6.25_A128 vs F12.5_A16)",
            example.dominated.config, example.by.config
        );
    }
    Ok(())
}
