//! Scratch profiler: where does a device tick actually spend its time?
//! Times window capture (per sensor config), feature extraction, and
//! single-row / batched classification separately, then one full
//! `DeviceRuntime::step` loop for the end-to-end number.

use adasense::prelude::*;
use adasense::runtime::{SampleSource, ScenarioSource};
use adasense_bench::{train_system, RunScale};
use std::time::Instant;

fn time_it<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let start = Instant::now();
    for _ in 0..reps {
        f();
    }
    start.elapsed().as_secs_f64() / reps as f64
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (spec, system) = train_system(RunScale::Quick)?;
    let preset = RoutinePreset::OfficeDay;
    let scenario = preset.script().scenario(120.0, 1.0, 42);
    let mut source = ScenarioSource::new(&spec, &scenario);

    println!("== per-config capture_window (2 s window) ==");
    let mut window = Vec::new();
    for config in SensorConfig::paper_pareto_front() {
        let us = time_it(2000, || {
            source.capture_window(config, 10.0, 2.0, &mut window);
        }) * 1e6;
        println!(
            "  {:<10} n={} n_avg={:>3}  {:8.2} us/window",
            config.label(),
            window.len(),
            config.averaging.samples(),
            us
        );
    }

    println!("== feature extraction ==");
    let extractor = system.extractor();
    let mut features = Vec::new();
    for config in SensorConfig::paper_pareto_front() {
        source.capture_window(config, 10.0, 2.0, &mut window);
        let us = time_it(5000, || {
            extractor.extract_into(&window, config.frequency.hz(), &mut features);
        }) * 1e6;
        println!("  {:<10} n={}  {:8.2} us/extract", config.label(), window.len(), us);
    }

    println!("== classification (single row) ==");
    for kind in BackendKind::ALL {
        let classifier = system.backend(kind);
        let us = time_it(20000, || {
            std::hint::black_box(classifier.predict(std::hint::black_box(&features)));
        }) * 1e6;
        println!("  {:<6} {:8.3} us/row", classifier.label(), us);
    }

    println!("== classification (batch 256) ==");
    let rows: Vec<Vec<f64>> = (0..256).map(|_| features.clone()).collect();
    let mut out = Vec::new();
    for kind in BackendKind::ALL {
        let classifier = system.backend(kind);
        let us = time_it(200, || {
            classifier.predict_batch_into(&rows, &mut out);
        }) * 1e6;
        println!("  {:<6} {:8.2} us/batch ({:.3} us/row)", classifier.label(), us, us / 256.0);
    }

    println!("== full DeviceRuntime::step loop (SPOT, office_day, 120 s) ==");
    for kind in BackendKind::ALL {
        let source = ScenarioSource::new(&spec, &scenario);
        let mut runtime = DeviceRuntime::for_source(
            &spec,
            &system,
            ControllerKind::SpotWithConfidence {
                stability_threshold: 10,
                confidence_threshold: 0.85,
            },
            source,
            120.0,
        )?
        .with_recording(false)
        .with_classifier(system.backend(kind));
        let start = Instant::now();
        while !runtime.is_complete() {
            runtime.step();
        }
        let us = start.elapsed().as_secs_f64() * 1e6 / runtime.ticks() as f64;
        println!("  {:<6} {:8.2} us/tick  ({} ticks)", kind.label(), us, runtime.ticks());
    }

    // Residency: which configs does SPOT actually sit in?
    let source = ScenarioSource::new(&spec, &scenario);
    let mut runtime = DeviceRuntime::for_source(
        &spec,
        &system,
        ControllerKind::SpotWithConfidence { stability_threshold: 10, confidence_threshold: 0.85 },
        source,
        120.0,
    )?
    .with_recording(false);
    while !runtime.is_complete() {
        runtime.step();
    }
    println!("== SPOT residency over 120 s ==");
    for (index, s) in runtime.residency_seconds().iter().enumerate() {
        if *s > 0.0 {
            let config = SensorConfig::from_index(index).unwrap();
            println!("  {:<10} {:6.1} s", config.label(), s);
        }
    }
    Ok(())
}
