//! Backend sweep: quantized int8 and the early-exit cascade vs full-precision
//! f64 inference across the three daily-routine presets.
//!
//! For every routine the sweep runs the same cohort three times — once per
//! built-in backend (`f64`, `int8`, `cascade`) — and reports accuracy, mean
//! current and the accuracy delta vs the f64 reference; cascade cohorts also
//! report their stage-1 exit rate.  It then runs mixed (half f64, half int8)
//! and mixed-cascade (half f64, half cascade) cohorts per routine at 1 *and*
//! 4 worker threads and exits non-zero unless the two `FleetReport`s are
//! bit-identical (the determinism gate for heterogeneous-backend fleets).
//! Finally it measures batched inference wall-clock for all three backends on
//! feature rows drawn from the training distribution, in strict interleaved
//! alternation, and reports the int8 and cascade speedups over f64.
//!
//! The binary exits non-zero if any routine's int8 *or* cascade accuracy
//! degradation exceeds 1 accuracy point, if a cascade cohort never exits
//! early (a dead stage 1 means the cascade is pure overhead), if a mixed
//! cohort is not worker-count deterministic, if the int8 batch path clearly
//! regresses below the f64 path (< 0.9x; near-parity on unknown hardware
//! only warns, since the ~1.06x reference-container margin is
//! machine-dependent), or if the cascade batch path fails its > 1.5x
//! speedup gate over f64 at the default 256-row batch.
//!
//! Run with `cargo run --release -p adasense-bench --bin backend_sweep -- --quick`.
//! Flags: `--devices N` and `--duration S` resize the cohorts, `--batch N`
//! sets the microbenchmark batch size.

use adasense::prelude::*;
use adasense_bench::{int_arg, train_system, RunScale};
use adasense_data::WindowDataset;
use adasense_dsp::FeatureExtractor;

/// Cascade must beat full-precision batched inference by this factor at the
/// default batch size; the early exit exists to *skip* work, so near-parity
/// means the calibrated threshold has collapsed to always-escalate.
const CASCADE_SPEEDUP_GATE: f64 = 1.5;

/// Median wall-clock seconds per `predict_batch_into` call for each backend.
///
/// The backends are timed in strict round-robin alternation so ambient noise
/// (CPU frequency shifts, scheduler preemption) hits every distribution
/// equally, and the median discards the outliers it still causes.
fn time_batches(backends: &[&dyn Classifier], rows: &[Vec<f64>], reps: usize) -> Vec<f64> {
    let mut out = Vec::new();
    // Warm-up: grows every retained buffer and spins the core up.
    for _ in 0..10 {
        for backend in backends {
            backend.predict_batch_into(rows, &mut out);
        }
    }
    let mut samples = vec![Vec::with_capacity(reps); backends.len()];
    for _ in 0..reps {
        for (backend, lane) in backends.iter().zip(&mut samples) {
            let start = std::time::Instant::now();
            backend.predict_batch_into(rows, &mut out);
            lane.push(start.elapsed().as_secs_f64());
        }
    }
    samples
        .into_iter()
        .map(|mut lane| {
            lane.sort_by(f64::total_cmp);
            lane[reps / 2]
        })
        .collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = RunScale::from_args();
    let devices = int_arg("--devices")?.unwrap_or(if scale == RunScale::Quick { 8 } else { 48 });
    let duration_s =
        int_arg("--duration")?.unwrap_or(if scale == RunScale::Quick { 120 } else { 360 }) as f64;
    let batch = int_arg("--batch")?.unwrap_or(256) as usize;

    let (spec, system) = train_system(scale)?;

    println!("Backend sweep — {devices} devices × {duration_s} s per cohort\n");
    println!("routine          backend  acc(%)  current(uA)   delta(pts)  exit(%)");
    let mut worst_int8_delta = 0.0f64;
    let mut worst_cascade_delta = 0.0f64;
    for routine in RoutinePreset::ALL {
        let mut accuracy = [0.0f64; BackendKind::ALL.len()];
        for (slot, kind) in BackendKind::ALL.into_iter().enumerate() {
            let fleet = FleetSpec {
                population: PopulationSpec::single(routine, FaultLevel::None)
                    .with_backend(BackendSpec::Uniform(kind)),
                lockstep_devices: 4,
                ..FleetSpec::new(devices, duration_s, 131)
            };
            let report = FleetScheduler::new(&spec, &system).run(&fleet)?;
            accuracy[slot] = report.mean_accuracy();
            let delta = if kind == BackendKind::F64 {
                "-".to_string()
            } else {
                format!("{:+.2}", 100.0 * (accuracy[slot] - accuracy[0]))
            };
            let exit_rate = if kind == BackendKind::Cascade {
                let staged = report.total_early_exit_epochs() + report.total_escalated_epochs();
                if staged == 0 {
                    return Err(
                        format!("cascade cohort recorded no staged epochs ({routine})").into()
                    );
                }
                if report.total_early_exit_epochs() == 0 {
                    return Err(format!(
                        "cascade stage 1 never exited early ({routine}): the margin \
                         threshold has collapsed to always-escalate"
                    )
                    .into());
                }
                format!("{:.1}", 100.0 * report.cascade_exit_rate())
            } else {
                "-".to_string()
            };
            println!(
                "{:<16} {:<7} {:>7.2} {:>12.1} {:>12} {:>8}",
                routine.label(),
                kind.label(),
                100.0 * report.mean_accuracy(),
                report.mean_current_ua(),
                delta,
                exit_rate
            );
        }
        worst_int8_delta = worst_int8_delta.max(100.0 * (accuracy[0] - accuracy[1]));
        worst_cascade_delta = worst_cascade_delta.max(100.0 * (accuracy[0] - accuracy[2]));

        // Heterogeneous cohorts must stay worker-count deterministic.
        for mixed_backend in [BackendSpec::half_int8(), BackendSpec::half_cascade()] {
            let mixed = FleetSpec {
                population: PopulationSpec::single(routine, FaultLevel::None)
                    .with_backend(mixed_backend),
                lockstep_devices: 4,
                ..FleetSpec::new(devices, duration_s, 131)
            };
            let scheduler = FleetScheduler::new(&spec, &system);
            let parallel = scheduler.with_threads(4).run(&mixed)?;
            let serial = scheduler.with_threads(1).run(&mixed)?;
            if serial != parallel {
                return Err(format!(
                    "mixed-backend 4-worker report differs from the 1-worker report ({routine})"
                )
                .into());
            }
        }
    }
    println!("\nworst int8 accuracy degradation:    {worst_int8_delta:.2} pts");
    println!("worst cascade accuracy degradation: {worst_cascade_delta:.2} pts");
    if worst_int8_delta > 1.0 {
        return Err(
            format!("int8 degraded accuracy by {worst_int8_delta:.2} pts (budget: 1.00)").into()
        );
    }
    if worst_cascade_delta > 1.0 {
        return Err(format!(
            "cascade degraded accuracy by {worst_cascade_delta:.2} pts (budget: 1.00)"
        )
        .into());
    }
    println!("determinism: all mixed-backend cohorts are bit-identical at 1 vs 4 workers");

    // Batched-inference microbenchmark on training-distribution features.
    let dataset = WindowDataset::generate(&spec.dataset, spec.seed.wrapping_add(77));
    let extractor = FeatureExtractor::paper();
    let rows: Vec<Vec<f64>> = dataset
        .iter()
        .take(batch)
        .map(|w| extractor.extract(&w.samples, w.config.frequency.hz()).into_inner())
        .collect();
    let reps = 301;
    let medians = time_batches(
        &[
            system.backend(BackendKind::F64),
            system.backend(BackendKind::Int8),
            system.backend(BackendKind::Cascade),
        ],
        &rows,
        reps,
    );
    let (f64_s, int8_s, cascade_s) = (medians[0], medians[1], medians[2]);
    let int8_speedup = f64_s / int8_s;
    let cascade_speedup = f64_s / cascade_s;
    println!(
        "\nbatch inference ({} rows, median of {reps}): f64 {:.1} µs, int8 {:.1} µs \
         ({int8_speedup:.2}x), cascade {:.1} µs ({cascade_speedup:.2}x)",
        rows.len(),
        1e6 * f64_s,
        1e6 * int8_s,
        1e6 * cascade_s
    );
    // Int8: hard-fail only on a clear regression — the measured margin is real
    // but modest (~1.06x on the reference container), and shared CI runners
    // span CPU generations whose autovectorization profiles can erase it.  A
    // below-parity-but-close result is reported loudly instead of turning
    // every unrelated PR red.
    if int8_speedup < 0.90 {
        return Err(
            format!("int8 batch inference regressed well below f64 ({int8_speedup:.2}x)").into()
        );
    }
    if int8_speedup <= 1.0 {
        eprintln!(
            "[backend_sweep] warning: int8 batch speedup is {int8_speedup:.2}x on this machine \
             (expected > 1.0x on hardware matching the reference container)"
        );
    }
    // Cascade: hard gate.  The early exit skips the full GEMM on most rows,
    // so its margin is structural (fewer multiply-accumulates), not a
    // microarchitectural accident — if it drops under 1.5x the calibrated
    // threshold or the stage-1 network has regressed.
    if cascade_speedup <= CASCADE_SPEEDUP_GATE {
        return Err(format!(
            "cascade batch inference is only {cascade_speedup:.2}x vs f64 at {} rows \
             (gate: > {CASCADE_SPEEDUP_GATE:.1}x)",
            rows.len()
        )
        .into());
    }
    Ok(())
}
