//! Haar discrete wavelet transform.
//!
//! The related work the paper builds on (Bhat et al. \[12\], Zhu et al. \[16\]) uses
//! wavelet coefficients as a *more expensive* alternative to statistical features,
//! and chooses feature sets dynamically based on the power budget.  AdaSense's
//! argument is that its cheap statistical + low-frequency-Fourier features are
//! enough; this module provides the Haar DWT so that claim can be tested as an
//! ablation (accuracy and cost with wavelet-augmented features versus the paper's
//! 15-dimensional vector — see the `features` bench).

/// One level of the Haar wavelet transform: returns `(approximation, detail)`
/// coefficient vectors of half the input length.
///
/// An odd trailing sample is carried into the approximation unchanged (periodic
/// padding is not required for feature extraction purposes).
pub fn haar_level(signal: &[f64]) -> (Vec<f64>, Vec<f64>) {
    let pairs = signal.len() / 2;
    let mut approximation = Vec::with_capacity(pairs + signal.len() % 2);
    let mut detail = Vec::with_capacity(pairs);
    let scale = std::f64::consts::FRAC_1_SQRT_2;
    for k in 0..pairs {
        let a = signal[2 * k];
        let b = signal[2 * k + 1];
        approximation.push((a + b) * scale);
        detail.push((a - b) * scale);
    }
    if signal.len() % 2 == 1 {
        approximation.push(signal[signal.len() - 1]);
    }
    (approximation, detail)
}

/// Multi-level Haar decomposition: returns the final approximation followed by the
/// detail vectors from the coarsest to the finest level.
///
/// Decomposition stops early once the approximation has a single sample.
pub fn haar_decompose(signal: &[f64], levels: usize) -> (Vec<f64>, Vec<Vec<f64>>) {
    let mut approximation = signal.to_vec();
    let mut details = Vec::with_capacity(levels);
    for _ in 0..levels {
        if approximation.len() < 2 {
            break;
        }
        let (next, detail) = haar_level(&approximation);
        details.push(detail);
        approximation = next;
    }
    details.reverse();
    (approximation, details)
}

/// Energy (sum of squares) of a coefficient vector — the usual wavelet feature.
pub fn band_energy(coefficients: &[f64]) -> f64 {
    coefficients.iter().map(|c| c * c).sum()
}

/// Per-level Haar detail energies of `signal`, from the coarsest to the finest
/// level — a compact wavelet feature vector of length `levels` (missing levels are
/// reported as zero energy).
pub fn haar_band_energies(signal: &[f64], levels: usize) -> Vec<f64> {
    let (_, details) = haar_decompose(signal, levels);
    let mut energies: Vec<f64> = details.iter().map(|d| band_energy(d)).collect();
    while energies.len() < levels {
        energies.insert(0, 0.0);
    }
    energies
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_level_of_a_constant_signal_has_zero_detail() {
        let (approx, detail) = haar_level(&[3.0, 3.0, 3.0, 3.0]);
        assert_eq!(approx.len(), 2);
        assert!(detail.iter().all(|d| d.abs() < 1e-12));
        // Approximation carries the (scaled) signal level.
        assert!((approx[0] - 3.0 * 2.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn transform_preserves_energy() {
        let signal: Vec<f64> = (0..64).map(|k| ((k * 13 % 7) as f64 - 3.0) * 0.5).collect();
        let input_energy = band_energy(&signal);
        let (approx, detail) = haar_level(&signal);
        let output_energy = band_energy(&approx) + band_energy(&detail);
        assert!((input_energy - output_energy).abs() < 1e-9);
    }

    #[test]
    fn multi_level_decomposition_has_the_expected_shapes() {
        let signal = vec![1.0; 32];
        let (approx, details) = haar_decompose(&signal, 3);
        assert_eq!(approx.len(), 4);
        assert_eq!(details.len(), 3);
        assert_eq!(details[0].len(), 4, "coarsest detail first");
        assert_eq!(details[2].len(), 16, "finest detail last");
    }

    #[test]
    fn decomposition_stops_when_the_signal_runs_out() {
        let (approx, details) = haar_decompose(&[1.0, 2.0], 5);
        assert_eq!(approx.len(), 1);
        assert_eq!(details.len(), 1);
    }

    #[test]
    fn odd_lengths_are_handled() {
        let (approx, detail) = haar_level(&[1.0, 2.0, 3.0]);
        assert_eq!(approx.len(), 2);
        assert_eq!(detail.len(), 1);
        assert_eq!(approx[1], 3.0);
    }

    #[test]
    fn fast_oscillations_concentrate_energy_in_fine_details() {
        // A Nyquist-rate alternation lives entirely in the finest detail band.
        let alternating: Vec<f64> = (0..64).map(|k| if k % 2 == 0 { 1.0 } else { -1.0 }).collect();
        let energies = haar_band_energies(&alternating, 3);
        assert_eq!(energies.len(), 3);
        let finest = energies[2];
        assert!(finest > 0.9 * band_energy(&alternating));
        assert!(energies[0] < 1e-9);
    }

    #[test]
    fn missing_levels_are_padded_with_zero_energy() {
        let energies = haar_band_energies(&[1.0, 2.0], 4);
        assert_eq!(energies.len(), 4);
        assert!(energies[..3].iter().take(3).all(|e| *e == 0.0));
    }

    #[test]
    fn empty_signal_is_all_zero() {
        let energies = haar_band_energies(&[], 3);
        assert_eq!(energies, vec![0.0, 0.0, 0.0]);
    }
}
