//! Sensor-configuration design-space exploration (Fig. 2 and Table I).
//!
//! For every candidate configuration the exploration trains a dedicated classifier
//! on windows of that configuration, measures its held-out recognition accuracy and
//! pairs it with the configuration's model current.  The Pareto front of the
//! resulting (current, accuracy) cloud is what SPOT uses as its states.

use adasense_sensor::{EnergyModel, SensorConfig};
use serde::{Deserialize, Serialize};

use crate::error::AdaSenseError;
use crate::pareto::{dominated_points, pareto_front, DominatedBy};
use crate::training::{train_for_config, ExperimentSpec};

/// The evaluation of a single sensor configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConfigEvaluation {
    /// The evaluated configuration.
    pub config: SensorConfig,
    /// Held-out recognition accuracy (0–1) of a classifier dedicated to this
    /// configuration.
    pub accuracy: f64,
    /// Modelled average sensor current, in µA.
    pub current_ua: f64,
}

/// The complete result of a design-space exploration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DseReport {
    /// Every evaluated configuration.
    pub evaluations: Vec<ConfigEvaluation>,
    /// The Pareto-optimal subset, ordered from highest to lowest current.
    pub pareto: Vec<ConfigEvaluation>,
    /// Dominated configurations with a dominating witness each.
    pub dominated: Vec<DominatedBy>,
}

impl DseReport {
    /// The Pareto-optimal configurations only (the SPOT states), ordered from
    /// highest to lowest current.
    pub fn pareto_configs(&self) -> Vec<SensorConfig> {
        self.pareto.iter().map(|e| e.config).collect()
    }

    /// Renders the report as a plain-text table (one row per configuration).
    pub fn to_table_string(&self) -> String {
        let mut out = String::from("configuration     current(uA)   accuracy(%)   pareto\n");
        for eval in &self.evaluations {
            let on_front = self.pareto.iter().any(|p| p.config == eval.config);
            out.push_str(&format!(
                "{:<17} {:>11.1} {:>13.2} {:>8}\n",
                eval.config.label(),
                eval.current_ua,
                100.0 * eval.accuracy,
                if on_front { "yes" } else { "" }
            ));
        }
        out
    }
}

/// Runs the design-space exploration of Fig. 2.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DesignSpaceExploration {
    /// Training/evaluation specification (the per-configuration window counts and
    /// classifier hyper-parameters come from here).
    pub spec: ExperimentSpec,
    /// The candidate configurations (defaults to Table I).
    pub candidates: Vec<SensorConfig>,
    /// The energy model used to attach a current to each configuration.
    pub energy_model: EnergyModel,
    /// How many independently seeded trainings are averaged per configuration.
    ///
    /// Per-configuration accuracies differ by fractions of a percent while a single
    /// training/evaluation carries roughly ±1 % of seed noise, so averaging a few
    /// repeats keeps the Pareto front from being decided by that noise.
    pub repeats: usize,
}

impl DesignSpaceExploration {
    /// An exploration over the paper's Table I candidates.
    pub fn new(spec: ExperimentSpec) -> Self {
        Self {
            spec,
            candidates: SensorConfig::table_i(),
            energy_model: EnergyModel::bmi160(),
            repeats: 3,
        }
    }

    /// Restricts the exploration to an explicit candidate list.
    pub fn with_candidates(mut self, candidates: Vec<SensorConfig>) -> Self {
        self.candidates = candidates;
        self
    }

    /// Sets how many independently seeded trainings are averaged per configuration.
    pub fn with_repeats(mut self, repeats: usize) -> Self {
        self.repeats = repeats.max(1);
        self
    }

    /// Evaluates every candidate configuration and extracts the Pareto front.
    ///
    /// # Errors
    ///
    /// Returns [`AdaSenseError::InvalidSpec`] if the candidate list is empty or the
    /// spec is inconsistent, and [`AdaSenseError::Training`] if a per-configuration
    /// training set ends up empty.
    pub fn run(&self) -> Result<DseReport, AdaSenseError> {
        if self.candidates.is_empty() {
            return Err(AdaSenseError::invalid_spec("the candidate list must not be empty"));
        }
        self.spec.validate()?;
        let repeats = self.repeats.max(1);
        let mut evaluations = Vec::with_capacity(self.candidates.len());
        for (i, &config) in self.candidates.iter().enumerate() {
            let mut accuracy_sum = 0.0;
            for r in 0..repeats {
                let seed_offset = 1000 + i as u64 + 10_000 * r as u64;
                let trained = train_for_config(&self.spec, config, seed_offset)?;
                accuracy_sum += trained.test_accuracy;
            }
            evaluations.push(ConfigEvaluation {
                config,
                accuracy: accuracy_sum / repeats as f64,
                current_ua: self.energy_model.current_ua(config),
            });
        }
        let pareto = pareto_front(&evaluations);
        let dominated = dominated_points(&evaluations);
        Ok(DseReport { evaluations, pareto, dominated })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adasense_data::DatasetSpec;
    use adasense_ml::TrainerConfig;
    use adasense_sensor::{AveragingWindow, SamplingFrequency};

    fn tiny_spec() -> ExperimentSpec {
        ExperimentSpec {
            dataset: DatasetSpec { windows_per_class_per_config: 6, ..DatasetSpec::quick() },
            trainer: TrainerConfig { epochs: 15, ..TrainerConfig::default() },
            ..ExperimentSpec::quick()
        }
    }

    #[test]
    fn exploration_over_a_small_candidate_set() {
        let candidates = vec![
            SensorConfig::new(SamplingFrequency::F100, AveragingWindow::A128),
            SensorConfig::new(SamplingFrequency::F12_5, AveragingWindow::A8),
        ];
        let dse = DesignSpaceExploration::new(tiny_spec())
            .with_candidates(candidates.clone())
            .with_repeats(1);
        let report = dse.run().expect("exploration succeeds");
        assert_eq!(report.evaluations.len(), 2);
        assert!(!report.pareto.is_empty());
        // Currents come straight from the energy model.
        assert!(report.evaluations[0].current_ua > report.evaluations[1].current_ua);
        // The table rendering mentions every configuration.
        let table = report.to_table_string();
        for config in candidates {
            assert!(table.contains(&config.label()));
        }
    }

    #[test]
    fn empty_candidate_list_is_rejected() {
        let dse = DesignSpaceExploration::new(tiny_spec()).with_candidates(Vec::new());
        assert!(matches!(dse.run(), Err(AdaSenseError::InvalidSpec { .. })));
    }

    #[test]
    fn default_candidates_are_table_i() {
        let dse = DesignSpaceExploration::new(tiny_spec());
        assert_eq!(dse.candidates.len(), 16);
        assert!(dse.repeats >= 1);
        assert_eq!(dse.with_repeats(0).repeats, 1, "repeats are clamped to at least one");
    }
}
