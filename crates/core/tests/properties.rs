//! Property-based tests for the core framework: Pareto dominance, controller
//! construction and report invariants that must hold for arbitrary inputs.

use adasense::dse::ConfigEvaluation;
use adasense::pareto::{dominated_points, dominates, pareto_front};
use adasense::prelude::*;
use proptest::prelude::*;

fn any_config() -> impl Strategy<Value = SensorConfig> {
    prop::sample::select(SensorConfig::table_i())
}

fn any_evaluation() -> impl Strategy<Value = ConfigEvaluation> {
    (any_config(), 0.5f64..1.0, 5.0f64..250.0).prop_map(|(config, accuracy, current_ua)| {
        ConfigEvaluation { config, accuracy, current_ua }
    })
}

proptest! {
    /// No member of the Pareto front is dominated by any evaluated point, and every
    /// non-member is dominated by at least one point.
    #[test]
    fn pareto_front_is_exactly_the_non_dominated_set(
        evaluations in prop::collection::vec(any_evaluation(), 1..24)
    ) {
        let front = pareto_front(&evaluations);
        prop_assert!(!front.is_empty());
        for member in &front {
            for other in &evaluations {
                prop_assert!(!dominates(other, member));
            }
        }
        let dominated = dominated_points(&evaluations);
        // Every evaluation is either on the front or listed as dominated (points
        // that tie exactly with a front member on both axes count as non-dominated).
        for e in &evaluations {
            let on_front = front.iter().any(|f| f.config == e.config
                && f.accuracy == e.accuracy
                && f.current_ua == e.current_ua);
            let is_dominated = dominated.iter().any(|d| d.dominated.config == e.config
                && d.dominated.accuracy == e.accuracy
                && d.dominated.current_ua == e.current_ua);
            prop_assert!(on_front || !dominates(&front[0], e) || is_dominated);
        }
    }

    /// Dominance is irreflexive and asymmetric.
    #[test]
    fn dominance_is_a_strict_partial_order(a in any_evaluation(), b in any_evaluation()) {
        prop_assert!(!dominates(&a, &a));
        if dominates(&a, &b) {
            prop_assert!(!dominates(&b, &a));
        }
    }

    /// The front is sorted from the high-power end to the low-power end, which is
    /// the order SPOT expects its states in.
    #[test]
    fn pareto_front_is_sorted_by_decreasing_current(
        evaluations in prop::collection::vec(any_evaluation(), 1..24)
    ) {
        let front = pareto_front(&evaluations);
        for pair in front.windows(2) {
            prop_assert!(pair[0].current_ua >= pair[1].current_ua);
        }
    }

    /// A SPOT controller built over any non-empty suffix of the Table I list starts
    /// at its first state and never reports a configuration outside its state list.
    #[test]
    fn spot_only_reports_configured_states(
        start in 0usize..15,
        len in 1usize..6,
        threshold in 0u32..10,
        seed in 0u64..1000,
    ) {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let table = SensorConfig::table_i();
        let states: Vec<SensorConfig> =
            table.iter().cycle().skip(start).take(len).copied().collect();
        let mut spot = SpotController::new(states.clone(), threshold);
        prop_assert_eq!(spot.config(), states[0]);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..50 {
            let activity = Activity::ALL[rng.random_range(0..Activity::COUNT)];
            let config = spot.observe(&ControllerInput {
                predicted: activity,
                confidence: rng.random_range(0.3..1.0),
                intensity_g_per_s: rng.random_range(0.0..15.0),
                escalated: false,
            });
            prop_assert!(states.contains(&config));
        }
    }

    /// Scenario construction: a random scenario of any setting and duration covers
    /// at least the requested duration and reports a ground-truth activity at every
    /// probed instant.
    #[test]
    fn scenarios_cover_their_duration(
        duration in 10.0f64..400.0,
        seed in 0u64..500,
        setting_index in 0usize..3,
    ) {
        let setting = ActivityChangeSetting::ALL[setting_index];
        let scenario = ScenarioSpec::random(setting, duration, seed);
        prop_assert!(scenario.duration_s() >= duration);
        for k in 0..10 {
            let t = duration * k as f64 / 10.0;
            prop_assert!(scenario.schedule.activity_at(t).is_some());
        }
    }

    /// Every fault plan honours its per-kind time budgets: summed dropout,
    /// stuck-axis and noise-burst window lengths never exceed the configured
    /// fraction of the run, and the windows stay inside the run.
    #[test]
    fn fault_plans_never_exceed_their_budgets(
        level_index in 1usize..3,
        duration in 20.0f64..2000.0,
        seed in 0u64..10_000,
    ) {
        let level = FaultLevel::ALL[level_index];
        let profile = level.profile();
        let plan = FaultPlan::generate(profile, duration, seed);
        prop_assert!(plan.dropout_seconds() <= profile.dropout_fraction * duration + 1e-9);
        prop_assert!(plan.stuck_seconds() <= profile.stuck_fraction * duration + 1e-9);
        prop_assert!(plan.burst_seconds() <= profile.burst_fraction * duration + 1e-9);
        for window in plan.windows() {
            prop_assert!(window.start_s >= 0.0);
            prop_assert!(window.end_s <= duration + 1e-9);
            prop_assert!(window.duration_s() > 0.0);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Determinism of the composed scenario stack: any routine script realized
    /// for a device, wrapped in a fault injector, yields an identical tick
    /// stream (samples, ground truth and fault exposure) from two independently
    /// constructed sources driven through the same configuration sequence.
    #[test]
    fn composed_routine_and_faults_replay_identically(
        preset_index in 0usize..3,
        level_index in 0usize..3,
        dwell_scale in 0.6f64..1.6,
        duration in 20.0f64..45.0,
        seed in 0u64..10_000,
    ) {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};

        let spec = ExperimentSpec::quick();
        let preset = RoutinePreset::ALL[preset_index];
        let level = FaultLevel::ALL[level_index];
        let scenario = preset.script().scenario(duration, dwell_scale, seed);
        prop_assert!(scenario.duration_s() >= duration);

        let build = || {
            FaultInjector::for_device(
                ScenarioSource::new(&spec, &scenario),
                level,
                scenario.duration_s(),
                seed,
            )
        };
        let (mut first, mut second) = (build(), build());
        prop_assert_eq!(first.plan(), second.plan(), "plans must be pure functions of the seed");

        let states = SensorConfig::paper_pareto_front();
        let mut config_rng = StdRng::seed_from_u64(seed ^ 0xC0F1);
        let (mut a, mut b) = (Vec::new(), Vec::new());
        for tick in 2..(duration as usize) {
            let config = states[config_rng.random_range(0..states.len())];
            let t_end = tick as f64;
            first.capture_window(config, t_end, 2.0, &mut a);
            second.capture_window(config, t_end, 2.0, &mut b);
            prop_assert_eq!(&a, &b, "tick {} must replay bit-identically", tick);
            prop_assert_eq!(
                first.ground_truth(t_end - 1e-6),
                second.ground_truth(t_end - 1e-6)
            );
        }
        prop_assert_eq!(first.faulted_captures(), second.faulted_captures());
        prop_assert_eq!(first.captures(), second.captures());
    }
}

// ---------------------------------------------------------------------------
// Compressed-sensing payloads on the wire
// ---------------------------------------------------------------------------

/// Decodes a stream holding exactly one frame and returns the batch.
fn decode_single_frame(stream: &[u8]) -> TelemetryBatch {
    let mut reader = stream;
    let mut decoder = FrameDecoder::new();
    decoder.read_header(&mut reader).expect("header decodes");
    let mut batch = TelemetryBatch::placeholder();
    let kind = decoder.read_frame(&mut reader, &mut batch).expect("frame decodes");
    assert_eq!(kind, FrameKind::Batch, "compressed frames decode as ordinary batches");
    batch
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// A compressed frame is bit-deterministic end to end for a fixed seed:
    /// encoding the same window twice yields identical bytes, the frame size
    /// matches the [`compressed_tx_bytes`] pricing helper, and the decoded
    /// window is exactly — bit for bit — the host-side sparse-projection
    /// reconstruction of the original axes.
    #[test]
    fn compressed_frames_round_trip_bit_deterministically(
        config in any_config(),
        raw in prop::collection::vec((-8.0f64..8.0, -8.0f64..8.0, -8.0f64..8.0), 8usize..64),
        ratio_lane in 0u8..2,
        seed in 0u64..u64::MAX,
        label_lane in 0usize..64,
    ) {
        use adasense::ingest::compressed_tx_bytes;

        let ratio = if ratio_lane == 0 { 2 } else { 4 };
        let label = (label_lane % Activity::COUNT) as u8;
        let (t_end, window_s) = (4.0, 2.0);
        let n = raw.len();
        let step = window_s / n as f64;
        let samples: Vec<Sample3> = raw
            .iter()
            .enumerate()
            .map(|(i, &(x, y, z))| {
                Sample3::new(t_end - window_s + (i + 1) as f64 * step, x, y, z)
            })
            .collect();
        let batch = TelemetryBatch::new(config, t_end, window_s, label, samples);

        let mut encoder = FrameEncoder::new();
        let header_len = encoder.header().len();
        let mut stream = encoder.header().to_vec();
        stream.extend_from_slice(encoder.compressed(&batch, ratio, seed));
        prop_assert_eq!(stream.len() - header_len, compressed_tx_bytes(n, ratio));

        // Encoding the same window through a fresh encoder is bit-identical.
        let mut other = FrameEncoder::new();
        let mut replay = other.header().to_vec();
        replay.extend_from_slice(other.compressed(&batch, ratio, seed));
        prop_assert_eq!(&stream, &replay);

        let decoded = decode_single_frame(&stream);
        prop_assert_eq!(decoded.config, config);
        prop_assert_eq!(decoded.label, label);
        prop_assert_eq!(decoded.t_end.to_bits(), t_end.to_bits());
        prop_assert_eq!(decoded.window_s.to_bits(), window_s.to_bits());
        prop_assert_eq!(decoded.samples.len(), n);

        // The wire reconstruction equals the host-side one, bit for bit.
        let projection = SparseProjection::new(seed, n, ratio);
        let mut axis = vec![0.0; n];
        let mut measurements = vec![0.0; projection.output_len()];
        let mut reconstructed = vec![0.0; n];
        let mut scratch = ProjectionScratch::default();
        for axis_index in 0..3 {
            for (slot, sample) in axis.iter_mut().zip(&batch.samples) {
                *slot = match axis_index {
                    0 => sample.x,
                    1 => sample.y,
                    _ => sample.z,
                };
            }
            projection.project_into(&axis, &mut measurements);
            projection.reconstruct_into(&measurements, &mut reconstructed, &mut scratch);
            for (sample, &expected) in decoded.samples.iter().zip(&reconstructed) {
                let got = match axis_index {
                    0 => sample.x,
                    1 => sample.y,
                    _ => sample.z,
                };
                prop_assert_eq!(got.to_bits(), expected.to_bits());
            }
        }

        // Decoding the same bytes again is equally stable.
        let again = decode_single_frame(&stream);
        for (a, b) in decoded.samples.iter().zip(&again.samples) {
            prop_assert_eq!(a.t.to_bits(), b.t.to_bits());
            prop_assert_eq!(a.x.to_bits(), b.x.to_bits());
            prop_assert_eq!(a.y.to_bits(), b.y.to_bits());
            prop_assert_eq!(a.z.to_bits(), b.z.to_bits());
        }
    }
}
