//! Offline stand-in for the [`serde`](https://crates.io/crates/serde) crate.
//!
//! The workspace only uses serde for `#[derive(Serialize, Deserialize)]` on its
//! report/config types — no code path actually serializes through the traits
//! (exports go through hand-written CSV/TSV writers in `adasense::export`). This
//! stub therefore provides the two marker traits and re-exports no-op derive
//! macros of the same names, which is exactly enough for the seed sources to
//! compile unchanged while the build environment has no crates.io access.
//!
//! If a future PR needs real serialization, replace this vendored stub with the
//! actual `serde` dependency and everything downstream keeps compiling.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
///
/// The no-op derive does not generate an implementation; the workspace never
/// relies on one.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

/// Marker trait standing in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}

impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}
