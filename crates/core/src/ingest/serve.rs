//! The live-telemetry server: one thread exposes a whole simulated fleet's
//! recorded traces as per-device socket streams, with server-side frame
//! resume (the other half of the RESUME handshake in `docs/WIRE_FORMAT.md`).
//!
//! A [`TelemetryServe`] binds one listening socket — TCP via
//! [`bind`](TelemetryServe::bind), or a Unix-domain socket via
//! [`bind_unix`](TelemetryServe::bind_unix) — and readiness-polls it together
//! with every accepted connection on a single thread (via `poll(2)`, like the
//! [`reactor`](crate::ingest::reactor) on the consuming side).  Each
//! connection speaks one stream of the protocol:
//!
//! 1. The client sends a stream header followed by one RESUME frame naming
//!    the device it wants and the index of the next batch it has not yet
//!    received (`0` for a fresh subscription).
//! 2. The server answers with a stream header, a JOIN handshake frame naming
//!    the device, its sensor configuration and its fleet start-epoch, the
//!    device's batch frames from the requested index on, and an END frame
//!    whose count covers *this* stream, then closes the connection.
//!
//! # Write-readiness backpressure
//!
//! Responses are *streamed*, not buffered per client: each connection holds a
//! cursor into the shared pre-encoded frame table plus a few bytes of
//! head/tail framing, so a slow reader pins O(1) memory no matter how long
//! its trace is.  Writes go through `POLLOUT` readiness, so a stalled reader
//! degrades only its own connection: after
//! [`with_stall_timeouts`](TelemetryServe::with_stall_timeouts)' park
//! deadline it is counted as parked (still polled, costing one fd slot), and
//! after the drop deadline its connection is closed and counted in
//! [`ServeStats::dropped`].  Healthy clients are never delayed by more than
//! one poll cycle.
//!
//! A malformed request (bad header, torn frame, any frame kind other than
//! RESUME, an unknown device, an index past the trace) drops only that
//! connection and is counted in [`ServeStats`] — one bad client cannot harm
//! the rest of the fleet.
//!
//! For soak-testing the reconnect path, [`TelemetryServe::with_kill_at`]
//! makes the server tear each device's *first* stream at a fixed byte
//! offset; the resumed second stream is then served in full.  The
//! `telemetry_serve` binary wraps all of this behind a CLI.

use std::collections::HashMap;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::os::unix::net::{UnixListener, UnixStream};
use std::time::{Duration, Instant};

use polling::{poll_fds, PollFd, POLLIN, POLLOUT};

use adasense_sensor::{SensorConfig, TelemetryBatch};

use super::{FrameEncoder, FrameKind, StreamParser, TelemetryTrace};
use crate::error::AdaSenseError;

/// Per-read scratch size.  Requests are tiny (29 bytes), so one block always
/// holds a whole request; the constant exists to bound hostile senders.
const READ_BLOCK: usize = 4096;

/// Counters describing everything a [`TelemetryServe`] did, readable at any
/// point between polls.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Connections accepted.
    pub accepted: u64,
    /// Streams served to completion (END frame fully written).
    pub streams_completed: u64,
    /// Requests that resumed mid-trace (`next_batch > 0`).
    pub resume_requests: u64,
    /// Connections dropped for a malformed or unserviceable request.
    pub rejected_requests: u64,
    /// Streams deliberately torn by [`TelemetryServe::with_kill_at`].
    pub killed_streams: u64,
    /// Highest number of simultaneously open connections observed.
    pub peak_open: u64,
    /// Connections that stalled past the park deadline while a response was
    /// in flight (counted once per stall; the connection keeps its slot).
    pub parked: u64,
    /// Stalled connections closed at the drop deadline with the response
    /// unfinished.
    pub dropped: u64,
}

/// One device's pre-encoded stream: the batch frames, individually framed so
/// any suffix can be served on resume, plus the metadata the JOIN handshake
/// announces.
#[derive(Debug)]
struct DeviceStream {
    frames: Vec<Vec<u8>>,
    /// Sensor configuration announced in the JOIN frame (the first batch's,
    /// or the head of the paper Pareto front for an empty trace).
    config: SensorConfig,
    /// Fleet epoch at which this device joins the cohort, announced in the
    /// JOIN frame (see [`TelemetryServe::set_start_epoch`]).
    start_epoch: u64,
}

/// Which segment of the streamed response a write cursor is inside.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WriteStage {
    /// The stream header + JOIN handshake.
    Head,
    /// The shared pre-encoded batch frames.
    Frames,
    /// The END frame.
    Tail,
}

/// What one accepted connection is currently doing.
#[derive(Debug)]
enum ConnState {
    /// Waiting for the header + RESUME request.
    Reading,
    /// Streaming the response: a cursor into the shared frame table.  Only
    /// `head`/`tail` are owned per connection; the batch frames are read
    /// from the device table by index.
    Writing {
        device_id: u64,
        head: Vec<u8>,
        tail: Vec<u8>,
        stage: WriteStage,
        /// Next frame index (absolute into the device's frame table).
        frame: usize,
        /// Bytes of the current segment already written.
        offset: usize,
        /// Total response bytes written so far (the chaos-kill odometer).
        written: usize,
        kill_at: Option<usize>,
    },
}

/// One accepted connection: TCP or Unix-domain, behind one vtable-free enum.
#[derive(Debug)]
enum ServeSocket {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl ServeSocket {
    fn set_nonblocking(&self, nonblocking: bool) -> std::io::Result<()> {
        match self {
            Self::Tcp(s) => s.set_nonblocking(nonblocking),
            Self::Unix(s) => s.set_nonblocking(nonblocking),
        }
    }

    fn shutdown(&self) -> std::io::Result<()> {
        match self {
            Self::Tcp(s) => s.shutdown(std::net::Shutdown::Both),
            Self::Unix(s) => s.shutdown(std::net::Shutdown::Both),
        }
    }
}

impl Read for ServeSocket {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Self::Tcp(s) => s.read(buf),
            Self::Unix(s) => s.read(buf),
        }
    }
}

impl Write for ServeSocket {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Self::Tcp(s) => s.write(buf),
            Self::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Self::Tcp(s) => s.flush(),
            Self::Unix(s) => s.flush(),
        }
    }
}

impl AsRawFd for ServeSocket {
    fn as_raw_fd(&self) -> std::os::unix::io::RawFd {
        match self {
            Self::Tcp(s) => s.as_raw_fd(),
            Self::Unix(s) => s.as_raw_fd(),
        }
    }
}

/// The listening half: one TCP or one Unix-domain socket.
#[derive(Debug)]
enum ServeListener {
    Tcp(TcpListener),
    Unix(UnixListener),
}

impl ServeListener {
    fn accept(&self) -> std::io::Result<ServeSocket> {
        match self {
            Self::Tcp(l) => l.accept().map(|(s, _)| ServeSocket::Tcp(s)),
            Self::Unix(l) => l.accept().map(|(s, _)| ServeSocket::Unix(s)),
        }
    }
}

impl AsRawFd for ServeListener {
    fn as_raw_fd(&self) -> std::os::unix::io::RawFd {
        match self {
            Self::Tcp(l) => l.as_raw_fd(),
            Self::Unix(l) => l.as_raw_fd(),
        }
    }
}

#[derive(Debug)]
struct ServeConn {
    stream: ServeSocket,
    parser: StreamParser,
    state: ConnState,
    /// When this connection last made progress (accept, read, or write).
    last_progress: Instant,
    /// Whether the current stall has already been counted as parked.
    parked: bool,
}

/// A single-threaded, poll-driven server exposing recorded per-device
/// telemetry traces as live socket streams.  See the [module
/// docs](self) for the protocol and the backpressure model.
#[derive(Debug)]
pub struct TelemetryServe {
    listener: ServeListener,
    devices: HashMap<u64, DeviceStream>,
    conns: Vec<Option<ServeConn>>,
    stats: ServeStats,
    kill_at: Option<usize>,
    /// With [`with_kill_below`](Self::with_kill_below): only devices below
    /// this id are chaos-killed.
    kill_below: Option<u64>,
    /// Devices whose first stream has already been torn by `kill_at`.
    killed: std::collections::HashSet<u64>,
    /// A writing connection idle this long is counted as parked.
    park_after: Duration,
    /// A writing connection idle this long is closed and counted as dropped.
    drop_after: Duration,
}

impl TelemetryServe {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// pre-encodes one stream per `(device_id, trace)` pair.
    ///
    /// # Errors
    ///
    /// Returns [`AdaSenseError::Ingest`] if the listener cannot be bound.
    pub fn bind(addr: &str, traces: Vec<(u64, TelemetryTrace)>) -> Result<Self, AdaSenseError> {
        let listener = TcpListener::bind(addr)
            .map_err(|e| AdaSenseError::ingest(format!("binding {addr} failed: {e}")))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| AdaSenseError::ingest(format!("nonblocking listener failed: {e}")))?;
        Ok(Self::with_listener(ServeListener::Tcp(listener), Self::encode_devices(traces)))
    }

    /// Binds a Unix-domain socket at `path` (any stale socket file there is
    /// removed first) and pre-encodes one stream per `(device_id, trace)`
    /// pair.  Clients dial it with the reactor's `unix:<path>` address
    /// scheme.  Everything else — the RESUME handshake, JOIN frames, chaos
    /// kills, backpressure — behaves identically to a TCP server.
    ///
    /// # Errors
    ///
    /// Returns [`AdaSenseError::Ingest`] if the socket cannot be bound.
    pub fn bind_unix(
        path: &str,
        traces: Vec<(u64, TelemetryTrace)>,
    ) -> Result<Self, AdaSenseError> {
        let _ = std::fs::remove_file(path);
        let listener = UnixListener::bind(path)
            .map_err(|e| AdaSenseError::ingest(format!("binding unix:{path} failed: {e}")))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| AdaSenseError::ingest(format!("nonblocking listener failed: {e}")))?;
        Ok(Self::with_listener(ServeListener::Unix(listener), Self::encode_devices(traces)))
    }

    /// Like [`bind`](TelemetryServe::bind), but every batch is served as a v3
    /// COMPRESSED frame at roughly `ratio`× compression, seeded per frame by
    /// [`compressed_frame_seed`](crate::ingest::compressed_frame_seed).
    /// Everything else — the RESUME handshake, per-frame resume offsets,
    /// chaos kills — behaves identically, which is exactly the point:
    /// compressed payloads ride the same frame machinery.
    ///
    /// # Errors
    ///
    /// Returns [`AdaSenseError::Ingest`] if the listener cannot be bound.
    pub fn bind_compressed(
        addr: &str,
        traces: Vec<(u64, TelemetryTrace)>,
        ratio: u32,
    ) -> Result<Self, AdaSenseError> {
        let mut serve = Self::bind(addr, Vec::new())?;
        let mut encoder = FrameEncoder::new();
        serve.devices = traces
            .into_iter()
            .map(|(device_id, trace)| {
                let config = Self::trace_config(&trace);
                let frames = trace
                    .batches
                    .iter()
                    .enumerate()
                    .map(|(index, b)| {
                        let seed = crate::ingest::compressed_frame_seed(device_id, index as u64);
                        encoder.compressed(b, ratio, seed).to_vec()
                    })
                    .collect();
                (device_id, DeviceStream { frames, config, start_epoch: 0 })
            })
            .collect();
        Ok(serve)
    }

    fn with_listener(listener: ServeListener, devices: HashMap<u64, DeviceStream>) -> Self {
        Self {
            listener,
            devices,
            conns: Vec::new(),
            stats: ServeStats::default(),
            kill_at: None,
            kill_below: None,
            killed: std::collections::HashSet::new(),
            park_after: Duration::from_millis(100),
            drop_after: Duration::from_secs(5),
        }
    }

    fn encode_devices(traces: Vec<(u64, TelemetryTrace)>) -> HashMap<u64, DeviceStream> {
        let mut encoder = FrameEncoder::new();
        traces
            .into_iter()
            .map(|(device_id, trace)| {
                let config = Self::trace_config(&trace);
                let frames = trace.batches.iter().map(|b| encoder.batch(b).to_vec()).collect();
                (device_id, DeviceStream { frames, config, start_epoch: 0 })
            })
            .collect()
    }

    /// The configuration the JOIN handshake announces for a trace.
    fn trace_config(trace: &TelemetryTrace) -> SensorConfig {
        trace.batches.first().map_or_else(|| SensorConfig::paper_pareto_front()[0], |b| b.config)
    }

    /// Tears each eligible device's *first* stream after `bytes` of the
    /// response have been written (clamped so at least the stream's final
    /// byte is still unsent), forcing the client through the RESUME
    /// reconnect path.  The device's next stream is served in full.
    pub fn with_kill_at(mut self, bytes: usize) -> Self {
        self.kill_at = Some(bytes);
        self
    }

    /// Restricts [`with_kill_at`](Self::with_kill_at) chaos kills to devices
    /// with `device_id < below`, so a soak can tear an exact subset of its
    /// fleet while the rest streams clean.
    pub fn with_kill_below(mut self, below: u64) -> Self {
        self.kill_below = Some(below);
        self
    }

    /// Replaces the stall deadlines: a connection whose response write makes
    /// no progress for `park_after` is counted in [`ServeStats::parked`]
    /// (once per stall; it keeps its slot and unparks on the next byte), and
    /// one idle for `drop_after` is closed and counted in
    /// [`ServeStats::dropped`].  Defaults: 100 ms / 5 s.
    pub fn with_stall_timeouts(mut self, park_after: Duration, drop_after: Duration) -> Self {
        self.park_after = park_after;
        self.drop_after = drop_after;
        self
    }

    /// Sets the fleet start-epoch announced in `device_id`'s JOIN handshake
    /// (default `0`).  Unknown devices are ignored.
    pub fn set_start_epoch(&mut self, device_id: u64, start_epoch: u64) {
        if let Some(device) = self.devices.get_mut(&device_id) {
            device.start_epoch = start_epoch;
        }
    }

    /// The bound listening address.
    ///
    /// # Panics
    ///
    /// Panics on a Unix-domain server (the caller chose the path) or if the
    /// OS cannot report the local address of a bound listener.
    pub fn local_addr(&self) -> SocketAddr {
        match &self.listener {
            ServeListener::Tcp(l) => l.local_addr().expect("a bound listener has a local address"),
            ServeListener::Unix(_) => {
                panic!("a unix-domain server has no TCP address; dial the bound path instead")
            }
        }
    }

    /// The server's counters so far.
    pub fn stats(&self) -> ServeStats {
        self.stats
    }

    /// Number of currently open connections.
    pub fn open_connections(&self) -> usize {
        self.conns.iter().filter(|c| c.is_some()).count()
    }

    /// Serves until `streams` streams have completed (torn streams do not
    /// count), polling in `timeout_ms` slices.
    ///
    /// # Errors
    ///
    /// Propagates `poll(2)` failures; per-connection errors only drop that
    /// connection.
    pub fn serve_streams(&mut self, streams: u64, timeout_ms: i32) -> Result<(), AdaSenseError> {
        while self.stats.streams_completed < streams {
            self.poll_once(timeout_ms)?;
        }
        Ok(())
    }

    /// One pass of the event loop: polls the listener and every open
    /// connection for readiness (read-side `POLLIN`, write-side `POLLOUT`),
    /// accepts, reads requests, streams responses, and sweeps stalled
    /// writers past their park/drop deadlines.  Returns the number of
    /// descriptors that were ready.
    ///
    /// # Errors
    ///
    /// Propagates `poll(2)` failures; per-connection errors only drop that
    /// connection.
    pub fn poll_once(&mut self, timeout_ms: i32) -> Result<usize, AdaSenseError> {
        let mut fds = Vec::with_capacity(self.conns.len() + 1);
        fds.push(PollFd::new(self.listener.as_raw_fd(), POLLIN));
        for conn in &self.conns {
            fds.push(match conn {
                None => PollFd::parked(),
                Some(c) => PollFd::new(
                    c.stream.as_raw_fd(),
                    match c.state {
                        ConnState::Reading => POLLIN,
                        ConnState::Writing { .. } => POLLOUT,
                    },
                ),
            });
        }
        let ready = poll_fds(&mut fds, timeout_ms)
            .map_err(|e| AdaSenseError::ingest(format!("poll failed: {e}")))?;
        if ready == 0 {
            self.sweep_stalls();
            return Ok(0);
        }
        // Snapshot before accepting: newly accepted connections have no slot
        // in this poll round's fd array.
        let polled = fds.len() - 1;
        if fds[0].readable() {
            self.accept_ready();
        }
        for i in 0..polled {
            let slot = &fds[i + 1];
            if !(slot.readable() || slot.writable()) {
                continue;
            }
            if let Some(mut conn) = self.conns[i].take() {
                if self.advance(&mut conn) {
                    self.conns[i] = Some(conn);
                }
            }
        }
        self.sweep_stalls();
        Ok(ready)
    }

    /// Parks or drops writing connections that have made no progress past
    /// their deadlines.  Reading connections are exempt: a client that never
    /// sends a request holds no response state worth reclaiming here.
    fn sweep_stalls(&mut self) {
        for slot in &mut self.conns {
            let Some(conn) = slot else { continue };
            if !matches!(conn.state, ConnState::Writing { .. }) {
                continue;
            }
            let stalled = conn.last_progress.elapsed();
            if stalled >= self.drop_after {
                self.stats.dropped += 1;
                let _ = conn.stream.shutdown();
                *slot = None;
            } else if stalled >= self.park_after && !conn.parked {
                conn.parked = true;
                self.stats.parked += 1;
            }
        }
    }

    /// Accepts every pending connection.
    fn accept_ready(&mut self) {
        loop {
            match self.listener.accept() {
                Ok(stream) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    self.stats.accepted += 1;
                    let conn = ServeConn {
                        stream,
                        parser: StreamParser::telemetry(),
                        state: ConnState::Reading,
                        last_progress: Instant::now(),
                        parked: false,
                    };
                    match self.conns.iter().position(Option::is_none) {
                        Some(slot) => self.conns[slot] = Some(conn),
                        None => self.conns.push(Some(conn)),
                    }
                    self.stats.peak_open = self.stats.peak_open.max(self.open_connections() as u64);
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(_) => break,
            }
        }
    }

    /// Drives one ready connection as far as it will go without blocking.
    /// Returns `false` when the connection is finished (served, torn or
    /// rejected) and its slot should be freed.
    fn advance(&mut self, conn: &mut ServeConn) -> bool {
        match &mut conn.state {
            ConnState::Reading => {
                let mut block = [0u8; READ_BLOCK];
                loop {
                    match conn.stream.read(&mut block) {
                        Ok(0) => {
                            // Peer went away before completing a request.
                            self.stats.rejected_requests += 1;
                            return false;
                        }
                        Ok(n) => {
                            conn.parser.feed(&block[..n]);
                            conn.last_progress = Instant::now();
                        }
                        Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                        Err(_) => {
                            self.stats.rejected_requests += 1;
                            return false;
                        }
                    }
                }
                let mut scratch = TelemetryBatch::placeholder();
                match conn.parser.next_frame(&mut scratch) {
                    Ok(None) => true, // request still incomplete; keep waiting
                    Ok(Some(FrameKind::Resume { device_id, next_batch })) => {
                        match self.build_response(device_id, next_batch) {
                            Some(state) => {
                                if next_batch > 0 {
                                    self.stats.resume_requests += 1;
                                }
                                conn.state = state;
                                // Try to write immediately; the socket is
                                // almost certainly writable already.
                                self.advance_write(conn)
                            }
                            None => {
                                self.stats.rejected_requests += 1;
                                false
                            }
                        }
                    }
                    Ok(Some(_)) | Err(_) => {
                        // Wrong first frame or torn/corrupt request bytes.
                        self.stats.rejected_requests += 1;
                        false
                    }
                }
            }
            ConnState::Writing { .. } => self.advance_write(conn),
        }
    }

    /// Streams as much of the response as the socket accepts, walking the
    /// head → shared frames → tail cursor and honoring a pending chaos kill.
    /// Returns `false` when the connection is done.
    fn advance_write(&mut self, conn: &mut ServeConn) -> bool {
        let ConnState::Writing { device_id, head, tail, stage, frame, offset, written, kill_at } =
            &mut conn.state
        else {
            return true;
        };
        loop {
            let bytes: &[u8] = match *stage {
                WriteStage::Head => head,
                WriteStage::Frames => {
                    let frames =
                        &self.devices.get(device_id).expect("writing streams name a device").frames;
                    match frames.get(*frame) {
                        Some(frame_bytes) => frame_bytes,
                        None => {
                            *stage = WriteStage::Tail;
                            *offset = 0;
                            continue;
                        }
                    }
                }
                WriteStage::Tail => tail,
            };
            if *offset == bytes.len() {
                match *stage {
                    WriteStage::Head => *stage = WriteStage::Frames,
                    WriteStage::Frames => *frame += 1,
                    WriteStage::Tail => {
                        self.stats.streams_completed += 1;
                        return false;
                    }
                }
                *offset = 0;
                continue;
            }
            if let Some(kill) = *kill_at {
                if *written >= kill {
                    // Tear the stream mid-flight: the client must reconnect
                    // and resume.
                    self.stats.killed_streams += 1;
                    let _ = conn.stream.shutdown();
                    return false;
                }
            }
            // Never write past the kill offset, so the tear lands exactly
            // where the chaos schedule says.
            let end = kill_at.map_or(bytes.len(), |k| bytes.len().min(*offset + (k - *written)));
            match conn.stream.write(&bytes[*offset..end]) {
                Ok(0) => return false,
                Ok(n) => {
                    *offset += n;
                    *written += n;
                    conn.last_progress = Instant::now();
                    conn.parked = false;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => return true,
                Err(_) => return false,
            }
        }
    }

    /// Builds the write cursor for one request — head (header + JOIN), a
    /// frame index, tail (END) — and decides whether this stream is the
    /// device's designated chaos kill.  Returns `None` for an unknown device
    /// or an index past its trace.
    fn build_response(&mut self, device_id: u64, next_batch: u64) -> Option<ConnState> {
        let device = self.devices.get(&device_id)?;
        let total = device.frames.len() as u64;
        if next_batch > total {
            return None;
        }
        let mut encoder = FrameEncoder::new();
        let mut head = Vec::new();
        head.extend_from_slice(encoder.header());
        head.extend_from_slice(encoder.join(device_id, device.config, device.start_epoch));
        let tail = encoder.end(total - next_batch).to_vec();
        let response_len = head.len()
            + device.frames[next_batch as usize..].iter().map(Vec::len).sum::<usize>()
            + tail.len();
        let eligible = self.kill_below.is_none_or(|below| device_id < below);
        let kill_at = match self.kill_at {
            Some(bytes) if eligible && !self.killed.contains(&device_id) => {
                self.killed.insert(device_id);
                // Clamp so the END frame is never fully delivered: the
                // client must observe a torn stream, not a complete one.
                Some(bytes.min(response_len - 1))
            }
            _ => None,
        };
        Some(ConnState::Writing {
            device_id,
            head,
            tail,
            stage: WriteStage::Head,
            frame: next_batch as usize,
            offset: 0,
            written: 0,
            kill_at,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ingest::FrameDecoder;
    use adasense_sensor::{Sample3, SensorConfig};

    fn sample_trace(batches: usize) -> TelemetryTrace {
        let config = SensorConfig::paper_pareto_front()[0];
        let mut trace = TelemetryTrace::new();
        for i in 0..batches {
            trace.batches.push(TelemetryBatch::new(
                config,
                2.0 * (i + 1) as f64,
                2.0,
                0,
                vec![Sample3::new(i as f64, 0.5, -0.5, 1.0)],
            ));
        }
        trace
    }

    /// Connects, sends the RESUME handshake, and returns everything the
    /// server streamed back.
    fn request(addr: SocketAddr, device_id: u64, next_batch: u64) -> Vec<u8> {
        let mut stream = TcpStream::connect(addr).unwrap();
        let mut encoder = FrameEncoder::new();
        stream.write_all(encoder.header()).unwrap();
        stream.write_all(encoder.resume(device_id, next_batch)).unwrap();
        let mut response = Vec::new();
        stream.read_to_end(&mut response).unwrap();
        response
    }

    /// Decodes a served stream: the JOIN handshake, then batches up to END.
    fn decode_stream(bytes: &[u8]) -> (Vec<TelemetryBatch>, u64) {
        let (_join, batches, count) = decode_stream_with_join(bytes);
        (batches, count)
    }

    /// Like [`decode_stream`], also returning the JOIN handshake fields
    /// `(device_id, config, start_epoch)`.
    fn decode_stream_with_join(
        bytes: &[u8],
    ) -> ((u64, SensorConfig, u64), Vec<TelemetryBatch>, u64) {
        let mut reader = bytes;
        let mut decoder = FrameDecoder::new();
        decoder.read_header(&mut reader).unwrap();
        let mut batch = TelemetryBatch::placeholder();
        let join = match decoder.read_frame(&mut reader, &mut batch).unwrap() {
            FrameKind::Join { device_id, config, start_epoch } => (device_id, config, start_epoch),
            other => panic!("streams open with a JOIN handshake, got {other:?}"),
        };
        let mut batches = Vec::new();
        loop {
            let mut batch = TelemetryBatch::placeholder();
            match decoder.read_frame(&mut reader, &mut batch).unwrap() {
                FrameKind::Batch => batches.push(batch),
                FrameKind::End { batches: count } => return (join, batches, count),
                other => panic!("unexpected frame {other:?}"),
            }
        }
    }

    #[test]
    fn serves_full_and_resumed_streams() {
        let trace = sample_trace(4);
        let mut serve = TelemetryServe::bind("127.0.0.1:0", vec![(7, trace.clone())]).unwrap();
        serve.set_start_epoch(7, 11);
        let addr = serve.local_addr();
        let client = std::thread::spawn(move || (request(addr, 7, 0), request(addr, 7, 3)));
        serve.serve_streams(2, 50).unwrap();
        let (full, resumed) = client.join().unwrap();
        let (join, batches, count) = decode_stream_with_join(&full);
        assert_eq!(batches, trace.batches);
        assert_eq!(count, 4);
        assert_eq!(
            join,
            (7, trace.batches[0].config, 11),
            "the JOIN handshake names the device, its config and its start epoch"
        );
        let (resumed_join, tail, tail_count) = decode_stream_with_join(&resumed);
        assert_eq!(tail, trace.batches[3..]);
        assert_eq!(tail_count, 1, "END counts only this stream's batches");
        assert_eq!(resumed_join.0, 7, "resumed streams are JOIN-prefixed too");
        assert_eq!(serve.stats().streams_completed, 2);
        assert_eq!(serve.stats().resume_requests, 1);
        assert_eq!(serve.open_connections(), 0, "served connections are closed");
    }

    #[test]
    fn unix_domain_server_speaks_the_same_protocol() {
        let trace = sample_trace(3);
        let dir = std::env::temp_dir().join(format!("adasense-serve-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("uds-parity.sock");
        let path_str = path.to_str().unwrap().to_string();
        let mut serve = TelemetryServe::bind_unix(&path_str, vec![(2, trace.clone())]).unwrap();
        let dial = path_str.clone();
        let client = std::thread::spawn(move || {
            let mut stream = UnixStream::connect(&dial).unwrap();
            let mut encoder = FrameEncoder::new();
            stream.write_all(encoder.header()).unwrap();
            stream.write_all(encoder.resume(2, 0)).unwrap();
            let mut response = Vec::new();
            stream.read_to_end(&mut response).unwrap();
            response
        });
        serve.serve_streams(1, 50).unwrap();
        let response = client.join().unwrap();
        let (join, batches, count) = decode_stream_with_join(&response);
        assert_eq!(join.0, 2);
        assert_eq!(batches, trace.batches);
        assert_eq!(count, 3);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn bad_requests_are_rejected_without_harming_good_ones() {
        let trace = sample_trace(2);
        let mut serve = TelemetryServe::bind("127.0.0.1:0", vec![(1, trace.clone())]).unwrap();
        let addr = serve.local_addr();
        let client = std::thread::spawn(move || {
            // Garbage magic: rejected at the stream header.
            let mut bad = TcpStream::connect(addr).unwrap();
            bad.write_all(b"NOPEnope____").unwrap();
            let mut sink = Vec::new();
            assert_eq!(bad.read_to_end(&mut sink).unwrap(), 0, "server closed on us");
            // Unknown device: valid frames, unserviceable request.
            let mut stream = TcpStream::connect(addr).unwrap();
            let mut encoder = FrameEncoder::new();
            stream.write_all(encoder.header()).unwrap();
            stream.write_all(encoder.resume(99, 0)).unwrap();
            let mut sink = Vec::new();
            assert_eq!(stream.read_to_end(&mut sink).unwrap(), 0);
            // Index past the trace: also rejected.
            let mut stream = TcpStream::connect(addr).unwrap();
            stream.write_all(encoder.header()).unwrap();
            stream.write_all(encoder.resume(1, 3)).unwrap();
            let mut sink = Vec::new();
            assert_eq!(stream.read_to_end(&mut sink).unwrap(), 0);
            // The good request still goes through.
            request(addr, 1, 0)
        });
        serve.serve_streams(1, 50).unwrap();
        let good = client.join().unwrap();
        assert_eq!(decode_stream(&good).0, trace.batches);
        assert_eq!(serve.stats().rejected_requests, 3);
        assert_eq!(serve.stats().streams_completed, 1);
    }

    #[test]
    fn kill_at_tears_only_the_first_stream_per_device() {
        let trace = sample_trace(3);
        let mut serve =
            TelemetryServe::bind("127.0.0.1:0", vec![(5, trace.clone())]).unwrap().with_kill_at(20);
        let addr = serve.local_addr();
        let client = std::thread::spawn(move || {
            let torn = request(addr, 5, 0);
            let retry = request(addr, 5, 0);
            (torn, retry)
        });
        serve.serve_streams(1, 50).unwrap();
        let (torn, retry) = client.join().unwrap();
        assert!(torn.len() <= 20, "first stream dies at the kill offset");
        assert_eq!(decode_stream(&retry).0, trace.batches, "second stream is whole");
        assert_eq!(serve.stats().killed_streams, 1);
        assert_eq!(serve.stats().streams_completed, 1);
    }

    #[test]
    fn kill_below_spares_devices_at_or_above_the_cutoff() {
        let trace = sample_trace(2);
        let mut serve = TelemetryServe::bind(
            "127.0.0.1:0",
            vec![(0, trace.clone()), (1, trace.clone()), (2, trace.clone())],
        )
        .unwrap()
        .with_kill_at(15)
        .with_kill_below(1);
        let addr = serve.local_addr();
        let client = std::thread::spawn(move || {
            let torn = request(addr, 0, 0);
            let spared_1 = request(addr, 1, 0);
            let spared_2 = request(addr, 2, 0);
            (torn, spared_1, spared_2)
        });
        serve.serve_streams(2, 50).unwrap();
        let (torn, spared_1, spared_2) = client.join().unwrap();
        assert!(torn.len() <= 15, "device 0 is below the cutoff: torn");
        assert_eq!(decode_stream(&spared_1).0, trace.batches, "device 1 streams clean");
        assert_eq!(decode_stream(&spared_2).0, trace.batches, "device 2 streams clean");
        assert_eq!(serve.stats().killed_streams, 1, "exactly one chaos kill");
    }

    #[test]
    fn a_stalled_reader_is_parked_then_dropped_without_delaying_others() {
        // A long trace (~24 MB encoded) so the response overflows the kernel
        // socket buffers and the server actually has to wait for the stalled
        // reader instead of parking the whole stream in the send buffer.
        let trace = sample_trace(400_000);
        let mut serve =
            TelemetryServe::bind("127.0.0.1:0", vec![(1, trace.clone()), (2, sample_trace(3))])
                .unwrap()
                .with_stall_timeouts(Duration::from_millis(20), Duration::from_millis(120));
        let addr = serve.local_addr();

        // The staller: requests the long stream, then never reads a byte.
        let staller = TcpStream::connect(addr).unwrap();
        {
            let mut stream = &staller;
            let mut encoder = FrameEncoder::new();
            stream.write_all(encoder.header()).unwrap();
            stream.write_all(encoder.resume(1, 0)).unwrap();
        }

        // The healthy client completes while the staller sits on its buffer.
        let healthy = std::thread::spawn(move || request(addr, 2, 0));
        let deadline = Instant::now() + Duration::from_secs(10);
        while serve.stats().dropped == 0 {
            assert!(Instant::now() < deadline, "staller never dropped: {:?}", serve.stats());
            serve.poll_once(10).unwrap();
        }
        let healthy_bytes = healthy.join().unwrap();
        assert_eq!(decode_stream(&healthy_bytes).0, sample_trace(3).batches);

        let stats = serve.stats();
        assert_eq!(stats.streams_completed, 1, "only the healthy stream completed: {stats:?}");
        assert!(stats.parked >= 1, "the staller was parked first: {stats:?}");
        assert_eq!(stats.dropped, 1, "then dropped at the deadline: {stats:?}");
        assert_eq!(stats.killed_streams, 0, "a stall drop is not a chaos kill");
        drop(staller);
    }
}
