//! The simulated accelerometer front-end.
//!
//! [`Accelerometer`] turns a continuous analog [`SignalSource`] into the digital
//! sample stream a real IMU would produce under a given [`SensorConfig`]:
//!
//! 1. For every output sample (at the configured output data rate) it evaluates the
//!    analog signal at `averaging_window` points spaced by the internal sampling
//!    period and averages them — exactly the BMI160's under-sampling averaging.
//!    Because there is no anti-aliasing filter beyond this averaging, low output
//!    rates genuinely alias high-frequency activity content, which is one of the two
//!    physical accuracy-degradation mechanisms the paper relies on.
//! 2. It adds averaging-dependent Gaussian measurement noise (the other mechanism).
//! 3. It quantizes to the 16-bit ±2 g range of the BMI160.

use rand::Rng;

use crate::config::SensorConfig;
use crate::energy::{Charge, EnergyModel};
use crate::noise::NoiseModel;
use crate::sample::Sample3;

/// A continuous 3-axis acceleration signal, in g, defined for any time `t` (seconds).
///
/// Implementors are the "physical world" of the simulation: the `adasense-data` crate
/// provides per-activity signal models, and tests use simple closures or constants.
pub trait SignalSource {
    /// The analog acceleration at time `t` seconds, as `[x, y, z]` in g.
    fn sample(&self, t: f64) -> [f64; 3];
}

impl<F> SignalSource for F
where
    F: Fn(f64) -> [f64; 3],
{
    fn sample(&self, t: f64) -> [f64; 3] {
        self(t)
    }
}

/// Full-scale range of the simulated accelerometer, in g.
const FULL_SCALE_G: f64 = 2.0;
/// Number of quantization levels of the 16-bit output.
const LEVELS: f64 = 65536.0;

/// The simulated 3-axis accelerometer.
///
/// See the [module documentation](self) for the behavioural model.
#[derive(Debug, Clone, PartialEq)]
pub struct Accelerometer {
    config: SensorConfig,
    energy: EnergyModel,
    noise: NoiseModel,
    quantize: bool,
}

impl Accelerometer {
    /// Creates an accelerometer with the default (BMI160-calibrated) energy and
    /// noise models.
    pub fn new(config: SensorConfig) -> Self {
        Self { config, energy: EnergyModel::bmi160(), noise: NoiseModel::bmi160(), quantize: true }
    }

    /// Replaces the energy model.
    pub fn with_energy_model(mut self, energy: EnergyModel) -> Self {
        self.energy = energy;
        self
    }

    /// Replaces the noise model.
    pub fn with_noise_model(mut self, noise: NoiseModel) -> Self {
        self.noise = noise;
        self
    }

    /// Enables or disables output quantization (enabled by default).
    pub fn with_quantization(mut self, quantize: bool) -> Self {
        self.quantize = quantize;
        self
    }

    /// The currently active sensor configuration.
    pub fn config(&self) -> SensorConfig {
        self.config
    }

    /// Switches the sensor to a different configuration.
    ///
    /// Switching is modelled as instantaneous; the per-switch energy overhead is
    /// negligible compared to seconds-long residency and is ignored, as in the paper.
    pub fn set_config(&mut self, config: SensorConfig) {
        self.config = config;
    }

    /// The energy model in use.
    pub fn energy_model(&self) -> &EnergyModel {
        &self.energy
    }

    /// The noise model in use.
    pub fn noise_model(&self) -> &NoiseModel {
        &self.noise
    }

    /// Average current drawn under the current configuration, in µA.
    pub fn current_ua(&self) -> f64 {
        self.energy.current_ua(self.config)
    }

    /// Charge consumed by staying in the current configuration for `seconds` seconds.
    pub fn charge_over(&self, seconds: f64) -> Charge {
        self.energy.charge_over(self.config, seconds)
    }

    /// Captures `duration` seconds of samples starting at time `start`.
    ///
    /// The returned vector contains `round(duration × odr)` samples with timestamps
    /// `start + k / odr`.
    pub fn capture<S, R>(&self, source: &S, start: f64, duration: f64, rng: &mut R) -> Vec<Sample3>
    where
        S: SignalSource + ?Sized,
        R: Rng + ?Sized,
    {
        let mut out = Vec::with_capacity(self.config.frequency.samples_in(duration));
        self.capture_into(source, start, duration, rng, &mut out);
        out
    }

    /// Captures `duration` seconds of samples starting at `start` into `out`.
    ///
    /// `out` is cleared first; its allocation is reused, which keeps the per-tick
    /// sensing loop of a streaming runtime allocation-free once the buffer has
    /// grown to the largest window size.
    ///
    /// When the output period is an integer multiple of the internal sampling
    /// period (true for every BMI160 configuration: 1600 Hz internal clock,
    /// power-of-two output rates), the averaging windows of consecutive output
    /// samples overlap on a shared internal time grid.  This method evaluates
    /// each grid point **once** and reuses it across the overlapping windows —
    /// for the F100/A128 configuration that is 3,328 analog evaluations per
    /// 2-second window instead of 25,600, which is where most of a simulated
    /// device tick used to go.  Internal instants are laid out as
    /// `start + m × internal_period` for integer `m`, so the analog signal is
    /// probed at the same physical times as the per-sample path up to
    /// floating-point association; the noise and quantization stages (and the
    /// RNG draw order) are identical.
    pub fn capture_into<S, R>(
        &self,
        source: &S,
        start: f64,
        duration: f64,
        rng: &mut R,
        out: &mut Vec<Sample3>,
    ) where
        S: SignalSource + ?Sized,
        R: Rng + ?Sized,
    {
        out.clear();
        let count = self.config.frequency.samples_in(duration);
        out.reserve(count);
        let period = self.config.frequency.period_s();
        let internal_period = 1.0 / self.energy.internal_rate_hz;
        let stride_f = period * self.energy.internal_rate_hz;
        let stride = stride_f.round();
        let n_avg = self.config.averaging.samples() as usize;
        let overlapping =
            stride >= 1.0 && (stride_f - stride).abs() < 1e-9 && (stride as usize) < n_avg;
        if !overlapping {
            // Either the output rate is not grid-aligned with the internal
            // clock (custom energy model), or consecutive averaging windows
            // don't overlap (stride ≥ n_avg) so every internal instant is used
            // exactly once anyway: average each output sample independently.
            for k in 0..count {
                let t = start + k as f64 * period;
                out.push(self.read_at(source, t, rng));
            }
            return;
        }
        let stride = stride as usize;
        let mode = self.energy.operation_mode(self.config);
        let inv = 1.0 / self.config.averaging.samples() as f64;

        GRID.with(|cell| {
            let grid = &mut *cell.borrow_mut();
            // Internal grid instant `m` is `start + m × internal_period`;
            // output sample `k` (at `start + k × period`) averages the `n_avg`
            // instants `m = k×stride − (n_avg−1) ..= k×stride`, oldest first —
            // the same window and summation order as [`Accelerometer::read_at`].
            let grid_len = count.saturating_sub(1) * stride + n_avg;
            grid.clear();
            grid.reserve(grid_len);
            for g in 0..grid_len {
                let m = g as i64 - (n_avg as i64 - 1);
                let t = start + m as f64 * internal_period;
                grid.push(source.sample(t));
            }
            for k in 0..count {
                let t = start + k as f64 * period;
                let mut acc = [0.0f64; 3];
                for v in &grid[k * stride..k * stride + n_avg] {
                    acc[0] += v[0];
                    acc[1] += v[1];
                    acc[2] += v[2];
                }
                let mut axes = [acc[0] * inv, acc[1] * inv, acc[2] * inv];
                for axis in &mut axes {
                    *axis += self.noise.sample(self.config, mode, rng);
                }
                if self.quantize {
                    for axis in &mut axes {
                        *axis = quantize(*axis);
                    }
                }
                out.push(Sample3::new(t, axes[0], axes[1], axes[2]));
            }
        });
    }

    /// Produces the single output sample the sensor would report at time `t`.
    pub fn read_at<S, R>(&self, source: &S, t: f64, rng: &mut R) -> Sample3
    where
        S: SignalSource + ?Sized,
        R: Rng + ?Sized,
    {
        let n_avg = self.config.averaging.samples();
        let internal_period = 1.0 / self.energy.internal_rate_hz;
        let mode = self.energy.operation_mode(self.config);

        // Average the analog signal over the `n_avg` internal samples that precede
        // the output instant.
        let mut acc = [0.0f64; 3];
        for i in 0..n_avg {
            let ti = t - f64::from(n_avg - 1 - i) * internal_period;
            let v = source.sample(ti);
            acc[0] += v[0];
            acc[1] += v[1];
            acc[2] += v[2];
        }
        let inv = 1.0 / f64::from(n_avg);
        let mut axes = [acc[0] * inv, acc[1] * inv, acc[2] * inv];

        // Additive measurement noise (already scaled for the averaging window).
        for axis in &mut axes {
            *axis += self.noise.sample(self.config, mode, rng);
        }

        // Saturating 16-bit quantization over ±2 g.
        if self.quantize {
            for axis in &mut axes {
                *axis = quantize(*axis);
            }
        }

        Sample3::new(t, axes[0], axes[1], axes[2])
    }
}

std::thread_local! {
    /// Reusable per-thread internal-grid buffer for [`Accelerometer::capture_into`],
    /// so the windowed capture stays allocation-free in steady state.
    static GRID: std::cell::RefCell<Vec<[f64; 3]>> = const { std::cell::RefCell::new(Vec::new()) };
}

fn quantize(value: f64) -> f64 {
    let clamped = value.clamp(-FULL_SCALE_G, FULL_SCALE_G);
    let step = 2.0 * FULL_SCALE_G / LEVELS;
    (clamped / step).round() * step
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{AveragingWindow, SamplingFrequency};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn flat(_t: f64) -> [f64; 3] {
        [0.0, 0.0, 1.0]
    }

    fn sine(t: f64) -> [f64; 3] {
        [0.0, 0.0, (2.0 * std::f64::consts::PI * 2.0 * t).sin()]
    }

    #[test]
    fn capture_produces_the_expected_number_of_samples() {
        let mut rng = StdRng::seed_from_u64(0);
        for (f, expected) in [
            (SamplingFrequency::F100, 200),
            (SamplingFrequency::F50, 100),
            (SamplingFrequency::F25, 50),
            (SamplingFrequency::F12_5, 25),
            (SamplingFrequency::F6_25, 13),
        ] {
            let accel = Accelerometer::new(SensorConfig::new(f, AveragingWindow::A16));
            let samples = accel.capture(&flat, 0.0, 2.0, &mut rng);
            assert_eq!(samples.len(), expected, "{f}");
        }
    }

    #[test]
    fn timestamps_are_evenly_spaced() {
        let mut rng = StdRng::seed_from_u64(0);
        let accel =
            Accelerometer::new(SensorConfig::new(SamplingFrequency::F25, AveragingWindow::A8));
        let samples = accel.capture(&flat, 10.0, 1.0, &mut rng);
        assert_eq!(samples.len(), 25);
        for (k, s) in samples.iter().enumerate() {
            let expected = 10.0 + k as f64 * 0.04;
            assert!((s.t - expected).abs() < 1e-12);
        }
    }

    #[test]
    fn capture_into_reuses_the_buffer_and_matches_capture() {
        let accel =
            Accelerometer::new(SensorConfig::new(SamplingFrequency::F50, AveragingWindow::A16));
        let allocated = accel.capture(&flat, 0.0, 2.0, &mut StdRng::seed_from_u64(7));
        let mut reused = vec![Sample3::new(-1.0, 9.0, 9.0, 9.0); 3];
        accel.capture_into(&flat, 0.0, 2.0, &mut StdRng::seed_from_u64(7), &mut reused);
        assert_eq!(allocated, reused, "capture_into must produce the same samples");
    }

    #[test]
    fn noiseless_capture_of_constant_signal_is_exact_up_to_quantization() {
        let mut rng = StdRng::seed_from_u64(0);
        let accel =
            Accelerometer::new(SensorConfig::new(SamplingFrequency::F50, AveragingWindow::A128))
                .with_noise_model(NoiseModel::noiseless());
        let samples = accel.capture(&flat, 0.0, 1.0, &mut rng);
        for s in samples {
            assert!((s.z - 1.0).abs() < 1e-4, "z={} should be ~1 g", s.z);
            assert!(s.x.abs() < 1e-4);
        }
    }

    #[test]
    fn averaging_attenuates_fast_signals() {
        // A 2 Hz sine averaged over 128 internal samples (80 ms) is attenuated
        // relative to an 8-sample (5 ms) average.
        let mut rng = StdRng::seed_from_u64(3);
        let wide =
            Accelerometer::new(SensorConfig::new(SamplingFrequency::F25, AveragingWindow::A128))
                .with_noise_model(NoiseModel::noiseless());
        let narrow =
            Accelerometer::new(SensorConfig::new(SamplingFrequency::F25, AveragingWindow::A8))
                .with_noise_model(NoiseModel::noiseless());
        let rms = |samples: &[Sample3]| {
            (samples.iter().map(|s| s.z * s.z).sum::<f64>() / samples.len() as f64).sqrt()
        };
        let wide_rms = rms(&wide.capture(&sine, 0.0, 4.0, &mut rng));
        let narrow_rms = rms(&narrow.capture(&sine, 0.0, 4.0, &mut rng));
        assert!(
            wide_rms < narrow_rms,
            "A128 should attenuate a 2 Hz tone more than A8 ({wide_rms} vs {narrow_rms})"
        );
    }

    #[test]
    fn smaller_windows_are_noisier() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut std_of = |window| {
            let accel = Accelerometer::new(SensorConfig::new(SamplingFrequency::F25, window));
            let samples = accel.capture(&flat, 0.0, 40.0, &mut rng);
            let mean = samples.iter().map(|s| s.z).sum::<f64>() / samples.len() as f64;
            (samples.iter().map(|s| (s.z - mean).powi(2)).sum::<f64>() / samples.len() as f64)
                .sqrt()
        };
        let noisy = std_of(AveragingWindow::A8);
        let clean = std_of(AveragingWindow::A128);
        assert!(noisy > clean, "A8 std {noisy} should exceed A128 std {clean}");
    }

    #[test]
    fn quantization_clamps_to_full_scale() {
        let mut rng = StdRng::seed_from_u64(0);
        let big = |_t: f64| [5.0, -5.0, 0.0];
        let accel =
            Accelerometer::new(SensorConfig::new(SamplingFrequency::F25, AveragingWindow::A8))
                .with_noise_model(NoiseModel::noiseless());
        let s = accel.read_at(&big, 0.0, &mut rng);
        assert!(s.x <= 2.0 && s.x >= 1.99);
        assert!(s.y >= -2.0 && s.y <= -1.99);
    }

    #[test]
    fn set_config_changes_current_draw() {
        let mut accel =
            Accelerometer::new(SensorConfig::new(SamplingFrequency::F100, AveragingWindow::A128));
        let high = accel.current_ua();
        accel.set_config(SensorConfig::new(SamplingFrequency::F12_5, AveragingWindow::A8));
        let low = accel.current_ua();
        assert!(high > 4.0 * low, "high-power config should draw far more current");
    }

    #[test]
    fn closures_work_as_signal_sources() {
        let mut rng = StdRng::seed_from_u64(0);
        let accel =
            Accelerometer::new(SensorConfig::new(SamplingFrequency::F12_5, AveragingWindow::A8))
                .with_noise_model(NoiseModel::noiseless());
        let source = |t: f64| [t.min(1.0), 0.0, 0.0];
        let s = accel.read_at(&source, 2.0, &mut rng);
        assert!((s.x - 1.0).abs() < 1e-4);
    }
}
