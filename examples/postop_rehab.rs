//! Post-operative rehabilitation monitoring — the motivating use case from the
//! paper's introduction: a wearable continuously monitors a recovering patient who
//! alternates rest with prescribed walking and stair exercises.
//!
//! The example builds the patient's daily exercise timeline explicitly, runs
//! AdaSense and the static baseline over it, and reports the energy saved together
//! with the per-activity recall that a clinician would care about.
//!
//! Run with `cargo run --release --example postop_rehab`.

use adasense_repro::adasense::experiments::per_activity_recall;
use adasense_repro::adasense::prelude::*;

fn rehab_session() -> ActivitySchedule {
    // A 14-minute supervised session: rest, short walks, one stair exercise,
    // and a lie-down at the end — dwell times long enough for SPOT to help.
    ActivitySchedule::builder()
        .then(Activity::Sit, 120.0)
        .then(Activity::Walk, 90.0)
        .then(Activity::Stand, 45.0)
        .then(Activity::Upstairs, 40.0)
        .then(Activity::Downstairs, 40.0)
        .then(Activity::Sit, 150.0)
        .then(Activity::Walk, 90.0)
        .then(Activity::Stand, 30.0)
        .then(Activity::LieDown, 240.0)
        .build()
}

fn main() -> Result<(), AdaSenseError> {
    let spec = ExperimentSpec::quick();
    let system = TrainedSystem::train(&spec)?;

    let scenario = ScenarioSpec::from_schedule(rehab_session(), 42);
    println!(
        "rehab session: {:.0} s across {} segments",
        scenario.duration_s(),
        scenario.schedule.len()
    );

    let baseline = Simulator::new(&spec, &system)
        .with_controller(ControllerKind::StaticHigh)
        .run(scenario.clone())?;
    let adasense = Simulator::new(&spec, &system)
        .with_controller(ControllerKind::SpotWithConfidence {
            stability_threshold: 10,
            confidence_threshold: 0.85,
        })
        .run(scenario)?;

    println!("\n                         static F100_A128     AdaSense (SPOT+conf)");
    println!(
        "average current (uA)   {:>18.1} {:>22.1}",
        baseline.average_current_ua(),
        adasense.average_current_ua()
    );
    println!(
        "recognition accuracy   {:>17.1}% {:>21.1}%",
        100.0 * baseline.accuracy(),
        100.0 * adasense.accuracy()
    );
    println!(
        "sensor energy saved    {:>40.1}%",
        100.0 * adasense.power_reduction_vs(baseline.average_current_ua())
    );

    println!("\nper-activity recall under AdaSense (what the physio report is built from):");
    for (activity, recall) in per_activity_recall(&adasense) {
        // Only show activities that actually occur in the session.
        if adasense.records().iter().any(|r| r.actual == activity) {
            println!("  {:<12} {:>5.1}%", activity.name(), 100.0 * recall);
        }
    }

    println!("\ntime spent per sensor configuration under AdaSense:");
    for (label, seconds) in &adasense.seconds_in_config {
        println!("  {:<12} {:>6.0} s", label, seconds);
    }
    Ok(())
}
