//! # adasense-data
//!
//! Synthetic human-activity data substrate for the AdaSense (DAC 2020) reproduction.
//!
//! The paper trains and evaluates on 7300 activity windows recorded with the authors'
//! own BMI160-based wearable.  That dataset is not public, so this crate generates a
//! synthetic equivalent: parametric continuous 3-axis acceleration signals for the six
//! daily activities of the paper (*sit, stand, walk, go upstairs, go downstairs, lie
//! down*), sampled through the simulated sensor of [`adasense_sensor`] under any
//! sensor configuration.
//!
//! Modules:
//!
//! * [`activity`] — the six-class activity label.
//! * [`signal`] — per-activity continuous signal models (orientation + gait harmonics
//!   + tremor) with per-subject variation.
//! * [`schedule`] — activity timelines: explicit segments and the randomized
//!   High/Medium/Low activity-change settings of Fig. 7.
//! * [`generator`] — turns a schedule plus signal models into a
//!   [`adasense_sensor::SignalSource`] usable by the simulated accelerometer.
//! * [`dataset`] — labelled window datasets across sensor configurations, with
//!   deterministic train/test splits.
//! * [`export`] — per-epoch ground-truth label tracks for recorded telemetry
//!   traces (sampled at the same instants the device runtime scores against).
//!
//! # Example
//!
//! ```
//! use adasense_data::prelude::*;
//! use adasense_sensor::prelude::*;
//!
//! let spec = DatasetSpec {
//!     windows_per_class_per_config: 4,
//!     configs: SensorConfig::paper_pareto_front().to_vec(),
//!     ..DatasetSpec::default()
//! };
//! let dataset = WindowDataset::generate(&spec, 42);
//! assert_eq!(dataset.len(), 4 * 6 * 4);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod activity;
pub mod dataset;
pub mod export;
pub mod generator;
pub mod schedule;
pub mod signal;

pub use activity::Activity;
pub use dataset::{DatasetSpec, LabeledWindow, TrainTestSplit, WindowDataset};
pub use export::EPOCH_LABEL_OFFSET_S;
pub use generator::ActivityTrace;
pub use schedule::{
    ActivityChangeSetting, ActivitySchedule, JitteredSegment, ScheduleBuilder, Segment,
};
pub use signal::{ActivitySignalModel, SubjectParams};

/// Convenience re-exports of the most commonly used items.
pub mod prelude {
    pub use crate::activity::Activity;
    pub use crate::dataset::{DatasetSpec, LabeledWindow, TrainTestSplit, WindowDataset};
    pub use crate::export::EPOCH_LABEL_OFFSET_S;
    pub use crate::generator::ActivityTrace;
    pub use crate::schedule::{
        ActivityChangeSetting, ActivitySchedule, JitteredSegment, ScheduleBuilder, Segment,
    };
    pub use crate::signal::{ActivitySignalModel, SubjectParams};
}
