//! Transmission-aware sweep: the compression axis on top of the Fig. 2
//! design space, plus the closed-loop per-policy energy split.
//!
//! The sweep prices every Pareto-front sensor configuration under the three
//! transmit policies — raw samples, the 15-dimensional feature vector, and a
//! compressed-sensing payload at each requested ratio — with compressed
//! accuracy measured on host-reconstructed held-out windows, and prints the
//! resulting (total µC/epoch, accuracy) table with its Pareto front.  It then
//! runs an adaptive SPOT fleet with the radio enabled and reports the
//! per-policy epoch/byte/charge breakdown the controller actually realized.
//!
//! The binary exits non-zero if local processing fails to beat transmit-raw
//! at iso-accuracy: for every configuration at least one local point
//! (features, or compressed at ratio ≥ 2) must cost less total charge than
//! raw while staying within 1 accuracy point, and at the highest-rate
//! configuration — where a window carries enough samples for compressed
//! sensing to matter — *every* ratio ≥ 2 must clear that bar.  It also exits
//! non-zero if the tx-enabled fleet is not bit-identical across 1 vs 4
//! workers and 1 vs 4 shards.
//!
//! Progress goes to stderr; stdout is deterministic and committed as the
//! golden fixture `crates/bench/fixtures/tx_sweep_quick.txt`, which CI diffs.
//!
//! Run with `cargo run --release -p adasense-bench --bin tx_sweep -- --quick`.
//! Flags: `--devices N` and `--duration S` resize the fleet cohort.

use adasense::dse::TxExploration;
use adasense::prelude::*;
use adasense::shard::DiscardSink;
use adasense_bench::{int_arg, train_system, RunScale};

/// Compressed points may give up at most this much accuracy vs transmit-raw
/// (one point — the same budget the backend sweep grants int8 and cascade).
const ISO_ACCURACY_BUDGET: f64 = 0.01;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = RunScale::from_args();
    let devices = int_arg("--devices")?.unwrap_or(if scale == RunScale::Quick { 8 } else { 32 });
    let duration_s =
        int_arg("--duration")?.unwrap_or(if scale == RunScale::Quick { 120 } else { 360 }) as f64;

    let (spec, system) = train_system(scale)?;

    // --- The transmission-aware design space -----------------------------
    let exploration = TxExploration::new(spec.clone())
        .with_ratios(vec![2, 4])
        .with_repeats(if scale == RunScale::Quick { 1 } else { 3 });
    eprintln!(
        "[tx_sweep] exploring {} configurations × (raw, features, {} ratios)…",
        exploration.candidates.len(),
        exploration.ratios.len()
    );
    let report = exploration.run()?;
    println!("Transmission-aware design space (per classification epoch)\n");
    print!("{}", report.to_table_string());
    println!(
        "\nPareto front (highest→lowest charge): {}",
        report.pareto.iter().map(|e| e.label()).collect::<Vec<_>>().join(" > ")
    );

    // --- The crossover gate: local processing must beat transmit-raw -----
    // A point "beats raw" when it costs less total charge at iso-accuracy
    // (within the one-point budget).  Every configuration must have such a
    // local point, and the highest-rate configuration — whose windows carry
    // enough samples for the sparse projection to reconstruct well — must
    // clear the bar at *every* ratio ≥ 2.
    let beats_raw = |row: &adasense::dse::TxEvaluation, raw: &adasense::dse::TxEvaluation| {
        row.total_charge_uc() < raw.total_charge_uc()
            && raw.accuracy - row.accuracy <= ISO_ACCURACY_BUDGET
    };
    let densest = *exploration
        .candidates
        .iter()
        .max_by(|a, b| a.frequency.hz().total_cmp(&b.frequency.hz()))
        .expect("candidates are non-empty");
    for &config in &exploration.candidates {
        let rows: Vec<_> = report.evaluations.iter().filter(|e| e.config == config).collect();
        let raw = rows
            .iter()
            .find(|e| e.policy == TxPolicy::Raw)
            .ok_or_else(|| format!("no raw row for {config}"))?;
        let locals: Vec<_> = rows
            .iter()
            .filter(|e| {
                e.policy == TxPolicy::Features || (e.policy == TxPolicy::Compressed && e.ratio >= 2)
            })
            .collect();
        if !locals.iter().any(|row| beats_raw(row, raw)) {
            return Err(
                format!("no local point beats transmit-raw for {config} at iso-accuracy").into()
            );
        }
        if config == densest {
            for row in &locals {
                if !beats_raw(row, raw) {
                    return Err(format!(
                        "{} fails the iso-accuracy crossover at the highest-rate state: \
                         {:.1} uC/epoch at {:.2}% vs raw {:.1} uC/epoch at {:.2}%",
                        row.label(),
                        row.total_charge_uc(),
                        100.0 * row.accuracy,
                        raw.total_charge_uc(),
                        100.0 * raw.accuracy
                    )
                    .into());
                }
            }
        }
    }
    println!(
        "\ncrossover: local processing beats transmit-raw within {:.0} accuracy point \
         for every configuration, at every ratio >= 2 for {}",
        100.0 * ISO_ACCURACY_BUDGET,
        densest.label()
    );

    // --- The closed loop: an adaptive SPOT fleet with the radio on -------
    let fleet = FleetSpec {
        tx_ratio: Some(4),
        lockstep_devices: 4,
        ..FleetSpec::new(devices, duration_s, 97)
    };
    eprintln!("[tx_sweep] running the tx-enabled fleet ({devices} devices × {duration_s} s)…");
    let scheduler = FleetScheduler::new(&spec, &system);
    let live = scheduler.with_threads(4).run(&fleet)?;
    println!("\n{}", live.to_table_string());
    let epochs: u64 = TxPolicy::ALL.iter().map(|&p| live.tx_epochs(p)).sum();
    if epochs != live.total_epochs() {
        return Err(format!(
            "tx epochs ({epochs}) must partition the fleet's classified epochs ({})",
            live.total_epochs()
        )
        .into());
    }
    println!(
        "radio total: {} B, {:.1} uC across {} epochs",
        live.total_tx_bytes(),
        live.total_tx_charge_uc(),
        epochs
    );

    // --- Determinism gates ------------------------------------------------
    let serial = scheduler.with_threads(1).run(&fleet)?;
    if serial.encode() != live.encode() {
        return Err("tx-enabled 4-worker report differs from the 1-worker report".into());
    }
    let mut sharded = FleetReport::new(fleet.controller.label());
    for range in fleet.shards(4) {
        sharded.merge(&scheduler.run_shard(&fleet, range, &mut DiscardSink)?)?;
    }
    if sharded.encode() != live.encode() {
        return Err("4-shard merged report differs from the monolithic report".into());
    }
    println!("determinism: tx fleet is bit-identical at 1 vs 4 workers and 1 vs 4 shards");
    Ok(())
}
