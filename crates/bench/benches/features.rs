//! Benchmarks of the unified feature extraction (Section III-B): cost per 2-second
//! batch at each Pareto configuration, plus the Goertzel-vs-full-DFT ablation.

use adasense_dsp::prelude::*;
use adasense_sensor::{Sample3, SensorConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn batch_for(config: SensorConfig) -> Vec<Sample3> {
    let rate = config.frequency.hz();
    let n = config.frequency.samples_in(2.0);
    (0..n)
        .map(|k| {
            let t = k as f64 / rate;
            Sample3::new(
                t,
                0.1 * (3.0 * t).sin(),
                0.2 * (12.0 * t).cos(),
                1.0 + 0.3 * (std::f64::consts::TAU * 1.9 * t).sin(),
            )
        })
        .collect()
}

fn bench_feature_extraction(c: &mut Criterion) {
    let extractor = FeatureExtractor::paper();
    let mut group = c.benchmark_group("feature_extraction_2s_batch");
    for config in SensorConfig::paper_pareto_front() {
        let batch = batch_for(config);
        group.bench_function(config.label(), |b| {
            b.iter(|| black_box(extractor.extract(black_box(&batch), config.frequency.hz())))
        });
    }
    group.finish();
}

fn bench_goertzel_vs_dft(c: &mut Criterion) {
    // Ablation: computing only the three needed bins (Goertzel) vs the full direct
    // DFT spectrum for a 200-sample window.
    let signal: Vec<f64> = (0..200).map(|k| (k as f64 * 0.13).sin()).collect();
    let mut group = c.benchmark_group("spectral_3bins_200_samples");
    group.bench_function("goertzel_three_bins", |b| {
        b.iter(|| {
            let a = goertzel_magnitude(black_box(&signal), 2.0);
            let bb = goertzel_magnitude(black_box(&signal), 4.0);
            let c2 = goertzel_magnitude(black_box(&signal), 6.0);
            black_box(a + bb + c2)
        })
    });
    group.bench_function("full_direct_dft", |b| {
        b.iter(|| black_box(dft_magnitudes(black_box(&signal), 100)))
    });
    group.bench_function("radix2_fft_256", |b| {
        b.iter(|| {
            let mut padded: Vec<Complex> = signal.iter().map(|&v| Complex::new(v, 0.0)).collect();
            padded.resize(256, Complex::default());
            fft_radix2(&mut padded);
            black_box(padded[4].magnitude())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_feature_extraction, bench_goertzel_vs_dft);
criterion_main!(benches);
