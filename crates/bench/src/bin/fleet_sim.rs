//! Fleet smoke run: simulates a population of wearables through the parallel
//! fleet scheduler and verifies that the multi-threaded result is bit-identical
//! to the single-threaded one with the same base seed.
//!
//! Run with `cargo run --release -p adasense-bench --bin fleet_sim`
//! (add `--quick` for a reduced training set; `--devices N` and `--duration S`
//! to change the population; `--backend <f64|int8|mixed>` selects the
//! inference backend assignment; `--bench-json` additionally writes the
//! throughput measurement to `BENCH_fleet.json` — `--bench-out PATH` to move
//! it — for the `perf-track` CI job).  Exits non-zero if the determinism
//! check fails.

use adasense::prelude::*;
use adasense_bench::{int_arg, peak_rss_bytes, string_arg, train_system, FleetBench, RunScale};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = RunScale::from_args();
    let (spec, system) = train_system(scale)?;

    let mut fleet = FleetSpec::smoke();
    if let Some(devices) = int_arg("--devices")? {
        fleet.devices = devices;
    }
    if let Some(duration) = int_arg("--duration")? {
        fleet.duration_s = duration as f64;
    }
    if let Some(backend) = string_arg("--backend")? {
        fleet.population.backend = match backend.as_str() {
            "mixed" => BackendSpec::half_int8(),
            name => BackendSpec::Uniform(
                BackendKind::from_name(name)
                    .ok_or_else(|| format!("unknown backend `{name}` (f64, int8 or mixed)"))?,
            ),
        };
    }
    let (devices, duration_s) = (fleet.devices, fleet.duration_s);

    // Use at least 4 workers so the determinism check below always compares a
    // genuinely multi-threaded run against the serial one, even on 1-core CI.
    let scheduler = FleetScheduler::new(&spec, &system);
    let scheduler = scheduler.with_threads(scheduler.worker_threads().max(4));
    let threads = scheduler.worker_threads();
    eprintln!("[fleet_sim] running {devices} devices × {duration_s} s on {threads} workers…");
    let start = std::time::Instant::now();
    let parallel = scheduler.run(&fleet)?;
    let wall = start.elapsed();

    println!("Fleet simulation — {devices} devices × {duration_s} s\n");
    println!("{}", parallel.to_table_string());
    let simulated_s = parallel.total_duration_s();
    println!(
        "wall clock: {:.2} s on {threads} workers ({:.0}x realtime)",
        wall.as_secs_f64(),
        simulated_s / wall.as_secs_f64().max(1e-9)
    );

    if std::env::args().any(|a| a == "--bench-json") {
        let bench = FleetBench {
            devices,
            duration_s,
            device_ticks: parallel.total_epochs(),
            wall_s: wall.as_secs_f64(),
            threads,
            peak_rss_bytes: peak_rss_bytes(),
        };
        let path = string_arg("--bench-out")?.unwrap_or_else(|| "BENCH_fleet.json".to_string());
        std::fs::write(&path, bench.to_json())?;
        println!(
            "bench: {:.0} device-ticks/s, peak RSS {} → {path}",
            bench.device_ticks_per_sec(),
            bench
                .peak_rss_bytes
                .map_or("n/a".to_string(), |b| format!("{:.1} MiB", b as f64 / (1024.0 * 1024.0)))
        );
    }

    eprintln!("[fleet_sim] verifying bit-identity against a single-threaded run…");
    let serial = scheduler.with_threads(1).run(&fleet)?;
    if serial != parallel {
        return Err("multi-threaded fleet run differs from the single-threaded run".into());
    }
    println!("determinism: {threads}-worker report is bit-identical to the 1-worker report");
    Ok(())
}
