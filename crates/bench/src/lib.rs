//! # adasense-bench
//!
//! Benchmark and experiment harness for the AdaSense reproduction.
//!
//! This crate contains two things:
//!
//! * **Experiment binaries** (`src/bin/`), one per paper table/figure.  Each binary
//!   trains the HAR system, runs the corresponding experiment from
//!   [`adasense::experiments`] and prints the same rows/series the paper reports.
//!   Pass `--quick` for a reduced, fast run or `--paper` (the default) for the
//!   full-scale reproduction.
//! * **Criterion benches** (`benches/`), which measure the runtime cost of the
//!   pipeline components (feature extraction, classification, controller decisions,
//!   sensor capture) and of the experiment building blocks.
//!
//! The library part only holds small helpers shared by the binaries.

use adasense::prelude::*;

/// How large an experiment the binaries should run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunScale {
    /// Reduced dataset and shorter scenarios — finishes in seconds.
    Quick,
    /// The paper-scale experiment.
    Paper,
}

impl RunScale {
    /// Parses the scale from command-line arguments: `--quick` selects
    /// [`RunScale::Quick`], anything else (including `--paper`) the full run.
    pub fn from_args() -> Self {
        if std::env::args().any(|a| a == "--quick") {
            RunScale::Quick
        } else {
            RunScale::Paper
        }
    }

    /// The experiment specification for this scale.
    pub fn spec(self) -> ExperimentSpec {
        match self {
            RunScale::Quick => ExperimentSpec::quick(),
            RunScale::Paper => ExperimentSpec::paper(),
        }
    }

    /// The stability-sweep settings for this scale.
    pub fn sweep_settings(self) -> experiments::StabilitySweepSettings {
        match self {
            RunScale::Quick => experiments::StabilitySweepSettings::quick(),
            RunScale::Paper => experiments::StabilitySweepSettings::paper(),
        }
    }

    /// The intensity-comparison settings for this scale.
    pub fn iba_settings(self) -> experiments::IbaComparisonSettings {
        match self {
            RunScale::Quick => experiments::IbaComparisonSettings::quick(),
            RunScale::Paper => experiments::IbaComparisonSettings::paper(),
        }
    }
}

/// The string following `name` on the command line, or an error if the value is
/// missing.  Shared by the experiment binaries (a silently ignored flag would
/// run the default configuration and still exit 0).
///
/// # Errors
///
/// Returns a message naming the flag when no value follows it.
pub fn string_arg(name: &str) -> Result<Option<String>, String> {
    let mut args = std::env::args();
    while let Some(arg) = args.next() {
        if arg == name {
            return args.next().map(Some).ok_or_else(|| format!("{name} requires a value"));
        }
    }
    Ok(None)
}

/// The integer following `name` on the command line, or an error if it is
/// missing or not a number.
///
/// # Errors
///
/// Returns a message naming the flag when the value is missing or malformed.
pub fn int_arg(name: &str) -> Result<Option<u64>, String> {
    match string_arg(name)? {
        None => Ok(None),
        Some(value) => {
            value.parse().map(Some).map_err(|_| format!("{name} expects an integer, got `{value}`"))
        }
    }
}

/// Trains the HAR system for the selected scale, printing a short progress note.
///
/// # Errors
///
/// Propagates training errors from [`TrainedSystem::train`].
pub fn train_system(scale: RunScale) -> Result<(ExperimentSpec, TrainedSystem), AdaSenseError> {
    let spec = scale.spec();
    eprintln!(
        "[adasense-bench] training on {} windows across {} configurations…",
        spec.dataset.total_windows(),
        spec.dataset.configs.len()
    );
    let system = TrainedSystem::train(&spec)?;
    eprintln!(
        "[adasense-bench] unified classifier held-out accuracy: {:.2}%",
        100.0 * system.unified_test_accuracy()
    );
    Ok((spec, system))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_map_to_the_expected_specs() {
        assert_eq!(RunScale::Quick.spec(), ExperimentSpec::quick());
        assert_eq!(RunScale::Paper.spec(), ExperimentSpec::paper());
        assert!(
            RunScale::Paper.sweep_settings().thresholds.len()
                > RunScale::Quick.sweep_settings().thresholds.len()
        );
        assert!(
            RunScale::Paper.iba_settings().scenario_duration_s
                > RunScale::Quick.iba_settings().scenario_duration_s
        );
    }
}
