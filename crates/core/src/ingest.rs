//! Live telemetry ingestion: the binary wire format and the [`SampleSource`]s
//! that replay it into a [`DeviceRuntime`](crate::runtime::DeviceRuntime).
//!
//! The closed loop of the paper is driven by *whatever implements
//! [`SampleSource`]*.  Until now that was only the simulated
//! [`ScenarioSource`](crate::runtime::ScenarioSource); this module adds the
//! production path — real device traffic streamed off-device for scoring and
//! adaptation, as in compressed-sensing telemetry pipelines for remote health
//! monitoring:
//!
//! * **Wire format** — a compact, versioned, little-endian binary framing of
//!   [`TelemetryBatch`]es (spec in `docs/WIRE_FORMAT.md`): [`FrameEncoder`]
//!   writes header / batch / end-of-stream frames into a reused buffer,
//!   [`FrameDecoder`] reads them back with full validation, and
//!   [`TelemetryTrace`] bundles a whole recorded session.
//! * **[`ChannelSource`]** — a bounded in-process ring buffer
//!   ([`telemetry_channel`]): the producer half ([`TelemetrySender`]) blocks
//!   when the ring is full, giving natural backpressure; dropping it signals
//!   end-of-stream.  This is the test / fleet-cohort transport.
//! * **[`SocketSource`]** — length-prefixed frames over TCP or Unix-domain
//!   sockets with a connect-time [`ReconnectPolicy`]; backpressure is the
//!   transport's own flow control (the reader decodes one frame per tick and
//!   buffers at most one small fixed read block ahead).
//! * **[`TraceRecorder`]** — a decorator that records everything a wrapped
//!   source delivers (windows *and* the ground-truth labels the runtime will
//!   score against) so any simulated run — including fault-injected ones —
//!   can be exported and replayed bit-identically.
//! * **[`reactor`]** *(Unix)* — the event-driven ingestion reactor: one
//!   thread readiness-polls thousands of nonblocking sockets, decodes frames
//!   incrementally with [`StreamParser`], hands complete batches to
//!   channel-fed fleet devices, and rides out torn connections with the
//!   RESUME handshake.
//! * **[`serve`]** *(Unix)* — the matching server: one thread serves a whole
//!   simulated fleet's recorded traces as live per-device socket streams
//!   (the `telemetry_serve` binary), with server-side frame resume.
//!
//! The acceptance bar for this layer is **determinism**: replaying a recorded
//! trace through a socket must reproduce the originating run's
//! [`DeviceSummary`](crate::fleet::DeviceSummary) rows bit for bit (gated in
//! CI by the `telemetry_replay` binary).  That works because the runtime's
//! control decisions are pure functions of the sample stream, and the wire
//! format preserves every `f64` bit pattern exactly.

use std::io::{BufReader, Read, Write};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::time::Duration;

use adasense_data::{Activity, EPOCH_LABEL_OFFSET_S};
use adasense_dsp::{ProjectionScratch, SparseProjection, FEATURE_DIM};
use adasense_sensor::{Sample3, SensorConfig, TelemetryBatch};

use crate::error::AdaSenseError;
use crate::runtime::{SampleSource, SourceStatus};

#[cfg(unix)]
pub mod reactor;
#[cfg(unix)]
pub mod serve;

/// Magic bytes opening every telemetry stream.
pub const WIRE_MAGIC: [u8; 4] = *b"ADSN";

/// Wire-format version this build writes (see `docs/WIRE_FORMAT.md` for the
/// versioning rules).  v2 added the RESUME frame kind; v3 added the
/// COMPRESSED batch frame (a seeded sparse-projection payload); v4 added the
/// JOIN handshake frame (device id + initial configuration + start epoch)
/// that opens a served device stream for fleet-churn bookkeeping.  Streams of
/// older versions — which by construction contain none of the newer frame
/// kinds — decode identically, so readers accept all of them.
pub const WIRE_VERSION: u16 = 4;

/// Wire-format versions readers accept.  Every frame an older stream can
/// carry means the same thing in v4, so accepting all of them costs nothing;
/// anything else is rejected (no minor-version negotiation).
const ACCEPTED_VERSIONS: [u16; 4] = [1, 2, 3, WIRE_VERSION];

/// Frame-kind tag of a sample batch.
const KIND_BATCH: u8 = 0x01;
/// Frame-kind tag of the end-of-stream marker.
const KIND_END: u8 = 0x02;
/// Frame-kind tag of a shard's encoded fleet report (the shard→coordinator
/// transport of the `fleet_shard` binary).
const KIND_REPORT: u8 = 0x03;
/// Frame-kind tag of a resume request (client→server on reconnect; v2).
const KIND_RESUME: u8 = 0x04;
/// Frame-kind tag of a compressed sample batch: a seeded sparse random
/// projection of the window instead of its raw samples (v3).
const KIND_COMPRESSED: u8 = 0x05;
/// Frame-kind tag of the JOIN handshake that opens a served device stream
/// (v4): device id, the device's initial sensor configuration, and the fleet
/// epoch at which the device joined the cohort.
const KIND_JOIN: u8 = 0x06;

/// Exact payload length of a RESUME frame: kind byte + `device_id` + the
/// index of the next batch the client wants.
const RESUME_PAYLOAD_LEN: usize = 1 + 8 + 8;
/// Exact payload length of a JOIN frame: kind byte + `device_id` + the
/// configuration tag + `start_epoch`.
const JOIN_PAYLOAD_LEN: usize = 1 + 8 + 1 + 8;

/// Fixed part of a batch payload: kind, config, label, reserved byte, two
/// `f64` times and the `u32` sample count.
const BATCH_HEAD_LEN: usize = 4 + 8 + 8 + 4;
/// Encoded size of one sample (four little-endian `f64`s).
const SAMPLE_LEN: usize = 32;
/// Fixed part of a compressed-batch payload: the batch head fields plus the
/// `u32` per-axis measurement count and the `u64` projection seed.
const COMPRESSED_HEAD_LEN: usize = BATCH_HEAD_LEN + 4 + 8;
/// Encoded size of one per-axis measurement triple (three little-endian
/// `f64`s — timestamps are not transmitted; the decoder regenerates a uniform
/// grid from `t_end`, `window_s` and the sample count).
const MEASUREMENT_LEN: usize = 24;
/// Upper bound on a frame payload, enforced by the decoder (rejecting
/// corrupt length prefixes before any allocation) and by the encoder
/// (refusing to produce a frame the decoder would reject).  The largest
/// legitimate batch (2 s at 100 Hz) is ~6.3 KiB; 1 MiB leaves two orders of
/// magnitude of headroom for future formats.
pub const MAX_FRAME_LEN: usize = 1 << 20;
/// Upper bound on a report frame payload.  An encoded
/// [`FleetReport`](crate::fleet::FleetReport) scales with the population's
/// *diversity* (sketch buckets × routine/backend groups), not its device
/// count — a million-device report measures well under a megabyte — so
/// 64 MiB rejects corrupt length prefixes while leaving orders of magnitude
/// of headroom.
pub const MAX_REPORT_FRAME_LEN: usize = 64 << 20;

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

/// Encodes wire-format frames into an internal buffer that is reused across
/// calls, so a steady-state producer allocates nothing per frame.
///
/// # Examples
///
/// Encode a stream and decode it back:
///
/// ```
/// use adasense::ingest::{FrameDecoder, FrameEncoder, FrameKind};
/// use adasense_sensor::{Sample3, SensorConfig, TelemetryBatch};
///
/// let batch = TelemetryBatch::new(
///     SensorConfig::paper_pareto_front()[0],
///     2.0,
///     2.0,
///     0,
///     vec![Sample3::new(0.0, 0.0, 0.0, 1.0)],
/// );
///
/// let mut encoder = FrameEncoder::new();
/// let mut stream = Vec::new();
/// stream.extend_from_slice(encoder.header());
/// stream.extend_from_slice(encoder.batch(&batch));
/// stream.extend_from_slice(encoder.end(1));
///
/// let mut decoder = FrameDecoder::new();
/// let mut reader = &stream[..];
/// decoder.read_header(&mut reader).unwrap();
/// let mut decoded = TelemetryBatch::placeholder();
/// assert_eq!(decoder.read_frame(&mut reader, &mut decoded).unwrap(), FrameKind::Batch);
/// assert_eq!(decoded, batch);
/// assert_eq!(
///     decoder.read_frame(&mut reader, &mut decoded).unwrap(),
///     FrameKind::End { batches: 1 }
/// );
/// ```
#[derive(Debug, Default)]
pub struct FrameEncoder {
    buf: Vec<u8>,
    /// Per-axis scratch for [`compressed`](FrameEncoder::compressed): the
    /// de-interleaved axis samples and their projected measurements.
    axis: Vec<f64>,
    measurements: Vec<f64>,
}

impl FrameEncoder {
    /// Creates an encoder with an empty scratch buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Encodes the 8-byte stream header (magic, version, flags).
    pub fn header(&mut self) -> &[u8] {
        self.buf.clear();
        self.buf.extend_from_slice(&WIRE_MAGIC);
        self.buf.extend_from_slice(&WIRE_VERSION.to_le_bytes());
        self.buf.extend_from_slice(&0u16.to_le_bytes());
        &self.buf
    }

    /// Encodes one length-prefixed batch frame.
    ///
    /// # Panics
    ///
    /// Panics if the encoded payload would exceed [`MAX_FRAME_LEN`]: the
    /// decoder rejects such frames, so encoding one would break the
    /// encode→decode identity contract (and far beyond it, the `u32` length
    /// prefix would silently truncate).  The largest legitimate batch is
    /// three orders of magnitude below the cap.
    pub fn batch(&mut self, batch: &TelemetryBatch) -> &[u8] {
        let payload_len = BATCH_HEAD_LEN + batch.samples.len() * SAMPLE_LEN;
        assert!(
            payload_len <= MAX_FRAME_LEN,
            "batch of {} samples encodes to {payload_len} B, above the {MAX_FRAME_LEN} B frame \
             cap the decoder enforces",
            batch.samples.len()
        );
        self.buf.clear();
        self.buf.reserve(4 + payload_len);
        self.buf.extend_from_slice(&(payload_len as u32).to_le_bytes());
        self.buf.push(KIND_BATCH);
        self.buf.push(batch.config.index() as u8);
        self.buf.push(batch.label);
        self.buf.push(0); // reserved
        self.buf.extend_from_slice(&batch.t_end.to_le_bytes());
        self.buf.extend_from_slice(&batch.window_s.to_le_bytes());
        self.buf.extend_from_slice(&(batch.samples.len() as u32).to_le_bytes());
        for sample in &batch.samples {
            self.buf.extend_from_slice(&sample.t.to_le_bytes());
            self.buf.extend_from_slice(&sample.x.to_le_bytes());
            self.buf.extend_from_slice(&sample.y.to_le_bytes());
            self.buf.extend_from_slice(&sample.z.to_le_bytes());
        }
        &self.buf
    }

    /// Encodes the end-of-stream frame carrying the number of batch frames
    /// sent before it (an integrity check for the reader).
    pub fn end(&mut self, batches: u64) -> &[u8] {
        self.buf.clear();
        self.buf.extend_from_slice(&9u32.to_le_bytes());
        self.buf.push(KIND_END);
        self.buf.extend_from_slice(&batches.to_le_bytes());
        &self.buf
    }

    /// Encodes one length-prefixed report frame: shard `shard`'s canonically
    /// encoded fleet report, as produced by
    /// [`FleetReport::encode`](crate::fleet::FleetReport::encode).  This is
    /// the shard→coordinator transport of the `fleet_shard` binary.
    ///
    /// # Panics
    ///
    /// Panics if the payload would exceed [`MAX_REPORT_FRAME_LEN`]: the
    /// decoder rejects such frames, so encoding one would break the
    /// encode→decode identity contract.
    pub fn report(&mut self, shard: u32, report: &[u8]) -> &[u8] {
        let payload_len = 5 + report.len();
        assert!(
            payload_len <= MAX_REPORT_FRAME_LEN,
            "encoded report of {} B exceeds the {MAX_REPORT_FRAME_LEN} B frame cap the decoder \
             enforces",
            report.len()
        );
        self.buf.clear();
        self.buf.reserve(4 + payload_len);
        self.buf.extend_from_slice(&(payload_len as u32).to_le_bytes());
        self.buf.push(KIND_REPORT);
        self.buf.extend_from_slice(&shard.to_le_bytes());
        self.buf.extend_from_slice(report);
        &self.buf
    }

    /// Encodes one resume-request frame: on reconnect after a torn
    /// connection, the client tells the server which device stream it was
    /// consuming and the index of the next batch it has *not* yet received,
    /// so the server can replay from exactly there (see `docs/WIRE_FORMAT.md`
    /// § RESUME).
    pub fn resume(&mut self, device_id: u64, next_batch: u64) -> &[u8] {
        self.buf.clear();
        self.buf.extend_from_slice(&(RESUME_PAYLOAD_LEN as u32).to_le_bytes());
        self.buf.push(KIND_RESUME);
        self.buf.extend_from_slice(&device_id.to_le_bytes());
        self.buf.extend_from_slice(&next_batch.to_le_bytes());
        &self.buf
    }

    /// Encodes one join-handshake frame (v4): the first frame of a served
    /// device stream, announcing which device the stream carries, the
    /// device's initial sensor configuration, and the fleet epoch at which
    /// the device joined the cohort (`0` for a device present from run
    /// start).  Resumed streams repeat the JOIN so a reconnecting consumer
    /// re-learns the same metadata (see `docs/WIRE_FORMAT.md` § JOIN).
    pub fn join(&mut self, device_id: u64, config: SensorConfig, start_epoch: u64) -> &[u8] {
        self.buf.clear();
        self.buf.extend_from_slice(&(JOIN_PAYLOAD_LEN as u32).to_le_bytes());
        self.buf.push(KIND_JOIN);
        self.buf.extend_from_slice(&device_id.to_le_bytes());
        self.buf.push(config.index() as u8);
        self.buf.extend_from_slice(&start_epoch.to_le_bytes());
        &self.buf
    }

    /// Encodes one length-prefixed compressed-batch frame (v3): the window is
    /// replaced by a seeded sparse random projection of each axis, compressed
    /// roughly `ratio`× (see [`SparseProjection`]).  The decoder reconstructs
    /// the window deterministically from the carried seed, so compressed
    /// frames flow through every consumer as ordinary batches.
    ///
    /// # Panics
    ///
    /// Panics on an empty batch (there is nothing to project) or if the
    /// encoded payload would exceed [`MAX_FRAME_LEN`] — impossible for any
    /// batch the raw encoder accepts, since a compressed frame is strictly
    /// smaller than its raw counterpart.
    pub fn compressed(&mut self, batch: &TelemetryBatch, ratio: u32, seed: u64) -> &[u8] {
        let samples = batch.samples.len();
        assert!(samples > 0, "cannot compress an empty batch");
        let projection = SparseProjection::new(seed, samples, ratio);
        let coeffs = projection.output_len();
        let payload_len = COMPRESSED_HEAD_LEN + coeffs * MEASUREMENT_LEN;
        assert!(
            payload_len <= MAX_FRAME_LEN,
            "compressed batch of {coeffs} measurements encodes to {payload_len} B, above the \
             {MAX_FRAME_LEN} B frame cap the decoder enforces"
        );
        self.buf.clear();
        self.buf.reserve(4 + payload_len);
        self.buf.extend_from_slice(&(payload_len as u32).to_le_bytes());
        self.buf.push(KIND_COMPRESSED);
        self.buf.push(batch.config.index() as u8);
        self.buf.push(batch.label);
        self.buf.push(0); // reserved
        self.buf.extend_from_slice(&batch.t_end.to_le_bytes());
        self.buf.extend_from_slice(&batch.window_s.to_le_bytes());
        self.buf.extend_from_slice(&(samples as u32).to_le_bytes());
        self.buf.extend_from_slice(&(coeffs as u32).to_le_bytes());
        self.buf.extend_from_slice(&seed.to_le_bytes());
        // Measurements are written axis-major (all x, all y, all z) so the
        // decoder can reconstruct one axis at a time from a contiguous slice.
        self.axis.resize(samples, 0.0);
        self.measurements.resize(coeffs, 0.0);
        for extract in
            [(|s: &Sample3| s.x) as fn(&Sample3) -> f64, |s: &Sample3| s.y, |s: &Sample3| s.z]
        {
            for (slot, sample) in self.axis.iter_mut().zip(&batch.samples) {
                *slot = extract(sample);
            }
            projection.project_into(&self.axis, &mut self.measurements);
            for value in &self.measurements {
                self.buf.extend_from_slice(&value.to_le_bytes());
            }
        }
        &self.buf
    }
}

// ---------------------------------------------------------------------------
// Per-policy transmission sizes
// ---------------------------------------------------------------------------

/// On-wire size of one raw batch frame carrying `samples` samples (length
/// prefix included) — what a transmit-raw device sends per epoch.
pub fn raw_tx_bytes(samples: usize) -> usize {
    4 + BATCH_HEAD_LEN + samples * SAMPLE_LEN
}

/// On-wire size of one feature-vector payload (length prefix and batch-style
/// head included) — what a transmit-features device sends per epoch.  With
/// the unified 15-dimensional feature vector this is 148 B, within rounding
/// of the 144 B time-domain payload measured by Pagán et al.
pub fn features_tx_bytes() -> usize {
    4 + BATCH_HEAD_LEN + FEATURE_DIM * 8
}

/// On-wire size of one compressed batch frame for a `samples`-sample window
/// at roughly `ratio`× compression (length prefix included) — what a
/// transmit-compressed device sends per epoch.  Matches
/// [`FrameEncoder::compressed`] byte for byte.
pub fn compressed_tx_bytes(samples: usize, ratio: u32) -> usize {
    let coeffs = SparseProjection::new(0, samples.max(1), ratio).output_len();
    4 + COMPRESSED_HEAD_LEN + coeffs * MEASUREMENT_LEN
}

/// The canonical per-frame projection seed: a splitmix64-style mix of the
/// device id and the batch index, so every frame of every device projects
/// through a different — but fully reproducible — matrix.  The seed travels
/// in the frame, so decoders never need to recompute it; this helper only
/// keeps the *encoding* sides (server, tests, sweeps) in agreement.
pub fn compressed_frame_seed(device_id: u64, batch_index: u64) -> u64 {
    let mut z = device_id
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(batch_index)
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

/// What [`FrameDecoder::read_frame`] decoded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// A sample batch was decoded into the caller's [`TelemetryBatch`].
    Batch,
    /// The end-of-stream marker; `batches` is the producer's batch count.
    End {
        /// Number of batch frames the producer claims to have sent.
        batches: u64,
    },
    /// A shard's encoded fleet report; the bytes are available from
    /// [`FrameDecoder::report_payload`] until the next `read_frame` call.
    Report {
        /// The sending shard's index in the coordinator's shard plan.
        shard: u32,
    },
    /// A resume request (client→server after a reconnect): replay the named
    /// device's stream starting at batch index `next_batch`.
    Resume {
        /// The device whose stream the client was consuming.
        device_id: u64,
        /// Index of the first batch the client has not yet received.
        next_batch: u64,
    },
    /// The join handshake opening a served device stream (v4): metadata the
    /// consuming fleet needs to account a churned device correctly.
    Join {
        /// The device this stream carries.
        device_id: u64,
        /// The device's initial sensor configuration.
        config: SensorConfig,
        /// Fleet epoch at which the device joined the cohort (0 = from run
        /// start).
        start_epoch: u64,
    },
}

/// Decodes wire-format frames from any [`Read`], validating every field and
/// reusing one internal payload buffer (and the caller's [`TelemetryBatch`])
/// across frames.
///
/// See [`FrameEncoder`] for a round-trip example.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    payload: Vec<u8>,
    /// Whether `payload` currently holds a report frame (gates
    /// [`report_payload`](FrameDecoder::report_payload)).
    holds_report: bool,
}

impl FrameDecoder {
    /// Creates a decoder with an empty scratch buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reads and validates the 8-byte stream header.
    ///
    /// # Errors
    ///
    /// Returns [`AdaSenseError::Ingest`] on bad magic, an unsupported version,
    /// non-zero flags or a truncated header.
    pub fn read_header<R: Read + ?Sized>(&mut self, reader: &mut R) -> Result<(), AdaSenseError> {
        let mut head = [0u8; 8];
        read_exact(reader, &mut head, "stream header")?;
        validate_stream_header(&head)
    }

    /// Reads the next frame.  Batch frames are decoded into `batch` in place
    /// (its sample allocation is reused).
    ///
    /// # Errors
    ///
    /// Returns [`AdaSenseError::Ingest`] on a truncated stream, an oversized
    /// or inconsistent length prefix, an unknown frame kind, or an invalid
    /// sensor-configuration / label tag.
    pub fn read_frame<R: Read + ?Sized>(
        &mut self,
        reader: &mut R,
        batch: &mut TelemetryBatch,
    ) -> Result<FrameKind, AdaSenseError> {
        let mut len_bytes = [0u8; 4];
        read_exact(reader, &mut len_bytes, "frame length prefix")?;
        let len = u32::from_le_bytes(len_bytes) as usize;
        // The generous report cap gates the allocation; the tighter batch cap
        // is enforced once the kind byte is known.
        if len == 0 || len > MAX_REPORT_FRAME_LEN {
            return Err(AdaSenseError::ingest(format!(
                "frame length {len} is outside 1..={MAX_REPORT_FRAME_LEN}"
            )));
        }
        self.holds_report = false;
        self.payload.resize(len, 0);
        read_exact(reader, &mut self.payload, "frame payload")?;
        let kind = decode_frame_payload(&self.payload, batch)?;
        if matches!(kind, FrameKind::Report { .. }) {
            self.holds_report = true;
        }
        Ok(kind)
    }

    /// The encoded report bytes of the most recently decoded
    /// [`FrameKind::Report`] frame (pass them to
    /// [`FleetReport::decode`](crate::fleet::FleetReport::decode)).  Empty
    /// unless the last [`read_frame`](FrameDecoder::read_frame) returned a
    /// report.
    pub fn report_payload(&self) -> &[u8] {
        if self.holds_report {
            &self.payload[5..]
        } else {
            &[]
        }
    }
}

/// Validates the 8-byte stream header (magic, version, flags) — the shared
/// core of [`FrameDecoder::read_header`] and [`StreamParser`].
fn validate_stream_header(head: &[u8; 8]) -> Result<(), AdaSenseError> {
    if head[0..4] != WIRE_MAGIC {
        return Err(AdaSenseError::ingest(format!(
            "bad magic {:02x?} (expected `ADSN`)",
            &head[0..4]
        )));
    }
    let version = u16::from_le_bytes([head[4], head[5]]);
    if !ACCEPTED_VERSIONS.contains(&version) {
        return Err(AdaSenseError::ingest(format!(
            "unsupported wire-format version {version} (this build speaks {ACCEPTED_VERSIONS:?})"
        )));
    }
    let flags = u16::from_le_bytes([head[6], head[7]]);
    if flags != 0 {
        return Err(AdaSenseError::ingest(format!("unsupported header flags {flags:#06x}")));
    }
    Ok(())
}

/// Classifies and decodes one complete frame payload — the shared core of
/// [`FrameDecoder::read_frame`] and [`StreamParser::next_frame`].  Batch
/// frames are decoded into `batch`; report payload bytes stay with the
/// caller's buffer.
fn decode_frame_payload(
    payload: &[u8],
    batch: &mut TelemetryBatch,
) -> Result<FrameKind, AdaSenseError> {
    let len = payload.len();
    match payload[0] {
        KIND_BATCH => {
            if len > MAX_FRAME_LEN {
                return Err(AdaSenseError::ingest(format!(
                    "batch frame length {len} exceeds the {MAX_FRAME_LEN} B cap"
                )));
            }
            decode_batch_payload(payload, batch)?;
            Ok(FrameKind::Batch)
        }
        KIND_END => {
            if len != 9 {
                return Err(AdaSenseError::ingest(format!(
                    "end-of-stream frame has length {len}, expected 9"
                )));
            }
            let mut count = [0u8; 8];
            count.copy_from_slice(&payload[1..9]);
            Ok(FrameKind::End { batches: u64::from_le_bytes(count) })
        }
        KIND_REPORT => {
            if len < 5 {
                return Err(AdaSenseError::ingest(format!(
                    "report frame has length {len}, expected at least 5"
                )));
            }
            let shard = u32::from_le_bytes(payload[1..5].try_into().expect("4-byte slice"));
            Ok(FrameKind::Report { shard })
        }
        KIND_RESUME => {
            if len != RESUME_PAYLOAD_LEN {
                return Err(AdaSenseError::ingest(format!(
                    "resume frame has length {len}, expected {RESUME_PAYLOAD_LEN}"
                )));
            }
            let device_id = u64::from_le_bytes(payload[1..9].try_into().expect("8-byte slice"));
            let next_batch = u64::from_le_bytes(payload[9..17].try_into().expect("8-byte slice"));
            Ok(FrameKind::Resume { device_id, next_batch })
        }
        KIND_COMPRESSED => {
            if len > MAX_FRAME_LEN {
                return Err(AdaSenseError::ingest(format!(
                    "compressed frame length {len} exceeds the {MAX_FRAME_LEN} B cap"
                )));
            }
            decode_compressed_payload(payload, batch)?;
            Ok(FrameKind::Batch)
        }
        KIND_JOIN => {
            if len != JOIN_PAYLOAD_LEN {
                return Err(AdaSenseError::ingest(format!(
                    "join frame has length {len}, expected {JOIN_PAYLOAD_LEN}"
                )));
            }
            let device_id = u64::from_le_bytes(payload[1..9].try_into().expect("8-byte slice"));
            let config = SensorConfig::from_index(payload[9] as usize).ok_or_else(|| {
                AdaSenseError::ingest(format!("invalid sensor-configuration tag {}", payload[9]))
            })?;
            let start_epoch = u64::from_le_bytes(payload[10..18].try_into().expect("8-byte slice"));
            Ok(FrameKind::Join { device_id, config, start_epoch })
        }
        kind => Err(AdaSenseError::ingest(format!("unknown frame kind {kind:#04x}"))),
    }
}

/// Decodes a complete compressed-batch payload (kind byte included) into
/// `batch`, reconstructing the window from its sparse-projection measurements
/// (see `docs/WIRE_FORMAT.md` § COMPRESSED).  Reconstruction is a pure
/// function of the carried seed and measurements, so replaying a compressed
/// stream is as deterministic as replaying a raw one.  Timestamps are
/// regenerated on a uniform grid ending at `t_end`.
fn decode_compressed_payload(
    payload: &[u8],
    batch: &mut TelemetryBatch,
) -> Result<(), AdaSenseError> {
    if payload.len() < COMPRESSED_HEAD_LEN {
        return Err(AdaSenseError::ingest(format!(
            "compressed frame has length {}, expected at least {COMPRESSED_HEAD_LEN}",
            payload.len()
        )));
    }
    let config = SensorConfig::from_index(payload[1] as usize).ok_or_else(|| {
        AdaSenseError::ingest(format!("invalid sensor-configuration tag {}", payload[1]))
    })?;
    let label = payload[2];
    if label as usize >= Activity::COUNT {
        return Err(AdaSenseError::ingest(format!(
            "invalid class label {label} (must be < {})",
            Activity::COUNT
        )));
    }
    let t_end = f64::from_le_bytes(payload[4..12].try_into().expect("8-byte slice"));
    let window_s = f64::from_le_bytes(payload[12..20].try_into().expect("8-byte slice"));
    if !t_end.is_finite() || !window_s.is_finite() || window_s <= 0.0 {
        return Err(AdaSenseError::ingest(format!(
            "batch times are not sane (t_end {t_end}, window {window_s})"
        )));
    }
    let samples = u32::from_le_bytes(payload[20..24].try_into().expect("4-byte slice")) as usize;
    let coeffs = u32::from_le_bytes(payload[24..28].try_into().expect("4-byte slice")) as usize;
    if samples == 0 || coeffs == 0 || coeffs > samples {
        return Err(AdaSenseError::ingest(format!(
            "compressed frame carries {coeffs} measurements for {samples} samples"
        )));
    }
    if samples > MAX_FRAME_LEN / SAMPLE_LEN {
        return Err(AdaSenseError::ingest(format!(
            "compressed frame claims {samples} samples, above the raw-frame bound"
        )));
    }
    let seed = u64::from_le_bytes(payload[28..36].try_into().expect("8-byte slice"));
    if payload.len() != COMPRESSED_HEAD_LEN + coeffs * MEASUREMENT_LEN {
        return Err(AdaSenseError::ingest(format!(
            "compressed frame length {} does not match its measurement count {coeffs}",
            payload.len()
        )));
    }
    let projection = SparseProjection::with_lengths(seed, samples, coeffs);
    let mut measurements = vec![0.0; coeffs];
    let mut axis = vec![0.0; samples];
    let mut scratch = ProjectionScratch::default();

    batch.reset(config, t_end, window_s, label);
    let step = window_s / samples as f64;
    let t0 = t_end - window_s;
    batch.samples.reserve(samples);
    for i in 0..samples {
        batch.samples.push(Sample3::new(t0 + (i + 1) as f64 * step, 0.0, 0.0, 0.0));
    }
    for axis_index in 0..3 {
        let base = COMPRESSED_HEAD_LEN + axis_index * coeffs * 8;
        for (slot, chunk) in
            measurements.iter_mut().zip(payload[base..base + coeffs * 8].chunks_exact(8))
        {
            *slot = f64::from_le_bytes(chunk.try_into().expect("8-byte slice"));
        }
        projection.reconstruct_into(&measurements, &mut axis, &mut scratch);
        for (sample, &value) in batch.samples.iter_mut().zip(&axis) {
            match axis_index {
                0 => sample.x = value,
                1 => sample.y = value,
                _ => sample.z = value,
            }
        }
    }
    Ok(())
}

/// Decodes a complete batch payload (kind byte included) into `batch`.
fn decode_batch_payload(payload: &[u8], batch: &mut TelemetryBatch) -> Result<(), AdaSenseError> {
    if payload.len() < BATCH_HEAD_LEN {
        return Err(AdaSenseError::ingest(format!(
            "batch frame has length {}, expected at least {BATCH_HEAD_LEN}",
            payload.len()
        )));
    }
    let config = SensorConfig::from_index(payload[1] as usize).ok_or_else(|| {
        AdaSenseError::ingest(format!("invalid sensor-configuration tag {}", payload[1]))
    })?;
    let label = payload[2];
    if label as usize >= Activity::COUNT {
        return Err(AdaSenseError::ingest(format!(
            "invalid class label {label} (must be < {})",
            Activity::COUNT
        )));
    }
    let t_end = f64::from_le_bytes(payload[4..12].try_into().expect("8-byte slice"));
    let window_s = f64::from_le_bytes(payload[12..20].try_into().expect("8-byte slice"));
    if !t_end.is_finite() || !window_s.is_finite() || window_s <= 0.0 {
        return Err(AdaSenseError::ingest(format!(
            "batch times are not sane (t_end {t_end}, window {window_s})"
        )));
    }
    let count = u32::from_le_bytes(payload[20..24].try_into().expect("4-byte slice")) as usize;
    if payload.len() != BATCH_HEAD_LEN + count * SAMPLE_LEN {
        return Err(AdaSenseError::ingest(format!(
            "batch frame length {} does not match its sample count {count}",
            payload.len()
        )));
    }
    batch.reset(config, t_end, window_s, label);
    batch.samples.reserve(count);
    for chunk in payload[BATCH_HEAD_LEN..].chunks_exact(SAMPLE_LEN) {
        batch.samples.push(Sample3::new(
            f64::from_le_bytes(chunk[0..8].try_into().expect("8-byte slice")),
            f64::from_le_bytes(chunk[8..16].try_into().expect("8-byte slice")),
            f64::from_le_bytes(chunk[16..24].try_into().expect("8-byte slice")),
            f64::from_le_bytes(chunk[24..32].try_into().expect("8-byte slice")),
        ));
    }
    Ok(())
}

/// Reads exactly `buf.len()` bytes, mapping I/O errors (including EOF) to
/// [`AdaSenseError::Ingest`] with `what` naming the missing piece.
fn read_exact<R: Read + ?Sized>(
    reader: &mut R,
    buf: &mut [u8],
    what: &str,
) -> Result<(), AdaSenseError> {
    reader
        .read_exact(buf)
        .map_err(|e| AdaSenseError::ingest(format!("stream ended inside {what}: {e}")))
}

// ---------------------------------------------------------------------------
// Incremental (push) parsing
// ---------------------------------------------------------------------------

/// Incremental push-parser for wire-format streams: feed it whatever bytes a
/// nonblocking read produced, then drain complete frames.
///
/// This is the reactor-side counterpart of [`FrameDecoder`], which *pulls*
/// from a blocking [`Read`].  A readiness-polled connection delivers
/// arbitrary byte fragments — half a length prefix, three frames at once —
/// so the parser accumulates them and only decodes once a complete header or
/// frame is buffered.  It never blocks and it never panics on bad input:
/// corrupt bytes are an [`AdaSenseError`], so a reactor multiplexing
/// thousands of feeds can disconnect one bad client instead of taking down
/// the process.
///
/// # Examples
///
/// ```
/// use adasense::ingest::{FrameEncoder, FrameKind, StreamParser};
/// use adasense_sensor::TelemetryBatch;
///
/// let mut encoder = FrameEncoder::new();
/// let mut stream = Vec::new();
/// stream.extend_from_slice(encoder.header());
/// stream.extend_from_slice(encoder.end(0));
///
/// let mut parser = StreamParser::telemetry();
/// let mut batch = TelemetryBatch::placeholder();
/// // Feed one byte at a time: no fragmentation can confuse the parser.
/// let mut frames = Vec::new();
/// for byte in stream {
///     parser.feed(&[byte]);
///     while let Some(kind) = parser.next_frame(&mut batch).unwrap() {
///         frames.push(kind);
///     }
/// }
/// assert_eq!(frames, vec![FrameKind::End { batches: 0 }]);
/// ```
#[derive(Debug)]
pub struct StreamParser {
    buf: Vec<u8>,
    start: usize,
    header_seen: bool,
    /// Frame-length cap enforced as soon as the length prefix is buffered,
    /// *before* waiting for (or buffering) the payload.
    cap: usize,
}

impl StreamParser {
    /// A parser accepting any frame the wire format allows, including report
    /// frames up to [`MAX_REPORT_FRAME_LEN`].
    pub fn new() -> Self {
        Self { buf: Vec::new(), start: 0, header_seen: false, cap: MAX_REPORT_FRAME_LEN }
    }

    /// A parser for device telemetry feeds: frames above [`MAX_FRAME_LEN`]
    /// are rejected as soon as their length prefix arrives, so a corrupt or
    /// hostile peer cannot make the reactor buffer megabytes before the
    /// per-kind caps would catch it.
    pub fn telemetry() -> Self {
        Self { cap: MAX_FRAME_LEN, ..Self::new() }
    }

    /// Appends freshly read bytes to the parse buffer.
    pub fn feed(&mut self, bytes: &[u8]) {
        // Compact before growing: everything before `start` is consumed.
        if self.start > 0 {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed by a complete frame.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Whether the 8-byte stream header has been parsed and validated.
    pub fn header_seen(&self) -> bool {
        self.header_seen
    }

    /// Tries to parse the next complete frame out of the buffered bytes.
    /// Batch frames are decoded into `batch` in place.  Returns `Ok(None)`
    /// when the buffer holds only a partial header or frame — feed more bytes
    /// and try again.
    ///
    /// Report frames are classified (so a consumer can reject them with
    /// context) but their payload bytes are not retained; they belong on the
    /// blocking shard→coordinator path, which uses [`FrameDecoder`].
    ///
    /// # Errors
    ///
    /// Returns [`AdaSenseError::Ingest`] on a bad stream header, a length
    /// prefix of 0 or above this parser's cap, an unknown frame kind, or any
    /// of the per-kind validation failures [`FrameDecoder::read_frame`]
    /// rejects.  The parser is poisoned in no special way — but a stream that
    /// erred once has lost framing, so callers should disconnect.
    pub fn next_frame(
        &mut self,
        batch: &mut TelemetryBatch,
    ) -> Result<Option<FrameKind>, AdaSenseError> {
        if !self.header_seen {
            if self.buffered() < 8 {
                return Ok(None);
            }
            let head: [u8; 8] =
                self.buf[self.start..self.start + 8].try_into().expect("8-byte slice");
            validate_stream_header(&head)?;
            self.start += 8;
            self.header_seen = true;
        }
        if self.buffered() < 4 {
            return Ok(None);
        }
        let len_bytes: [u8; 4] =
            self.buf[self.start..self.start + 4].try_into().expect("4-byte slice");
        let len = u32::from_le_bytes(len_bytes) as usize;
        if len == 0 || len > self.cap {
            return Err(AdaSenseError::ingest(format!(
                "frame length {len} is outside 1..={}",
                self.cap
            )));
        }
        if self.buffered() < 4 + len {
            return Ok(None);
        }
        let payload = &self.buf[self.start + 4..self.start + 4 + len];
        let kind = decode_frame_payload(payload, batch)?;
        self.start += 4 + len;
        Ok(Some(kind))
    }
}

impl Default for StreamParser {
    /// Equivalent to [`StreamParser::new`].
    fn default() -> Self {
        Self::new()
    }
}

// ---------------------------------------------------------------------------
// Traces
// ---------------------------------------------------------------------------

/// A whole recorded telemetry session: every batch a device's runtime
/// consumed, in delivery order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TelemetryTrace {
    /// The recorded batches, oldest first.
    pub batches: Vec<TelemetryBatch>,
}

impl TelemetryTrace {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of recorded batches.
    pub fn len(&self) -> usize {
        self.batches.len()
    }

    /// Whether the trace holds no batches.
    pub fn is_empty(&self) -> bool {
        self.batches.is_empty()
    }

    /// Writes the trace as one complete wire-format stream (header, batch
    /// frames, end-of-stream marker).
    ///
    /// # Errors
    ///
    /// Returns [`AdaSenseError::Ingest`] when the writer fails.
    pub fn encode_to<W: Write + ?Sized>(&self, writer: &mut W) -> Result<(), AdaSenseError> {
        let io = |e: std::io::Error| AdaSenseError::ingest(format!("writing trace failed: {e}"));
        let mut encoder = FrameEncoder::new();
        writer.write_all(encoder.header()).map_err(io)?;
        for batch in &self.batches {
            writer.write_all(encoder.batch(batch)).map_err(io)?;
        }
        writer.write_all(encoder.end(self.batches.len() as u64)).map_err(io)?;
        Ok(())
    }

    /// The trace as one complete wire-format byte stream.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode_to(&mut out).expect("writing to a Vec cannot fail");
        out
    }

    /// Reads one complete stream from `reader` (header through end-of-stream
    /// marker), leaving the reader positioned just past the marker.
    ///
    /// # Errors
    ///
    /// Returns [`AdaSenseError::Ingest`] on any malformed frame, on a stream
    /// that ends without the end-of-stream marker, or when the marker's batch
    /// count disagrees with the batches actually read.
    pub fn decode_from<R: Read + ?Sized>(reader: &mut R) -> Result<Self, AdaSenseError> {
        let mut decoder = FrameDecoder::new();
        decoder.read_header(reader)?;
        let mut trace = TelemetryTrace::new();
        let mut batch = TelemetryBatch::placeholder();
        loop {
            match decoder.read_frame(reader, &mut batch)? {
                FrameKind::Batch => trace.batches.push(batch.clone()),
                FrameKind::Report { shard } => {
                    return Err(AdaSenseError::ingest(format!(
                        "telemetry trace contains a fleet-report frame (shard {shard})"
                    )));
                }
                FrameKind::Resume { device_id, .. } => {
                    return Err(AdaSenseError::ingest(format!(
                        "telemetry trace contains a resume frame (device {device_id}); resume \
                         requests belong on live client→server links only"
                    )));
                }
                FrameKind::Join { device_id, .. } => {
                    return Err(AdaSenseError::ingest(format!(
                        "telemetry trace contains a join frame (device {device_id}); join \
                         handshakes belong on live server→client links only"
                    )));
                }
                FrameKind::End { batches } => {
                    if batches != trace.batches.len() as u64 {
                        return Err(AdaSenseError::ingest(format!(
                            "end-of-stream marker claims {batches} batches, read {}",
                            trace.batches.len()
                        )));
                    }
                    return Ok(trace);
                }
            }
        }
    }

    /// Decodes one complete stream from a byte slice, rejecting trailing
    /// garbage after the end-of-stream marker.
    ///
    /// # Errors
    ///
    /// See [`TelemetryTrace::decode_from`].
    pub fn decode(mut bytes: &[u8]) -> Result<Self, AdaSenseError> {
        let trace = Self::decode_from(&mut bytes)?;
        if !bytes.is_empty() {
            return Err(AdaSenseError::ingest(format!(
                "{} trailing bytes after the end-of-stream marker",
                bytes.len()
            )));
        }
        Ok(trace)
    }
}

/// A [`SampleSource`] decorator that records everything the wrapped source
/// delivers — sample windows *and* the ground-truth label of each classified
/// epoch — as a [`TelemetryTrace`] for later replay.
///
/// Recording sits *outside* any fault decorator, so a fault-injected run is
/// recorded exactly as the runtime saw it and replays bit-identically.
#[derive(Debug, Clone)]
pub struct TraceRecorder<S> {
    inner: S,
    trace: TelemetryTrace,
}

impl<S> TraceRecorder<S> {
    /// Wraps `inner`, recording every window it delivers.
    pub fn new(inner: S) -> Self {
        Self { inner, trace: TelemetryTrace::new() }
    }

    /// The wrapped source.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// The trace recorded so far.
    pub fn trace(&self) -> &TelemetryTrace {
        &self.trace
    }

    /// Consumes the recorder, returning the wrapped source and the trace.
    pub fn into_parts(self) -> (S, TelemetryTrace) {
        (self.inner, self.trace)
    }
}

impl<S: SampleSource> SampleSource for TraceRecorder<S> {
    /// Captures through the wrapped source, then records the window together
    /// with the epoch's ground-truth label.
    ///
    /// # Panics
    ///
    /// Panics if the wrapped source cannot provide ground truth for the
    /// captured epoch (the runtime would hit the same contract violation one
    /// phase later).
    fn capture_window(
        &mut self,
        config: SensorConfig,
        t_end: f64,
        window_s: f64,
        out: &mut Vec<Sample3>,
    ) {
        self.inner.capture_window(config, t_end, window_s, out);
        let label = self
            .inner
            .ground_truth(t_end - EPOCH_LABEL_OFFSET_S)
            .expect("the recorded source provides ground truth for every captured epoch");
        self.trace.batches.push(TelemetryBatch::new(
            config,
            t_end,
            window_s,
            label.index() as u8,
            out.clone(),
        ));
    }

    fn ground_truth(&self, t_s: f64) -> Option<Activity> {
        self.inner.ground_truth(t_s)
    }

    fn status(&mut self) -> SourceStatus {
        self.inner.status()
    }
}

// ---------------------------------------------------------------------------
// Shared replay state
// ---------------------------------------------------------------------------

/// The state both live sources share once a batch has been delivered: enough
/// to answer the runtime's ground-truth query for the epoch just captured.
#[derive(Debug, Clone, Copy, Default)]
struct LastEpoch {
    t_end: f64,
    window_s: f64,
    label: Option<Activity>,
}

impl LastEpoch {
    fn remember(&mut self, batch: &TelemetryBatch) {
        self.t_end = batch.t_end;
        self.window_s = batch.window_s;
        self.label = Activity::from_index(batch.label as usize);
    }

    fn label_at(&self, t_s: f64) -> Option<Activity> {
        let label = self.label?;
        (t_s <= self.t_end && t_s > self.t_end - self.window_s).then_some(label)
    }
}

/// Panics with a precise message if a delivered batch does not match what the
/// runtime asked for.  The stream and the controller must agree tick for
/// tick; any divergence means the trace belongs to a different run (or the
/// producer reordered frames), and silently serving it would corrupt every
/// later control decision.
fn check_batch(who: &str, batch: &TelemetryBatch, config: SensorConfig, t_end: f64, window_s: f64) {
    assert!(
        batch.config == config && batch.t_end == t_end && batch.window_s == window_s,
        "{who}: stream is out of step with the runtime — delivered \
         ({}, t_end {}, window {} s) but the runtime asked for ({}, t_end {}, window {} s)",
        batch.config,
        batch.t_end,
        batch.window_s,
        config,
        t_end,
        window_s
    );
    assert!(
        (batch.label as usize) < Activity::COUNT,
        "{who}: batch carries invalid class label {}",
        batch.label
    );
}

// ---------------------------------------------------------------------------
// ChannelSource
// ---------------------------------------------------------------------------

/// Creates a bounded in-process telemetry ring: a [`TelemetrySender`] for the
/// producer and a [`ChannelSource`] for the consuming device runtime.
///
/// `capacity` is the number of batches the ring buffers; a producer that gets
/// ahead of the runtime by more than that blocks (backpressure).
///
/// # Panics
///
/// Panics if `capacity` is zero (a rendezvous ring would deadlock the
/// lockstep fleet scheduler, which ticks many devices from one thread).
///
/// # Examples
///
/// ```
/// use adasense::ingest::telemetry_channel;
/// use adasense::runtime::{SampleSource, SourceStatus};
/// use adasense_data::Activity;
/// use adasense_sensor::{Sample3, SensorConfig, TelemetryBatch};
///
/// let (mut tx, mut source) = telemetry_channel(4);
/// let config = SensorConfig::paper_pareto_front()[0];
/// let samples = vec![Sample3::new(1.5, 0.0, 0.0, 1.0)];
/// tx.send(TelemetryBatch::new(config, 2.0, 2.0, Activity::Sit.index() as u8, samples)).unwrap();
/// drop(tx); // end of stream
///
/// let mut window = Vec::new();
/// assert_eq!(source.status(), SourceStatus::Ready);
/// source.capture_window(config, 2.0, 2.0, &mut window);
/// assert_eq!(window.len(), 1);
/// assert_eq!(source.ground_truth(2.0 - 1e-6), Some(Activity::Sit));
/// assert_eq!(source.status(), SourceStatus::Exhausted);
/// ```
pub fn telemetry_channel(capacity: usize) -> (TelemetrySender, ChannelSource) {
    assert!(capacity > 0, "a telemetry ring needs capacity for at least one batch");
    let (tx, rx) = sync_channel(capacity);
    (
        TelemetrySender { tx, sent: 0 },
        ChannelSource { rx, pending: None, done: false, last: LastEpoch::default(), delivered: 0 },
    )
}

/// The producer half of a [`telemetry_channel`]: pushes batches into the
/// bounded ring, blocking while it is full.  Dropping the sender signals
/// end-of-stream to the [`ChannelSource`].
#[derive(Debug)]
pub struct TelemetrySender {
    tx: SyncSender<TelemetryBatch>,
    sent: u64,
}

impl TelemetrySender {
    /// Sends one batch, blocking while the ring is full.
    ///
    /// # Errors
    ///
    /// Returns [`AdaSenseError::Ingest`] if the consumer went away.
    pub fn send(&mut self, batch: TelemetryBatch) -> Result<(), AdaSenseError> {
        self.tx
            .send(batch)
            .map_err(|_| AdaSenseError::ingest("the telemetry consumer disconnected"))?;
        self.sent += 1;
        Ok(())
    }

    /// Sends one batch without blocking.  Returns `Ok(None)` when the batch
    /// was queued, or `Ok(Some(batch))` handing the batch back when the ring
    /// is full — the caller decides how to apply backpressure (the ingest
    /// reactor parks the connection instead of stalling its event loop).
    ///
    /// # Errors
    ///
    /// Returns [`AdaSenseError::Ingest`] if the consumer went away.
    pub fn try_send(
        &mut self,
        batch: TelemetryBatch,
    ) -> Result<Option<TelemetryBatch>, AdaSenseError> {
        use std::sync::mpsc::TrySendError;
        match self.tx.try_send(batch) {
            Ok(()) => {
                self.sent += 1;
                Ok(None)
            }
            Err(TrySendError::Full(batch)) => Ok(Some(batch)),
            Err(TrySendError::Disconnected(_)) => {
                Err(AdaSenseError::ingest("the telemetry consumer disconnected"))
            }
        }
    }

    /// Sends every batch of `trace` in order.
    ///
    /// # Errors
    ///
    /// Returns [`AdaSenseError::Ingest`] if the consumer went away.
    pub fn send_trace(&mut self, trace: &TelemetryTrace) -> Result<(), AdaSenseError> {
        for batch in &trace.batches {
            self.send(batch.clone())?;
        }
        Ok(())
    }

    /// Number of batches sent so far.
    pub fn sent(&self) -> u64 {
        self.sent
    }
}

/// A [`SampleSource`] fed through a bounded in-process ring buffer — the
/// transport for channel-fed fleet cohorts and tests.
///
/// Exhaustion is signalled by dropping the [`TelemetrySender`]; the source
/// reports [`SourceStatus::Exhausted`] once the ring is drained after that.
#[derive(Debug)]
pub struct ChannelSource {
    rx: Receiver<TelemetryBatch>,
    pending: Option<TelemetryBatch>,
    done: bool,
    last: LastEpoch,
    delivered: u64,
}

impl ChannelSource {
    /// Number of batches delivered to the runtime so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Blocks until a batch is buffered or the stream has ended.
    fn poll(&mut self) {
        if self.pending.is_none() && !self.done {
            match self.rx.recv() {
                Ok(batch) => self.pending = Some(batch),
                Err(_) => self.done = true,
            }
        }
    }
}

impl SampleSource for ChannelSource {
    /// Delivers the next buffered batch as the sensed window.
    ///
    /// # Panics
    ///
    /// Panics if the stream has ended (the runtime checks
    /// [`status`](SampleSource::status) first, so this is a
    /// driver bug) or if the delivered batch does not match the requested
    /// `(config, t_end, window_s)` — an out-of-step stream must fail loudly
    /// rather than corrupt the closed loop.
    fn capture_window(
        &mut self,
        config: SensorConfig,
        t_end: f64,
        window_s: f64,
        out: &mut Vec<Sample3>,
    ) {
        self.poll();
        let mut batch = self
            .pending
            .take()
            .expect("capture_window called past end-of-stream (check status first)");
        check_batch("ChannelSource", &batch, config, t_end, window_s);
        self.last.remember(&batch);
        out.clear();
        std::mem::swap(out, &mut batch.samples);
        self.delivered += 1;
    }

    fn ground_truth(&self, t_s: f64) -> Option<Activity> {
        self.last.label_at(t_s)
    }

    fn status(&mut self) -> SourceStatus {
        self.poll();
        if self.done && self.pending.is_none() {
            SourceStatus::Exhausted
        } else {
            SourceStatus::Ready
        }
    }
}

// ---------------------------------------------------------------------------
// SocketSource
// ---------------------------------------------------------------------------

/// How [`SocketSource`] retries *connection establishment* (a replay server
/// that is still starting up, a device waking before its gateway).
///
/// Reconnection does **not** apply mid-stream: a connection torn after the
/// header would need server-side resume to stay deterministic, so a torn
/// stream fails loudly instead (see `docs/WIRE_FORMAT.md`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReconnectPolicy {
    /// Total connection attempts before giving up (at least 1).
    pub attempts: u32,
    /// Delay between consecutive attempts.
    pub delay: Duration,
}

impl ReconnectPolicy {
    /// A single attempt, no retries.
    pub fn once() -> Self {
        Self { attempts: 1, delay: Duration::ZERO }
    }
}

impl Default for ReconnectPolicy {
    /// 25 attempts, 200 ms apart — rides out a replay server that needs a few
    /// seconds to come up.
    fn default() -> Self {
        Self { attempts: 25, delay: Duration::from_millis(200) }
    }
}

/// A [`SampleSource`] reading length-prefixed wire-format frames off a byte
/// stream — TCP, Unix-domain sockets, or any other [`Read`].
///
/// The source decodes exactly one frame per runtime tick; its only
/// read-ahead is one decoded frame (the exhaustion probe) plus a fixed-size
/// [`BufReader`] block (8 KiB — roughly ten low-rate frames), so
/// backpressure remains the transport's own flow control: a slow consumer
/// leaves the producer blocked in `write` once that bounded buffer and the
/// kernel socket buffers fill.  End-of-stream is the wire format's explicit
/// marker frame; a connection that dies without it fails loudly (see
/// [`ReconnectPolicy`]).
pub struct SocketSource {
    reader: BufReader<Box<dyn Read + Send>>,
    decoder: FrameDecoder,
    batch: TelemetryBatch,
    pending: bool,
    done: bool,
    last: LastEpoch,
    delivered: u64,
    peer: String,
}

impl SocketSource {
    /// Connects to a TCP replay endpoint (for example `127.0.0.1:9000`),
    /// retrying per `policy`, and validates the stream header.
    ///
    /// # Errors
    ///
    /// Returns [`AdaSenseError::Ingest`] when every attempt fails or the
    /// header is invalid.
    pub fn tcp(addr: &str, policy: ReconnectPolicy) -> Result<Self, AdaSenseError> {
        let stream = connect_with_retries(addr, policy, |a| {
            std::net::TcpStream::connect(a).map(|s| Box::new(s) as Box<dyn Read + Send>)
        })?;
        Self::from_boxed(stream, format!("tcp://{addr}"))
    }

    /// Connects to a Unix-domain socket replay endpoint, retrying per
    /// `policy`, and validates the stream header.
    ///
    /// # Errors
    ///
    /// Returns [`AdaSenseError::Ingest`] when every attempt fails or the
    /// header is invalid.
    #[cfg(unix)]
    pub fn unix(path: &str, policy: ReconnectPolicy) -> Result<Self, AdaSenseError> {
        let stream = connect_with_retries(path, policy, |p| {
            std::os::unix::net::UnixStream::connect(p).map(|s| Box::new(s) as Box<dyn Read + Send>)
        })?;
        Self::from_boxed(stream, format!("unix://{path}"))
    }

    /// Wraps an already-open byte stream (a file, an in-memory trace, a
    /// connected socket) and validates the stream header.
    ///
    /// # Errors
    ///
    /// Returns [`AdaSenseError::Ingest`] if the header is invalid.
    pub fn from_reader(reader: impl Read + Send + 'static) -> Result<Self, AdaSenseError> {
        Self::from_boxed(Box::new(reader), "reader".to_string())
    }

    fn from_boxed(stream: Box<dyn Read + Send>, peer: String) -> Result<Self, AdaSenseError> {
        let mut source = Self {
            reader: BufReader::new(stream),
            decoder: FrameDecoder::new(),
            batch: TelemetryBatch::placeholder(),
            pending: false,
            done: false,
            last: LastEpoch::default(),
            delivered: 0,
            peer,
        };
        source.decoder.read_header(&mut source.reader)?;
        Ok(source)
    }

    /// The endpoint this source reads from (for diagnostics).
    pub fn peer(&self) -> &str {
        &self.peer
    }

    /// Number of batches delivered to the runtime so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Blocks until a frame is buffered or the end-of-stream marker arrives.
    ///
    /// # Panics
    ///
    /// Panics on a malformed frame or a connection torn before the marker:
    /// the runtime cannot surface errors mid-tick, and silently truncating a
    /// trace would produce a plausible-looking but wrong run.
    fn poll(&mut self) {
        while !(self.pending || self.done) {
            match self.decoder.read_frame(&mut self.reader, &mut self.batch) {
                Ok(FrameKind::Batch) => self.pending = true,
                Ok(FrameKind::Report { shard }) => {
                    // Report frames belong on shard→coordinator links, not on a
                    // device telemetry feed.
                    panic!(
                        "{}: unexpected fleet-report frame for shard {shard} on a telemetry feed",
                        self.peer
                    )
                }
                Ok(FrameKind::Resume { device_id, .. }) => {
                    // Resume requests flow client→server; a server echoing one
                    // back is speaking the wrong direction of the protocol.
                    panic!(
                        "{}: unexpected resume frame for device {device_id} on a telemetry feed",
                        self.peer
                    )
                }
                Ok(FrameKind::Join { .. }) => {
                    // v4 servers open every stream with a join handshake; a
                    // plain replay source has no cohort to register it with,
                    // so the metadata is simply skipped.
                    continue;
                }
                Ok(FrameKind::End { batches }) => {
                    assert!(
                        batches == self.delivered,
                        "{}: end-of-stream marker claims {batches} batches, delivered {}",
                        self.peer,
                        self.delivered
                    );
                    self.done = true;
                }
                Err(error) => panic!("{}: {error}", self.peer),
            }
        }
    }
}

impl std::fmt::Debug for SocketSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SocketSource")
            .field("peer", &self.peer)
            .field("delivered", &self.delivered)
            .field("done", &self.done)
            .finish_non_exhaustive()
    }
}

impl SampleSource for SocketSource {
    /// Delivers the next decoded frame as the sensed window.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as
    /// [`ChannelSource::capture_window`](ChannelSource) and on any stream
    /// error: a torn or malformed stream fails loudly, because silently
    /// truncating a trace would produce a plausible-looking but wrong run.
    fn capture_window(
        &mut self,
        config: SensorConfig,
        t_end: f64,
        window_s: f64,
        out: &mut Vec<Sample3>,
    ) {
        self.poll();
        assert!(
            self.pending,
            "{}: capture_window called past end-of-stream (check status first)",
            self.peer
        );
        check_batch("SocketSource", &self.batch, config, t_end, window_s);
        self.last.remember(&self.batch);
        out.clear();
        // Swap buffers instead of copying: the runtime gets the decoded
        // samples, the decoder reuses the runtime's previous window allocation.
        std::mem::swap(out, &mut self.batch.samples);
        self.pending = false;
        self.delivered += 1;
    }

    fn ground_truth(&self, t_s: f64) -> Option<Activity> {
        self.last.label_at(t_s)
    }

    fn status(&mut self) -> SourceStatus {
        self.poll();
        if self.done {
            SourceStatus::Exhausted
        } else {
            SourceStatus::Ready
        }
    }
}

/// Dials `target` up to `policy.attempts` times, sleeping `policy.delay`
/// between attempts.
fn connect_with_retries(
    target: &str,
    policy: ReconnectPolicy,
    connect: impl Fn(&str) -> std::io::Result<Box<dyn Read + Send>>,
) -> Result<Box<dyn Read + Send>, AdaSenseError> {
    let attempts = policy.attempts.max(1);
    let mut last_error = None;
    for attempt in 0..attempts {
        if attempt > 0 {
            std::thread::sleep(policy.delay);
        }
        match connect(target) {
            Ok(stream) => return Ok(stream),
            Err(error) => last_error = Some(error),
        }
    }
    Err(AdaSenseError::ingest(format!(
        "connecting to {target} failed after {attempts} attempts: {}",
        last_error.expect("at least one attempt ran")
    )))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::ControllerKind;
    use crate::runtime::{DeviceRuntime, ScenarioSource};
    use crate::scenario::{FaultInjector, FaultLevel};
    use crate::simulation::tests::shared_system;
    use crate::simulation::ScenarioSpec;

    fn sample_batch(t_end: f64) -> TelemetryBatch {
        let config = SensorConfig::paper_pareto_front()[2];
        let samples = (0..25)
            .map(|i| Sample3::new(t_end - 2.0 + i as f64 * 0.08, 0.01, -0.02, 0.98))
            .collect();
        TelemetryBatch::new(config, t_end, 2.0, Activity::Walk.index() as u8, samples)
    }

    #[test]
    fn frames_round_trip_bit_exactly() {
        let trace = TelemetryTrace { batches: (2..40).map(|t| sample_batch(t as f64)).collect() };
        let encoded = trace.encode();
        let decoded = TelemetryTrace::decode(&encoded).expect("round trip decodes");
        assert_eq!(decoded, trace);
    }

    #[test]
    fn special_float_bit_patterns_survive() {
        // Replay must preserve *bits*, not values: -0.0 and subnormals count.
        let mut batch = sample_batch(2.0);
        batch.samples[0] = Sample3::new(2.0, -0.0, f64::MIN_POSITIVE / 2.0, 1.0 + f64::EPSILON);
        let trace = TelemetryTrace { batches: vec![batch.clone()] };
        let decoded = TelemetryTrace::decode(&trace.encode()).unwrap();
        let s = decoded.batches[0].samples[0];
        assert_eq!(s.x.to_bits(), (-0.0f64).to_bits());
        assert_eq!(s.y.to_bits(), (f64::MIN_POSITIVE / 2.0).to_bits());
        assert_eq!(s.z.to_bits(), (1.0 + f64::EPSILON).to_bits());
    }

    #[test]
    fn every_strict_prefix_of_a_stream_is_rejected() {
        let trace = TelemetryTrace { batches: vec![sample_batch(2.0), sample_batch(3.0)] };
        let encoded = trace.encode();
        for cut in 0..encoded.len() {
            assert!(
                TelemetryTrace::decode(&encoded[..cut]).is_err(),
                "a stream truncated at byte {cut}/{} must not decode",
                encoded.len()
            );
        }
    }

    #[test]
    fn corrupt_streams_are_rejected_not_panicked() {
        let good = TelemetryTrace { batches: vec![sample_batch(2.0)] }.encode();

        let mut bad_magic = good.clone();
        bad_magic[0] = b'X';
        assert!(TelemetryTrace::decode(&bad_magic).is_err());

        let mut bad_version = good.clone();
        bad_version[4] = 99;
        assert!(TelemetryTrace::decode(&bad_version).is_err());

        let mut bad_flags = good.clone();
        bad_flags[6] = 1;
        assert!(TelemetryTrace::decode(&bad_flags).is_err());

        let mut bad_kind = good.clone();
        bad_kind[12] = 0x7f; // frame kind byte of the first frame
        assert!(TelemetryTrace::decode(&bad_kind).is_err());

        let mut bad_config = good.clone();
        bad_config[13] = 200; // config tag
        assert!(TelemetryTrace::decode(&bad_config).is_err());

        let mut bad_label = good.clone();
        bad_label[14] = 17; // label tag
        assert!(TelemetryTrace::decode(&bad_label).is_err());

        let mut oversized = good.clone();
        oversized[8..12].copy_from_slice(&(MAX_FRAME_LEN as u32 + 1).to_le_bytes());
        assert!(TelemetryTrace::decode(&oversized).is_err());

        let mut trailing = good.clone();
        trailing.push(0);
        assert!(TelemetryTrace::decode(&trailing).is_err());

        assert!(TelemetryTrace::decode(&good).is_ok(), "the uncorrupted stream stays valid");
    }

    #[test]
    fn oversized_batches_are_refused_at_encode_time() {
        // An encoder that emitted a frame above MAX_FRAME_LEN would produce a
        // stream the decoder rejects — a recorded trace that cannot be
        // replayed.  It must refuse up front instead.
        let mut huge = sample_batch(2.0);
        huge.samples = vec![Sample3::new(0.0, 0.0, 0.0, 1.0); MAX_FRAME_LEN / SAMPLE_LEN + 1];
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut encoder = FrameEncoder::new();
            encoder.batch(&huge).len()
        }));
        assert!(result.is_err(), "encoding an over-cap batch must panic");

        // The largest batch that fits the cap still round-trips.
        let mut largest = sample_batch(2.0);
        largest.samples =
            vec![Sample3::new(0.0, 0.0, 0.0, 1.0); (MAX_FRAME_LEN - BATCH_HEAD_LEN) / SAMPLE_LEN];
        let trace = TelemetryTrace { batches: vec![largest] };
        assert_eq!(TelemetryTrace::decode(&trace.encode()).unwrap(), trace);
    }

    #[test]
    fn report_frames_round_trip_and_respect_their_own_cap() {
        use crate::fleet::FleetReport;

        let mut report = FleetReport::new("spot");
        report.observe(&crate::fleet::DeviceSummary {
            device_id: 3,
            seed: 9,
            routine: "office_day".to_string(),
            backend: "f64".to_string(),
            faulted_epochs: 0,
            epochs: 10,
            correct_epochs: 9,
            early_exit_epochs: 0,
            early_exit_correct: 0,
            escalated_epochs: 0,
            escalated_correct: 0,
            accuracy: 0.9,
            average_current_ua: 41.5,
            total_charge_uc: 830.0,
            duration_s: 20.0,
            residency_s: vec![20.0],
            tx_epochs: vec![0, 10, 0],
            tx_bytes: vec![0, 1480, 0],
            tx_charge_uc: vec![0.0, 5970.0, 0.0],
            start_epoch: 0,
            departed: false,
        });
        let bytes = report.encode();

        let mut encoder = FrameEncoder::new();
        let mut stream = Vec::new();
        stream.extend_from_slice(encoder.header());
        stream.extend_from_slice(encoder.report(2, &bytes));

        let mut decoder = FrameDecoder::new();
        let mut reader = &stream[..];
        decoder.read_header(&mut reader).unwrap();
        let mut scratch = TelemetryBatch::placeholder();
        assert_eq!(decoder.report_payload(), &[] as &[u8], "no report before one is decoded");
        let kind = decoder.read_frame(&mut reader, &mut scratch).unwrap();
        assert_eq!(kind, FrameKind::Report { shard: 2 });
        assert_eq!(decoder.report_payload(), &bytes[..], "payload must survive framing intact");
        assert_eq!(FleetReport::decode(decoder.report_payload()).unwrap(), report);

        // A batch-kind frame claiming a length above the batch cap is
        // rejected even though the generous report cap admits the bytes.
        let mut oversized = Vec::new();
        oversized.extend_from_slice(encoder.header());
        oversized.extend_from_slice(&(MAX_FRAME_LEN as u32 + 1).to_le_bytes());
        oversized.push(0x01); // KIND_BATCH
        oversized.resize(oversized.len() + MAX_FRAME_LEN, 0);
        let mut reader = &oversized[..];
        let mut decoder = FrameDecoder::new();
        decoder.read_header(&mut reader).unwrap();
        let error = decoder.read_frame(&mut reader, &mut scratch).unwrap_err();
        assert!(
            error.to_string().contains("exceeds"),
            "over-cap batch must fail on the batch cap, got: {error}"
        );

        // A report frame shorter than its shard-index header is rejected.
        let mut stub = Vec::new();
        stub.extend_from_slice(encoder.header());
        stub.extend_from_slice(&2u32.to_le_bytes());
        stub.push(0x03); // KIND_REPORT
        stub.push(0);
        let mut reader = &stub[..];
        decoder.read_header(&mut reader).unwrap();
        assert!(decoder.read_frame(&mut reader, &mut scratch).is_err());
    }

    #[test]
    fn end_marker_count_mismatch_is_rejected() {
        let trace = TelemetryTrace { batches: vec![sample_batch(2.0)] };
        let mut encoded = Vec::new();
        let mut encoder = FrameEncoder::new();
        encoded.extend_from_slice(encoder.header());
        encoded.extend_from_slice(encoder.batch(&trace.batches[0]));
        encoded.extend_from_slice(encoder.end(5));
        assert!(TelemetryTrace::decode(&encoded).is_err());
    }

    #[test]
    fn resume_frames_round_trip_and_are_rejected_off_live_links() {
        let mut encoder = FrameEncoder::new();
        let mut stream = Vec::new();
        stream.extend_from_slice(encoder.header());
        stream.extend_from_slice(encoder.resume(77, 1234));

        let mut decoder = FrameDecoder::new();
        let mut reader = &stream[..];
        decoder.read_header(&mut reader).unwrap();
        let mut scratch = TelemetryBatch::placeholder();
        assert_eq!(
            decoder.read_frame(&mut reader, &mut scratch).unwrap(),
            FrameKind::Resume { device_id: 77, next_batch: 1234 }
        );

        // A resume frame inside a telemetry trace is corrupt.
        let mut trace_stream = Vec::new();
        trace_stream.extend_from_slice(encoder.header());
        trace_stream.extend_from_slice(encoder.resume(77, 0));
        trace_stream.extend_from_slice(encoder.end(0));
        assert!(TelemetryTrace::decode(&trace_stream).is_err());

        // A resume frame with the wrong payload length is corrupt.
        let mut short = Vec::new();
        short.extend_from_slice(encoder.header());
        short.extend_from_slice(&9u32.to_le_bytes());
        short.push(0x04); // KIND_RESUME
        short.extend_from_slice(&77u64.to_le_bytes());
        let mut reader = &short[..];
        decoder.read_header(&mut reader).unwrap();
        assert!(decoder.read_frame(&mut reader, &mut scratch).is_err());
    }

    #[test]
    fn join_frames_round_trip_and_are_rejected_off_live_links() {
        let config = SensorConfig::from_index(3).expect("valid configuration index");
        let mut encoder = FrameEncoder::new();
        let mut stream = Vec::new();
        stream.extend_from_slice(encoder.header());
        stream.extend_from_slice(encoder.join(42, config, 17));

        let mut decoder = FrameDecoder::new();
        let mut reader = &stream[..];
        decoder.read_header(&mut reader).unwrap();
        let mut scratch = TelemetryBatch::placeholder();
        assert_eq!(
            decoder.read_frame(&mut reader, &mut scratch).unwrap(),
            FrameKind::Join { device_id: 42, config, start_epoch: 17 }
        );

        // A join frame inside a recorded telemetry trace is corrupt …
        let mut trace_stream = Vec::new();
        trace_stream.extend_from_slice(encoder.header());
        trace_stream.extend_from_slice(encoder.join(42, config, 0));
        trace_stream.extend_from_slice(encoder.end(0));
        assert!(TelemetryTrace::decode(&trace_stream).is_err());

        // … but a plain socket source skips it: the handshake only carries
        // cohort metadata, and the batches behind it must replay untouched.
        let trace = TelemetryTrace { batches: vec![sample_batch(2.0)] };
        let mut served = Vec::new();
        served.extend_from_slice(encoder.header());
        served.extend_from_slice(encoder.join(42, config, 3));
        served.extend_from_slice(encoder.batch(&trace.batches[0]));
        served.extend_from_slice(encoder.end(1));
        let mut source = SocketSource::from_reader(std::io::Cursor::new(served)).unwrap();
        assert_eq!(source.status(), SourceStatus::Ready);
        let mut out = Vec::new();
        let batch = &trace.batches[0];
        source.capture_window(batch.config, batch.t_end, batch.window_s, &mut out);
        assert_eq!(out, batch.samples);
        assert_eq!(source.status(), SourceStatus::Exhausted);

        // A join frame with the wrong payload length is corrupt.
        let mut short = Vec::new();
        short.extend_from_slice(encoder.header());
        short.extend_from_slice(&10u32.to_le_bytes());
        short.push(0x06); // KIND_JOIN
        short.extend_from_slice(&42u64.to_le_bytes());
        short.push(0);
        let mut reader = &short[..];
        decoder.read_header(&mut reader).unwrap();
        assert!(decoder.read_frame(&mut reader, &mut scratch).is_err());

        // An out-of-range configuration tag is corrupt.
        let mut bad_config = Vec::new();
        bad_config.extend_from_slice(encoder.header());
        let frame = encoder.join(42, config, 17).to_vec();
        bad_config.extend_from_slice(&frame);
        let tag_at = bad_config.len() - frame.len() + 4 + 1 + 8;
        bad_config[tag_at] = 0xEE;
        let mut reader = &bad_config[..];
        decoder.read_header(&mut reader).unwrap();
        assert!(decoder.read_frame(&mut reader, &mut scratch).is_err());
    }

    #[test]
    fn v1_streams_still_decode() {
        let trace = TelemetryTrace { batches: vec![sample_batch(2.0)] };
        let mut encoded = trace.encode();
        encoded[4..6].copy_from_slice(&1u16.to_le_bytes());
        assert_eq!(TelemetryTrace::decode(&encoded).unwrap(), trace);
    }

    #[test]
    fn stream_parser_handles_arbitrary_fragmentation() {
        let trace = TelemetryTrace { batches: (2..12).map(|t| sample_batch(t as f64)).collect() };
        let encoded = trace.encode();

        // Feed the stream in every (chunk-size) fragmentation from 1 byte to
        // whole-stream; the parse must be identical each time.
        for chunk in [1, 3, 7, 64, encoded.len()] {
            let mut parser = StreamParser::telemetry();
            let mut batch = TelemetryBatch::placeholder();
            let mut got = TelemetryTrace::new();
            let mut ended = false;
            for piece in encoded.chunks(chunk) {
                parser.feed(piece);
                while let Some(kind) = parser.next_frame(&mut batch).expect("well-formed stream") {
                    match kind {
                        FrameKind::Batch => got.batches.push(batch.clone()),
                        FrameKind::End { batches } => {
                            assert_eq!(batches, got.batches.len() as u64);
                            ended = true;
                        }
                        other => panic!("unexpected frame {other:?}"),
                    }
                }
            }
            assert!(ended, "chunk size {chunk} never produced the end-of-stream marker");
            assert_eq!(got, trace, "chunk size {chunk} diverged");
            assert_eq!(parser.buffered(), 0);
        }
    }

    #[test]
    fn stream_parser_rejects_corrupt_bytes_with_errors_not_panics() {
        let mut batch = TelemetryBatch::placeholder();

        // Bad magic fails as soon as 8 bytes are buffered.
        let mut parser = StreamParser::telemetry();
        parser.feed(b"NOPE\x01\x00\x00\x00");
        assert!(parser.next_frame(&mut batch).is_err());

        // A zero length prefix is rejected.
        let mut parser = StreamParser::telemetry();
        let mut encoder = FrameEncoder::new();
        let mut stream = encoder.header().to_vec();
        stream.extend_from_slice(&0u32.to_le_bytes());
        parser.feed(&stream);
        assert!(parser.next_frame(&mut batch).is_err());

        // The telemetry cap rejects an oversized prefix *before* its payload
        // arrives (a generic parser would wait for 64 MiB first).
        let mut parser = StreamParser::telemetry();
        let mut stream = encoder.header().to_vec();
        stream.extend_from_slice(&(MAX_FRAME_LEN as u32 + 1).to_le_bytes());
        parser.feed(&stream);
        assert!(parser.next_frame(&mut batch).is_err());

        // An unknown kind is rejected once the frame is complete.
        let mut parser = StreamParser::telemetry();
        let mut stream = encoder.header().to_vec();
        stream.extend_from_slice(&1u32.to_le_bytes());
        stream.push(0x7f);
        parser.feed(&stream);
        assert!(parser.next_frame(&mut batch).is_err());

        // Incomplete input is never an error, just "not yet".
        let trace = TelemetryTrace { batches: vec![sample_batch(2.0)] };
        let encoded = trace.encode();
        let mut parser = StreamParser::telemetry();
        parser.feed(&encoded[..encoded.len() - 1]);
        assert!(matches!(parser.next_frame(&mut batch), Ok(Some(FrameKind::Batch))));
        assert!(matches!(parser.next_frame(&mut batch), Ok(None)));
    }

    #[test]
    fn recorded_scenario_replays_bit_identically_through_a_channel() {
        let (spec, system) = shared_system();
        let scenario = ScenarioSpec::sit_then_walk(10.0, 10.0);
        let controller = ControllerKind::Spot { stability_threshold: 3 };

        // Original run, recorded.
        let recorder = TraceRecorder::new(ScenarioSource::new(spec, &scenario));
        let mut original =
            DeviceRuntime::for_source(spec, system, controller, recorder, scenario.duration_s())
                .unwrap();
        original.run_to_completion();
        let trace = original.source().trace().clone();
        let original = original.into_report();
        assert_eq!(trace.len(), original.records.len());

        // Replay through the bounded ring from a feeder thread.
        let (mut tx, source) = telemetry_channel(3);
        let feeder = std::thread::spawn(move || tx.send_trace(&trace));
        let mut replay = DeviceRuntime::new(spec, system, controller, source);
        replay.run_to_completion();
        feeder.join().expect("feeder thread").expect("all batches accepted");
        assert_eq!(replay.into_report(), original, "channel replay must be bit-identical");
    }

    #[test]
    fn recorded_faulty_run_replays_bit_identically_over_a_socket() {
        let (spec, system) = shared_system();
        let scenario = ScenarioSpec::sit_then_walk(8.0, 8.0);
        let controller = ControllerKind::SpotWithConfidence {
            stability_threshold: 2,
            confidence_threshold: 0.85,
        };

        // Fault-injected original: recording wraps the injector, so the
        // corrupted stream is what gets replayed.
        let faulty = FaultInjector::for_device(
            ScenarioSource::new(spec, &scenario),
            FaultLevel::Heavy,
            scenario.duration_s(),
            99,
        );
        let mut original = DeviceRuntime::for_source(
            spec,
            system,
            controller,
            TraceRecorder::new(faulty),
            scenario.duration_s(),
        )
        .unwrap();
        original.run_to_completion();
        let trace = original.source().trace().clone();
        let original = original.into_report();

        // Serve the encoded trace over a loopback TCP connection.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind loopback");
        let addr = listener.local_addr().unwrap().to_string();
        let encoded = trace.encode();
        let server = std::thread::spawn(move || {
            let (mut conn, _) = listener.accept().expect("accept replay client");
            conn.write_all(&encoded).expect("serve trace");
        });

        let source = SocketSource::tcp(&addr, ReconnectPolicy::default()).expect("connect");
        let mut replay = DeviceRuntime::new(spec, system, controller, source);
        replay.run_to_completion();
        server.join().expect("server thread");
        assert_eq!(replay.into_report(), original, "socket replay must be bit-identical");
    }

    #[test]
    fn socket_source_reconnects_to_a_late_server() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind loopback");
        let addr = listener.local_addr().unwrap().to_string();
        drop(listener); // nobody is listening yet

        let trace = TelemetryTrace { batches: vec![sample_batch(2.0)] };
        let encoded = trace.encode();
        let addr_for_server = addr.clone();
        let server = std::thread::spawn(move || {
            // Come up late: the client must retry until this bind succeeds.
            std::thread::sleep(Duration::from_millis(300));
            let listener = std::net::TcpListener::bind(&addr_for_server).expect("rebind");
            let (mut conn, _) = listener.accept().expect("accept");
            conn.write_all(&encoded).expect("serve");
        });

        let policy = ReconnectPolicy { attempts: 50, delay: Duration::from_millis(50) };
        let mut source = SocketSource::tcp(&addr, policy).expect("retry until the server is up");
        let mut out = Vec::new();
        source.capture_window(trace.batches[0].config, 2.0, 2.0, &mut out);
        assert_eq!(out, trace.batches[0].samples);
        assert_eq!(source.status(), SourceStatus::Exhausted);
        server.join().expect("server thread");
    }

    #[test]
    fn connect_failures_surface_after_the_policy_is_spent() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind loopback");
        let addr = listener.local_addr().unwrap().to_string();
        drop(listener);
        let policy = ReconnectPolicy { attempts: 2, delay: Duration::from_millis(1) };
        let error = SocketSource::tcp(&addr, policy).expect_err("nobody listens");
        assert!(matches!(error, AdaSenseError::Ingest { .. }));
    }

    #[test]
    #[cfg(unix)]
    fn unix_socket_transport_delivers_frames() {
        // Keep the socket file inside the workspace target directory.
        let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target");
        let path = dir.join(format!("adasense-ingest-{}.sock", std::process::id()));
        let path_str = path.to_str().expect("utf-8 target path").to_string();
        let _ = std::fs::remove_file(&path);

        let trace = TelemetryTrace { batches: vec![sample_batch(2.0), sample_batch(3.0)] };
        let encoded = trace.encode();
        let listener = std::os::unix::net::UnixListener::bind(&path).expect("bind unix socket");
        let server = std::thread::spawn(move || {
            let (mut conn, _) = listener.accept().expect("accept");
            conn.write_all(&encoded).expect("serve");
        });

        let mut source =
            SocketSource::unix(&path_str, ReconnectPolicy::once()).expect("connect unix");
        let mut out = Vec::new();
        for batch in &trace.batches {
            assert_eq!(source.status(), SourceStatus::Ready);
            source.capture_window(batch.config, batch.t_end, batch.window_s, &mut out);
            assert_eq!(out, batch.samples);
        }
        assert_eq!(source.status(), SourceStatus::Exhausted);
        assert_eq!(source.delivered(), 2);
        server.join().expect("server thread");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn channel_capture_past_end_of_stream_panics() {
        let (tx, mut source) = telemetry_channel(1);
        drop(tx);
        assert_eq!(source.status(), SourceStatus::Exhausted);
        let mut out = Vec::new();
        let config = SensorConfig::paper_pareto_front()[0];
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            source.capture_window(config, 2.0, 2.0, &mut out);
        }));
        assert!(result.is_err(), "capturing past end-of-stream must panic");
    }

    #[test]
    fn out_of_step_streams_fail_loudly() {
        let (mut tx, mut source) = telemetry_channel(1);
        tx.send(sample_batch(5.0)).unwrap();
        let mut out = Vec::new();
        let config = SensorConfig::paper_pareto_front()[0]; // batch was captured under [2]
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            source.capture_window(config, 5.0, 2.0, &mut out);
        }));
        assert!(result.is_err(), "a config mismatch must panic, not silently corrupt the run");
    }

    #[test]
    fn zero_capacity_rings_are_rejected() {
        assert!(std::panic::catch_unwind(|| telemetry_channel(0)).is_err());
    }

    /// Encodes a full compressed stream (header, one compressed frame per
    /// batch, END) from raw batches.
    fn compressed_stream(batches: &[TelemetryBatch], ratio: u32) -> Vec<u8> {
        let mut encoder = FrameEncoder::new();
        let mut stream = Vec::new();
        stream.extend_from_slice(encoder.header());
        for (index, batch) in batches.iter().enumerate() {
            stream.extend_from_slice(encoder.compressed(
                batch,
                ratio,
                compressed_frame_seed(7, index as u64),
            ));
        }
        stream.extend_from_slice(encoder.end(batches.len() as u64));
        stream
    }

    #[test]
    fn compressed_frames_decode_as_deterministic_batches() {
        let batches: Vec<_> = (2..6).map(|t| sample_batch(t as f64)).collect();
        let stream = compressed_stream(&batches, 2);
        let first = TelemetryTrace::decode(&stream).expect("compressed stream decodes");
        let second = TelemetryTrace::decode(&stream).expect("second decode succeeds");
        assert_eq!(first.len(), batches.len());
        for (restored, original) in first.batches.iter().zip(&batches) {
            assert_eq!(restored.config, original.config);
            assert_eq!(restored.label, original.label);
            assert_eq!(restored.t_end.to_bits(), original.t_end.to_bits());
            assert_eq!(restored.window_s.to_bits(), original.window_s.to_bits());
            assert_eq!(restored.samples.len(), original.samples.len());
        }
        // Reconstruction is a pure function of the frame bytes: two decodes
        // of the same stream agree bit for bit.
        for (a, b) in first.batches.iter().zip(&second.batches) {
            for (x, y) in a.samples.iter().zip(&b.samples) {
                assert_eq!(x.t.to_bits(), y.t.to_bits());
                assert_eq!(x.x.to_bits(), y.x.to_bits());
                assert_eq!(x.y.to_bits(), y.y.to_bits());
                assert_eq!(x.z.to_bits(), y.z.to_bits());
            }
        }
    }

    #[test]
    fn compressed_frames_are_smaller_and_sized_as_promised() {
        let batch = sample_batch(2.0);
        let mut encoder = FrameEncoder::new();
        for ratio in [2u32, 4, 8] {
            let frame = encoder.compressed(&batch, ratio, 99).to_vec();
            assert_eq!(frame.len(), compressed_tx_bytes(batch.samples.len(), ratio));
            assert!(frame.len() < raw_tx_bytes(batch.samples.len()));
        }
        // Above ~2× compression the byte saving is real, which is what makes
        // local processing competitive with transmit-raw.
        assert!(compressed_tx_bytes(200, 2) * 2 < raw_tx_bytes(200) + 100);
    }

    #[test]
    fn every_strict_prefix_of_a_compressed_stream_is_rejected() {
        let batches: Vec<_> = (2..4).map(|t| sample_batch(t as f64)).collect();
        let stream = compressed_stream(&batches, 4);
        for cut in 0..stream.len() {
            assert!(
                TelemetryTrace::decode(&stream[..cut]).is_err(),
                "a compressed stream truncated at byte {cut}/{} must not decode",
                stream.len()
            );
        }
    }

    #[test]
    fn corrupt_compressed_frames_are_rejected_not_panicked() {
        let good = compressed_stream(&[sample_batch(2.0)], 2);

        // Measurement count above the sample count (coeffs field lives at
        // payload offset 24; header 8 B + length prefix 4 B before it).
        let mut bad_coeffs = good.clone();
        bad_coeffs[36..40].copy_from_slice(&1000u32.to_le_bytes());
        assert!(TelemetryTrace::decode(&bad_coeffs).is_err());

        // Zero samples (samples field at payload offset 20).
        let mut bad_samples = good.clone();
        bad_samples[32..36].copy_from_slice(&0u32.to_le_bytes());
        assert!(TelemetryTrace::decode(&bad_samples).is_err());

        // Bad configuration tag.
        let mut bad_config = good.clone();
        bad_config[13] = 200;
        assert!(TelemetryTrace::decode(&bad_config).is_err());

        assert!(TelemetryTrace::decode(&good).is_ok(), "the uncorrupted stream stays valid");
    }

    #[test]
    fn compressed_batches_reconstruct_close_to_the_original() {
        // A smooth gravity-plus-oscillation window must survive 2×
        // compression with small relative error — the property the
        // transmit-compressed policy's accuracy claim rests on.
        let config = SensorConfig::paper_pareto_front()[0];
        let samples: Vec<Sample3> = (0..200)
            .map(|i| {
                let t = i as f64 / 100.0;
                Sample3::new(
                    t,
                    0.05 * (std::f64::consts::TAU * 1.3 * t).sin(),
                    -0.04 * (std::f64::consts::TAU * 0.7 * t).cos(),
                    1.0 + 0.3 * (std::f64::consts::TAU * 2.1 * t).sin(),
                )
            })
            .collect();
        let batch = TelemetryBatch::new(config, 2.0, 2.0, 0, samples);
        let stream = compressed_stream(std::slice::from_ref(&batch), 2);
        let decoded = TelemetryTrace::decode(&stream).expect("stream decodes");
        let restored = &decoded.batches[0];
        let mut err = 0.0;
        let mut norm = 0.0;
        for (a, b) in batch.samples.iter().zip(&restored.samples) {
            err += (a.z - b.z).powi(2);
            norm += a.z * a.z;
        }
        assert!(err / norm < 0.05, "z-axis relative error {} too high", err / norm);
    }
}
