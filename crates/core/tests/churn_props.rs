//! Chaos tests for dynamic fleet churn: devices join the live cohort at
//! arbitrary times through a [`ReactorHandle`], depart early because their
//! streams end at arbitrary lifetimes, and get their first connection torn at
//! an arbitrary byte offset (kill-and-RESUME) — and the merged `FleetReport`
//! must still be bit-identical to a static run over each device's actual
//! lifetime window.  Also pins the churn edge cases: Unix-socket/TCP parity,
//! the reactor's `PARK_THRESHOLD` park→drain→unpark round trip, and
//! `ReconnectPolicy` redial pacing.

#![cfg(unix)]

use std::io::Cursor;
use std::sync::{mpsc, OnceLock};
use std::time::{Duration, Instant};

use adasense::ingest::{TelemetryTrace, TraceRecorder};
use adasense::prelude::*;
use adasense::runtime::SourceStatus;
use proptest::prelude::*;

/// Trains the quick system once for every case.
fn shared_system() -> &'static (ExperimentSpec, TrainedSystem) {
    static SYSTEM: OnceLock<(ExperimentSpec, TrainedSystem)> = OnceLock::new();
    SYSTEM.get_or_init(|| {
        let spec = ExperimentSpec::quick();
        let system = TrainedSystem::train(&spec).expect("quick training succeeds");
        (spec, system)
    })
}

/// The fleet every churn case replays.
fn test_fleet(seed: u64) -> FleetSpec {
    let mut fleet = FleetSpec::new(3, 6.0, seed);
    // Fault exposure is a capture-side property a replayed feed cannot
    // observe; bit-identity requires rows with `faulted_epochs == 0`.
    fleet.population = PopulationSpec::single(RoutinePreset::OfficeDay, FaultLevel::None);
    fleet
}

/// One device's lifetime inside a churn case: when it joins the fleet clock
/// and how much of the full duration it actually streams.
#[derive(Debug, Clone, Copy)]
struct ChurnCase {
    start_epoch: u64,
    lifetime_s: f64,
    departed: bool,
}

/// Maps proptest draws to per-device lifetimes: a fraction above 0.5 keeps
/// the full duration, anything below truncates into `[2, 6)` seconds.
fn churn_cases(fleet: &FleetSpec, fracs: &[f64], epochs: &[u64]) -> Vec<ChurnCase> {
    (0..fleet.devices as usize)
        .map(|d| {
            let full = fracs[d] > 0.5;
            let lifetime_s =
                if full { fleet.duration_s } else { 2.0 + fracs[d] * (fleet.duration_s - 2.1) };
            ChurnCase { start_epoch: epochs[d], lifetime_s, departed: !full }
        })
        .collect()
}

/// Records each device's trace over *its* lifetime window, exactly as the
/// scheduler would have produced it.
fn record_lifetime_traces(fleet: &FleetSpec, cases: &[ChurnCase]) -> Vec<(u64, TelemetryTrace)> {
    let (spec, system) = shared_system();
    let scheduler = FleetScheduler::new(spec, system);
    (0..fleet.devices)
        .map(|device_id| {
            let plan = fleet.device_plan(device_id);
            let recorder = TraceRecorder::new(scheduler.device_source(fleet, &plan));
            let mut runtime = DeviceRuntime::for_source(
                spec,
                system,
                fleet.controller,
                recorder,
                cases[device_id as usize].lifetime_s,
            )
            .expect("runtime construction succeeds")
            .with_classifier(system.backend(plan.backend));
            runtime.run_to_completion();
            (device_id, runtime.source().trace().clone())
        })
        .collect()
}

/// The per-lifetime feed for one device, with the churn metadata stamped on.
fn churn_feed(
    fleet: &FleetSpec,
    device_id: u64,
    source: impl SampleSource + Send + 'static,
    case: ChurnCase,
) -> ExternalDevice {
    let plan = fleet.device_plan(device_id);
    ExternalDevice::new(plan.device_id, source)
        .with_metadata(plan.seed, plan.routine.clone())
        .with_backend(plan.backend)
        .with_start_epoch(case.start_epoch)
        .with_departed(case.departed)
}

/// The static reference: every device replayed over its lifetime window as a
/// plain pre-registered feed, no sockets, no churn.
fn static_reference(
    fleet: &FleetSpec,
    traces: &[(u64, TelemetryTrace)],
    cases: &[ChurnCase],
) -> FleetRun {
    let (spec, system) = shared_system();
    let scheduler = FleetScheduler::new(spec, system);
    let feeds = traces
        .iter()
        .map(|(device_id, trace)| {
            let source = SocketSource::from_reader(Cursor::new(trace.encode()))
                .expect("a recorded trace replays");
            churn_feed(fleet, *device_id, source, cases[*device_id as usize])
        })
        .collect();
    let feed_only = FleetSpec { devices: 0, ..fleet.clone() };
    scheduler
        .builder()
        .spec(&feed_only)
        .feeds(feeds)
        .collect()
        .run()
        .expect("reference run succeeds")
}

/// The live churned run: every device joins mid-run through a
/// [`ReactorHandle`] (in `rotate`d order, staggered in time) and flows into
/// the scheduler through the intake channel; the server optionally tears
/// each first stream at `kill_at`.
fn live_churn(
    fleet: &FleetSpec,
    traces: Vec<(u64, TelemetryTrace)>,
    cases: &[ChurnCase],
    kill_at: Option<usize>,
    rotate: usize,
) -> (FleetRun, ReactorStats, ServeStats) {
    let (spec, system) = shared_system();
    let scheduler = FleetScheduler::new(spec, system);
    let mut serve = TelemetryServe::bind("127.0.0.1:0", traces).expect("loopback bind succeeds");
    for (device_id, case) in cases.iter().enumerate() {
        serve.set_start_epoch(device_id as u64, case.start_epoch);
    }
    if let Some(bytes) = kill_at {
        serve = serve.with_kill_at(bytes);
    }
    let addr = serve.local_addr().to_string();
    let devices = fleet.devices;
    let server =
        std::thread::spawn(move || serve.serve_streams(devices, 50).map(|()| serve.stats()));

    let mut reactor = IngestReactor::new()
        .with_policy(ReconnectPolicy { attempts: 10, delay: Duration::from_millis(1) });
    let handle = reactor.handle();
    let runner = std::thread::spawn(move || reactor.run());

    let (feed_tx, feed_rx) = mpsc::channel();
    let driver = {
        let fleet = fleet.clone();
        let cases = cases.to_vec();
        std::thread::spawn(move || {
            for k in 0..fleet.devices as usize {
                let d = (k + rotate) % fleet.devices as usize;
                let source = handle.subscribe(&addr, d as u64);
                let feed = churn_feed(&fleet, d as u64, source, cases[d]);
                feed_tx.send(feed).expect("the scheduler holds the intake open");
                // Stagger so later devices genuinely join a running cohort.
                std::thread::sleep(Duration::from_millis(2));
            }
            // Dropping the handle and the sender closes both intakes: the
            // reactor and the scheduler wind down once the feeds drain.
        })
    };

    let feed_only = FleetSpec { devices: 0, ..fleet.clone() };
    let live = scheduler
        .builder()
        .spec(&feed_only)
        .intake(feed_rx)
        .collect()
        .run()
        .expect("live churn run succeeds");

    driver.join().expect("driver thread");
    let stats = runner.join().expect("reactor thread").expect("no reactor-global failure");
    let serve_stats = server.join().expect("server thread").expect("server completes");
    (live, stats, serve_stats)
}

/// Field-by-field bit comparison of two summary rows.
fn rows_bit_identical(a: &DeviceSummary, b: &DeviceSummary) -> bool {
    a.device_id == b.device_id
        && a.seed == b.seed
        && a.routine == b.routine
        && a.backend == b.backend
        && a.faulted_epochs == b.faulted_epochs
        && a.epochs == b.epochs
        && a.correct_epochs == b.correct_epochs
        && a.accuracy.to_bits() == b.accuracy.to_bits()
        && a.average_current_ua.to_bits() == b.average_current_ua.to_bits()
        && a.total_charge_uc.to_bits() == b.total_charge_uc.to_bits()
        && a.duration_s.to_bits() == b.duration_s.to_bits()
        && a.residency_s.len() == b.residency_s.len()
        && a.residency_s.iter().zip(&b.residency_s).all(|(x, y)| x.to_bits() == y.to_bits())
        && a.tx_epochs == b.tx_epochs
        && a.tx_bytes == b.tx_bytes
        && a.tx_charge_uc.len() == b.tx_charge_uc.len()
        && a.tx_charge_uc.iter().zip(&b.tx_charge_uc).all(|(x, y)| x.to_bits() == y.to_bits())
        && a.start_epoch == b.start_epoch
        && a.departed == b.departed
}

proptest! {
    // Each case trains nothing (shared system) but runs the fleet twice and
    // churns real sockets, so the budget is small.
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Join at arbitrary ticks, depart at arbitrary lifetimes, tear every
    /// first stream at an arbitrary byte offset — the merged report must be
    /// bit-identical to the static per-lifetime reference.
    #[test]
    fn churned_fleet_matches_static_per_lifetime_reference(
        seed in 0u64..1000,
        fracs in prop::collection::vec(0f64..1.0, 3),
        epochs in prop::collection::vec(0u64..40, 3),
        kill_fraction in 0f64..1.0,
        rotate in 0usize..3,
    ) {
        let fleet = test_fleet(seed);
        let cases = churn_cases(&fleet, &fracs, &epochs);
        let traces = record_lifetime_traces(&fleet, &cases);
        let reference = static_reference(&fleet, &traces, &cases);

        let stream_len =
            traces.iter().map(|(_, t)| t.encode().len()).max().expect("fleet is non-empty");
        let kill_at = ((stream_len as f64 * kill_fraction) as usize).max(1);
        let (live, stats, serve_stats) =
            live_churn(&fleet, traces, &cases, Some(kill_at), rotate);

        prop_assert_eq!(stats.failed, 0, "errors: {:?}", stats.errors);
        prop_assert_eq!(stats.joined, fleet.devices, "every device joined mid-run");
        prop_assert_eq!(stats.completed, fleet.devices);
        prop_assert!(
            stats.reconnects >= fleet.devices,
            "kill at byte {} produced only {} reconnects",
            kill_at,
            stats.reconnects
        );
        prop_assert_eq!(serve_stats.killed_streams, fleet.devices);

        prop_assert_eq!(
            live.report.encode(),
            reference.report.encode(),
            "churned report differs from the per-lifetime reference (kill at byte {})",
            kill_at
        );
        let expected_joined = cases.iter().filter(|c| c.start_epoch > 0).count() as u64;
        let expected_departed = cases.iter().filter(|c| c.departed).count() as u64;
        prop_assert_eq!(live.report.joined_devices(), expected_joined);
        prop_assert_eq!(live.report.departed_devices(), expected_departed);
        prop_assert_eq!(live.report.active_peak(), reference.report.active_peak());

        // Intake rows fold in completion order; compare as a multiset.
        let mut live_rows = live.summaries.clone();
        live_rows.sort_by_key(|row| row.device_id);
        prop_assert_eq!(live_rows.len(), reference.summaries.len());
        for (a, b) in reference.summaries.iter().zip(&live_rows) {
            prop_assert!(
                rows_bit_identical(a, b),
                "device {} differs (kill at byte {}):\n  reference: {:?}\n  live:      {:?}",
                a.device_id,
                kill_at,
                a,
                b
            );
        }
    }
}

/// The same cohort served over a Unix-domain socket and over loopback TCP
/// must produce byte-identical fleet reports — the transport is invisible to
/// the rows.
#[test]
fn unix_and_tcp_transports_produce_byte_identical_reports() {
    let (spec, system) = shared_system();
    let scheduler = FleetScheduler::new(spec, system);
    let fleet = test_fleet(71);
    let full: Vec<ChurnCase> = (0..fleet.devices)
        .map(|_| ChurnCase { start_epoch: 0, lifetime_s: fleet.duration_s, departed: false })
        .collect();
    let traces = record_lifetime_traces(&fleet, &full);

    let run_cohort = |addr: String, serve: TelemetryServe| {
        let mut serve = serve;
        let devices = fleet.devices;
        let server =
            std::thread::spawn(move || serve.serve_streams(devices, 50).map(|()| serve.stats()));
        let mut reactor = IngestReactor::new()
            .with_policy(ReconnectPolicy { attempts: 10, delay: Duration::from_millis(1) });
        let feeds: Vec<_> = (0..fleet.devices)
            .map(|device_id| {
                let plan = fleet.device_plan(device_id);
                ExternalDevice::new(plan.device_id, reactor.subscribe(&addr, device_id))
                    .with_metadata(plan.seed, plan.routine.clone())
                    .with_backend(plan.backend)
            })
            .collect();
        let reactor = std::thread::spawn(move || reactor.run());
        let feed_only = FleetSpec { devices: 0, ..fleet.clone() };
        let live = scheduler
            .builder()
            .spec(&feed_only)
            .feeds(feeds)
            .collect()
            .run()
            .expect("cohort run succeeds");
        let stats = reactor.join().expect("reactor thread").expect("no feed fails");
        assert_eq!(stats.failed, 0, "errors: {:?}", stats.errors);
        server.join().expect("server thread").expect("server completes");
        live
    };

    let tcp_serve = TelemetryServe::bind("127.0.0.1:0", traces.clone()).unwrap();
    let tcp = run_cohort(tcp_serve.local_addr().to_string(), tcp_serve);

    let dir = std::env::temp_dir().join(format!("adasense-churn-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("parity.sock");
    let path_str = path.to_str().unwrap().to_string();
    let uds_serve = TelemetryServe::bind_unix(&path_str, traces).unwrap();
    let uds = run_cohort(format!("unix:{path_str}"), uds_serve);
    let _ = std::fs::remove_file(&path);

    assert_eq!(
        uds.report.encode(),
        tcp.report.encode(),
        "the transport leaked into the fleet report"
    );
    assert_eq!(uds.summaries.len(), tcp.summaries.len());
    for (a, b) in tcp.summaries.iter().zip(&uds.summaries) {
        assert!(rows_bit_identical(a, b), "device {} differs across transports", a.device_id);
    }
}

/// A consumer that stalls long enough for the reactor-side overflow to cross
/// `PARK_THRESHOLD` (32 batches atop a 1-batch channel ring) forces the feed
/// through park → drain → unpark — and every batch must still arrive exactly
/// once, in order.
#[test]
fn overflow_past_the_park_threshold_round_trips_without_loss() {
    let config = SensorConfig::paper_pareto_front()[0];
    // Large enough (~150 KB encoded) that one bounded read burst cannot
    // swallow the whole stream: the reactor must park the fd while the
    // overflow queue is full and resume reading after the drain.
    let batches = 2_500usize;
    let mut trace = TelemetryTrace::new();
    for i in 0..batches {
        trace.batches.push(TelemetryBatch::new(
            config,
            2.0 * (i + 1) as f64,
            2.0,
            0,
            vec![Sample3::new(i as f64, 0.125, -0.125, 1.0)],
        ));
    }
    let mut serve = TelemetryServe::bind("127.0.0.1:0", vec![(1, trace)]).unwrap();
    let addr = serve.local_addr().to_string();
    let server = std::thread::spawn(move || serve.serve_streams(1, 50).unwrap());

    let mut reactor = IngestReactor::new()
        .with_channel_capacity(1)
        .with_policy(ReconnectPolicy { attempts: 10, delay: Duration::from_millis(1) });
    let mut source = reactor.subscribe(&addr, 1);
    let consumer = std::thread::spawn(move || {
        // Stall first: the ring (1) fills, then the overflow (32), then the
        // connection parks while the server still has frames to send.
        std::thread::sleep(Duration::from_millis(150));
        let mut delivered = 0usize;
        let mut window = Vec::new();
        while source.status() == SourceStatus::Ready {
            let t_end = 2.0 * (delivered + 1) as f64;
            window.clear();
            source.capture_window(config, t_end, 2.0, &mut window);
            assert_eq!(window.len(), 1, "batch {delivered} arrived out of order");
            assert_eq!(window[0].t.to_bits(), (delivered as f64).to_bits());
            delivered += 1;
        }
        assert_eq!(source.status(), SourceStatus::Exhausted);
        delivered
    });
    let stats = reactor.run().unwrap();
    assert_eq!(consumer.join().unwrap(), batches, "every batch exactly once, in order");
    assert_eq!((stats.completed, stats.failed, stats.batches), (1, 0, batches as u64), "{stats:?}");
    server.join().unwrap();
}

/// Redials are paced by the policy delay: with `attempts` tries `delay`
/// apart, a dead address cannot fail faster than `(attempts - 1) × delay`,
/// and the terminal error names the attempt budget.
#[test]
fn redial_backoff_paces_attempts_by_the_policy_delay() {
    let dead = {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        listener.local_addr().unwrap().to_string()
    };
    let delay = Duration::from_millis(40);
    let mut reactor = IngestReactor::new().with_policy(ReconnectPolicy { attempts: 3, delay });
    let source = reactor.subscribe(&dead, 8);
    let started = Instant::now();
    let stats = reactor.run().unwrap();
    let elapsed = started.elapsed();
    assert!(elapsed >= delay * 2, "3 attempts 40 ms apart cannot finish in {elapsed:?}");
    assert_eq!((stats.completed, stats.failed), (0, 1), "{stats:?}");
    assert!(
        stats.errors[0].1.to_string().contains("3 attempts"),
        "the error names the attempt budget: {}",
        stats.errors[0].1
    );
    drop(source);

    // `ReconnectPolicy::once` gives exactly one attempt: no pacing sleeps.
    let mut reactor = IngestReactor::new().with_policy(ReconnectPolicy::once());
    let source = reactor.subscribe(&dead, 9);
    let stats = reactor.run().unwrap();
    assert_eq!((stats.completed, stats.failed), (0, 1), "{stats:?}");
    assert!(
        stats.errors[0].1.to_string().contains("1 attempts"),
        "the once-policy error names its single attempt: {}",
        stats.errors[0].1
    );
    drop(source);
}
