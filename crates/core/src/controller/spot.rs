//! The State Prediction Optimization Technique (SPOT) finite state machine.
//!
//! SPOT (Section IV-D) walks down a list of sensor configurations ordered from
//! highest to lowest power.  Every classification epoch it compares the current
//! prediction to the previous one:
//!
//! * **C1** — same activity, counter below the stability threshold: increment the
//!   counter, stay in the current state.
//! * **C2** — same activity, counter reaches the stability threshold: move to the
//!   next lower-power state and restart the counter.
//! * **C3** — the activity changed: jump back to the first (highest-power) state.
//! * **C4** — same activity while already in the last state: stay there.
//!
//! The confidence extension (Section IV-E) only honours C3 when the classifier
//! reports the change with a confidence above the configured threshold; low
//! confidence changes are treated as sensor noise and ignored.
//!
//! SPOT additionally chooses a [`TxPolicy`] per epoch from the same evidence
//! the FSM already sees: a smoothed cascade-escalation rate and the latest
//! classification confidence.  While uncertain (low confidence or frequent
//! escalations) it ships raw windows so the host can re-examine them; once
//! settled it ships feature vectors, and after a long quiet stretch in a
//! below-maximum state it drops to compressed-sensing payloads.

use adasense_data::Activity;
use adasense_sensor::{SensorConfig, TxPolicy};
use serde::{Deserialize, Serialize};

use super::{ControllerInput, SensorController};

/// EWMA smoothing factor for the escalation-rate estimate (per epoch).
const TX_ESCALATION_ALPHA: f64 = 0.2;

/// Smoothed escalation rate above which SPOT transmits raw windows.
const TX_RAW_ESCALATION: f64 = 0.5;

/// Smoothed escalation rate below which SPOT may transmit compressed windows
/// (provided it is also confident and has stepped below the high-power state).
const TX_COMPRESSED_ESCALATION: f64 = 0.1;

/// Confidence floor for the transmission decision when the confidence
/// extension is not configured (the paper's 0.85 default).
const TX_DEFAULT_CONFIDENCE: f64 = 0.85;

/// The SPOT adaptive sensing controller.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpotController {
    states: Vec<SensorConfig>,
    stability_threshold: u32,
    confidence_threshold: Option<f64>,
    state: usize,
    counter: u32,
    last_activity: Option<Activity>,
    escalation_rate: f64,
    last_confidence: f64,
}

impl SpotController {
    /// Creates a SPOT controller over an explicit list of states (ordered from
    /// highest to lowest power).
    ///
    /// # Panics
    ///
    /// Panics if `states` is empty.
    pub fn new(states: Vec<SensorConfig>, stability_threshold: u32) -> Self {
        assert!(!states.is_empty(), "SPOT needs at least one state");
        Self {
            states,
            stability_threshold,
            confidence_threshold: None,
            state: 0,
            counter: 0,
            last_activity: None,
            escalation_rate: 1.0,
            last_confidence: 0.0,
        }
    }

    /// SPOT over the paper's four Pareto-optimal configurations.
    pub fn paper(stability_threshold: u32) -> Self {
        Self::new(SensorConfig::paper_pareto_front().to_vec(), stability_threshold)
    }

    /// Adds the confidence extension: only changes reported with confidence strictly
    /// greater than `confidence_threshold` reset the FSM.
    pub fn with_confidence(mut self, confidence_threshold: f64) -> Self {
        self.confidence_threshold = Some(confidence_threshold);
        self
    }

    /// SPOT with confidence over the paper's Pareto states (the paper uses 0.85).
    pub fn paper_with_confidence(stability_threshold: u32, confidence_threshold: f64) -> Self {
        Self::paper(stability_threshold).with_confidence(confidence_threshold)
    }

    /// The ordered state list.
    pub fn states(&self) -> &[SensorConfig] {
        &self.states
    }

    /// The index of the currently active state.
    pub fn state_index(&self) -> usize {
        self.state
    }

    /// The stability threshold (epochs of stable activity before stepping down).
    pub fn stability_threshold(&self) -> u32 {
        self.stability_threshold
    }

    /// The confidence threshold, if the confidence extension is enabled.
    pub fn confidence_threshold(&self) -> Option<f64> {
        self.confidence_threshold
    }

    /// The activity the FSM currently compares new predictions against
    /// ("Last Activity" in the paper's transition conditions), if any observation
    /// has been made yet.
    pub fn last_activity(&self) -> Option<Activity> {
        self.last_activity
    }

    /// The smoothed cascade-escalation rate driving the transmission policy.
    ///
    /// Starts pessimistically at 1.0 (as if every epoch escalated) and decays
    /// toward the observed rate with factor `TX_ESCALATION_ALPHA` (0.2) per epoch,
    /// so a freshly started or reset controller earns its way down to the
    /// cheaper payloads instead of assuming stability.
    pub fn escalation_rate(&self) -> f64 {
        self.escalation_rate
    }

    /// Whether an observed change should be trusted (confidence gate).
    fn change_is_trusted(&self, confidence: f64) -> bool {
        match self.confidence_threshold {
            Some(threshold) => confidence > threshold,
            None => true,
        }
    }
}

impl SensorController for SpotController {
    fn config(&self) -> SensorConfig {
        self.states[self.state]
    }

    fn observe(&mut self, input: &ControllerInput) -> SensorConfig {
        self.escalation_rate = (1.0 - TX_ESCALATION_ALPHA) * self.escalation_rate
            + TX_ESCALATION_ALPHA * f64::from(u8::from(input.escalated));
        self.last_confidence = input.confidence;
        match self.last_activity {
            None => {
                // First observation: nothing to compare against yet.
                self.last_activity = Some(input.predicted);
            }
            Some(last) if last == input.predicted => {
                // C1 / C2 / C4: stable activity.
                if self.state + 1 < self.states.len() {
                    self.counter += 1;
                    if self.counter >= self.stability_threshold {
                        self.state += 1;
                        self.counter = 0;
                    }
                }
            }
            Some(_) => {
                if self.change_is_trusted(input.confidence) {
                    // C3: the activity changed — return to the high-accuracy state.
                    self.state = 0;
                    self.counter = 0;
                    self.last_activity = Some(input.predicted);
                }
                // An untrusted change is treated as noise: state, counter and the
                // remembered activity all stay as they were.
            }
        }
        self.config()
    }

    fn reset(&mut self) {
        self.state = 0;
        self.counter = 0;
        self.last_activity = None;
        self.escalation_rate = 1.0;
        self.last_confidence = 0.0;
    }

    fn name(&self) -> String {
        match self.confidence_threshold {
            Some(c) => format!("SPOT+confidence({c})"),
            None => "SPOT".to_string(),
        }
    }

    fn tx_policy(&self) -> TxPolicy {
        let floor = self.confidence_threshold.unwrap_or(TX_DEFAULT_CONFIDENCE);
        if self.last_confidence < floor || self.escalation_rate > TX_RAW_ESCALATION {
            TxPolicy::Raw
        } else if self.escalation_rate < TX_COMPRESSED_ESCALATION && self.state > 0 {
            TxPolicy::Compressed
        } else {
            TxPolicy::Features
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stable(activity: Activity) -> ControllerInput {
        ControllerInput {
            predicted: activity,
            confidence: 0.99,
            intensity_g_per_s: 0.0,
            escalated: false,
        }
    }

    fn with_confidence(activity: Activity, confidence: f64) -> ControllerInput {
        ControllerInput {
            predicted: activity,
            confidence,
            intensity_g_per_s: 0.0,
            escalated: false,
        }
    }

    fn escalated(activity: Activity) -> ControllerInput {
        ControllerInput {
            predicted: activity,
            confidence: 0.99,
            intensity_g_per_s: 0.0,
            escalated: true,
        }
    }

    #[test]
    fn starts_at_the_highest_power_state() {
        let spot = SpotController::paper(5);
        assert_eq!(spot.config(), SensorConfig::paper_pareto_front()[0]);
        assert_eq!(spot.state_index(), 0);
    }

    #[test]
    fn steps_down_after_the_stability_threshold() {
        let mut spot = SpotController::paper(3);
        // First observation establishes the activity, then 3 stable epochs per step.
        spot.observe(&stable(Activity::Sit));
        for _ in 0..2 {
            spot.observe(&stable(Activity::Sit));
            assert_eq!(spot.state_index(), 0);
        }
        spot.observe(&stable(Activity::Sit));
        assert_eq!(spot.state_index(), 1, "third stable epoch crosses the threshold");
        for _ in 0..3 {
            spot.observe(&stable(Activity::Sit));
        }
        assert_eq!(spot.state_index(), 2);
        for _ in 0..3 {
            spot.observe(&stable(Activity::Sit));
        }
        assert_eq!(spot.state_index(), 3);
    }

    #[test]
    fn stays_in_the_last_state_while_stable() {
        let mut spot = SpotController::paper(1);
        spot.observe(&stable(Activity::Walk));
        for _ in 0..20 {
            spot.observe(&stable(Activity::Walk));
        }
        assert_eq!(spot.state_index(), 3, "must not step past the last state");
    }

    #[test]
    fn any_activity_change_resets_to_the_first_state() {
        let mut spot = SpotController::paper(1);
        spot.observe(&stable(Activity::Walk));
        for _ in 0..5 {
            spot.observe(&stable(Activity::Walk));
        }
        assert!(spot.state_index() > 0);
        spot.observe(&stable(Activity::Sit));
        assert_eq!(spot.state_index(), 0);
        // And the new activity becomes the reference for stability counting.
        spot.observe(&stable(Activity::Sit));
        spot.observe(&stable(Activity::Sit));
        assert!(spot.state_index() > 0 || spot.stability_threshold() > 2);
    }

    #[test]
    fn low_confidence_changes_are_ignored_with_the_confidence_extension() {
        let mut spot = SpotController::paper_with_confidence(1, 0.85);
        spot.observe(&stable(Activity::Walk));
        for _ in 0..5 {
            spot.observe(&stable(Activity::Walk));
        }
        let deep_state = spot.state_index();
        assert!(deep_state > 0);
        // A noisy, low-confidence "change" must not reset the FSM…
        spot.observe(&with_confidence(Activity::Sit, 0.5));
        assert_eq!(spot.state_index(), deep_state);
        // …but a confident change must.
        spot.observe(&with_confidence(Activity::Sit, 0.95));
        assert_eq!(spot.state_index(), 0);
    }

    #[test]
    fn plain_spot_resets_even_on_low_confidence_changes() {
        let mut spot = SpotController::paper(1);
        spot.observe(&stable(Activity::Walk));
        for _ in 0..5 {
            spot.observe(&stable(Activity::Walk));
        }
        spot.observe(&with_confidence(Activity::Sit, 0.4));
        assert_eq!(spot.state_index(), 0);
    }

    #[test]
    fn zero_threshold_descends_every_stable_epoch() {
        let mut spot = SpotController::paper(0);
        spot.observe(&stable(Activity::Stand));
        spot.observe(&stable(Activity::Stand));
        assert_eq!(spot.state_index(), 1);
        spot.observe(&stable(Activity::Stand));
        assert_eq!(spot.state_index(), 2);
    }

    #[test]
    fn reset_restores_the_initial_state() {
        let mut spot = SpotController::paper(1);
        spot.observe(&stable(Activity::Walk));
        for _ in 0..4 {
            spot.observe(&stable(Activity::Walk));
        }
        spot.reset();
        assert_eq!(spot.state_index(), 0);
        assert_eq!(spot.config(), SensorConfig::paper_pareto_front()[0]);
    }

    #[test]
    #[should_panic(expected = "at least one state")]
    fn empty_state_list_is_rejected() {
        let _ = SpotController::new(Vec::new(), 3);
    }

    #[test]
    fn names_identify_the_variant() {
        assert_eq!(SpotController::paper(1).name(), "SPOT");
        assert!(SpotController::paper_with_confidence(1, 0.85).name().contains("confidence"));
    }

    #[test]
    fn tx_policy_starts_raw_and_earns_its_way_down() {
        let mut spot = SpotController::paper(1);
        // No evidence yet: assume the worst and ship raw windows.
        assert_eq!(spot.tx_policy(), TxPolicy::Raw);
        // The pessimistic escalation prior decays over a few quiet epochs…
        let mut policies = Vec::new();
        for _ in 0..20 {
            spot.observe(&stable(Activity::Sit));
            policies.push(spot.tx_policy());
        }
        // …passing through Features on the way to Compressed, never backwards.
        assert_eq!(policies[0], TxPolicy::Raw, "one quiet epoch is not enough");
        assert!(policies.contains(&TxPolicy::Features));
        assert_eq!(*policies.last().unwrap(), TxPolicy::Compressed);
        let first_features = policies.iter().position(|p| *p == TxPolicy::Features).unwrap();
        let first_compressed = policies.iter().position(|p| *p == TxPolicy::Compressed).unwrap();
        assert!(first_features < first_compressed);
        assert!(policies[first_features..first_compressed]
            .iter()
            .all(|p| *p == TxPolicy::Features));
    }

    #[test]
    fn escalations_push_the_policy_back_toward_raw() {
        let mut spot = SpotController::paper(1);
        for _ in 0..20 {
            spot.observe(&stable(Activity::Walk));
        }
        assert_eq!(spot.tx_policy(), TxPolicy::Compressed);
        let settled_rate = spot.escalation_rate();
        // A burst of cascade escalations drives the smoothed rate back up.
        for _ in 0..8 {
            spot.observe(&escalated(Activity::Walk));
        }
        assert!(spot.escalation_rate() > settled_rate);
        assert_eq!(spot.tx_policy(), TxPolicy::Raw);
    }

    #[test]
    fn low_confidence_epochs_force_raw_payloads() {
        let mut spot = SpotController::paper_with_confidence(1, 0.85);
        for _ in 0..20 {
            spot.observe(&stable(Activity::Stand));
        }
        assert_eq!(spot.tx_policy(), TxPolicy::Compressed);
        // One shaky classification and the next payload is a full raw window,
        // even though the FSM itself (rightly) ignores the noisy change.
        spot.observe(&with_confidence(Activity::Stand, 0.4));
        assert_eq!(spot.tx_policy(), TxPolicy::Raw);
    }

    #[test]
    fn compressed_requires_leaving_the_high_power_state() {
        // With an enormous stability threshold the FSM never steps down, so the
        // policy parks at Features no matter how quiet the stream is.
        let mut spot = SpotController::paper(u32::MAX);
        for _ in 0..50 {
            spot.observe(&stable(Activity::Sit));
        }
        assert_eq!(spot.state_index(), 0);
        assert_eq!(spot.tx_policy(), TxPolicy::Features);
    }

    #[test]
    fn reset_restores_the_pessimistic_tx_prior() {
        let mut spot = SpotController::paper(1);
        for _ in 0..20 {
            spot.observe(&stable(Activity::Walk));
        }
        assert_eq!(spot.tx_policy(), TxPolicy::Compressed);
        spot.reset();
        assert_eq!(spot.tx_policy(), TxPolicy::Raw);
        assert!((spot.escalation_rate() - 1.0).abs() < 1e-12);
    }
}
