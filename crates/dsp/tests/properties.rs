//! Property-based tests for the DSP substrate.

use adasense_dsp::prelude::*;
use adasense_sensor::Sample3;
use proptest::prelude::*;

fn finite_signal(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-2.0f64..2.0, 2..max_len)
}

proptest! {
    /// Goertzel agrees with the direct DFT on every integer bin of arbitrary-length
    /// signals.
    #[test]
    fn goertzel_matches_dft(signal in finite_signal(64), bin in 0usize..8) {
        prop_assume!(bin < signal.len());
        let direct = dft_magnitudes(&signal, bin + 1)[bin];
        let goertzel = goertzel_magnitude(&signal, bin as f64);
        prop_assert!((direct - goertzel).abs() < 1e-6 * (1.0 + direct.abs()));
    }

    /// The FFT preserves signal energy (Parseval's theorem).
    #[test]
    fn fft_preserves_energy(signal in prop::collection::vec(-2.0f64..2.0, 1usize..6).prop_map(|seed| {
        // Expand the seed into a power-of-two length signal deterministically.
        let n = 32;
        (0..n).map(|i| seed[i % seed.len()] * ((i as f64 * 0.7).sin() + 0.3)).collect::<Vec<f64>>()
    })) {
        let time_energy: f64 = signal.iter().map(|v| v * v).sum();
        let mut data: Vec<Complex> = signal.iter().map(|&v| Complex::new(v, 0.0)).collect();
        fft_radix2(&mut data);
        let freq_energy: f64 = data.iter().map(|c| {
            let m = c.magnitude();
            m * m
        }).sum::<f64>() / signal.len() as f64;
        prop_assert!((time_energy - freq_energy).abs() < 1e-6 * (1.0 + time_energy));
    }

    /// Feature vectors always have exactly 15 finite entries, whatever the batch.
    #[test]
    fn features_are_fixed_size_and_finite(
        len in 2usize..300,
        rate in prop::sample::select(vec![6.25f64, 12.5, 25.0, 50.0, 100.0]),
        amp in 0.0f64..1.0,
        freq in 0.1f64..4.0,
    ) {
        let samples: Vec<Sample3> = (0..len)
            .map(|k| {
                let t = k as f64 / rate;
                Sample3::new(t, amp * (freq * t).sin(), 0.2, 1.0 - amp * (freq * t).cos())
            })
            .collect();
        let features = FeatureExtractor::paper().extract(&samples, rate);
        prop_assert_eq!(features.len(), FEATURE_DIM);
        prop_assert!(features.as_slice().iter().all(|v| v.is_finite()));
        // Standard deviations are non-negative by construction.
        prop_assert!(features.stds().iter().all(|v| *v >= 0.0));
        // Fourier magnitudes are non-negative.
        for axis in 0..3 {
            prop_assert!(features.fourier(axis).iter().all(|v| *v >= 0.0));
        }
    }

    /// Statistics are invariant to sample order for mean/min/max and the mean always
    /// lies between min and max.
    #[test]
    fn stats_mean_is_bounded(values in finite_signal(128)) {
        let s = AxisStats::of(&values);
        prop_assert!(s.mean >= s.min - 1e-12);
        prop_assert!(s.mean <= s.max + 1e-12);
        prop_assert!(s.std >= 0.0);
        prop_assert!(s.rms >= 0.0);
        let mut reversed = values.clone();
        reversed.reverse();
        let r = AxisStats::of(&reversed);
        prop_assert!((s.mean - r.mean).abs() < 1e-12);
        prop_assert!((s.std - r.std).abs() < 1e-12);
    }

    /// Resampling a linear ramp is exact at any target rate.
    #[test]
    fn resampling_a_ramp_is_exact(rate in 5.0f64..100.0, target in 5.0f64..100.0) {
        let n = (rate * 2.0) as usize;
        let input: Vec<Sample3> = (0..n)
            .map(|k| {
                let t = k as f64 / rate;
                Sample3::new(t, 3.0 * t, -t, 0.5 * t)
            })
            .collect();
        prop_assume!(input.len() >= 2);
        for s in resample_linear(&input, target) {
            prop_assert!((s.x - 3.0 * s.t).abs() < 1e-9);
            prop_assert!((s.y + s.t).abs() < 1e-9);
            prop_assert!((s.z - 0.5 * s.t).abs() < 1e-9);
        }
    }

    /// The batch buffer never emits a batch spanning more than the window length and
    /// never loses the fixed feature of overlapping coverage.
    #[test]
    fn batch_buffer_spans_are_bounded(rate in prop::sample::select(vec![6.25f64, 12.5, 25.0, 50.0, 100.0])) {
        let mut buffer = BatchBuffer::paper();
        let n = (rate * 8.0).round() as usize;
        let samples: Vec<Sample3> = (0..n)
            .map(|k| Sample3::new(k as f64 / rate, 0.0, 0.0, 1.0))
            .collect();
        let batches = buffer.push_all(&samples);
        prop_assert!(!batches.is_empty());
        for batch in &batches {
            let span = batch.last().unwrap().t - batch.first().unwrap().t;
            prop_assert!(span <= 2.0 + 1e-9);
        }
    }
}
