//! Benchmarks of the Fig. 2 design-space-exploration building blocks: dataset window
//! generation per configuration, the per-window evaluation path (features +
//! dedicated classifier), and Pareto-front extraction over the 16-point cloud.

use adasense::prelude::*;
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_window_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("dataset_generation_one_window_per_class");
    group.sample_size(20);
    for config in [SensorConfig::paper_pareto_front()[0], SensorConfig::paper_pareto_front()[3]] {
        let spec = DatasetSpec {
            windows_per_class_per_config: 1,
            configs: vec![config],
            ..DatasetSpec::quick()
        };
        group.bench_function(config.label(), |b| {
            b.iter(|| black_box(WindowDataset::generate(black_box(&spec), 3)))
        });
    }
    group.finish();
}

fn bench_pareto_extraction(c: &mut Criterion) {
    // A synthetic 16-point accuracy/current cloud shaped like Fig. 2.
    let energy = EnergyModel::bmi160();
    let evaluations: Vec<ConfigEvaluation> = SensorConfig::table_i()
        .into_iter()
        .enumerate()
        .map(|(i, config)| ConfigEvaluation {
            config,
            accuracy: 0.91 + 0.005 * (i % 8) as f64,
            current_ua: energy.current_ua(config),
        })
        .collect();
    c.bench_function("pareto_front_16_points", |b| {
        b.iter(|| black_box(pareto_front(black_box(&evaluations))))
    });
}

fn bench_per_window_evaluation(c: &mut Criterion) {
    // The DSE inner loop per window: capture, extract features, classify.
    let config = SensorConfig::paper_pareto_front()[1];
    let accel = Accelerometer::new(config);
    let signal = ActivitySignalModel::canonical(Activity::Walk).realize(&SubjectParams::neutral());
    let extractor = FeatureExtractor::paper();
    let mut rng = StdRng::seed_from_u64(5);
    let model = Mlp::new(MlpConfig::paper(), &mut rng);
    c.bench_function("dse_inner_loop_capture_extract_classify", |b| {
        b.iter(|| {
            let mut inner_rng = StdRng::seed_from_u64(9);
            let window = accel.capture(&signal, 0.0, 2.0, &mut inner_rng);
            let features = extractor.extract(&window, config.frequency.hz());
            black_box(model.predict(features.as_slice()))
        })
    });
}

criterion_group!(
    benches,
    bench_window_generation,
    bench_pareto_extraction,
    bench_per_window_evaluation
);
criterion_main!(benches);
