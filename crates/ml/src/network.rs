//! Dense layers and the multi-layer perceptron used as the HAR classifier.
//!
//! The paper's classifier (Section III-C) is an MLP with one hidden ReLU layer and a
//! 6-way softmax output.  [`MlpConfig`] defaults to that shape but allows deeper
//! stacks for ablations.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::loss::softmax;
use crate::matrix::Matrix;
use crate::normalize::Normalizer;

/// One fully connected layer: `y = x × W + b`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DenseLayer {
    /// Weight matrix of shape (inputs × outputs).
    pub weights: Matrix,
    /// Bias vector of length `outputs`.
    pub biases: Vec<f64>,
}

impl DenseLayer {
    /// Creates a layer with Xavier/Glorot-uniform initialized weights.
    pub fn xavier<R: Rng + ?Sized>(inputs: usize, outputs: usize, rng: &mut R) -> Self {
        let limit = (6.0 / (inputs + outputs) as f64).sqrt();
        let mut weights = Matrix::zeros(inputs, outputs);
        for v in weights.as_mut_slice() {
            *v = rng.random_range(-limit..limit);
        }
        Self { weights, biases: vec![0.0; outputs] }
    }

    /// Number of inputs.
    pub fn inputs(&self) -> usize {
        self.weights.rows()
    }

    /// Number of outputs.
    pub fn outputs(&self) -> usize {
        self.weights.cols()
    }

    /// Number of trainable parameters (weights + biases).
    pub fn parameter_count(&self) -> usize {
        self.weights.element_count() + self.biases.len()
    }

    /// Forward pass for a batch (rows = samples).
    pub fn forward(&self, input: &Matrix) -> Matrix {
        input.matmul(&self.weights).add_row_broadcast(&self.biases)
    }
}

/// Architecture of an [`Mlp`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MlpConfig {
    /// Number of input features.
    pub input_dim: usize,
    /// Sizes of the hidden ReLU layers.
    pub hidden_dims: Vec<usize>,
    /// Number of output classes.
    pub output_dim: usize,
}

impl MlpConfig {
    /// Creates an architecture description.
    pub fn new(input_dim: usize, hidden_dims: Vec<usize>, output_dim: usize) -> Self {
        Self { input_dim, hidden_dims, output_dim }
    }

    /// The paper's classifier shape: 15 features → one hidden ReLU layer → 6 classes.
    ///
    /// The hidden width is not stated in the paper; 24 neurons keeps the model within
    /// a few kilobytes (the paper stresses that wearables "only have few KBs of
    /// memory") while giving enough capacity for the six classes.
    pub fn paper() -> Self {
        Self::new(15, vec![24], 6)
    }

    /// Total number of trainable parameters of this architecture.
    pub fn parameter_count(&self) -> usize {
        let mut dims = Vec::with_capacity(self.hidden_dims.len() + 2);
        dims.push(self.input_dim);
        dims.extend_from_slice(&self.hidden_dims);
        dims.push(self.output_dim);
        dims.windows(2).map(|d| d[0] * d[1] + d[1]).sum()
    }
}

impl Default for MlpConfig {
    fn default() -> Self {
        Self::paper()
    }
}

/// The result of classifying one feature vector.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Prediction {
    /// Index of the most probable class.
    pub class: usize,
    /// Softmax probability of that class (the "confidence" used by SPOT with
    /// confidence, Section IV-E).
    pub confidence: f64,
    /// Full per-class probability vector.
    pub probabilities: Vec<f64>,
}

/// A multi-layer perceptron with ReLU hidden activations and softmax output.
///
/// This is the default full-precision inference backend; it also implements
/// the object-safe [`Classifier`](crate::classifier::Classifier) trait so the
/// runtime and fleet layers can swap in other backends (for example the int8
/// [`QuantizedMlp`](crate::quantized::QuantizedMlp)).
///
/// # Examples
///
/// ```
/// use adasense_ml::{Mlp, MlpConfig};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// // An untrained paper-shaped network still produces a valid softmax output.
/// let mlp = Mlp::new(MlpConfig::paper(), &mut StdRng::seed_from_u64(42));
/// let prediction = mlp.predict(&[0.1; 15]);
/// assert!(prediction.class < 6);
/// assert!((prediction.probabilities.iter().sum::<f64>() - 1.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mlp {
    config: MlpConfig,
    layers: Vec<DenseLayer>,
    normalizer: Option<Normalizer>,
}

impl Mlp {
    /// Creates a network with Xavier-initialized weights.
    pub fn new<R: Rng + ?Sized>(config: MlpConfig, rng: &mut R) -> Self {
        let mut dims = Vec::with_capacity(config.hidden_dims.len() + 2);
        dims.push(config.input_dim);
        dims.extend_from_slice(&config.hidden_dims);
        dims.push(config.output_dim);
        let layers = dims.windows(2).map(|d| DenseLayer::xavier(d[0], d[1], rng)).collect();
        Self { config, layers, normalizer: None }
    }

    /// The architecture of this network.
    pub fn config(&self) -> &MlpConfig {
        &self.config
    }

    /// The layers of this network.
    pub fn layers(&self) -> &[DenseLayer] {
        &self.layers
    }

    /// Mutable access to the layers (used by the trainer).
    pub(crate) fn layers_mut(&mut self) -> &mut [DenseLayer] {
        &mut self.layers
    }

    /// Attaches a fitted input normalizer that is applied before every forward pass.
    pub fn set_normalizer(&mut self, normalizer: Normalizer) {
        self.normalizer = Some(normalizer);
    }

    /// The attached input normalizer, if any.
    pub fn normalizer(&self) -> Option<&Normalizer> {
        self.normalizer.as_ref()
    }

    /// Total number of trainable parameters.
    pub fn parameter_count(&self) -> usize {
        self.layers.iter().map(DenseLayer::parameter_count).sum()
    }

    /// Forward pass through every layer, returning the activations *after* each
    /// layer (ReLU applied to hidden layers, raw logits for the last layer).
    ///
    /// The first element of the returned vector is the (normalized) input batch, so
    /// the vector has `layers + 1` entries.  Used by the trainer for backpropagation.
    pub(crate) fn forward_trace(&self, input: &Matrix) -> Vec<Matrix> {
        let normalized = match &self.normalizer {
            Some(n) => n.transform_matrix(input),
            None => input.clone(),
        };
        let mut trace = Vec::with_capacity(self.layers.len() + 1);
        trace.push(normalized);
        for (i, layer) in self.layers.iter().enumerate() {
            let last = trace.last().expect("trace starts with the input");
            let mut out = layer.forward(last);
            if i + 1 < self.layers.len() {
                out = out.map(|v| v.max(0.0));
            }
            trace.push(out);
        }
        trace
    }

    /// Raw logits for a batch of inputs (rows = samples).
    pub fn logits(&self, input: &Matrix) -> Matrix {
        self.forward_trace(input).pop().expect("trace is never empty")
    }

    /// Classifies a single feature vector.
    ///
    /// # Panics
    ///
    /// Panics if `features.len()` does not match the configured input dimension.
    pub fn predict(&self, features: &[f64]) -> Prediction {
        assert_eq!(
            features.len(),
            self.config.input_dim,
            "expected {} features, got {}",
            self.config.input_dim,
            features.len()
        );
        let input = Matrix::from_rows(&[features.to_vec()]);
        let logits = self.logits(&input);
        prediction_from_logits(logits.row(0))
    }

    /// Classifies a batch of feature vectors with a single forward pass.
    ///
    /// The whole batch goes through each layer as one matrix product, so the cost
    /// per vector is far below that of repeated [`Mlp::predict`] calls while the
    /// per-row results stay bit-identical (every row is an independent dot-product
    /// accumulation in the same order).  This is the inference path the fleet
    /// simulator uses when many devices tick in lockstep.
    ///
    /// # Panics
    ///
    /// Panics if any feature vector's length does not match the configured input
    /// dimension.
    pub fn predict_batch(&self, features: &[Vec<f64>]) -> Vec<Prediction> {
        if features.is_empty() {
            return Vec::new();
        }
        for f in features {
            assert_eq!(
                f.len(),
                self.config.input_dim,
                "expected {} features, got {}",
                self.config.input_dim,
                f.len()
            );
        }
        let input = Matrix::from_rows(features);
        let logits = self.logits(&input);
        (0..logits.rows()).map(|r| prediction_from_logits(logits.row(r))).collect()
    }
}

/// Converts one row of raw logits into a [`Prediction`].  Shared with the
/// quantized backend so every backend resolves softmax/argmax identically.
pub(crate) fn prediction_from_logits(logits: &[f64]) -> Prediction {
    let probabilities = softmax(logits);
    let (class, confidence) = probabilities
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("probabilities are finite"))
        .map(|(i, &p)| (i, p))
        .expect("output dimension is non-zero");
    Prediction { class, confidence, probabilities }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn paper_config_matches_the_described_architecture() {
        let config = MlpConfig::paper();
        assert_eq!(config.input_dim, 15);
        assert_eq!(config.output_dim, 6);
        assert_eq!(config.hidden_dims.len(), 1, "one hidden layer");
    }

    #[test]
    fn parameter_count_formula_matches_layers() {
        let mut rng = StdRng::seed_from_u64(0);
        let config = MlpConfig::new(15, vec![24, 10], 6);
        let mlp = Mlp::new(config.clone(), &mut rng);
        assert_eq!(mlp.parameter_count(), config.parameter_count());
        assert_eq!(config.parameter_count(), 15 * 24 + 24 + 24 * 10 + 10 + 10 * 6 + 6);
    }

    #[test]
    fn prediction_probabilities_sum_to_one() {
        let mut rng = StdRng::seed_from_u64(1);
        let mlp = Mlp::new(MlpConfig::paper(), &mut rng);
        let p = mlp.predict(&[0.1; 15]);
        assert!((p.probabilities.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(p.class < 6);
        assert!((0.0..=1.0).contains(&p.confidence));
        assert!((p.probabilities[p.class] - p.confidence).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "expected 15 features")]
    fn wrong_input_size_is_rejected() {
        let mut rng = StdRng::seed_from_u64(1);
        let mlp = Mlp::new(MlpConfig::paper(), &mut rng);
        let _ = mlp.predict(&[1.0, 2.0]);
    }

    #[test]
    fn xavier_weights_are_within_the_expected_limit() {
        let mut rng = StdRng::seed_from_u64(2);
        let layer = DenseLayer::xavier(15, 24, &mut rng);
        let limit = (6.0 / 39.0f64).sqrt();
        assert!(layer.weights.as_slice().iter().all(|w| w.abs() <= limit));
        assert!(layer.biases.iter().all(|b| *b == 0.0));
    }

    #[test]
    fn forward_trace_has_one_entry_per_layer_plus_input() {
        let mut rng = StdRng::seed_from_u64(3);
        let mlp = Mlp::new(MlpConfig::new(4, vec![8, 8], 3), &mut rng);
        let input = Matrix::from_rows(&[vec![0.0, 1.0, -1.0, 0.5]]);
        let trace = mlp.forward_trace(&input);
        assert_eq!(trace.len(), 4);
        // Hidden activations are non-negative because of ReLU.
        assert!(trace[1].as_slice().iter().all(|v| *v >= 0.0));
        assert!(trace[2].as_slice().iter().all(|v| *v >= 0.0));
    }

    #[test]
    fn different_seeds_give_different_networks() {
        let a = Mlp::new(MlpConfig::paper(), &mut StdRng::seed_from_u64(1));
        let b = Mlp::new(MlpConfig::paper(), &mut StdRng::seed_from_u64(2));
        assert_ne!(a, b);
        let c = Mlp::new(MlpConfig::paper(), &mut StdRng::seed_from_u64(1));
        assert_eq!(a, c, "same seed must reproduce the same network");
    }

    #[test]
    fn predict_batch_matches_individual_predictions() {
        let mut rng = StdRng::seed_from_u64(4);
        let mlp = Mlp::new(MlpConfig::new(3, vec![5], 2), &mut rng);
        let inputs = vec![vec![0.1, 0.2, 0.3], vec![-1.0, 0.0, 1.0]];
        let batch = mlp.predict_batch(&inputs);
        for (input, prediction) in inputs.iter().zip(&batch) {
            assert_eq!(&mlp.predict(input), prediction);
        }
        assert!(mlp.predict_batch(&[]).is_empty());
    }

    #[test]
    fn predict_batch_is_bitwise_identical_with_a_normalizer() {
        use crate::normalize::Normalizer;
        let mut rng = StdRng::seed_from_u64(8);
        let mut mlp = Mlp::new(MlpConfig::new(4, vec![6, 5], 3), &mut rng);
        let data = vec![vec![1.0, 2.0, 3.0, 4.0], vec![-2.0, 0.5, 7.0, 0.0]];
        mlp.set_normalizer(Normalizer::fit(&data));
        let inputs: Vec<Vec<f64>> =
            (0..17).map(|k| (0..4).map(|j| ((k * 4 + j) as f64).sin()).collect()).collect();
        let batch = mlp.predict_batch(&inputs);
        assert_eq!(batch.len(), inputs.len());
        for (input, prediction) in inputs.iter().zip(&batch) {
            let single = mlp.predict(input);
            assert_eq!(single.probabilities, prediction.probabilities, "must be bit-identical");
            assert_eq!(single.class, prediction.class);
        }
    }

    #[test]
    #[should_panic(expected = "expected 3 features")]
    fn predict_batch_rejects_wrong_input_size() {
        let mut rng = StdRng::seed_from_u64(4);
        let mlp = Mlp::new(MlpConfig::new(3, vec![5], 2), &mut rng);
        let _ = mlp.predict_batch(&[vec![0.1, 0.2, 0.3], vec![0.1]]);
    }
}
