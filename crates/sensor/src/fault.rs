//! Sensor-fault sample transforms: dropout, stuck axes and noise bursts.
//!
//! Real wearables see far messier data than a clean behavioural model produces:
//! loose straps, i2c glitches and thermal drift manifest as windows of missing
//! samples, an axis frozen at one value, or bursts of excess noise.  Related
//! adaptive-sampling work shows recognition degrades sharply under such input,
//! so the scenario layer injects these faults into the captured sample stream.
//!
//! This module holds only the *sample-level* transforms; deciding *when* a
//! fault is active (the fault plan) lives with the scenario library in the core
//! crate, which applies a [`FaultKind`] to the slice of samples that falls
//! inside a fault window.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::noise::gaussian;
use crate::sample::Sample3;

/// One kind of transient sensor fault, applied to a contiguous run of samples.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// The sensor reports nothing: every axis reads 0 g (the value an
    /// interrupted digital front-end typically latches).
    Dropout,
    /// One axis (0 = x, 1 = y, 2 = z) freezes at the value of the first
    /// affected sample.
    StuckAxis(usize),
    /// Additive zero-mean Gaussian noise of the given standard deviation on
    /// every axis — e.g. strap vibration or electrical interference.
    NoiseBurst {
        /// Standard deviation of the burst noise, in g.
        std_g: f64,
    },
}

impl FaultKind {
    /// A short label for reports (`dropout`, `stuck-x`, `noise-burst`).
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::Dropout => "dropout",
            FaultKind::StuckAxis(0) => "stuck-x",
            FaultKind::StuckAxis(1) => "stuck-y",
            FaultKind::StuckAxis(_) => "stuck-z",
            FaultKind::NoiseBurst { .. } => "noise-burst",
        }
    }

    /// Applies the fault in place to `samples` (the captured samples that fall
    /// inside one fault window).  Timestamps are never modified.
    ///
    /// Only [`FaultKind::NoiseBurst`] draws from `rng`; the other kinds are
    /// pure transforms, so a no-fault capture consumes no randomness.
    pub fn apply<R: Rng + ?Sized>(&self, samples: &mut [Sample3], rng: &mut R) {
        match *self {
            FaultKind::Dropout => {
                for s in samples {
                    s.x = 0.0;
                    s.y = 0.0;
                    s.z = 0.0;
                }
            }
            FaultKind::StuckAxis(axis) => {
                let Some(first) = samples.first() else { return };
                let held = first.axes()[axis.min(2)];
                for s in samples {
                    match axis.min(2) {
                        0 => s.x = held,
                        1 => s.y = held,
                        _ => s.z = held,
                    }
                }
            }
            FaultKind::NoiseBurst { std_g } => {
                for s in samples {
                    s.x += std_g * gaussian(rng);
                    s.y += std_g * gaussian(rng);
                    s.z += std_g * gaussian(rng);
                }
            }
        }
    }
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn window() -> Vec<Sample3> {
        (0..10).map(|k| Sample3::new(k as f64 * 0.1, 0.1, -0.2, 0.98)).collect()
    }

    #[test]
    fn dropout_zeroes_every_axis_but_keeps_timestamps() {
        let mut samples = window();
        FaultKind::Dropout.apply(&mut samples, &mut StdRng::seed_from_u64(1));
        for (k, s) in samples.iter().enumerate() {
            assert_eq!(s.axes(), [0.0, 0.0, 0.0]);
            assert!((s.t - k as f64 * 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn stuck_axis_freezes_exactly_one_axis() {
        let mut samples: Vec<Sample3> = (0..5)
            .map(|k| Sample3::new(k as f64, k as f64, 2.0 * k as f64, 3.0 * k as f64))
            .collect();
        FaultKind::StuckAxis(1).apply(&mut samples, &mut StdRng::seed_from_u64(1));
        for (k, s) in samples.iter().enumerate() {
            assert_eq!(s.x, k as f64, "x must be untouched");
            assert_eq!(s.y, 0.0, "y must hold the first sample's value");
            assert_eq!(s.z, 3.0 * k as f64, "z must be untouched");
        }
        // Out-of-range axes clamp to z instead of panicking.
        let mut samples = window();
        FaultKind::StuckAxis(7).apply(&mut samples, &mut StdRng::seed_from_u64(1));
        assert!(samples.iter().all(|s| s.z == samples[0].z));
    }

    #[test]
    fn noise_burst_perturbs_with_the_requested_std() {
        let mut samples: Vec<Sample3> =
            (0..30_000).map(|k| Sample3::new(k as f64, 0.0, 0.0, 0.0)).collect();
        FaultKind::NoiseBurst { std_g: 0.5 }.apply(&mut samples, &mut StdRng::seed_from_u64(9));
        let var = samples.iter().map(|s| s.x * s.x + s.y * s.y + s.z * s.z).sum::<f64>()
            / (3.0 * samples.len() as f64);
        assert!((var.sqrt() - 0.5).abs() < 0.02, "burst std {} should be ~0.5", var.sqrt());
    }

    #[test]
    fn pure_faults_are_deterministic_and_draw_no_randomness() {
        let mut a = window();
        let mut b = window();
        let mut rng = StdRng::seed_from_u64(4);
        FaultKind::Dropout.apply(&mut a, &mut rng);
        let before = rng.random::<f64>();
        let mut rng = StdRng::seed_from_u64(4);
        FaultKind::Dropout.apply(&mut b, &mut rng);
        assert_eq!(a, b);
        assert_eq!(before, rng.random::<f64>(), "dropout must not consume the rng");
    }

    #[test]
    fn labels_cover_every_kind() {
        assert_eq!(FaultKind::Dropout.label(), "dropout");
        assert_eq!(FaultKind::StuckAxis(0).label(), "stuck-x");
        assert_eq!(FaultKind::StuckAxis(2).label(), "stuck-z");
        assert_eq!(FaultKind::NoiseBurst { std_g: 0.1 }.to_string(), "noise-burst");
    }
}
