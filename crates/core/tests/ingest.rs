//! Property-based tests for the telemetry wire format: encode→decode identity
//! for arbitrary batches (including recorded fault-injected streams) and
//! rejection of truncated streams.

use adasense::ingest::{TelemetryTrace, TraceRecorder};
use adasense::prelude::*;
use adasense::runtime::{EPOCH_LABEL_OFFSET_S, WINDOW_S};
use adasense::scenario::FaultInjector;
use proptest::prelude::*;

fn any_config() -> impl Strategy<Value = SensorConfig> {
    prop::sample::select(SensorConfig::all_combinations())
}

fn any_sample() -> impl Strategy<Value = Sample3> {
    (0f64..2000.0, -4f64..4.0, -4f64..4.0, -4f64..4.0)
        .prop_map(|(t, x, y, z)| Sample3::new(t, x, y, z))
}

fn any_batch() -> impl Strategy<Value = TelemetryBatch> {
    (
        any_config(),
        0u8..(Activity::COUNT as u8),
        2f64..2000.0,
        0.5f64..8.0,
        prop::collection::vec(any_sample(), 0..64),
    )
        .prop_map(|(config, label, t_end, window_s, samples)| {
            TelemetryBatch::new(config, t_end, window_s, label, samples)
        })
}

fn any_trace() -> impl Strategy<Value = TelemetryTrace> {
    prop::collection::vec(any_batch(), 0..24).prop_map(|batches| TelemetryTrace { batches })
}

proptest! {
    /// Encoding and decoding an arbitrary trace is the identity, bit for bit.
    #[test]
    fn encode_decode_is_the_identity(trace in any_trace()) {
        let encoded = trace.encode();
        let decoded = TelemetryTrace::decode(&encoded).expect("well-formed streams decode");
        prop_assert_eq!(decoded, trace);
    }

    /// Every strict prefix of a well-formed stream is rejected with an error
    /// (never a panic, never a silently truncated trace).
    #[test]
    fn truncated_streams_are_rejected(trace in any_trace(), fraction in 0f64..1.0) {
        let encoded = trace.encode();
        let cut = ((encoded.len() as f64 * fraction) as usize).min(encoded.len() - 1);
        prop_assert!(
            TelemetryTrace::decode(&encoded[..cut]).is_err(),
            "a stream truncated at byte {}/{} must not decode",
            cut,
            encoded.len()
        );
    }

    /// A stream recorded off a fault-injected scenario source — dropouts,
    /// stuck axes and noise bursts included — survives the wire round trip
    /// bit-exactly, and the recorded labels match the schedule's ground truth.
    #[test]
    fn recorded_fault_streams_round_trip(
        seed in 0u64..1000,
        fault in prop::sample::select(vec![FaultLevel::None, FaultLevel::Light, FaultLevel::Heavy]),
        ticks in 4u64..24,
    ) {
        let spec = ExperimentSpec::quick();
        let duration_s = ticks as f64;
        let scenario = ScenarioSpec::random(ActivityChangeSetting::High, duration_s, seed);
        let mut source = TraceRecorder::new(FaultInjector::for_device(
            ScenarioSource::new(&spec, &scenario),
            fault,
            scenario.duration_s(),
            seed,
        ));

        // Drive the source the way the runtime would: one window per epoch,
        // cycling through the SPOT states.
        let states = SensorConfig::paper_pareto_front();
        let mut window = Vec::new();
        for tick in 2..=ticks {
            let t_end = tick as f64;
            let config = states[(tick % 4) as usize];
            source.capture_window(config, t_end, WINDOW_S, &mut window);
        }
        let (_, trace) = source.into_parts();
        prop_assert_eq!(trace.len() as u64, ticks - 1);

        let decoded = TelemetryTrace::decode(&trace.encode()).expect("recorded streams decode");
        prop_assert_eq!(&decoded, &trace);
        for batch in &decoded.batches {
            let expected = scenario
                .schedule
                .activity_at(batch.t_end - EPOCH_LABEL_OFFSET_S)
                .expect("trace times lie inside the schedule");
            prop_assert_eq!(batch.label as usize, expected.index());
        }
    }
}

/// Streams are self-delimiting: two sessions written back-to-back decode
/// independently with `decode_from`.
#[test]
fn back_to_back_sessions_decode_independently() {
    let spec = ExperimentSpec::quick();
    let scenario = ScenarioSpec::sit_then_walk(4.0, 4.0);
    let mut source = TraceRecorder::new(ScenarioSource::new(&spec, &scenario));
    let mut window = Vec::new();
    let config = SensorConfig::paper_pareto_front()[3];
    for tick in 2..=8 {
        source.capture_window(config, tick as f64, WINDOW_S, &mut window);
    }
    let (_, trace) = source.into_parts();

    let mut stream = trace.encode();
    stream.extend_from_slice(&trace.encode());
    let mut reader = &stream[..];
    let first = TelemetryTrace::decode_from(&mut reader).expect("first session decodes");
    let second = TelemetryTrace::decode_from(&mut reader).expect("second session decodes");
    assert!(reader.is_empty(), "both sessions consume the whole stream");
    assert_eq!(first, trace);
    assert_eq!(second, trace);
}
