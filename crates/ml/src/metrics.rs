//! Classification metrics: accuracy and confusion matrices.

use serde::{Deserialize, Serialize};

use crate::network::Mlp;

/// Fraction of samples whose predicted class matches the label.
///
/// Returns 0 for an empty evaluation set.
pub fn accuracy(model: &Mlp, x: &[Vec<f64>], y: &[usize]) -> f64 {
    if x.is_empty() {
        return 0.0;
    }
    let correct = x.iter().zip(y).filter(|(xi, &yi)| model.predict(xi).class == yi).count();
    correct as f64 / x.len() as f64
}

/// A square confusion matrix: `counts[actual][predicted]`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfusionMatrix {
    classes: usize,
    counts: Vec<Vec<usize>>,
}

impl ConfusionMatrix {
    /// Creates an empty confusion matrix for `classes` classes.
    pub fn new(classes: usize) -> Self {
        Self { classes, counts: vec![vec![0; classes]; classes] }
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Records one (actual, predicted) observation.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn record(&mut self, actual: usize, predicted: usize) {
        assert!(actual < self.classes && predicted < self.classes, "class index out of range");
        self.counts[actual][predicted] += 1;
    }

    /// Builds a confusion matrix by evaluating `model` on `(x, y)`.
    pub fn evaluate(model: &Mlp, x: &[Vec<f64>], y: &[usize], classes: usize) -> Self {
        let mut matrix = Self::new(classes);
        for (xi, &yi) in x.iter().zip(y) {
            matrix.record(yi, model.predict(xi).class);
        }
        matrix
    }

    /// The count at `(actual, predicted)`.
    pub fn count(&self, actual: usize, predicted: usize) -> usize {
        self.counts[actual][predicted]
    }

    /// Total number of recorded observations.
    pub fn total(&self) -> usize {
        self.counts.iter().map(|row| row.iter().sum::<usize>()).sum()
    }

    /// Overall accuracy (trace / total); 0 when empty.
    pub fn accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let correct: usize = (0..self.classes).map(|c| self.counts[c][c]).sum();
        correct as f64 / total as f64
    }

    /// Recall of class `c` (correct / actual occurrences); 0 when the class never
    /// occurs.
    pub fn recall(&self, c: usize) -> f64 {
        let actual: usize = self.counts[c].iter().sum();
        if actual == 0 {
            0.0
        } else {
            self.counts[c][c] as f64 / actual as f64
        }
    }

    /// Precision of class `c` (correct / predicted occurrences); 0 when the class is
    /// never predicted.
    pub fn precision(&self, c: usize) -> f64 {
        let predicted: usize = (0..self.classes).map(|a| self.counts[a][c]).sum();
        if predicted == 0 {
            0.0
        } else {
            self.counts[c][c] as f64 / predicted as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::MlpConfig;
    use crate::trainer::{Trainer, TrainerConfig};

    #[test]
    fn confusion_matrix_counts_and_accuracy() {
        let mut m = ConfusionMatrix::new(3);
        m.record(0, 0);
        m.record(0, 1);
        m.record(1, 1);
        m.record(2, 2);
        assert_eq!(m.total(), 4);
        assert_eq!(m.count(0, 1), 1);
        assert!((m.accuracy() - 0.75).abs() < 1e-12);
        assert!((m.recall(0) - 0.5).abs() < 1e-12);
        assert!((m.precision(1) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_matrix_has_zero_accuracy() {
        let m = ConfusionMatrix::new(4);
        assert_eq!(m.total(), 0);
        assert_eq!(m.accuracy(), 0.0);
        assert_eq!(m.recall(1), 0.0);
        assert_eq!(m.precision(2), 0.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_record_panics() {
        let mut m = ConfusionMatrix::new(2);
        m.record(0, 2);
    }

    #[test]
    fn accuracy_and_confusion_agree_on_a_trained_model() {
        let x: Vec<Vec<f64>> =
            (0..60).map(|i| vec![f64::from(i % 2) * 2.0, 1.0 - f64::from(i % 2)]).collect();
        let y: Vec<usize> = (0..60).map(|i| (i % 2) as usize).collect();
        let trainer = Trainer::new(TrainerConfig { epochs: 40, ..TrainerConfig::default() });
        let model = trainer.train(&MlpConfig::new(2, vec![4], 2), &x, &y, 1).model;
        let acc = accuracy(&model, &x, &y);
        let confusion = ConfusionMatrix::evaluate(&model, &x, &y, 2);
        assert!((acc - confusion.accuracy()).abs() < 1e-12);
        assert!(acc > 0.95);
    }

    #[test]
    fn accuracy_of_empty_set_is_zero() {
        let trainer = Trainer::new(TrainerConfig { epochs: 1, ..TrainerConfig::default() });
        let model = trainer
            .train(&MlpConfig::new(1, vec![2], 2), &[vec![0.0], vec![1.0]], &[0, 1], 0)
            .model;
        assert_eq!(accuracy(&model, &[], &[]), 0.0);
    }
}
