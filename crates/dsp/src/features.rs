//! The unified fixed-size feature vector of AdaSense (Section III-B).
//!
//! For every buffered batch the extractor computes, per axis:
//!
//! * the mean and the standard deviation (the "statistical features"), and
//! * the magnitudes of the Fourier components at 1, 2 and 3 Hz ("the first three
//!   coefficients in each coordinate, representing the frequency components up to
//!   3 Hz").
//!
//! That is 3 × (2 + 3) = 15 numbers regardless of how many samples the batch
//! contains, which is what allows a single classifier to serve every sensor
//! configuration.  The Fourier magnitudes are normalized by the number of samples so
//! that the *value* of a feature — not just the vector's size — is comparable across
//! sampling frequencies.

use adasense_sensor::Sample3;
use serde::{Deserialize, Serialize};

/// Dimension of the unified feature vector (3 means + 3 standard deviations +
/// 3 axes × 3 Fourier magnitudes).
pub const FEATURE_DIM: usize = 15;

/// Number of leading *time-domain* features (the 3 means and 3 standard
/// deviations).  The early-exit cascade's first stage consumes exactly this
/// prefix of the unified vector — no spectral content.
pub const TIME_DOMAIN_DIM: usize = 6;

/// A fixed-size feature vector extracted from one batch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeatureVector {
    values: Vec<f64>,
}

impl FeatureVector {
    /// Wraps a raw feature vector.
    ///
    /// # Panics
    ///
    /// Panics if `values` does not have [`FEATURE_DIM`] elements.
    pub fn new(values: Vec<f64>) -> Self {
        assert_eq!(values.len(), FEATURE_DIM, "feature vector must have {FEATURE_DIM} elements");
        Self { values }
    }

    /// The feature values as a slice.
    pub fn as_slice(&self) -> &[f64] {
        &self.values
    }

    /// Number of features (always [`FEATURE_DIM`]).
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Always false; present for API completeness.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The per-axis means `[x, y, z]`.
    pub fn means(&self) -> [f64; 3] {
        [self.values[0], self.values[1], self.values[2]]
    }

    /// The per-axis standard deviations `[x, y, z]`.
    pub fn stds(&self) -> [f64; 3] {
        [self.values[3], self.values[4], self.values[5]]
    }

    /// The Fourier magnitudes for `axis` (0 = x, 1 = y, 2 = z) at 1, 2 and 3 Hz.
    ///
    /// # Panics
    ///
    /// Panics if `axis > 2`.
    pub fn fourier(&self, axis: usize) -> [f64; 3] {
        assert!(axis < 3, "axis must be 0, 1 or 2");
        let base = 6 + axis * 3;
        [self.values[base], self.values[base + 1], self.values[base + 2]]
    }

    /// Consumes the vector and returns the raw values.
    pub fn into_inner(self) -> Vec<f64> {
        self.values
    }
}

impl AsRef<[f64]> for FeatureVector {
    fn as_ref(&self) -> &[f64] {
        &self.values
    }
}

impl From<FeatureVector> for Vec<f64> {
    fn from(v: FeatureVector) -> Vec<f64> {
        v.values
    }
}

/// Extracts the unified feature vector from accelerometer batches.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FeatureExtractor {
    /// The physical frequencies (Hz) whose Fourier magnitudes are extracted.
    pub fourier_frequencies_hz: [f64; 3],
}

impl FeatureExtractor {
    /// The paper's extractor: Fourier components at 1, 2 and 3 Hz.
    pub fn paper() -> Self {
        Self { fourier_frequencies_hz: [1.0, 2.0, 3.0] }
    }

    /// Extracts features from `samples` recorded at `sample_rate_hz`.
    ///
    /// Returns an all-zero vector when `samples` is empty.
    pub fn extract(&self, samples: &[Sample3], sample_rate_hz: f64) -> FeatureVector {
        let mut values = Vec::with_capacity(FEATURE_DIM);
        self.extract_into(samples, sample_rate_hz, &mut values);
        FeatureVector::new(values)
    }

    /// Extracts features into `out`, which is cleared first and always holds
    /// [`FEATURE_DIM`] values on return (all zeros when `samples` is empty).
    /// Numerically identical to [`FeatureExtractor::extract`]; this flavour
    /// exists so a per-second streaming loop allocates nothing.
    ///
    /// The axes are read through strided views of the interleaved sample
    /// buffer — no per-axis copies — and the nine Goertzel recurrences (3 axes
    /// × 3 probe frequencies) run fused in a single pass over the window.
    /// Each recurrence performs the same arithmetic in the same order as
    /// [`goertzel_magnitude`](crate::fft::goertzel_magnitude) on a contiguous
    /// axis, so the fusion is
    /// bit-identical to the unfused evaluation.
    pub fn extract_into(&self, samples: &[Sample3], sample_rate_hz: f64, out: &mut Vec<f64>) {
        out.clear();
        if samples.is_empty() {
            out.resize(FEATURE_DIM, 0.0);
            return;
        }
        let n = samples.len() as f64;
        let duration_s = n / sample_rate_hz;

        out.reserve(FEATURE_DIM);
        // Means: one fused pass accumulating the three axis sums.
        let mut sums = [0.0f64; 3];
        for s in samples {
            sums[0] += s.x;
            sums[1] += s.y;
            sums[2] += s.z;
        }
        for sum in sums {
            out.push(sum / n);
        }
        // Standard deviations: one fused mean-centered pass.
        let means = [out[0], out[1], out[2]];
        let mut var_sums = [0.0f64; 3];
        for s in samples {
            var_sums[0] += (s.x - means[0]).powi(2);
            var_sums[1] += (s.y - means[1]).powi(2);
            var_sums[2] += (s.z - means[2]).powi(2);
        }
        for var_sum in var_sums {
            out.push((var_sum / n).sqrt());
        }
        // Low-frequency Fourier magnitudes, amplitude-normalized (×2/n) so that a
        // sinusoid of amplitude A at exactly one of the probe frequencies yields
        // a feature value of ~A independent of the batch length.  All nine
        // Goertzel recurrences advance together in one pass over the window.
        let mut coeffs = [0.0f64; 3];
        let mut omegas = [0.0f64; 3];
        for (slot, &f) in self.fourier_frequencies_hz.iter().enumerate() {
            let omega = std::f64::consts::TAU * (f * duration_s) / n;
            omegas[slot] = omega;
            coeffs[slot] = 2.0 * omega.cos();
        }
        // state[axis][frequency] = (s_prev, s_prev2).
        let mut state = [[(0.0f64, 0.0f64); 3]; 3];
        for s in samples {
            let axes = [s.x, s.y, s.z];
            for (axis_state, v) in state.iter_mut().zip(axes) {
                for (slot, (s_prev, s_prev2)) in axis_state.iter_mut().enumerate() {
                    let next = v + coeffs[slot] * *s_prev - *s_prev2;
                    *s_prev2 = *s_prev;
                    *s_prev = next;
                }
            }
        }
        for axis_state in state {
            for (slot, (s_prev, s_prev2)) in axis_state.into_iter().enumerate() {
                let re = s_prev - s_prev2 * omegas[slot].cos();
                let im = s_prev2 * omegas[slot].sin();
                let magnitude = (re * re + im * im).sqrt();
                out.push(2.0 * magnitude / n);
            }
        }
    }
}

impl Default for FeatureExtractor {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch(rate_hz: f64, seconds: f64, f: impl Fn(f64) -> [f64; 3]) -> Vec<Sample3> {
        let n = (rate_hz * seconds).round() as usize;
        (0..n)
            .map(|k| {
                let t = k as f64 / rate_hz;
                let v = f(t);
                Sample3::new(t, v[0], v[1], v[2])
            })
            .collect()
    }

    #[test]
    fn feature_dimension_is_fifteen_for_every_rate() {
        let extractor = FeatureExtractor::paper();
        for rate in [100.0, 50.0, 25.0, 12.5, 6.25] {
            let samples = batch(rate, 2.0, |t| [0.0, 0.1, 1.0 + 0.2 * (6.0 * t).sin()]);
            let features = extractor.extract(&samples, rate);
            assert_eq!(features.len(), FEATURE_DIM);
        }
    }

    #[test]
    fn means_and_stds_are_in_the_expected_slots() {
        let extractor = FeatureExtractor::paper();
        let samples = batch(50.0, 2.0, |_| [0.5, -0.25, 1.0]);
        let features = extractor.extract(&samples, 50.0);
        assert!((features.means()[0] - 0.5).abs() < 1e-12);
        assert!((features.means()[1] + 0.25).abs() < 1e-12);
        assert!((features.means()[2] - 1.0).abs() < 1e-12);
        assert!(features.stds().iter().all(|s| *s < 1e-12));
    }

    #[test]
    fn fourier_feature_recovers_tone_amplitude_across_rates() {
        let extractor = FeatureExtractor::paper();
        // 2 Hz vertical tone of amplitude 0.3: the 2 Hz z-axis feature should be
        // ~0.3 at every sampling rate (that is the whole point of the unified
        // feature extraction).
        for rate in [100.0, 50.0, 25.0, 12.5] {
            let samples = batch(rate, 2.0, |t| {
                [0.0, 0.0, 1.0 + 0.3 * (std::f64::consts::TAU * 2.0 * t).sin()]
            });
            let features = extractor.extract(&samples, rate);
            let z_fourier = features.fourier(2);
            assert!(
                (z_fourier[1] - 0.3).abs() < 0.05,
                "rate {rate}: 2 Hz magnitude {} should be ~0.3",
                z_fourier[1]
            );
            assert!(z_fourier[0] < 0.1, "1 Hz magnitude should be small");
        }
    }

    #[test]
    fn static_posture_has_near_zero_fourier_features() {
        let extractor = FeatureExtractor::paper();
        let samples = batch(25.0, 2.0, |_| [0.1, 0.05, 0.99]);
        let features = extractor.extract(&samples, 25.0);
        for axis in 0..3 {
            for v in features.fourier(axis) {
                assert!(v.abs() < 1e-9);
            }
        }
    }

    #[test]
    fn extract_into_reuses_buffers_and_matches_extract() {
        let extractor = FeatureExtractor::paper();
        let mut out = vec![42.0; 3];
        for rate in [100.0, 12.5] {
            let samples = batch(rate, 2.0, |t| [0.2 * t.sin(), 0.1, 1.0 + 0.3 * (7.0 * t).cos()]);
            extractor.extract_into(&samples, rate, &mut out);
            assert_eq!(out.as_slice(), extractor.extract(&samples, rate).as_slice());
        }
        extractor.extract_into(&[], 50.0, &mut out);
        assert_eq!(out, vec![0.0; FEATURE_DIM]);
    }

    #[test]
    fn empty_batch_yields_zero_vector() {
        let extractor = FeatureExtractor::paper();
        let features = extractor.extract(&[], 50.0);
        assert_eq!(features.as_slice(), &[0.0; FEATURE_DIM]);
    }

    #[test]
    #[should_panic(expected = "feature vector must have")]
    fn wrong_size_vectors_are_rejected() {
        let _ = FeatureVector::new(vec![1.0; 3]);
    }

    #[test]
    fn accessors_are_consistent_with_the_raw_slice() {
        let values: Vec<f64> = (0..FEATURE_DIM as u32).map(f64::from).collect();
        let v = FeatureVector::new(values.clone());
        assert_eq!(v.as_slice(), values.as_slice());
        assert_eq!(v.means(), [0.0, 1.0, 2.0]);
        assert_eq!(v.stds(), [3.0, 4.0, 5.0]);
        assert_eq!(v.fourier(0), [6.0, 7.0, 8.0]);
        assert_eq!(v.fourier(2), [12.0, 13.0, 14.0]);
        let back: Vec<f64> = v.into();
        assert_eq!(back, values);
    }
}
