//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment has no crates.io access, so this vendored crate
//! provides the API subset the workspace's benches use — [`Criterion`],
//! [`BenchmarkGroup`], [`Bencher::iter`]/[`Bencher::iter_batched`],
//! [`BatchSize`], [`criterion_group!`] and [`criterion_main!`] — backed by a
//! simple wall-clock measurement loop instead of criterion's statistical
//! machinery. Each benchmark runs a short warm-up, then iterates for a fixed
//! time budget and reports the mean time per iteration on stdout.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Per-iteration setup cost hint; accepted for API parity, not acted upon.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Setup output is small; batches are large.
    SmallInput,
    /// Setup output is moderately sized.
    LargeInput,
    /// Run setup before every routine call.
    PerIteration,
}

/// Records timing for one benchmark target.
pub struct Bencher {
    total: Duration,
    iterations: u64,
}

impl Bencher {
    fn new() -> Self {
        Bencher { total: Duration::ZERO, iterations: 0 }
    }

    /// Times `routine`, called repeatedly until the measurement budget is spent.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up, excluded from measurement.
        black_box(routine());
        let budget = measurement_budget();
        let started = Instant::now();
        while self.iterations < MIN_ITERATIONS || started.elapsed() < budget {
            let t0 = Instant::now();
            black_box(routine());
            self.total += t0.elapsed();
            self.iterations += 1;
            if self.iterations >= MAX_ITERATIONS {
                break;
            }
        }
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        let budget = measurement_budget();
        let started = Instant::now();
        while self.iterations < MIN_ITERATIONS || started.elapsed() < budget {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.total += t0.elapsed();
            self.iterations += 1;
            if self.iterations >= MAX_ITERATIONS {
                break;
            }
        }
    }

    fn report(&self, name: &str) {
        if self.iterations == 0 {
            println!("{name:<50} (no iterations recorded)");
            return;
        }
        let per_iter = self.total.as_nanos() / u128::from(self.iterations);
        println!("{name:<50} {:>12} ns/iter ({} iterations)", per_iter, self.iterations);
    }
}

const MIN_ITERATIONS: u64 = 5;
const MAX_ITERATIONS: u64 = 100_000;

fn measurement_budget() -> Duration {
    std::env::var("ADASENSE_BENCH_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .map_or(Duration::from_millis(100), Duration::from_millis)
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs `target` as the benchmark `id` and prints its timing.
    pub fn bench_function<F>(&mut self, id: impl AsRef<str>, mut target: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::new();
        target(&mut bencher);
        bencher.report(id.as_ref());
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _criterion: self, name: name.to_string() }
    }
}

/// Group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API parity; the stub's budget is time-based, not count-based.
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    /// Runs `target` as `group/id` and prints its timing.
    pub fn bench_function<F>(&mut self, id: impl AsRef<str>, mut target: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::new();
        target(&mut bencher);
        bencher.report(&format!("{}/{}", self.name, id.as_ref()));
        self
    }

    /// Ends the group. A no-op in the stub.
    pub fn finish(self) {}
}

/// Declares a benchmark group function, as in real criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_counts() {
        std::env::set_var("ADASENSE_BENCH_MS", "1");
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut group = c.benchmark_group("group");
        group.sample_size(10);
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 8], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
    }
}
