//! The streaming per-device closed loop of AdaSense (Figs. 1 & 3).
//!
//! [`DeviceRuntime`] is the paper's loop — buffer → features → classify →
//! controller → reconfigure — extracted from the batch simulator so it can advance
//! **one tick at a time**.  The same runtime serves three drivers:
//!
//! * batch simulation ([`Simulator`](crate::simulation::Simulator) is now a thin
//!   loop over [`DeviceRuntime::step`]),
//! * the fleet scheduler ([`crate::fleet`]), which ticks many devices in lockstep
//!   and batches their classifier calls, and
//! * future streaming ingestion / hardware replay, by implementing
//!   [`SampleSource`] over a live sample feed.
//!
//! The runtime is allocation-free per tick: the sensed window, the per-axis
//! feature scratch and the feature vector all live in reusable buffers, and
//! per-configuration residency is accounted in a fixed array indexed by
//! [`SensorConfig::index`] instead of a map keyed by label strings.

use adasense_data::{Activity, ActivityTrace};
use adasense_dsp::{IntensityEstimator, ProjectionScratch, SparseProjection};
use adasense_ml::{CascadeStage, Classifier, Prediction};
use adasense_sensor::{
    Accelerometer, Charge, EnergyModel, NoiseModel, RadioModel, Sample3, SensorConfig, TxPolicy,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::controller::{ControllerInput, ControllerKind, SensorController};
use crate::error::AdaSenseError;
use crate::simulation::{EpochRecord, ScenarioSpec, SimulationReport};
use crate::training::{ExperimentSpec, TrainedSystem};

/// The classification window every runtime senses per tick, in seconds (the
/// paper buffers 2 seconds).  [`crate::fleet::FleetSpec::validate`] checks
/// against the same constant.
pub const WINDOW_S: f64 = 2.0;

/// The epoch (tick) length, in seconds (the paper classifies once per second).
pub const EPOCH_S: f64 = 1.0;

/// Offset subtracted from an epoch's end time when querying its ground truth,
/// re-exported from the data substrate so trace recorders and label exporters
/// sample the exact instants the runtime scores against.
pub use adasense_data::EPOCH_LABEL_OFFSET_S;

/// Provides the sensor data a [`DeviceRuntime`] consumes.
///
/// Implementors are the "world" a device lives in: the closed-loop simulator uses
/// [`ScenarioSource`] (a scheduled activity timeline played through the simulated
/// accelerometer); a hardware-replay source would page recorded IMU data instead.
///
/// # Examples
///
/// A source can be as small as a constant signal with a constant ground truth —
/// useful for hardware bring-up tests:
///
/// ```
/// use adasense::runtime::SampleSource;
/// use adasense_data::Activity;
/// use adasense_sensor::{Sample3, SensorConfig};
///
/// struct StillSubject;
///
/// impl SampleSource for StillSubject {
///     fn capture_window(
///         &mut self,
///         config: SensorConfig,
///         t_end: f64,
///         window_s: f64,
///         out: &mut Vec<Sample3>,
///     ) {
///         out.clear();
///         let n = (window_s * config.frequency.hz()) as usize;
///         let dt = 1.0 / config.frequency.hz();
///         out.extend((0..n).map(|i| Sample3::new(t_end - window_s + i as f64 * dt, 0.0, 0.0, 1.0)));
///     }
///
///     fn ground_truth(&self, _t_s: f64) -> Option<Activity> {
///         Some(Activity::LieDown)
///     }
/// }
///
/// let mut source = StillSubject;
/// let mut window = Vec::new();
/// source.capture_window(SensorConfig::paper_pareto_front()[0], 2.0, 2.0, &mut window);
/// assert_eq!(window.len(), 200); // 2 s at 100 Hz
/// assert_eq!(source.ground_truth(1.0), Some(Activity::LieDown));
/// ```
pub trait SampleSource {
    /// Senses the window `[t_end - window_s, t_end)` under `config` into `out`.
    ///
    /// `out` is cleared first and its allocation reused across ticks.
    fn capture_window(
        &mut self,
        config: SensorConfig,
        t_end: f64,
        window_s: f64,
        out: &mut Vec<Sample3>,
    );

    /// The ground-truth activity at time `t_s` (used to score predictions).
    ///
    /// The runtime queries an instant just *inside* the epoch
    /// (`t_end - `[`EPOCH_LABEL_OFFSET_S`]), so sources defined over
    /// `[0, duration)` never see an out-of-range query while being driven.
    /// Must return `Some` for every driven tick.
    fn ground_truth(&self, t_s: f64) -> Option<Activity>;

    /// The source's delivery status, checked by the runtime at the *start* of
    /// every tick.
    ///
    /// Once a source reports [`SourceStatus::Exhausted`], the runtime
    /// finishes the epoch gracefully — [`DeviceRuntime::begin_tick`] returns
    /// [`TickPhase::Exhausted`] without accounting charge or residency for a
    /// tick that never happened, and [`DeviceRuntime::is_complete`] turns
    /// `true` — instead of padding the remaining timeline with silence.
    ///
    /// Live-feed sources ([`ChannelSource`](crate::ingest::ChannelSource),
    /// [`SocketSource`](crate::ingest::SocketSource)) report
    /// [`SourceStatus::Ready`] while the peer may still deliver and
    /// [`SourceStatus::Exhausted`] once end-of-stream has been signalled and
    /// every delivered window consumed; the method takes `&mut self` so they
    /// may block on — and stash — the next frame to learn whether one exists.
    /// Purely synthetic sources like [`ScenarioSource`] report
    /// [`SourceStatus::Endless`] instead of `Ready`: they fabricate a window
    /// for any requested instant, so only the runtime's own tick budget can
    /// bound a run over them (a safety property
    /// [`DeviceRuntime::run_to_completion`] checks up front).
    ///
    /// The default is [`SourceStatus::Ready`] — a plain source that delivers
    /// whatever it is asked for, for as long as it is driven.
    fn status(&mut self) -> SourceStatus {
        SourceStatus::Ready
    }
}

/// What a [`SampleSource`] reports about its ability to keep delivering
/// windows — the return of [`SampleSource::status`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SourceStatus {
    /// The source can deliver more windows (or is willing to wait for them).
    Ready,
    /// The source has permanently run out of windows: the runtime finishes
    /// the epoch gracefully and stops.
    Exhausted,
    /// The source synthesizes a window for any requested instant and can
    /// never exhaust; open-ended loops over it would spin forever.
    Endless,
}

impl<S: SampleSource + ?Sized> SampleSource for Box<S> {
    fn capture_window(
        &mut self,
        config: SensorConfig,
        t_end: f64,
        window_s: f64,
        out: &mut Vec<Sample3>,
    ) {
        (**self).capture_window(config, t_end, window_s, out);
    }

    fn ground_truth(&self, t_s: f64) -> Option<Activity> {
        (**self).ground_truth(t_s)
    }

    fn status(&mut self) -> SourceStatus {
        (**self).status()
    }
}

/// A [`SampleSource`] that plays a [`ScenarioSpec`] through the simulated
/// accelerometer — the source behind every closed-loop simulation.
#[derive(Debug, Clone)]
pub struct ScenarioSource {
    trace: ActivityTrace,
    noise_rng: StdRng,
    energy: EnergyModel,
    noise: NoiseModel,
}

impl ScenarioSource {
    /// Realizes `scenario` with the subject-variation and noise seeds derived from
    /// `scenario.seed`, using the sensor models of `spec`.
    pub fn new(spec: &ExperimentSpec, scenario: &ScenarioSpec) -> Self {
        let mut trace_rng = StdRng::seed_from_u64(scenario.seed.wrapping_add(1));
        let trace = ActivityTrace::from_schedule(scenario.schedule.clone(), &mut trace_rng);
        let noise_rng = StdRng::seed_from_u64(scenario.seed.wrapping_add(2));
        Self {
            trace,
            noise_rng,
            energy: spec.dataset.energy_model,
            noise: spec.dataset.noise_model,
        }
    }
}

impl SampleSource for ScenarioSource {
    fn capture_window(
        &mut self,
        config: SensorConfig,
        t_end: f64,
        window_s: f64,
        out: &mut Vec<Sample3>,
    ) {
        let accel =
            Accelerometer::new(config).with_energy_model(self.energy).with_noise_model(self.noise);
        accel.capture_into(&self.trace, t_end - window_s, window_s, &mut self.noise_rng, out);
    }

    fn ground_truth(&self, t_s: f64) -> Option<Activity> {
        self.trace.activity_at(t_s)
    }

    fn status(&mut self) -> SourceStatus {
        SourceStatus::Endless
    }
}

/// What one call to [`DeviceRuntime::step`] produced.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TickResult {
    /// End time of the tick, in seconds.
    pub t_s: f64,
    /// Sensor configuration active during the tick.
    pub config: SensorConfig,
    /// Sensor charge consumed during the tick.
    pub charge: Charge,
    /// The classification record, or `None` while the first window is filling.
    pub record: Option<EpochRecord>,
}

/// Outcome of [`DeviceRuntime::begin_tick`]: either the tick completed without a
/// classification (first window still filling), or a window was sensed and the
/// caller must supply a prediction via [`DeviceRuntime::complete_tick`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TickPhase {
    /// The tick is already complete — no classification was due.
    Idle(TickResult),
    /// A window was sensed and featurized; classification is pending.  Read the
    /// features with [`DeviceRuntime::pending_features`] and finish the tick with
    /// [`DeviceRuntime::complete_tick`].
    Classify,
    /// The source reported end-of-stream before the tick started: nothing was
    /// sensed or accounted, and the runtime is now
    /// [complete](DeviceRuntime::is_complete).
    Exhausted,
}

/// A classification awaiting its prediction between `begin_tick` and
/// `complete_tick`.
#[derive(Debug, Clone, Copy)]
struct PendingTick {
    config: SensorConfig,
    t_end: f64,
    charge: Charge,
}

/// Transmission configuration for a device, opted into with
/// [`DeviceRuntime::with_tx`].  Without it the runtime models sensing energy
/// only, exactly as before — every existing driver is unaffected.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TxSetup {
    /// The radio energy model pricing every transmitted payload.
    pub radio: RadioModel,
    /// Compression ratio of the sparse random projection behind
    /// [`TxPolicy::Compressed`] payloads (samples per transmitted coefficient).
    pub ratio: u32,
    /// Base seed mixed with the tick index to derive each window's projection
    /// seed (use the device seed so fleet devices project independently).
    pub seed: u64,
}

impl TxSetup {
    /// Transmission over the calibrated BLE radio with projection `ratio`.
    pub fn ble(ratio: u32) -> Self {
        Self { radio: RadioModel::ble(), ratio, seed: 0 }
    }

    /// Replaces the base projection seed (mixed per window).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Per-policy accounting of what a transmission-enabled device sent: epochs,
/// payload bytes and radio charge, each indexed by [`TxPolicy::index`].  Plain
/// counter addition makes the tally mergeable across devices and shards, like
/// [`CascadeTally`].  All counters stay zero when the device has no
/// [`TxSetup`], so the tally doubles as a "did this device transmit" marker.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TxTally {
    /// Classified epochs transmitted under each policy.
    pub epochs: [u64; TxPolicy::COUNT],
    /// Payload bytes (length prefix + frame) sent under each policy.
    pub bytes: [u64; TxPolicy::COUNT],
    /// Radio charge in µC spent under each policy.
    pub charge_uc: [f64; TxPolicy::COUNT],
}

/// Scratch state of a transmission-enabled device: the tally plus reusable
/// projection buffers, so the compressed path allocates nothing per tick once
/// warmed up.
#[derive(Debug, Default)]
struct TxState {
    tally: TxTally,
    axis: Vec<f64>,
    measurements: Vec<f64>,
    recon: Vec<f64>,
    scratch: ProjectionScratch,
}

/// The per-second closed loop of one simulated wearable, advanced tick by tick.
///
/// Construct with [`DeviceRuntime::for_scenario`] (finite, scenario-driven) or
/// [`DeviceRuntime::new`] (open-ended, any [`SampleSource`]), then either call
/// [`step`](DeviceRuntime::step) in a loop, or split each tick into
/// [`begin_tick`](DeviceRuntime::begin_tick) /
/// [`complete_tick`](DeviceRuntime::complete_tick) to batch classifier calls
/// across many devices (see [`crate::fleet`]).
///
/// The inference backend defaults to the trained system's full-precision
/// unified [`Mlp`](adasense_ml::Mlp); swap in any other object-safe
/// [`Classifier`] — for example the int8
/// [`QuantizedMlp`](adasense_ml::QuantizedMlp) — with
/// [`with_classifier`](DeviceRuntime::with_classifier).
pub struct DeviceRuntime<'a, S: SampleSource> {
    source: S,
    system: &'a TrainedSystem,
    classifier: &'a dyn Classifier,
    controller: Box<dyn SensorController>,
    controller_label: String,
    intensity_estimator: IntensityEstimator,
    energy: EnergyModel,
    use_bank: bool,
    window_s: f64,
    epoch_s: f64,
    total_ticks: Option<usize>,
    record_epochs: bool,
    // Per-tick state and reusable buffers.
    ticks: usize,
    exhausted: bool,
    pending: Option<PendingTick>,
    window: Vec<Sample3>,
    features: Vec<f64>,
    tx_setup: Option<TxSetup>,
    tx: TxState,
    // Accumulators.
    records: Vec<EpochRecord>,
    epochs: usize,
    correct: usize,
    cascade: CascadeTally,
    total_charge: Charge,
    residency_s: [f64; SensorConfig::COUNT],
}

/// Per-stage accounting of an early-exit cascade backend: how many epochs
/// exited at the cheap first stage versus escalated to the full model, and how
/// many of each were classified correctly.  All four counters stay zero for
/// single-stage backends (every epoch reports [`CascadeStage::Single`]), so
/// the tally doubles as a "did this device run a cascade" marker.  Plain
/// counter addition makes the tally mergeable across devices and shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CascadeTally {
    /// Epochs the first stage answered (margin at or above the threshold).
    pub early_exit_epochs: usize,
    /// Early-exit epochs classified correctly.
    pub early_exit_correct: usize,
    /// Epochs escalated to the full second stage.
    pub escalated_epochs: usize,
    /// Escalated epochs classified correctly.
    pub escalated_correct: usize,
}

impl CascadeTally {
    /// Folds one classified epoch into the tally.
    fn observe(&mut self, stage: CascadeStage, correct: bool) {
        match stage {
            CascadeStage::Single => {}
            CascadeStage::EarlyExit => {
                self.early_exit_epochs += 1;
                self.early_exit_correct += usize::from(correct);
            }
            CascadeStage::Escalated => {
                self.escalated_epochs += 1;
                self.escalated_correct += usize::from(correct);
            }
        }
    }
}

impl<'a, S: SampleSource> DeviceRuntime<'a, S> {
    /// Creates an open-ended runtime over `source` with the paper's 2-second
    /// window and 1-second epoch.  The runtime reports completion only when the
    /// source reports [`SourceStatus::Exhausted`]); drive it
    /// with [`step`](DeviceRuntime::step) for as long as the source has data.
    pub fn new(
        spec: &'a ExperimentSpec,
        system: &'a TrainedSystem,
        controller: ControllerKind,
        source: S,
    ) -> Self {
        let mut built = controller.build(spec);
        built.reset();
        Self {
            source,
            system,
            classifier: system.unified_classifier(),
            controller: built,
            controller_label: controller.label(),
            intensity_estimator: IntensityEstimator::calibrated(),
            energy: spec.dataset.energy_model,
            use_bank: matches!(controller, ControllerKind::IntensityBased),
            window_s: WINDOW_S,
            epoch_s: EPOCH_S,
            total_ticks: None,
            record_epochs: true,
            ticks: 0,
            exhausted: false,
            pending: None,
            window: Vec::new(),
            features: Vec::new(),
            tx_setup: None,
            tx: TxState::default(),
            records: Vec::new(),
            epochs: 0,
            correct: 0,
            cascade: CascadeTally::default(),
            total_charge: Charge::ZERO,
            residency_s: [0.0; SensorConfig::COUNT],
        }
    }

    /// Creates a *finite* runtime over any [`SampleSource`], running for
    /// `duration_s` simulated seconds.  This is how decorated sources (for
    /// example a [`crate::scenario::FaultInjector`] wrapping a
    /// [`ScenarioSource`]) are driven to completion by the fleet scheduler.
    ///
    /// # Errors
    ///
    /// Returns [`AdaSenseError::Simulation`] if `duration_s` is shorter than one
    /// classification window.
    pub fn for_source(
        spec: &'a ExperimentSpec,
        system: &'a TrainedSystem,
        controller: ControllerKind,
        source: S,
        duration_s: f64,
    ) -> Result<Self, AdaSenseError> {
        let mut runtime = Self::new(spec, system, controller, source);
        if duration_s < runtime.window_s {
            return Err(AdaSenseError::simulation(format!(
                "the source lasts {duration_s} s which is shorter than one {} s window",
                runtime.window_s
            )));
        }
        runtime.total_ticks = Some((duration_s / runtime.epoch_s).floor() as usize);
        Ok(runtime)
    }

    /// Enables or disables storing per-epoch [`EpochRecord`]s (enabled by
    /// default).  Fleet-scale runs disable recording to keep memory per device
    /// constant; the accuracy/power/residency accumulators are unaffected.
    pub fn with_recording(mut self, record_epochs: bool) -> Self {
        self.record_epochs = record_epochs;
        self
    }

    /// Replaces the inference backend this device classifies with (the trained
    /// system's full-precision unified classifier by default).  The intensity
    /// baseline ignores this and keeps its per-configuration bank.
    pub fn with_classifier(mut self, classifier: &'a dyn Classifier) -> Self {
        self.classifier = classifier;
        self
    }

    /// Enables transmission modelling: every classified epoch the controller's
    /// [`TxPolicy`](crate::controller::SensorController::tx_policy) prices a
    /// payload against `setup.radio`, the charge joins the tick's energy and
    /// the per-policy [`TxTally`] counters, and
    /// [`TxPolicy::Compressed`] epochs classify the window *as the host would
    /// see it* — projected through the seeded sparse random projection and
    /// reconstructed — so the accuracy cost of compression is part of the
    /// closed loop, not an afterthought.
    pub fn with_tx(mut self, setup: TxSetup) -> Self {
        self.tx_setup = Some(setup);
        self
    }

    /// The sample source this runtime is consuming (for example to read fault
    /// exposure counters off a [`crate::scenario::FaultInjector`] after a run).
    pub fn source(&self) -> &S {
        &self.source
    }

    /// Number of ticks advanced so far.
    pub fn ticks(&self) -> usize {
        self.ticks
    }

    /// Simulated time elapsed, in seconds.
    pub fn elapsed_s(&self) -> f64 {
        self.ticks as f64 * self.epoch_s
    }

    /// Whether the runtime has finished: a finite runtime has consumed all its
    /// ticks, or the source reported end-of-stream
    /// (see [`SampleSource::status`]).
    pub fn is_complete(&self) -> bool {
        self.exhausted || self.total_ticks.is_some_and(|n| self.ticks >= n)
    }

    /// Number of classified epochs so far.
    pub fn epochs(&self) -> usize {
        self.epochs
    }

    /// Number of correctly classified epochs so far.
    pub fn correct_epochs(&self) -> usize {
        self.correct
    }

    /// Per-stage exit and accuracy counters of this device's cascade epochs
    /// (all zero when the backend has no cascade structure).
    pub fn cascade_tally(&self) -> CascadeTally {
        self.cascade
    }

    /// Per-policy transmission counters (all zero without
    /// [`with_tx`](DeviceRuntime::with_tx)).
    pub fn tx_tally(&self) -> TxTally {
        self.tx.tally
    }

    /// Total sensor charge consumed so far.
    pub fn total_charge(&self) -> Charge {
        self.total_charge
    }

    /// Seconds spent in each configuration, indexed by [`SensorConfig::index`].
    pub fn residency_seconds(&self) -> &[f64; SensorConfig::COUNT] {
        &self.residency_s
    }

    /// The label of the controller driving this device.
    pub fn controller_label(&self) -> &str {
        &self.controller_label
    }

    /// Whether this device classifies every window with its unified inference
    /// backend — i.e. whether its pending classification may be batched with
    /// other devices of the same backend through
    /// [`Classifier::predict_batch_into`].  The intensity-based baseline
    /// switches among per-configuration bank classifiers and must be
    /// classified per device.
    pub fn batches_with_unified(&self) -> bool {
        !self.use_bank
    }

    /// Phase 1 of a tick: accounts charge and residency for the configuration the
    /// controller selected, senses the last window (once the first window has
    /// filled) and extracts its features.
    ///
    /// # Panics
    ///
    /// Panics if the previous tick's classification is still pending.
    pub fn begin_tick(&mut self) -> TickPhase {
        assert!(self.pending.is_none(), "complete_tick must resolve the previous tick first");
        if self.exhausted || self.source.status() == SourceStatus::Exhausted {
            // A finite external feed ran dry: finish the epoch gracefully —
            // no charge, residency or silent padding for a tick that never
            // happened.
            self.exhausted = true;
            return TickPhase::Exhausted;
        }
        let config = self.controller.config();
        let mut charge = self.energy.charge_over(config, self.epoch_s);
        self.residency_s[config.index()] += self.epoch_s;

        self.ticks += 1;
        let t_end = self.ticks as f64 * self.epoch_s;
        if t_end + 1e-9 < self.window_s {
            // Still filling the first buffer.
            self.total_charge += charge;
            return TickPhase::Idle(TickResult { t_s: t_end, config, charge, record: None });
        }

        self.source.capture_window(config, t_end, self.window_s, &mut self.window);
        if let Some(setup) = self.tx_setup {
            charge += self.transmit_window(&setup);
        }
        self.total_charge += charge;
        self.system.extractor().extract_into(
            &self.window,
            config.frequency.hz(),
            &mut self.features,
        );
        self.pending = Some(PendingTick { config, t_end, charge });
        TickPhase::Classify
    }

    /// Prices the captured window under the controller's transmission policy,
    /// folds the payload into the per-policy tally, and — for compressed
    /// payloads — replaces the window with what the host reconstructs from the
    /// projected measurements, so the classifier judges exactly the data the
    /// receiving side would.  Returns the radio charge of the payload.
    fn transmit_window(&mut self, setup: &TxSetup) -> Charge {
        let policy = self.controller.tx_policy();
        let n = self.window.len();
        let bytes = match policy {
            TxPolicy::Raw => crate::ingest::raw_tx_bytes(n),
            TxPolicy::Features => crate::ingest::features_tx_bytes(),
            TxPolicy::Compressed => crate::ingest::compressed_tx_bytes(n, setup.ratio),
        };
        let tx_charge = setup.radio.tx_charge(bytes);
        self.tx.tally.epochs[policy.index()] += 1;
        self.tx.tally.bytes[policy.index()] += bytes as u64;
        self.tx.tally.charge_uc[policy.index()] += tx_charge.micro_coulombs();
        if policy == TxPolicy::Compressed && n > 0 {
            let seed = crate::ingest::compressed_frame_seed(setup.seed, self.ticks as u64);
            let projection = SparseProjection::new(seed, n, setup.ratio);
            self.tx.axis.resize(n, 0.0);
            self.tx.measurements.resize(projection.output_len(), 0.0);
            self.tx.recon.resize(n, 0.0);
            for axis_index in 0..3 {
                for (slot, sample) in self.tx.axis.iter_mut().zip(self.window.iter()) {
                    *slot = match axis_index {
                        0 => sample.x,
                        1 => sample.y,
                        _ => sample.z,
                    };
                }
                projection.project_into(&self.tx.axis, &mut self.tx.measurements);
                projection.reconstruct_into(
                    &self.tx.measurements,
                    &mut self.tx.recon,
                    &mut self.tx.scratch,
                );
                for (sample, value) in self.window.iter_mut().zip(self.tx.recon.iter()) {
                    match axis_index {
                        0 => sample.x = *value,
                        1 => sample.y = *value,
                        _ => sample.z = *value,
                    }
                }
            }
        }
        tx_charge
    }

    /// The feature vector of the pending classification.
    ///
    /// # Panics
    ///
    /// Panics if no classification is pending.
    pub fn pending_features(&self) -> &[f64] {
        assert!(self.pending.is_some(), "no classification is pending");
        &self.features
    }

    /// The inference backend that must judge the pending window: the device's
    /// unified backend, or the per-configuration bank model when simulating
    /// the intensity baseline.
    ///
    /// # Panics
    ///
    /// Panics if no classification is pending.
    pub fn active_classifier(&self) -> &dyn Classifier {
        let pending = self.pending.as_ref().expect("no classification is pending");
        if self.use_bank {
            self.system
                .bank_classifier(pending.config)
                .map(|m| &m.model as &dyn Classifier)
                .unwrap_or(self.classifier)
        } else {
            self.classifier
        }
    }

    /// Phase 2 of a tick: scores `prediction` against the ground truth and feeds
    /// the result to the controller, which picks the configuration for the next
    /// tick.
    ///
    /// # Panics
    ///
    /// Panics if no classification is pending, or if the source cannot provide
    /// ground truth for the driven instant.
    pub fn complete_tick(&mut self, prediction: Prediction) -> TickResult {
        self.complete_tick_staged(prediction, CascadeStage::Single)
    }

    /// [`complete_tick`](DeviceRuntime::complete_tick) with the cascade stage
    /// that produced `prediction`, so per-stage exit-rate and accuracy
    /// counters ([`cascade_tally`](DeviceRuntime::cascade_tally)) stay exact.
    /// The stage never influences the closed loop — only the accounting.
    ///
    /// # Panics
    ///
    /// Panics if no classification is pending, or if the source cannot provide
    /// ground truth for the driven instant.
    pub fn complete_tick_staged(
        &mut self,
        prediction: Prediction,
        stage: CascadeStage,
    ) -> TickResult {
        let PendingTick { config, t_end, charge } =
            self.pending.take().expect("begin_tick must return TickPhase::Classify first");
        let predicted = Activity::from_index(prediction.class).unwrap_or(Activity::Sit);
        let actual = self
            .source
            .ground_truth(t_end - EPOCH_LABEL_OFFSET_S)
            .expect("the sample source provides ground truth for every driven tick");
        let correct = predicted == actual;
        let record = EpochRecord {
            t_s: t_end,
            config,
            current_ua: self.energy.current_ua(config),
            predicted,
            actual,
            confidence: prediction.confidence,
            correct,
        };
        self.epochs += 1;
        if correct {
            self.correct += 1;
        }
        self.cascade.observe(stage, correct);
        if self.record_epochs {
            self.records.push(record);
        }
        self.controller.observe(&ControllerInput {
            predicted,
            confidence: prediction.confidence,
            intensity_g_per_s: self.intensity_estimator.intensity(&self.window),
            escalated: stage == CascadeStage::Escalated,
        });
        TickResult { t_s: t_end, config, charge, record: Some(record) }
    }

    /// Advances the closed loop by one epoch: sense, classify, score, let the
    /// controller reconfigure the sensor.  Returns `None` — without sensing or
    /// accounting anything — once the source reports end-of-stream (the
    /// runtime is then [complete](DeviceRuntime::is_complete)).
    pub fn step(&mut self) -> Option<TickResult> {
        match self.begin_tick() {
            TickPhase::Exhausted => None,
            TickPhase::Idle(result) => Some(result),
            TickPhase::Classify => {
                let (prediction, stage) =
                    self.active_classifier().predict_with_stage(&self.features);
                Some(self.complete_tick_staged(prediction, stage))
            }
        }
    }

    /// Steps the runtime until [`DeviceRuntime::is_complete`]: a finite
    /// runtime runs down its tick budget, and any runtime stops early when its
    /// source reports end-of-stream.
    ///
    /// # Panics
    ///
    /// Panics if the runtime is open-ended over a source that declares
    /// itself [`SourceStatus::Endless`] ([`ScenarioSource`] and any decorator
    /// around it) — such a loop would spin forever; bound the runtime with
    /// [`for_source`](DeviceRuntime::for_source) instead.
    pub fn run_to_completion(&mut self) {
        assert!(
            self.total_ticks.is_some() || self.source.status() != SourceStatus::Endless,
            "run_to_completion requires a tick budget or an exhaustible source"
        );
        while !self.is_complete() {
            if self.step().is_none() {
                break;
            }
        }
    }

    /// Classification accuracy over the epochs classified so far (0–1).
    pub fn accuracy(&self) -> f64 {
        if self.epochs == 0 {
            return 0.0;
        }
        self.correct as f64 / self.epochs as f64
    }

    /// Average sensor current over the elapsed time, in µA.
    pub fn average_current_ua(&self) -> f64 {
        self.total_charge.average_current_ua(self.elapsed_s())
    }

    /// Snapshots the run so far as a [`SimulationReport`].
    pub fn report(&self) -> SimulationReport {
        SimulationReport {
            controller: self.controller_label.clone(),
            records: self.records.clone(),
            total_charge: self.total_charge,
            duration_s: self.elapsed_s(),
            seconds_in_config: crate::simulation::residency_map(&self.residency_s),
        }
    }

    /// Consumes the runtime, returning the final [`SimulationReport`].
    pub fn into_report(self) -> SimulationReport {
        SimulationReport {
            controller: self.controller_label,
            records: self.records,
            total_charge: self.total_charge,
            duration_s: self.ticks as f64 * self.epoch_s,
            seconds_in_config: crate::simulation::residency_map(&self.residency_s),
        }
    }
}

impl<'a> DeviceRuntime<'a, ScenarioSource> {
    /// Creates a finite runtime that plays `scenario` through the simulated
    /// accelerometer — the configuration behind every closed-loop simulation and
    /// every fleet device.
    ///
    /// # Errors
    ///
    /// Returns [`AdaSenseError::Simulation`] if the scenario is empty or shorter
    /// than one classification window.
    pub fn for_scenario(
        spec: &'a ExperimentSpec,
        system: &'a TrainedSystem,
        controller: ControllerKind,
        scenario: &ScenarioSpec,
    ) -> Result<Self, AdaSenseError> {
        if scenario.schedule.is_empty() {
            return Err(AdaSenseError::simulation("the scenario schedule is empty"));
        }
        let source = ScenarioSource::new(spec, scenario);
        Self::for_source(spec, system, controller, source, scenario.duration_s())
    }
}

impl<S: SampleSource + std::fmt::Debug> std::fmt::Debug for DeviceRuntime<'_, S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DeviceRuntime")
            .field("source", &self.source)
            .field("controller", &self.controller_label)
            .field("ticks", &self.ticks)
            .field("total_ticks", &self.total_ticks)
            .field("epochs", &self.epochs)
            .field("correct", &self.correct)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulation::{tests::shared_system, Simulator};

    #[test]
    fn stepping_a_runtime_matches_the_batch_simulator() {
        let (spec, system) = shared_system();
        let scenario = ScenarioSpec::sit_then_walk(12.0, 12.0);
        let controller = ControllerKind::Spot { stability_threshold: 3 };

        let batch = Simulator::new(spec, system).with_controller(controller).run(scenario.clone());
        let batch = batch.expect("simulation runs");

        let mut runtime = DeviceRuntime::for_scenario(spec, system, controller, &scenario)
            .expect("runtime builds");
        let mut tick_records = Vec::new();
        while !runtime.is_complete() {
            let tick = runtime.step().expect("scenario sources never exhaust");
            if let Some(record) = tick.record {
                tick_records.push(record);
            }
        }
        let streamed = runtime.into_report();

        assert_eq!(streamed, batch, "streaming must be bit-identical to the batch run");
        assert_eq!(tick_records, batch.records, "per-tick records must match the report");
    }

    #[test]
    fn split_phase_ticking_matches_step() {
        let (spec, system) = shared_system();
        let scenario = ScenarioSpec::sit_then_walk(8.0, 8.0);
        let controller = ControllerKind::SpotWithConfidence {
            stability_threshold: 2,
            confidence_threshold: 0.85,
        };

        let mut stepped = DeviceRuntime::for_scenario(spec, system, controller, &scenario).unwrap();
        stepped.run_to_completion();

        let mut split = DeviceRuntime::for_scenario(spec, system, controller, &scenario).unwrap();
        while !split.is_complete() {
            match split.begin_tick() {
                TickPhase::Exhausted => unreachable!("scenario sources never exhaust"),
                TickPhase::Idle(tick) => assert!(tick.record.is_none()),
                TickPhase::Classify => {
                    assert!(split.batches_with_unified());
                    let features = split.pending_features().to_vec();
                    let prediction = system.unified_classifier().predict(&features);
                    let tick = split.complete_tick(prediction);
                    assert!(tick.record.is_some());
                }
            }
        }
        assert_eq!(split.into_report(), stepped.into_report());
    }

    #[test]
    fn recording_can_be_disabled_without_changing_the_aggregates() {
        let (spec, system) = shared_system();
        let scenario = ScenarioSpec::sit_then_walk(10.0, 10.0);
        let controller = ControllerKind::Spot { stability_threshold: 2 };

        let mut with = DeviceRuntime::for_scenario(spec, system, controller, &scenario).unwrap();
        with.run_to_completion();
        let mut without = DeviceRuntime::for_scenario(spec, system, controller, &scenario)
            .unwrap()
            .with_recording(false);
        without.run_to_completion();

        assert_eq!(with.epochs(), without.epochs());
        assert_eq!(with.correct_epochs(), without.correct_epochs());
        assert_eq!(with.total_charge(), without.total_charge());
        assert_eq!(with.residency_seconds(), without.residency_seconds());
        assert_eq!(with.accuracy(), without.accuracy());
        assert_eq!(with.average_current_ua(), without.average_current_ua());
        assert!(without.into_report().records.is_empty());
    }

    #[test]
    fn intensity_baseline_uses_the_bank_and_cannot_batch() {
        let (spec, system) = shared_system();
        let scenario = ScenarioSpec::sit_then_walk(6.0, 6.0);
        let runtime =
            DeviceRuntime::for_scenario(spec, system, ControllerKind::IntensityBased, &scenario)
                .unwrap();
        assert!(!runtime.batches_with_unified());
    }

    /// A source that serves a fixed number of constant windows and then
    /// signals end-of-stream, like a finite external feed.
    struct FiniteFeed {
        windows_left: usize,
    }

    impl SampleSource for FiniteFeed {
        fn capture_window(
            &mut self,
            config: SensorConfig,
            t_end: f64,
            window_s: f64,
            out: &mut Vec<Sample3>,
        ) {
            assert!(self.windows_left > 0, "the runtime must not capture past exhaustion");
            self.windows_left -= 1;
            out.clear();
            let n = (window_s * config.frequency.hz()) as usize;
            let dt = 1.0 / config.frequency.hz();
            out.extend(
                (0..n).map(|i| Sample3::new(t_end - window_s + i as f64 * dt, 0.0, 0.0, 1.0)),
            );
        }

        fn ground_truth(&self, _t_s: f64) -> Option<Activity> {
            Some(Activity::LieDown)
        }

        fn status(&mut self) -> SourceStatus {
            if self.windows_left == 0 {
                SourceStatus::Exhausted
            } else {
                SourceStatus::Ready
            }
        }
    }

    #[test]
    fn exhausted_sources_finish_the_epoch_gracefully() {
        let (spec, system) = shared_system();
        let controller = ControllerKind::Spot { stability_threshold: 3 };

        // 5 windows feed ticks 2..=6 (tick 1 fills the first buffer), so the
        // runtime must stop after 6 ticks without padding with silence.
        let mut runtime =
            DeviceRuntime::new(spec, system, controller, FiniteFeed { windows_left: 5 });
        assert!(!runtime.is_complete());
        runtime.run_to_completion();
        assert!(runtime.is_complete());
        assert_eq!(runtime.ticks(), 6, "ticks stop at the last delivered window");
        assert_eq!(runtime.epochs(), 5, "every delivered window is classified exactly once");
        assert_eq!(runtime.elapsed_s(), 6.0);

        // Once exhausted, further stepping is a no-op that keeps reporting
        // completion — no charge or residency is accounted for phantom ticks.
        let charge = runtime.total_charge();
        assert_eq!(runtime.step(), None);
        assert!(matches!(runtime.begin_tick(), TickPhase::Exhausted));
        assert_eq!(runtime.total_charge(), charge);
        assert_eq!(runtime.ticks(), 6);
        let report = runtime.into_report();
        assert_eq!(report.duration_s, 6.0);
        assert_eq!(report.records.len(), 5);
    }

    #[test]
    fn an_immediately_exhausted_source_yields_an_empty_run() {
        let (spec, system) = shared_system();
        let mut runtime = DeviceRuntime::new(
            spec,
            system,
            ControllerKind::StaticHigh,
            FiniteFeed { windows_left: 0 },
        );
        runtime.run_to_completion();
        assert!(runtime.is_complete());
        assert_eq!(runtime.ticks(), 0);
        assert_eq!(runtime.epochs(), 0);
        assert_eq!(runtime.total_charge(), Charge::ZERO);
    }

    #[test]
    #[should_panic(expected = "tick budget or an exhaustible source")]
    fn open_ended_scenario_runtimes_refuse_run_to_completion() {
        // ScenarioSource synthesizes windows forever; running it open-ended
        // to "completion" would spin, so it must panic up front.
        let (spec, system) = shared_system();
        let scenario = ScenarioSpec::sit_then_walk(6.0, 6.0);
        let source = ScenarioSource::new(spec, &scenario);
        DeviceRuntime::new(spec, system, ControllerKind::StaticHigh, source).run_to_completion();
    }

    #[test]
    fn exhaustion_also_ends_a_finite_runtime_early() {
        let (spec, system) = shared_system();
        // A 20 s budget over a feed that dries up after 3 windows: the runtime
        // must finish at tick 4, not at the budget.
        let mut runtime = DeviceRuntime::for_source(
            spec,
            system,
            ControllerKind::StaticHigh,
            FiniteFeed { windows_left: 3 },
            20.0,
        )
        .expect("runtime builds");
        runtime.run_to_completion();
        assert_eq!(runtime.ticks(), 4);
        assert_eq!(runtime.epochs(), 3);
    }

    #[test]
    fn tx_disabled_runtimes_report_a_zero_tally() {
        let (spec, system) = shared_system();
        let scenario = ScenarioSpec::sit_then_walk(8.0, 8.0);
        let controller = ControllerKind::Spot { stability_threshold: 2 };
        let mut runtime = DeviceRuntime::for_scenario(spec, system, controller, &scenario).unwrap();
        runtime.run_to_completion();
        assert_eq!(runtime.tx_tally(), TxTally::default());
    }

    #[test]
    fn tx_charges_every_classified_epoch_exactly_once() {
        let (spec, system) = shared_system();
        let scenario = ScenarioSpec::sit_then_walk(10.0, 10.0);
        let controller = ControllerKind::Spot { stability_threshold: 2 };

        let mut plain = DeviceRuntime::for_scenario(spec, system, controller, &scenario).unwrap();
        plain.run_to_completion();

        let setup = TxSetup::ble(4).with_seed(99);
        let mut tx = DeviceRuntime::for_scenario(spec, system, controller, &scenario)
            .unwrap()
            .with_tx(setup);
        tx.run_to_completion();

        let tally = tx.tx_tally();
        assert_eq!(tally.epochs.iter().sum::<u64>(), tx.epochs() as u64);
        let radio_uc: f64 = tally.charge_uc.iter().sum();
        assert!(radio_uc > 0.0);
        // Radio charge is what separates the two total-charge figures as long
        // as every epoch stayed on Raw/Features payloads (identical windows);
        // with compressed epochs the trajectories may diverge, so only check
        // the exact split when none occurred.
        if tally.epochs[TxPolicy::Compressed.index()] == 0 {
            let sensing_uc = tx.total_charge().micro_coulombs() - radio_uc;
            assert!((sensing_uc - plain.total_charge().micro_coulombs()).abs() < 1e-6);
        }
    }

    #[test]
    fn spot_transmission_settles_off_raw_payloads() {
        let (spec, system) = shared_system();
        // A long single-activity scenario: SPOT settles, so the raw-payload
        // epochs must be a small prefix and cheaper policies must dominate.
        let scenario = ScenarioSpec::sit_then_walk(60.0, 1.0);
        let controller = ControllerKind::Spot { stability_threshold: 2 };
        let mut runtime = DeviceRuntime::for_scenario(spec, system, controller, &scenario)
            .unwrap()
            .with_tx(TxSetup::ble(4).with_seed(7));
        runtime.run_to_completion();
        let tally = runtime.tx_tally();
        let raw = tally.epochs[TxPolicy::Raw.index()];
        let local =
            tally.epochs[TxPolicy::Features.index()] + tally.epochs[TxPolicy::Compressed.index()];
        assert!(raw > 0, "the pessimistic prior starts on raw payloads");
        assert!(local > raw, "a settled stream must mostly ship local payloads");
        // Per-epoch byte cost must be ordered raw > features > compressed.
        let mean = |policy: TxPolicy| {
            let i = policy.index();
            if tally.epochs[i] == 0 {
                return f64::NAN;
            }
            tally.bytes[i] as f64 / tally.epochs[i] as f64
        };
        let raw_mean = mean(TxPolicy::Raw);
        for cheaper in [mean(TxPolicy::Features), mean(TxPolicy::Compressed)] {
            if cheaper.is_finite() {
                assert!(cheaper < raw_mean);
            }
        }
    }

    #[test]
    fn tx_runs_are_deterministic() {
        let (spec, system) = shared_system();
        let scenario = ScenarioSpec::sit_then_walk(20.0, 20.0);
        let controller = ControllerKind::SpotWithConfidence {
            stability_threshold: 2,
            confidence_threshold: 0.85,
        };
        let run = |seed: u64| {
            let mut runtime = DeviceRuntime::for_scenario(spec, system, controller, &scenario)
                .unwrap()
                .with_tx(TxSetup::ble(2).with_seed(seed));
            runtime.run_to_completion();
            (runtime.tx_tally(), runtime.report())
        };
        let (tally_a, report_a) = run(5);
        let (tally_b, report_b) = run(5);
        assert_eq!(tally_a, tally_b);
        assert_eq!(report_a, report_b);
    }

    #[test]
    fn degenerate_scenarios_are_rejected() {
        let (spec, system) = shared_system();
        let controller = ControllerKind::StaticHigh;
        let empty = ScenarioSpec::from_schedule(adasense_data::ActivitySchedule::default(), 0);
        assert!(DeviceRuntime::for_scenario(spec, system, controller, &empty).is_err());
        let short = ScenarioSpec::sit_then_walk(0.5, 0.5);
        assert!(DeviceRuntime::for_scenario(spec, system, controller, &short).is_err());
    }
}
