//! `reactor_fleet`: drives a whole fleet from live sockets through one
//! ingestion reactor and gates the result on byte-identity.
//!
//! The other half of the `telemetry_serve` soak test.  This binary:
//!
//! 1. Trains the HAR system and runs the scenario-driven fleet — the
//!    deterministic reference `FleetReport`.
//! 2. Subscribes every device of the fleet to a `telemetry_serve` address
//!    through a single `IngestReactor` (one thread, one `poll(2)` set for
//!    the entire cohort).
//! 3. Runs the same fleet again, scheduler-side, fed *only* by the reactor's
//!    per-device channels.
//! 4. Fails unless the live report is byte-identical to the reference
//!    (`FleetReport::encode`) and every feed completed cleanly.
//!
//! When the server was started with `--kill-at`, every connection is torn
//! mid-stream once and the reactor must reconnect with a RESUME frame — the
//! byte-identity gate then also proves the kill-and-resume path loses and
//! duplicates nothing.
//!
//! Flags: `--quick`, `--devices N` (default 64), `--duration S` (default 20),
//! `--routine NAME` (default office_day), `--seed N` (default 42) — all of
//! which must match the serving process — plus `--connect ADDR` or
//! `--connect-file PATH` (poll for the address file `telemetry_serve
//! --addr-file` writes, up to 60 s) and `--expect-resumes` (fail unless at
//! least one reconnect actually happened, used by CI's chaos leg).

#[cfg(not(unix))]
fn main() {
    eprintln!("reactor_fleet needs poll(2) and is only built on Unix platforms");
    std::process::exit(2);
}

#[cfg(unix)]
fn main() -> Result<(), Box<dyn std::error::Error>> {
    use std::time::{Duration, Instant};

    use adasense::prelude::*;
    use adasense_bench::{int_arg, string_arg, train_system, RunScale};

    let scale = RunScale::from_args();
    let devices = int_arg("--devices")?.unwrap_or(64);
    let duration_s = int_arg("--duration")?.unwrap_or(20) as f64;
    let routine = string_arg("--routine")?.unwrap_or_else(|| "office_day".to_string());
    let seed = int_arg("--seed")?.unwrap_or(42);
    let expect_resumes = std::env::args().any(|a| a == "--expect-resumes");
    let preset =
        RoutinePreset::from_name(&routine).ok_or_else(|| format!("unknown routine `{routine}`"))?;

    let addr = match string_arg("--connect")? {
        Some(addr) => addr,
        None => {
            let path = string_arg("--connect-file")?
                .ok_or("pass --connect ADDR or --connect-file PATH")?;
            let deadline = Instant::now() + Duration::from_secs(60);
            loop {
                match std::fs::read_to_string(&path) {
                    Ok(text) if !text.trim().is_empty() => break text.trim().to_string(),
                    _ if Instant::now() >= deadline => {
                        return Err(
                            format!("no server address appeared at {path} within 60 s").into()
                        )
                    }
                    _ => std::thread::sleep(Duration::from_millis(50)),
                }
            }
        }
    };

    let (spec, system) = train_system(scale)?;
    let mut fleet = FleetSpec::new(devices, duration_s, seed);
    fleet.population = PopulationSpec::single(preset, FaultLevel::None);

    eprintln!("[reactor_fleet] reference run: {devices} devices × {duration_s} s…");
    let scheduler = FleetScheduler::new(&spec, &system);
    let reference = scheduler.run(&fleet)?;

    // One reactor, one socket per device, all multiplexed on a single thread.
    let mut reactor = IngestReactor::new()
        .with_policy(ReconnectPolicy { attempts: 20, delay: Duration::from_millis(25) });
    let mut feeds = Vec::with_capacity(devices as usize);
    for device_id in 0..devices {
        let plan = fleet.device_plan(device_id);
        let source = reactor.subscribe(&addr, device_id);
        feeds.push(
            ExternalDevice::new(plan.device_id, source)
                .with_metadata(plan.seed, plan.routine.clone())
                .with_backend(plan.backend),
        );
    }
    eprintln!("[reactor_fleet] connecting {} live feeds to {addr}…", reactor.feed_count());
    let reactor = std::thread::spawn(move || reactor.run());

    let feed_only = FleetSpec { devices: 0, ..fleet.clone() };
    let live = scheduler.builder().spec(&feed_only).feeds(feeds).run()?;
    let stats = reactor.join().expect("reactor thread")?;

    println!(
        "reactor: {} feeds, {} completed, {} failed, {} batches, {} reconnects, \
         peak {} concurrent connections",
        stats.feeds,
        stats.completed,
        stats.failed,
        stats.batches,
        stats.reconnects,
        stats.peak_open
    );
    for (device_id, error) in &stats.errors {
        eprintln!("[reactor_fleet] device {device_id} failed: {error}");
    }
    if stats.failed > 0 {
        return Err(format!("{} feeds failed", stats.failed).into());
    }
    if expect_resumes && stats.reconnects == 0 {
        return Err("--expect-resumes: server never tore a connection, resume path untested".into());
    }

    println!("{}", live.report.to_table_string());
    if live.report.encode() != reference.encode() {
        eprintln!("reference report:\n{}", reference.to_table_string());
        return Err("live reactor-fed report differs from the scenario-driven reference".into());
    }
    println!(
        "determinism: reactor-fed fleet report is byte-identical to the scenario run \
         ({devices} devices, {} reconnects)",
        stats.reconnects
    );
    Ok(())
}
