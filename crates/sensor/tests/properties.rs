//! Property-based tests for the sensor substrate.

use adasense_sensor::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn any_frequency() -> impl Strategy<Value = SamplingFrequency> {
    prop::sample::select(SamplingFrequency::ALL.to_vec())
}

fn any_window() -> impl Strategy<Value = AveragingWindow> {
    prop::sample::select(AveragingWindow::ALL.to_vec())
}

fn any_config() -> impl Strategy<Value = SensorConfig> {
    (any_frequency(), any_window()).prop_map(|(f, a)| SensorConfig::new(f, a))
}

proptest! {
    /// Current is always between the suspend and (active + overheads) levels.
    #[test]
    fn current_is_bounded(config in any_config()) {
        let model = EnergyModel::bmi160();
        let current = model.current_ua(config);
        prop_assert!(current >= model.suspend_current_ua);
        prop_assert!(current <= model.active_current_ua + 25.0);
    }

    /// The duty cycle is a valid fraction.
    #[test]
    fn duty_cycle_is_a_fraction(config in any_config()) {
        let model = EnergyModel::bmi160();
        let duty = model.duty_cycle(config);
        prop_assert!((0.0..=1.0).contains(&duty));
    }

    /// Charge accounting is additive over time splits.
    #[test]
    fn charge_is_additive(config in any_config(), a in 0.0f64..100.0, b in 0.0f64..100.0) {
        let model = EnergyModel::bmi160();
        let whole = model.charge_over(config, a + b).micro_coulombs();
        let split = (model.charge_over(config, a) + model.charge_over(config, b)).micro_coulombs();
        prop_assert!((whole - split).abs() < 1e-6 * (1.0 + whole.abs()));
    }

    /// Labels always round-trip through parsing.
    #[test]
    fn labels_round_trip(config in any_config()) {
        let parsed: SensorConfig = config.label().parse().unwrap();
        prop_assert_eq!(parsed, config);
    }

    /// A capture always yields round(odr × duration) samples with monotonically
    /// increasing timestamps, regardless of configuration or seed.
    #[test]
    fn capture_sample_count_and_timestamps(
        config in any_config(),
        seed in 0u64..1000,
        duration in 0.5f64..4.0,
    ) {
        let accel = Accelerometer::new(config);
        let mut rng = StdRng::seed_from_u64(seed);
        let source = |t: f64| [0.01 * t.sin(), 0.0, 1.0];
        let samples = accel.capture(&source, 0.0, duration, &mut rng);
        prop_assert_eq!(samples.len(), config.frequency.samples_in(duration));
        for pair in samples.windows(2) {
            prop_assert!(pair[1].t > pair[0].t);
        }
    }

    /// Quantized outputs never exceed the ±2 g full-scale range.
    #[test]
    fn outputs_stay_within_full_scale(config in any_config(), seed in 0u64..1000) {
        let accel = Accelerometer::new(config);
        let mut rng = StdRng::seed_from_u64(seed);
        let source = |t: f64| [3.0 * (7.0 * t).sin(), -3.0, 2.5];
        for s in accel.capture(&source, 0.0, 1.0, &mut rng) {
            for v in s.axes() {
                prop_assert!(v.abs() <= 2.0 + 1e-9);
            }
        }
    }

    /// Reported output noise is never below the noise floor and never above the raw
    /// single-sample noise (scaled by the low-power penalty) plus the floor.
    #[test]
    fn noise_std_is_bounded(config in any_config()) {
        let noise = NoiseModel::bmi160();
        for mode in [OperationMode::Normal, OperationMode::LowPower] {
            let std = noise.output_noise_std_for(config, mode);
            prop_assert!(std >= noise.noise_floor_g);
            prop_assert!(std <= noise.noise_floor_g + noise.raw_noise_std_g * noise.low_power_factor);
        }
    }
}
