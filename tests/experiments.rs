//! Integration tests for the experiment runners: quick-scale versions of every
//! paper table/figure, checking the qualitative relationships the paper reports.

use adasense_repro::adasense::dse::DesignSpaceExploration;
use adasense_repro::adasense::experiments::{
    behavioural_trace, config_table, iba_comparison, paper_memory_report, stability_sweep,
    IbaComparisonSettings, StabilitySweepSettings,
};
use adasense_repro::adasense::prelude::*;
use std::sync::OnceLock;

fn shared() -> &'static (ExperimentSpec, TrainedSystem) {
    static SYSTEM: OnceLock<(ExperimentSpec, TrainedSystem)> = OnceLock::new();
    SYSTEM.get_or_init(|| {
        let spec = ExperimentSpec {
            dataset: DatasetSpec { windows_per_class_per_config: 14, ..DatasetSpec::quick() },
            ..ExperimentSpec::quick()
        };
        let system = TrainedSystem::train(&spec).expect("training the quick system succeeds");
        (spec, system)
    })
}

#[test]
fn table1_report_lists_every_configuration_with_sensible_currents() {
    let report = config_table(&EnergyModel::bmi160(), &NoiseModel::bmi160());
    assert_eq!(report.rows.len(), 16);
    for row in &report.rows {
        assert!(row.current_ua > 5.0 && row.current_ua < 250.0, "{:?}", row);
        assert!(row.duty_cycle > 0.0 && row.duty_cycle <= 1.0);
        assert!(row.noise_std_g > 0.0);
    }
    // Normal-mode rows must be the large averaging windows at high rates.
    let normal_rows: Vec<_> = report.rows.iter().filter(|r| r.mode == "normal").collect();
    assert!(!normal_rows.is_empty());
    assert!(normal_rows.iter().all(|r| r.duty_cycle >= 1.0));
}

#[test]
fn fig2_design_space_pareto_front_is_consistent() {
    let (spec, _) = shared();
    // A small candidate set keeps this test quick while still exercising the
    // dominance logic over trained accuracies.
    let candidates = vec![
        "F100_A128".parse().unwrap(),
        "F50_A16".parse().unwrap(),
        "F12.5_A16".parse().unwrap(),
        "F12.5_A8".parse().unwrap(),
        "F6.25_A128".parse().unwrap(),
    ];
    let report = DesignSpaceExploration::new(spec.clone())
        .with_candidates(candidates)
        .with_repeats(1)
        .run()
        .expect("exploration runs");
    assert_eq!(report.evaluations.len(), 5);
    assert!(!report.pareto.is_empty());
    // No Pareto point may be dominated by any evaluation.
    for p in &report.pareto {
        for e in &report.evaluations {
            let dominates = e.accuracy >= p.accuracy
                && e.current_ua <= p.current_ua
                && (e.accuracy > p.accuracy || e.current_ua < p.current_ua);
            assert!(!dominates, "{} dominates Pareto member {}", e.config, p.config);
        }
    }
    // The front is returned in decreasing-current order (SPOT state order).
    for pair in report.pareto.windows(2) {
        assert!(pair[0].current_ua >= pair[1].current_ua);
    }
}

#[test]
fn fig5_behavioural_trace_shows_the_step_down_and_reset_pattern() {
    let (spec, system) = shared();
    let report = behavioural_trace(spec, system, 4, 40.0, 40.0).expect("trace runs");
    let records = report.simulation.records();
    // The run starts at the high-power configuration…
    assert_eq!(records.first().unwrap().config.label(), "F100_A128");
    // …reaches the lowest-power configuration while sitting…
    assert!(report.first_settle_s.is_some());
    assert!(report.first_settle_s.unwrap() < 40.0);
    // …and consumes more power right after the activity change than right before it.
    // …and returns to the high-power configuration shortly after the activity
    // change (the classifier needs a window or two of pure walking to report the
    // change, the new configuration takes effect one epoch later, and with this
    // small stability threshold it may already start stepping down again a few
    // seconds after that — so assert the reset happened, not that it persists).
    let high = SensorConfig::paper_pareto_front()[0];
    assert!(
        records.iter().any(|r| r.t_s >= 41.0 && r.t_s <= 47.0 && r.config == high),
        "expected the sensor back at {high} shortly after the change, got {:?}",
        records
            .iter()
            .filter(|r| r.t_s >= 41.0 && r.t_s <= 47.0)
            .map(|r| r.config.label())
            .collect::<Vec<_>>()
    );
}

#[test]
fn fig6_sweep_power_grows_with_the_stability_threshold() {
    let (spec, system) = shared();
    let settings = StabilitySweepSettings {
        thresholds: vec![2, 20],
        scenario_duration_s: 120.0,
        scenarios_per_point: 1,
        setting: ActivityChangeSetting::Medium,
        ..StabilitySweepSettings::quick()
    };
    let report = stability_sweep(spec, system, &settings).expect("sweep runs");
    assert_eq!(report.points.len(), 2);
    let low_threshold = &report.points[0];
    let high_threshold = &report.points[1];
    // Fig. 6b: a larger stability threshold keeps the sensor longer in the
    // high-power state, so SPOT power grows with the threshold.
    assert!(
        high_threshold.spot_current_ua > low_threshold.spot_current_ua,
        "SPOT power should increase with the threshold ({} vs {})",
        high_threshold.spot_current_ua,
        low_threshold.spot_current_ua
    );
    // Both are below the baseline.
    assert!(low_threshold.spot_current_ua < low_threshold.baseline_current_ua);
    assert!(high_threshold.spot_current_ua < high_threshold.baseline_current_ua);
    // And the headline averages are positive savings.
    assert!(report.average_spot_reduction() > 0.0);
    assert!(report.average_spot_confidence_reduction() > 0.0);
}

#[test]
fn fig7_comparison_reproduces_the_crossover_shape() {
    let (spec, system) = shared();
    let settings = IbaComparisonSettings {
        scenario_duration_s: 180.0,
        scenarios_per_setting: 2,
        ..IbaComparisonSettings::quick()
    };
    let report = iba_comparison(spec, system, &settings).expect("comparison runs");
    let low = report.row(ActivityChangeSetting::Low).unwrap();
    let high = report.row(ActivityChangeSetting::High).unwrap();
    // The paper's qualitative shape: for stable users AdaSense draws clearly less
    // power than the intensity-based approach…
    assert!(
        low.adasense_current_ua < low.iba_current_ua,
        "AdaSense ({}) should beat IbA ({}) in the Low setting",
        low.adasense_current_ua,
        low.iba_current_ua
    );
    // …and AdaSense's own power grows as the user becomes less stable.
    assert!(high.adasense_current_ua > low.adasense_current_ua);
}

#[test]
fn memory_report_matches_the_two_x_and_four_x_claims() {
    let report = paper_memory_report(&MlpConfig::paper());
    assert_eq!(report.adasense.models, 1);
    assert_eq!(report.iba_bank.models, 2);
    assert_eq!(report.per_config_bank.models, 4);
    assert!((report.saving_vs_iba() - 2.0).abs() < 1e-9);
    assert!((report.saving_vs_per_config_bank() - 4.0).abs() < 1e-9);
}
