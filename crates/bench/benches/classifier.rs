//! Benchmarks of the classifier (Section III-C): single-window inference with the
//! paper's 2-layer network, inference with a deeper ablation network, and the cost
//! of one training epoch.

use adasense_ml::prelude::*;
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn synthetic_features(n: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<usize>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let x: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            let class = i % 6;
            (0..15)
                .map(|d| class as f64 * 0.3 + 0.1 * d as f64 + rng.random_range(-0.2..0.2))
                .collect()
        })
        .collect();
    let y: Vec<usize> = (0..n).map(|i| i % 6).collect();
    (x, y)
}

fn bench_inference(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let paper = Mlp::new(MlpConfig::paper(), &mut rng);
    let deeper = Mlp::new(MlpConfig::new(15, vec![32, 32], 6), &mut rng);
    let features: Vec<f64> = (0..15).map(|d| 0.1 * d as f64).collect();

    let mut group = c.benchmark_group("classifier_inference");
    group.bench_function("paper_15x24x6", |b| {
        b.iter(|| black_box(paper.predict(black_box(&features))))
    });
    group.bench_function("ablation_15x32x32x6", |b| {
        b.iter(|| black_box(deeper.predict(black_box(&features))))
    });
    group.finish();
}

fn bench_training_epoch(c: &mut Criterion) {
    let (x, y) = synthetic_features(600, 3);
    let mut group = c.benchmark_group("classifier_training");
    group.sample_size(10);
    group.bench_function("one_epoch_600_windows", |b| {
        let trainer = Trainer::new(TrainerConfig { epochs: 1, ..TrainerConfig::default() });
        b.iter(|| black_box(trainer.train(&MlpConfig::paper(), black_box(&x), black_box(&y), 7)))
    });
    group.finish();
}

criterion_group!(benches, bench_inference, bench_training_epoch);
criterion_main!(benches);
