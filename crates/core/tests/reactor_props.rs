//! Property-based test for the ingestion reactor's kill-and-resume path: tear
//! the connection at an *arbitrary* byte offset mid-stream, let the reactor
//! reconnect with a RESUME frame, and require the replayed fleet to be
//! bit-identical to the scenario-driven reference — no batch lost, none
//! duplicated, regardless of where the cut landed (inside a length prefix,
//! mid-sample, one byte short of the END frame, …).

#![cfg(unix)]

use std::sync::OnceLock;

use adasense::ingest::{TelemetryTrace, TraceRecorder};
use adasense::prelude::*;
use proptest::prelude::*;

/// Trains the quick system once for every proptest case.
fn shared_system() -> &'static (ExperimentSpec, TrainedSystem) {
    static SYSTEM: OnceLock<(ExperimentSpec, TrainedSystem)> = OnceLock::new();
    SYSTEM.get_or_init(|| {
        let spec = ExperimentSpec::quick();
        let system = TrainedSystem::train(&spec).expect("quick training succeeds");
        (spec, system)
    })
}

/// The fleet every case replays: small enough to keep a case under a couple
/// of seconds, long enough that streams span many frames.
fn test_fleet(seed: u64) -> FleetSpec {
    let mut fleet = FleetSpec::new(2, 6.0, seed);
    // Fault exposure is a capture-side property a replayed feed cannot
    // observe, and bit-identity requires rows with `faulted_epochs == 0`.
    fleet.population = PopulationSpec::single(RoutinePreset::OfficeDay, FaultLevel::None);
    fleet
}

/// Records every device of `fleet` as a wire-format trace, exactly as the
/// scheduler would have produced it.
fn record_traces(fleet: &FleetSpec) -> Vec<(u64, TelemetryTrace)> {
    let (spec, system) = shared_system();
    let scheduler = FleetScheduler::new(spec, system);
    (0..fleet.devices)
        .map(|device_id| {
            let plan = fleet.device_plan(device_id);
            let recorder = TraceRecorder::new(scheduler.device_source(fleet, &plan));
            let mut runtime = DeviceRuntime::for_source(
                spec,
                system,
                fleet.controller,
                recorder,
                plan.scenario.duration_s(),
            )
            .expect("runtime construction succeeds")
            .with_classifier(system.backend(plan.backend));
            runtime.run_to_completion();
            (device_id, runtime.source().trace().clone())
        })
        .collect()
}

/// Field-by-field bit comparison of two summary rows (plain `==` would paper
/// over NaN and signed-zero differences in the float fields).
fn rows_bit_identical(a: &DeviceSummary, b: &DeviceSummary) -> bool {
    a.device_id == b.device_id
        && a.seed == b.seed
        && a.routine == b.routine
        && a.backend == b.backend
        && a.faulted_epochs == b.faulted_epochs
        && a.epochs == b.epochs
        && a.correct_epochs == b.correct_epochs
        && a.accuracy.to_bits() == b.accuracy.to_bits()
        && a.average_current_ua.to_bits() == b.average_current_ua.to_bits()
        && a.total_charge_uc.to_bits() == b.total_charge_uc.to_bits()
        && a.duration_s.to_bits() == b.duration_s.to_bits()
        && a.residency_s.len() == b.residency_s.len()
        && a.residency_s.iter().zip(&b.residency_s).all(|(x, y)| x.to_bits() == y.to_bits())
        && a.tx_epochs == b.tx_epochs
        && a.tx_bytes == b.tx_bytes
        && a.tx_charge_uc.len() == b.tx_charge_uc.len()
        && a.tx_charge_uc.iter().zip(&b.tx_charge_uc).all(|(x, y)| x.to_bits() == y.to_bits())
        && a.start_epoch == b.start_epoch
        && a.departed == b.departed
}

/// Runs `fleet` entirely from compressed socket feeds at `ratio`× compression,
/// optionally tearing each device's first stream after `kill_at` bytes, and
/// returns the live run plus both sides' counters.
fn run_compressed_feed(
    fleet: &FleetSpec,
    traces: Vec<(u64, TelemetryTrace)>,
    ratio: u32,
    kill_at: Option<usize>,
) -> (FleetRun, ReactorStats, ServeStats) {
    let (spec, system) = shared_system();
    let scheduler = FleetScheduler::new(spec, system);
    let mut serve = TelemetryServe::bind_compressed("127.0.0.1:0", traces, ratio)
        .expect("loopback bind succeeds");
    if let Some(bytes) = kill_at {
        serve = serve.with_kill_at(bytes);
    }
    let addr = serve.local_addr().to_string();
    let devices = fleet.devices;
    let server =
        std::thread::spawn(move || serve.serve_streams(devices, 50).map(|()| serve.stats()));

    let mut reactor = IngestReactor::new()
        .with_policy(ReconnectPolicy { attempts: 10, delay: std::time::Duration::from_millis(1) });
    let feeds: Vec<_> = (0..fleet.devices)
        .map(|device_id| {
            let plan = fleet.device_plan(device_id);
            ExternalDevice::new(plan.device_id, reactor.subscribe(&addr, device_id))
                .with_metadata(plan.seed, plan.routine.clone())
                .with_backend(plan.backend)
        })
        .collect();
    let reactor = std::thread::spawn(move || reactor.run());

    let feed_only = FleetSpec { devices: 0, ..fleet.clone() };
    let live = scheduler
        .builder()
        .spec(&feed_only)
        .feeds(feeds)
        .collect()
        .run()
        .expect("live run succeeds");

    let stats = reactor.join().expect("reactor thread").expect("no feed fails");
    let serve_stats = server.join().expect("server thread").expect("server completes");
    (live, stats, serve_stats)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Kill every device's first connection at an arbitrary byte offset; the
    /// resumed fleet must reproduce the scenario-driven run bit for bit.
    #[test]
    fn kill_anywhere_resume_is_bit_identical(
        seed in 0u64..1000,
        kill_fraction in 0f64..1.0,
    ) {
        let (spec, system) = shared_system();
        let fleet = test_fleet(seed);
        let scheduler = FleetScheduler::new(spec, system);
        let reference = scheduler.run_collect(&fleet).expect("reference run succeeds");

        let traces = record_traces(&fleet);
        let stream_len =
            traces.iter().map(|(_, t)| t.encode().len()).max().expect("fleet is non-empty");
        // Anywhere from "before the first full frame" to "one byte short of
        // a complete stream" (the server clamps so END is never delivered).
        let kill_at = ((stream_len as f64 * kill_fraction) as usize).max(1);

        let mut serve = TelemetryServe::bind("127.0.0.1:0", traces)
            .expect("loopback bind succeeds")
            .with_kill_at(kill_at);
        let addr = serve.local_addr().to_string();
        let devices = fleet.devices;
        let server = std::thread::spawn(move || {
            serve.serve_streams(devices, 50).map(|()| serve.stats())
        });

        let mut reactor = IngestReactor::new().with_policy(ReconnectPolicy {
            attempts: 10,
            delay: std::time::Duration::from_millis(1),
        });
        let feeds: Vec<_> = (0..fleet.devices)
            .map(|device_id| {
                let plan = fleet.device_plan(device_id);
                ExternalDevice::new(plan.device_id, reactor.subscribe(&addr, device_id))
                    .with_metadata(plan.seed, plan.routine.clone())
                    .with_backend(plan.backend)
            })
            .collect();
        let reactor = std::thread::spawn(move || reactor.run());

        let feed_only = FleetSpec { devices: 0, ..fleet.clone() };
        let live = scheduler
            .builder()
            .spec(&feed_only)
            .feeds(feeds)
            .collect()
            .run()
            .expect("live run succeeds");

        let stats = reactor.join().expect("reactor thread").expect("no feed fails");
        let serve_stats = server.join().expect("server thread").expect("server completes");

        prop_assert_eq!(stats.failed, 0, "errors: {:?}", stats.errors);
        prop_assert_eq!(stats.completed, fleet.devices);
        // Every first stream was torn, so every device reconnected.
        prop_assert!(
            stats.reconnects >= fleet.devices,
            "kill at byte {} produced only {} reconnects",
            kill_at,
            stats.reconnects
        );
        prop_assert_eq!(serve_stats.killed_streams, fleet.devices);

        prop_assert_eq!(
            live.report.encode(),
            reference.report.encode(),
            "fleet report differs after kill at byte {}",
            kill_at
        );
        prop_assert_eq!(live.summaries.len(), reference.summaries.len());
        for (a, b) in reference.summaries.iter().zip(&live.summaries) {
            prop_assert!(
                rows_bit_identical(a, b),
                "device {} differs after kill at byte {}:\n  reference: {:?}\n  live:      {:?}",
                a.device_id,
                kill_at,
                a,
                b
            );
        }
    }
}

proptest! {
    // Each case replays the fleet twice (clean reference + torn run), so the
    // case budget is tighter than the raw kill-anywhere property above.
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Tear a *compressed* stream mid-frame and let the reactor RESUME: the
    /// torn-and-resumed fleet must be bit-identical to the same compressed
    /// feed served without interference.  This pins the PR 8 resume contract
    /// onto the v3 COMPRESSED frames: a resumed stream re-projects the
    /// replayed batches with their original per-frame seeds, so the
    /// reconstruction — and everything downstream of it — cannot drift.
    #[test]
    fn compressed_stream_killed_mid_frame_resumes_identically(
        seed in 0u64..1000,
        frame_fraction in 0f64..1.0,
        ratio_lane in 0u8..2,
    ) {
        let ratio = if ratio_lane == 0 { 2 } else { 4 };
        // Replaying a compressed trace is lossy: the reconstructed windows can
        // classify differently from the originals, and an *adaptive* controller
        // would then request a config schedule the recorded trace cannot
        // serve.  Hold the configuration static so the schedule is a pure
        // function of time — the property under test is the resume contract,
        // not closed-loop adaptation (tx_sweep covers that in-runtime).
        let mut fleet = test_fleet(seed);
        fleet.controller = ControllerKind::StaticHigh;
        let traces = record_traces(&fleet);

        // Aim the kill strictly *inside* the first COMPRESSED frame: past the
        // stream header and the frame's length prefix, short of its last byte.
        let mut encoder = FrameEncoder::new();
        let header_len = encoder.header().len();
        let (first_device, first_trace) = &traces[0];
        let frame_seed = adasense::ingest::compressed_frame_seed(*first_device, 0);
        let frame_len = encoder.compressed(&first_trace.batches[0], ratio, frame_seed).len();
        let kill_at =
            header_len + 1 + ((frame_len.saturating_sub(2)) as f64 * frame_fraction) as usize;

        let (reference, _, clean_stats) =
            run_compressed_feed(&fleet, traces.clone(), ratio, None);
        prop_assert_eq!(clean_stats.killed_streams, 0);

        let (live, stats, serve_stats) =
            run_compressed_feed(&fleet, traces, ratio, Some(kill_at));
        prop_assert_eq!(stats.failed, 0, "errors: {:?}", stats.errors);
        prop_assert_eq!(stats.completed, fleet.devices);
        prop_assert!(
            stats.reconnects >= fleet.devices,
            "kill at byte {} produced only {} reconnects",
            kill_at,
            stats.reconnects
        );
        prop_assert_eq!(serve_stats.killed_streams, fleet.devices);

        prop_assert_eq!(
            live.report.encode(),
            reference.report.encode(),
            "compressed fleet report differs after mid-frame kill at byte {}",
            kill_at
        );
        prop_assert_eq!(live.summaries.len(), reference.summaries.len());
        for (a, b) in reference.summaries.iter().zip(&live.summaries) {
            prop_assert!(
                rows_bit_identical(a, b),
                "device {} differs after mid-frame kill at byte {}:\n  reference: {:?}\n  \
                 live:      {:?}",
                a.device_id,
                kill_at,
                a,
                b
            );
        }
    }
}
