//! Benchmarks of the adaptive sensing controllers (Fig. 3/4 and the Fig. 7
//! baseline): the per-epoch decision cost of SPOT, SPOT with confidence and the
//! intensity-based approach, plus the intensity (derivative) computation the paper
//! argues AdaSense avoids.

use adasense::prelude::*;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn decision_stream(n: usize) -> Vec<ControllerInput> {
    (0..n)
        .map(|i| ControllerInput {
            // Mostly stable activity with a change every 25 epochs.
            predicted: if (i / 25) % 2 == 0 { Activity::Sit } else { Activity::Walk },
            confidence: 0.7 + 0.3 * ((i % 10) as f64 / 10.0),
            intensity_g_per_s: if (i / 25) % 2 == 0 { 3.0 } else { 9.0 },
            escalated: i % 25 == 0,
        })
        .collect()
}

fn bench_controller_decisions(c: &mut Criterion) {
    let inputs = decision_stream(1000);
    let spec = ExperimentSpec::quick();
    let mut group = c.benchmark_group("controller_1000_epochs");
    let kinds = [
        ("spot", ControllerKind::Spot { stability_threshold: 10 }),
        (
            "spot_confidence",
            ControllerKind::SpotWithConfidence {
                stability_threshold: 10,
                confidence_threshold: 0.85,
            },
        ),
        ("static", ControllerKind::StaticHigh),
        ("intensity_based", ControllerKind::IntensityBased),
    ];
    for (name, kind) in kinds {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut controller = kind.build(&spec);
                for input in &inputs {
                    black_box(controller.observe(black_box(input)));
                }
            })
        });
    }
    group.finish();
}

fn bench_intensity_computation(c: &mut Criterion) {
    // The data-processing overhead the paper says AdaSense avoids: the derivative
    // of a 2-second window at the high-power configuration (200 samples).
    let samples: Vec<Sample3> = (0..200)
        .map(|k| {
            let t = k as f64 / 100.0;
            Sample3::new(t, 0.1, 0.2 * t.sin(), 1.0 + 0.3 * (12.0 * t).sin())
        })
        .collect();
    c.bench_function("intensity_derivative_200_samples", |b| {
        b.iter(|| black_box(mean_absolute_derivative(black_box(&samples))))
    });
}

criterion_group!(benches, bench_controller_decisions, bench_intensity_computation);
criterion_main!(benches);
