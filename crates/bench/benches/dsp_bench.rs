//! Per-stage DSP hot-path benchmarks: FFT, DWT, statistics and the full
//! feature extraction, each in its allocating and allocation-free flavour.
//!
//! The fleet scheduler calls `FeatureExtractor::extract_into` once per device
//! per simulated second, so every stage here is on the per-tick hot path.
//! Keeping the allocating and scratch-reusing variants side by side makes a
//! hot-path regression attributable to one stage — if `fleet_sim` throughput
//! drops, this bench names the stage that moved.

use adasense_dsp::prelude::*;
use adasense_dsp::stats::per_axis_stats;
use adasense_sensor::{Sample3, SensorConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

/// A 2-second batch at the configuration's sampling rate (the window the
/// runtime hands to the extractor every epoch).
fn batch_for(config: SensorConfig) -> Vec<Sample3> {
    let rate = config.frequency.hz();
    let n = config.frequency.samples_in(2.0);
    (0..n)
        .map(|k| {
            let t = k as f64 / rate;
            Sample3::new(
                t,
                0.1 * (3.0 * t).sin(),
                0.2 * (12.0 * t).cos(),
                1.0 + 0.3 * (std::f64::consts::TAU * 1.9 * t).sin(),
            )
        })
        .collect()
}

fn bench_fft(c: &mut Criterion) {
    let signal: Vec<f64> = (0..200).map(|k| (k as f64 * 0.13).sin()).collect();
    let mut group = c.benchmark_group("dsp_fft_200_samples");
    group.bench_function("dft_magnitudes_alloc", |b| {
        b.iter(|| black_box(dft_magnitudes(black_box(&signal), 100)))
    });
    let mut plan = FftPlan::new();
    let mut bins = Vec::new();
    group.bench_function("fft_plan_magnitudes_into", |b| {
        b.iter(|| {
            plan.magnitudes_into(black_box(&signal), 100, &mut bins);
            black_box(bins[4])
        })
    });
    group.bench_function("fft_plan_forward_real", |b| {
        b.iter(|| black_box(plan.forward_real(black_box(&signal))[4].magnitude()))
    });
    group.finish();
}

fn bench_dwt(c: &mut Criterion) {
    let signal: Vec<f64> = (0..256).map(|k| (k as f64 * 0.21).sin()).collect();
    let levels = 4;
    let mut group = c.benchmark_group("dsp_dwt_256_samples_4_levels");
    group.bench_function("haar_decompose_alloc", |b| {
        b.iter(|| black_box(haar_decompose(black_box(&signal), levels)))
    });
    group.bench_function("haar_band_energies_alloc", |b| {
        b.iter(|| black_box(haar_band_energies(black_box(&signal), levels)))
    });
    let mut workspace = HaarWorkspace::new();
    let mut energies = Vec::new();
    group.bench_function("haar_workspace_in_place", |b| {
        b.iter(|| {
            workspace.decompose(black_box(&signal), levels);
            workspace.band_energies_into(levels, &mut energies);
            black_box(energies[0])
        })
    });
    group.finish();
}

fn bench_stats(c: &mut Criterion) {
    let batch = batch_for(SensorConfig::paper_pareto_front()[0]);
    let mut group = c.benchmark_group("dsp_stats_2s_batch");
    group.bench_function("per_axis_stats_alloc", |b| {
        b.iter(|| black_box(per_axis_stats(black_box(&batch))))
    });
    group.bench_function("axis_stats_of_sequence", |b| {
        b.iter(|| {
            black_box(AxisStats::of_sequence(batch.len(), || black_box(&batch).iter().map(|s| s.z)))
        })
    });
    group.finish();
}

fn bench_full_extract(c: &mut Criterion) {
    let extractor = FeatureExtractor::paper();
    let mut group = c.benchmark_group("dsp_full_extract_2s_batch");
    for config in SensorConfig::paper_pareto_front() {
        let batch = batch_for(config);
        let rate = config.frequency.hz();
        group.bench_function(format!("extract_alloc/{}", config.label()), |b| {
            b.iter(|| black_box(extractor.extract(black_box(&batch), rate)))
        });
        let mut out = Vec::new();
        group.bench_function(format!("extract_into/{}", config.label()), |b| {
            b.iter(|| {
                extractor.extract_into(black_box(&batch), rate, &mut out);
                black_box(out[0])
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fft, bench_dwt, bench_stats, bench_full_extract);
criterion_main!(benches);
