//! Cheap full-closed-loop smoke test.
//!
//! This is the one test CI relies on to prove the whole stack is alive — spec →
//! training → closed-loop SPOT simulation → report — without the heavier
//! statistical assertions of `end_to_end.rs`. It must stay fast (one quick
//! training run, one short scenario).

use adasense_repro::adasense::prelude::*;

#[test]
fn quick_spec_trains_and_simulates_the_full_closed_loop() {
    let spec = ExperimentSpec::quick();
    let trained = TrainedSystem::train(&spec).expect("quick spec trains");

    let report = Simulator::new(&spec, &trained)
        .with_controller(ControllerKind::Spot { stability_threshold: 5 })
        .run(ScenarioSpec::sit_then_walk(20.0, 20.0))
        .expect("closed-loop simulation runs");

    assert!(report.accuracy() > 0.0, "the closed loop must classify something correctly");
    assert!(
        report.average_current_ua() > 0.0,
        "the energy model must account a positive average current"
    );
    assert!(!report.records().is_empty(), "the simulator must emit per-epoch records");

    // The same trained system drives a small fleet through the parallel
    // scheduler, deterministically in the worker count.  The small lockstep
    // chunk splits 6 devices into 3 jobs so two workers genuinely run
    // concurrently (one chunk would clamp both runs to a single worker).
    let fleet = FleetSpec { lockstep_devices: 2, ..FleetSpec::new(6, 20.0, 42) };
    let scheduler = FleetScheduler::new(&spec, &trained);
    let parallel = scheduler.with_threads(2).run(&fleet).expect("fleet runs");
    assert_eq!(parallel.len(), 6, "one summary per device");
    assert!(parallel.mean_current_ua() > 0.0);
    let serial = scheduler.with_threads(1).run(&fleet).expect("fleet runs");
    assert_eq!(serial, parallel, "fleet reports must not depend on the worker count");

    // The scenario library drives a heterogeneous faulted cohort through the
    // same scheduler, still bit-identical in the worker count.
    let cohort = FleetSpec {
        lockstep_devices: 2,
        population: PopulationSpec::mixed(FaultLevel::Heavy),
        ..FleetSpec::new(6, 20.0, 42)
    };
    let parallel = scheduler.with_threads(2).run(&cohort).expect("cohort runs");
    let serial = scheduler.with_threads(1).run(&cohort).expect("cohort runs");
    assert_eq!(serial, parallel, "scenario cohorts must not depend on the worker count");
    assert!(!parallel.routine_breakdown().is_empty(), "the cohort reports per-routine stats");
}
