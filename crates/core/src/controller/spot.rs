//! The State Prediction Optimization Technique (SPOT) finite state machine.
//!
//! SPOT (Section IV-D) walks down a list of sensor configurations ordered from
//! highest to lowest power.  Every classification epoch it compares the current
//! prediction to the previous one:
//!
//! * **C1** — same activity, counter below the stability threshold: increment the
//!   counter, stay in the current state.
//! * **C2** — same activity, counter reaches the stability threshold: move to the
//!   next lower-power state and restart the counter.
//! * **C3** — the activity changed: jump back to the first (highest-power) state.
//! * **C4** — same activity while already in the last state: stay there.
//!
//! The confidence extension (Section IV-E) only honours C3 when the classifier
//! reports the change with a confidence above the configured threshold; low
//! confidence changes are treated as sensor noise and ignored.

use adasense_data::Activity;
use adasense_sensor::SensorConfig;
use serde::{Deserialize, Serialize};

use super::{ControllerInput, SensorController};

/// The SPOT adaptive sensing controller.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpotController {
    states: Vec<SensorConfig>,
    stability_threshold: u32,
    confidence_threshold: Option<f64>,
    state: usize,
    counter: u32,
    last_activity: Option<Activity>,
}

impl SpotController {
    /// Creates a SPOT controller over an explicit list of states (ordered from
    /// highest to lowest power).
    ///
    /// # Panics
    ///
    /// Panics if `states` is empty.
    pub fn new(states: Vec<SensorConfig>, stability_threshold: u32) -> Self {
        assert!(!states.is_empty(), "SPOT needs at least one state");
        Self {
            states,
            stability_threshold,
            confidence_threshold: None,
            state: 0,
            counter: 0,
            last_activity: None,
        }
    }

    /// SPOT over the paper's four Pareto-optimal configurations.
    pub fn paper(stability_threshold: u32) -> Self {
        Self::new(SensorConfig::paper_pareto_front().to_vec(), stability_threshold)
    }

    /// Adds the confidence extension: only changes reported with confidence strictly
    /// greater than `confidence_threshold` reset the FSM.
    pub fn with_confidence(mut self, confidence_threshold: f64) -> Self {
        self.confidence_threshold = Some(confidence_threshold);
        self
    }

    /// SPOT with confidence over the paper's Pareto states (the paper uses 0.85).
    pub fn paper_with_confidence(stability_threshold: u32, confidence_threshold: f64) -> Self {
        Self::paper(stability_threshold).with_confidence(confidence_threshold)
    }

    /// The ordered state list.
    pub fn states(&self) -> &[SensorConfig] {
        &self.states
    }

    /// The index of the currently active state.
    pub fn state_index(&self) -> usize {
        self.state
    }

    /// The stability threshold (epochs of stable activity before stepping down).
    pub fn stability_threshold(&self) -> u32 {
        self.stability_threshold
    }

    /// The confidence threshold, if the confidence extension is enabled.
    pub fn confidence_threshold(&self) -> Option<f64> {
        self.confidence_threshold
    }

    /// The activity the FSM currently compares new predictions against
    /// ("Last Activity" in the paper's transition conditions), if any observation
    /// has been made yet.
    pub fn last_activity(&self) -> Option<Activity> {
        self.last_activity
    }

    /// Whether an observed change should be trusted (confidence gate).
    fn change_is_trusted(&self, confidence: f64) -> bool {
        match self.confidence_threshold {
            Some(threshold) => confidence > threshold,
            None => true,
        }
    }
}

impl SensorController for SpotController {
    fn config(&self) -> SensorConfig {
        self.states[self.state]
    }

    fn observe(&mut self, input: &ControllerInput) -> SensorConfig {
        match self.last_activity {
            None => {
                // First observation: nothing to compare against yet.
                self.last_activity = Some(input.predicted);
            }
            Some(last) if last == input.predicted => {
                // C1 / C2 / C4: stable activity.
                if self.state + 1 < self.states.len() {
                    self.counter += 1;
                    if self.counter >= self.stability_threshold {
                        self.state += 1;
                        self.counter = 0;
                    }
                }
            }
            Some(_) => {
                if self.change_is_trusted(input.confidence) {
                    // C3: the activity changed — return to the high-accuracy state.
                    self.state = 0;
                    self.counter = 0;
                    self.last_activity = Some(input.predicted);
                }
                // An untrusted change is treated as noise: state, counter and the
                // remembered activity all stay as they were.
            }
        }
        self.config()
    }

    fn reset(&mut self) {
        self.state = 0;
        self.counter = 0;
        self.last_activity = None;
    }

    fn name(&self) -> String {
        match self.confidence_threshold {
            Some(c) => format!("SPOT+confidence({c})"),
            None => "SPOT".to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stable(activity: Activity) -> ControllerInput {
        ControllerInput { predicted: activity, confidence: 0.99, intensity_g_per_s: 0.0 }
    }

    fn with_confidence(activity: Activity, confidence: f64) -> ControllerInput {
        ControllerInput { predicted: activity, confidence, intensity_g_per_s: 0.0 }
    }

    #[test]
    fn starts_at_the_highest_power_state() {
        let spot = SpotController::paper(5);
        assert_eq!(spot.config(), SensorConfig::paper_pareto_front()[0]);
        assert_eq!(spot.state_index(), 0);
    }

    #[test]
    fn steps_down_after_the_stability_threshold() {
        let mut spot = SpotController::paper(3);
        // First observation establishes the activity, then 3 stable epochs per step.
        spot.observe(&stable(Activity::Sit));
        for _ in 0..2 {
            spot.observe(&stable(Activity::Sit));
            assert_eq!(spot.state_index(), 0);
        }
        spot.observe(&stable(Activity::Sit));
        assert_eq!(spot.state_index(), 1, "third stable epoch crosses the threshold");
        for _ in 0..3 {
            spot.observe(&stable(Activity::Sit));
        }
        assert_eq!(spot.state_index(), 2);
        for _ in 0..3 {
            spot.observe(&stable(Activity::Sit));
        }
        assert_eq!(spot.state_index(), 3);
    }

    #[test]
    fn stays_in_the_last_state_while_stable() {
        let mut spot = SpotController::paper(1);
        spot.observe(&stable(Activity::Walk));
        for _ in 0..20 {
            spot.observe(&stable(Activity::Walk));
        }
        assert_eq!(spot.state_index(), 3, "must not step past the last state");
    }

    #[test]
    fn any_activity_change_resets_to_the_first_state() {
        let mut spot = SpotController::paper(1);
        spot.observe(&stable(Activity::Walk));
        for _ in 0..5 {
            spot.observe(&stable(Activity::Walk));
        }
        assert!(spot.state_index() > 0);
        spot.observe(&stable(Activity::Sit));
        assert_eq!(spot.state_index(), 0);
        // And the new activity becomes the reference for stability counting.
        spot.observe(&stable(Activity::Sit));
        spot.observe(&stable(Activity::Sit));
        assert!(spot.state_index() > 0 || spot.stability_threshold() > 2);
    }

    #[test]
    fn low_confidence_changes_are_ignored_with_the_confidence_extension() {
        let mut spot = SpotController::paper_with_confidence(1, 0.85);
        spot.observe(&stable(Activity::Walk));
        for _ in 0..5 {
            spot.observe(&stable(Activity::Walk));
        }
        let deep_state = spot.state_index();
        assert!(deep_state > 0);
        // A noisy, low-confidence "change" must not reset the FSM…
        spot.observe(&with_confidence(Activity::Sit, 0.5));
        assert_eq!(spot.state_index(), deep_state);
        // …but a confident change must.
        spot.observe(&with_confidence(Activity::Sit, 0.95));
        assert_eq!(spot.state_index(), 0);
    }

    #[test]
    fn plain_spot_resets_even_on_low_confidence_changes() {
        let mut spot = SpotController::paper(1);
        spot.observe(&stable(Activity::Walk));
        for _ in 0..5 {
            spot.observe(&stable(Activity::Walk));
        }
        spot.observe(&with_confidence(Activity::Sit, 0.4));
        assert_eq!(spot.state_index(), 0);
    }

    #[test]
    fn zero_threshold_descends_every_stable_epoch() {
        let mut spot = SpotController::paper(0);
        spot.observe(&stable(Activity::Stand));
        spot.observe(&stable(Activity::Stand));
        assert_eq!(spot.state_index(), 1);
        spot.observe(&stable(Activity::Stand));
        assert_eq!(spot.state_index(), 2);
    }

    #[test]
    fn reset_restores_the_initial_state() {
        let mut spot = SpotController::paper(1);
        spot.observe(&stable(Activity::Walk));
        for _ in 0..4 {
            spot.observe(&stable(Activity::Walk));
        }
        spot.reset();
        assert_eq!(spot.state_index(), 0);
        assert_eq!(spot.config(), SensorConfig::paper_pareto_front()[0]);
    }

    #[test]
    #[should_panic(expected = "at least one state")]
    fn empty_state_list_is_rejected() {
        let _ = SpotController::new(Vec::new(), 3);
    }

    #[test]
    fn names_identify_the_variant() {
        assert_eq!(SpotController::paper(1).name(), "SPOT");
        assert!(SpotController::paper_with_confidence(1, 0.85).name().contains("confidence"));
    }
}
