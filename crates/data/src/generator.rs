//! Turning an activity schedule into a continuous 3-axis acceleration trace.
//!
//! [`ActivityTrace`] realizes one [`ActivitySignal`]
//! per schedule segment (each with its own subject variation) and exposes the whole
//! timeline as a single [`SignalSource`].  Segment boundaries are cross-faded over a
//! short transition window so the trace has no unphysical discontinuities.

use adasense_sensor::SignalSource;
use rand::Rng;

use crate::activity::Activity;
use crate::schedule::ActivitySchedule;
use crate::signal::{ActivitySignal, ActivitySignalModel, SubjectParams};

/// Duration of the cross-fade between consecutive segments, in seconds.
const TRANSITION_S: f64 = 0.4;

/// A continuous acceleration trace realizing an [`ActivitySchedule`].
#[derive(Debug, Clone)]
pub struct ActivityTrace {
    schedule: ActivitySchedule,
    /// Realized signal and start time of each segment.
    segments: Vec<(f64, ActivitySignal)>,
}

impl ActivityTrace {
    /// Realizes `schedule` with per-segment subject variation drawn from `rng`.
    pub fn from_schedule<R: Rng + ?Sized>(schedule: ActivitySchedule, rng: &mut R) -> Self {
        let mut segments = Vec::with_capacity(schedule.len());
        let mut start = 0.0;
        for segment in schedule.segments() {
            let subject = SubjectParams::sample(rng);
            let signal = ActivitySignalModel::canonical(segment.activity).realize(&subject);
            segments.push((start, signal));
            start += segment.duration_s;
        }
        Self { schedule, segments }
    }

    /// A trace consisting of a single activity with the given subject parameters.
    pub fn single(activity: Activity, duration_s: f64, subject: &SubjectParams) -> Self {
        let schedule = ActivitySchedule::builder().then(activity, duration_s).build();
        let signal = ActivitySignalModel::canonical(activity).realize(subject);
        Self { schedule, segments: vec![(0.0, signal)] }
    }

    /// The schedule underlying this trace (ground truth for the simulator).
    pub fn schedule(&self) -> &ActivitySchedule {
        &self.schedule
    }

    /// Total duration of the trace, in seconds.
    pub fn total_duration_s(&self) -> f64 {
        self.schedule.total_duration_s()
    }

    /// The ground-truth activity at time `t`, if the trace is non-empty.
    pub fn activity_at(&self, t: f64) -> Option<Activity> {
        self.schedule.activity_at(t)
    }

    /// Index of the segment active at time `t` (clamped to the first/last segment).
    fn segment_index_at(&self, t: f64) -> usize {
        if self.segments.is_empty() {
            return 0;
        }
        match self.segments.binary_search_by(|(start, _)| {
            start.partial_cmp(&t).expect("segment start times are finite")
        }) {
            Ok(i) => i,
            Err(0) => 0,
            Err(i) => i - 1,
        }
    }

    /// The analog acceleration at time `t` seconds, cross-fading near boundaries.
    pub fn value(&self, t: f64) -> [f64; 3] {
        if self.segments.is_empty() {
            return [0.0, 0.0, 1.0];
        }
        let i = self.segment_index_at(t);
        let (start, signal) = &self.segments[i];
        let current = signal.value(t);
        // Cross-fade from the previous segment just after a boundary.
        if i > 0 {
            let into = t - start;
            if (0.0..TRANSITION_S).contains(&into) {
                let w = into / TRANSITION_S;
                let previous = self.segments[i - 1].1.value(t);
                return [
                    (1.0 - w) * previous[0] + w * current[0],
                    (1.0 - w) * previous[1] + w * current[1],
                    (1.0 - w) * previous[2] + w * current[2],
                ];
            }
        }
        current
    }
}

impl SignalSource for ActivityTrace {
    fn sample(&self, t: f64) -> [f64; 3] {
        self.value(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::ActivityChangeSetting;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn trace_matches_schedule_ground_truth() {
        let mut rng = StdRng::seed_from_u64(1);
        let schedule = ActivitySchedule::sit_then_walk(60.0, 60.0);
        let trace = ActivityTrace::from_schedule(schedule, &mut rng);
        assert_eq!(trace.activity_at(10.0), Some(Activity::Sit));
        assert_eq!(trace.activity_at(90.0), Some(Activity::Walk));
        assert_eq!(trace.total_duration_s(), 120.0);
    }

    #[test]
    fn walking_section_has_more_motion_than_sitting_section() {
        let mut rng = StdRng::seed_from_u64(2);
        let trace =
            ActivityTrace::from_schedule(ActivitySchedule::sit_then_walk(60.0, 60.0), &mut rng);
        let variance = |from: f64, to: f64| {
            let n = 500;
            let values: Vec<f64> =
                (0..n).map(|k| trace.value(from + (to - from) * k as f64 / n as f64)[2]).collect();
            let mean = values.iter().sum::<f64>() / n as f64;
            values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n as f64
        };
        assert!(variance(70.0, 110.0) > 20.0 * variance(10.0, 50.0));
    }

    #[test]
    fn trace_is_continuous_across_boundaries() {
        let mut rng = StdRng::seed_from_u64(3);
        let trace =
            ActivityTrace::from_schedule(ActivitySchedule::sit_then_walk(10.0, 10.0), &mut rng);
        // Sample densely around the 10 s boundary and verify there is no jump larger
        // than what the cross-fade plus signal slope allows.
        let dt = 1e-3;
        let mut max_jump = 0.0f64;
        let mut t = 9.5;
        while t < 10.5 {
            let a = trace.value(t);
            let b = trace.value(t + dt);
            for axis in 0..3 {
                max_jump = max_jump.max((b[axis] - a[axis]).abs());
            }
            t += dt;
        }
        assert!(max_jump < 0.05, "trace should not jump discontinuously, got {max_jump}");
    }

    #[test]
    fn empty_schedule_yields_flat_gravity() {
        let mut rng = StdRng::seed_from_u64(4);
        let trace = ActivityTrace::from_schedule(ActivitySchedule::default(), &mut rng);
        assert_eq!(trace.value(3.0), [0.0, 0.0, 1.0]);
        assert_eq!(trace.activity_at(3.0), None);
    }

    #[test]
    fn single_activity_trace_has_one_segment() {
        let trace = ActivityTrace::single(Activity::Upstairs, 30.0, &SubjectParams::neutral());
        assert_eq!(trace.schedule().len(), 1);
        assert_eq!(trace.activity_at(15.0), Some(Activity::Upstairs));
    }

    #[test]
    fn random_schedule_traces_are_reproducible_per_seed() {
        let make = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let schedule = ActivitySchedule::random(ActivityChangeSetting::Medium, 120.0, &mut rng);
            ActivityTrace::from_schedule(schedule, &mut rng)
        };
        let a = make(9);
        let b = make(9);
        let c = make(10);
        for k in 0..20 {
            let t = k as f64 * 5.3;
            assert_eq!(a.value(t), b.value(t));
        }
        // Different seeds should (overwhelmingly likely) differ somewhere.
        let differs = (0..20).any(|k| a.value(k as f64 * 5.3) != c.value(k as f64 * 5.3));
        assert!(differs);
    }
}
