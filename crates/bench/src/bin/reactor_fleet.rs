//! `reactor_fleet`: drives a whole fleet from live sockets through one
//! ingestion reactor and gates the result on byte-identity.
//!
//! The other half of the `telemetry_serve` soak test.  This binary:
//!
//! 1. Trains the HAR system and runs the deterministic reference
//!    `FleetReport` — scenario-driven by default, or (with `--churn`) a
//!    static per-lifetime feed run over the same churn schedule the server
//!    derives.
//! 2. Subscribes every device of the fleet to a `telemetry_serve` address
//!    (TCP `host:port` or `unix:<path>`) through a single `IngestReactor`
//!    (one thread, one `poll(2)` set for the entire cohort).  With
//!    `--churn`, devices are subscribed *while the reactor runs* through a
//!    `ReactorHandle` — in join-epoch order, staggered in time — and enter
//!    the scheduler through its intake channel, growing the lockstep cohort
//!    between ticks.
//! 3. Runs the same fleet again, scheduler-side, fed *only* by the reactor's
//!    per-device channels.
//! 4. Fails unless the live report is byte-identical to the reference
//!    (`FleetReport::encode`) and every feed completed cleanly.
//!
//! When the server was started with `--kill-at`, the affected connections are
//! torn mid-stream once and the reactor must reconnect with a RESUME frame —
//! the byte-identity gate then also proves the kill-and-resume path loses
//! and duplicates nothing, even while the cohort is churning.
//!
//! Flags: `--quick`, `--devices N` (default 64), `--duration S` (default 20),
//! `--routine NAME` (default office_day), `--seed N` (default 42), `--churn`
//! — all of which must match the serving process — plus `--connect ADDR` or
//! `--connect-file PATH` (poll for the address file `telemetry_serve
//! --addr-file` writes, up to 60 s) and `--expect-resumes` (fail unless at
//! least one reconnect actually happened, used by CI's chaos legs).

#[cfg(not(unix))]
fn main() {
    eprintln!("reactor_fleet needs poll(2) and is only built on Unix platforms");
    std::process::exit(2);
}

#[cfg(unix)]
fn main() -> Result<(), Box<dyn std::error::Error>> {
    use std::time::{Duration, Instant};

    use adasense::prelude::*;
    use adasense_bench::{
        churn_plan, int_arg, record_churn_traces, string_arg, train_system, RunScale,
    };

    let scale = RunScale::from_args();
    let devices = int_arg("--devices")?.unwrap_or(64);
    let duration_s = int_arg("--duration")?.unwrap_or(20) as f64;
    let routine = string_arg("--routine")?.unwrap_or_else(|| "office_day".to_string());
    let seed = int_arg("--seed")?.unwrap_or(42);
    let expect_resumes = std::env::args().any(|a| a == "--expect-resumes");
    let churn = std::env::args().any(|a| a == "--churn");
    let preset =
        RoutinePreset::from_name(&routine).ok_or_else(|| format!("unknown routine `{routine}`"))?;

    let addr = match string_arg("--connect")? {
        Some(addr) => addr,
        None => {
            let path = string_arg("--connect-file")?
                .ok_or("pass --connect ADDR or --connect-file PATH")?;
            let deadline = Instant::now() + Duration::from_secs(60);
            loop {
                match std::fs::read_to_string(&path) {
                    Ok(text) if !text.trim().is_empty() => break text.trim().to_string(),
                    _ if Instant::now() >= deadline => {
                        return Err(
                            format!("no server address appeared at {path} within 60 s").into()
                        )
                    }
                    _ => std::thread::sleep(Duration::from_millis(50)),
                }
            }
        }
    };

    let (spec, system) = train_system(scale)?;
    let mut fleet = FleetSpec::new(devices, duration_s, seed);
    fleet.population = PopulationSpec::single(preset, FaultLevel::None);
    let scheduler = FleetScheduler::new(&spec, &system);
    let feed_only = FleetSpec { devices: 0, ..fleet.clone() };

    let policy = ReconnectPolicy { attempts: 20, delay: Duration::from_millis(25) };

    let (reference, live, stats) = if churn {
        let plan = churn_plan(devices, duration_s);
        eprintln!("[reactor_fleet] churn reference: {devices} per-lifetime feeds…");
        let traces = record_churn_traces(&spec, &system, &fleet, &plan)?;
        let reference_feeds: Vec<_> = traces
            .iter()
            .zip(&plan)
            .map(|((_, trace), entry)| {
                let source = SocketSource::from_reader(std::io::Cursor::new(trace.encode()))?;
                let device = fleet.device_plan(entry.device_id);
                Ok(ExternalDevice::new(device.device_id, source)
                    .with_metadata(device.seed, device.routine.clone())
                    .with_backend(device.backend)
                    .with_start_epoch(entry.start_epoch)
                    .with_departed(entry.departed))
            })
            .collect::<Result<_, AdaSenseError>>()?;
        let reference = scheduler.builder().spec(&feed_only).feeds(reference_feeds).run()?;

        // Live run: devices join the running reactor in start-epoch order,
        // staggered so late joiners genuinely grow a mid-run cohort.
        let mut reactor = IngestReactor::new().with_policy(policy);
        let handle = reactor.handle();
        let runner = std::thread::spawn(move || reactor.run());
        let (feed_tx, feed_rx) = std::sync::mpsc::channel();
        let mut join_order = plan.clone();
        join_order.sort_by_key(|entry| (entry.start_epoch, entry.device_id));
        eprintln!(
            "[reactor_fleet] churning {devices} live feeds into {addr} \
             ({} late joiners, {} early departures)…",
            join_order.iter().filter(|e| e.start_epoch > 0).count(),
            join_order.iter().filter(|e| e.departed).count(),
        );
        let driver = {
            let addr = addr.clone();
            let fleet = fleet.clone();
            std::thread::spawn(move || {
                let mut last_epoch = 0;
                for entry in &join_order {
                    if entry.start_epoch > last_epoch {
                        // A new join wave: let the current cohort tick first.
                        std::thread::sleep(Duration::from_millis(10));
                        last_epoch = entry.start_epoch;
                    }
                    let source = handle.subscribe(&addr, entry.device_id);
                    let device = fleet.device_plan(entry.device_id);
                    let feed = ExternalDevice::new(device.device_id, source)
                        .with_metadata(device.seed, device.routine.clone())
                        .with_backend(device.backend)
                        .with_start_epoch(entry.start_epoch)
                        .with_departed(entry.departed);
                    if feed_tx.send(feed).is_err() {
                        return; // scheduler already failed; stop subscribing
                    }
                }
                // Dropping the handle and sender closes both intakes.
            })
        };
        let live = scheduler.builder().spec(&feed_only).intake(feed_rx).run()?;
        driver.join().expect("churn driver thread");
        let stats = runner.join().expect("reactor thread")?;
        (reference, live, stats)
    } else {
        eprintln!("[reactor_fleet] reference run: {devices} devices × {duration_s} s…");
        let reference = scheduler.builder().spec(&fleet).run()?;

        // One reactor, one socket per device, multiplexed on a single thread.
        let mut reactor = IngestReactor::new().with_policy(policy);
        let mut feeds = Vec::with_capacity(devices as usize);
        for device_id in 0..devices {
            let device = fleet.device_plan(device_id);
            let source = reactor.subscribe(&addr, device_id);
            feeds.push(
                ExternalDevice::new(device.device_id, source)
                    .with_metadata(device.seed, device.routine.clone())
                    .with_backend(device.backend),
            );
        }
        eprintln!("[reactor_fleet] connecting {} live feeds to {addr}…", reactor.feed_count());
        let runner = std::thread::spawn(move || reactor.run());
        let live = scheduler.builder().spec(&feed_only).feeds(feeds).run()?;
        let stats = runner.join().expect("reactor thread")?;
        (reference, live, stats)
    };

    println!(
        "reactor: {} feeds, {} completed, {} failed, {} joined, {} departed, {} batches, \
         {} reconnects, peak {} concurrent connections",
        stats.feeds,
        stats.completed,
        stats.failed,
        stats.joined,
        stats.departed,
        stats.batches,
        stats.reconnects,
        stats.peak_open
    );
    for (device_id, error) in &stats.errors {
        eprintln!("[reactor_fleet] device {device_id} failed: {error}");
    }
    if stats.failed > 0 {
        return Err(format!("{} feeds failed", stats.failed).into());
    }
    if expect_resumes && stats.reconnects == 0 {
        return Err("--expect-resumes: server never tore a connection, resume path untested".into());
    }

    println!("{}", live.report.to_table_string());
    if churn {
        println!(
            "churn: {} joined late, {} departed early, active peak {} devices",
            live.report.joined_devices(),
            live.report.departed_devices(),
            live.report.active_peak()
        );
    }
    if live.report.encode() != reference.report.encode() {
        eprintln!("reference report:\n{}", reference.report.to_table_string());
        return Err(if churn {
            "live churned report differs from the static per-lifetime reference".into()
        } else {
            "live reactor-fed report differs from the scenario-driven reference".into()
        });
    }
    println!(
        "determinism: reactor-fed fleet report is byte-identical to the {} reference \
         ({devices} devices, {} reconnects)",
        if churn { "per-lifetime churn" } else { "scenario" },
        stats.reconnects
    );
    Ok(())
}
