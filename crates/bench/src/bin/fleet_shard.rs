//! Sharded fleet coordinator: splits a fleet into device-id-range shards, runs
//! them independently (in-process and as separate OS worker processes), merges
//! the per-shard [`FleetReport`]s in ascending shard order and proves the
//! merged report is **byte-identical** to the monolithic run.
//!
//! Run with `cargo run --release -p adasense-bench --bin fleet_shard`
//! (add `--quick` for the CI smoke cohort; `--devices N`, `--duration S`,
//! `--shards K` and `--backend <f64|int8|cascade|mixed|mixed-cascade>`
//! reshape the fleet).  Worker
//! processes are spawned from the same binary via `--worker`; each runs one
//! shard and streams its encoded report back over a loopback TCP connection
//! using the `docs/WIRE_FORMAT.md` report frame.  Exits non-zero on any byte
//! mismatch, torn spool or failed worker.

use std::fs::File;
use std::io::{BufReader, BufWriter, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::process::Command;

use adasense::prelude::*;
use adasense_bench::{int_arg, string_arg, train_system, RunScale};

/// The fleet shape shared by the coordinator and its workers.  Workers rebuild
/// it from forwarded command-line flags; training and fleet construction are
/// deterministic in the spec seed, so every process derives the same system.
struct Shape {
    scale: RunScale,
    fleet: FleetSpec,
    shards: usize,
    /// The raw `--backend` flag, kept so the coordinator can forward it to
    /// worker processes verbatim (workers re-parse the same flags).
    backend_flag: Option<String>,
}

fn parse_shape() -> Result<Shape, Box<dyn std::error::Error>> {
    let scale = RunScale::from_args();
    let mut fleet = FleetSpec::smoke();
    if let Some(devices) = int_arg("--devices")? {
        fleet.devices = devices;
    }
    if let Some(duration) = int_arg("--duration")? {
        fleet.duration_s = duration as f64;
    }
    let backend_flag = string_arg("--backend")?;
    if let Some(backend) = &backend_flag {
        fleet.population.backend = match backend.as_str() {
            "mixed" => BackendSpec::half_int8(),
            "mixed-cascade" => BackendSpec::half_cascade(),
            name => BackendSpec::Uniform(BackendKind::from_name(name).ok_or_else(|| {
                format!("unknown backend `{name}` (f64, int8, cascade, mixed or mixed-cascade)")
            })?),
        };
    }
    let shards = int_arg("--shards")?.unwrap_or(4) as usize;
    if shards == 0 {
        return Err("--shards must be at least 1".into());
    }
    Ok(Shape { scale, fleet, shards, backend_flag })
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    if std::env::args().any(|a| a == "--worker") {
        return worker();
    }
    coordinator()
}

// --- coordinator -----------------------------------------------------------

fn coordinator() -> Result<(), Box<dyn std::error::Error>> {
    let shape = parse_shape()?;
    let (spec, system) = train_system(shape.scale)?;
    let fleet = &shape.fleet;
    let (devices, duration_s, shards) = (fleet.devices, fleet.duration_s, shape.shards);

    let scheduler = FleetScheduler::new(&spec, &system);
    let threads = scheduler.worker_threads();
    eprintln!(
        "[fleet_shard] {devices} devices × {duration_s} s, {shards} shards, {threads} workers"
    );

    // 1. Monolithic reference: one streaming pass over the whole fleet.
    let start = std::time::Instant::now();
    let monolithic = scheduler.run(fleet)?;
    let wall = start.elapsed().as_secs_f64();
    let reference = monolithic.encode();
    let ticks = monolithic.total_epochs();
    println!(
        "monolithic: {} devices, {ticks} device-ticks in {wall:.2} s ({:.0} device-ticks/s)",
        monolithic.len(),
        ticks as f64 / wall.max(1e-9)
    );

    // 2. In-process shards, each spooling its rows to disk.
    let merged = run_shards_in_process(&scheduler, fleet, shards)?;
    check("in-process", shards, &merged, &reference)?;

    // 3. The same shards as separate OS worker processes, reports transported
    //    over loopback TCP in the wire format's report frames.
    let merged =
        run_shards_as_processes(fleet, shards, shape.scale, shape.backend_flag.as_deref())?;
    check("multi-process", shards, &merged, &reference)?;

    println!(
        "sharded == monolithic: byte-identical at {shards} shards (in-process and multi-process)"
    );
    Ok(())
}

/// Fails loudly unless `merged` encodes to exactly the reference bytes.
fn check(
    mode: &str,
    shards: usize,
    merged: &FleetReport,
    reference: &[u8],
) -> Result<(), Box<dyn std::error::Error>> {
    let bytes = merged.encode();
    if bytes != reference {
        return Err(format!(
            "{mode} {shards}-shard merge differs from the monolithic report \
             ({} vs {} bytes)",
            bytes.len(),
            reference.len()
        )
        .into());
    }
    println!("{mode}: {shards}-shard merge is byte-identical ({} B report)", bytes.len());
    Ok(())
}

fn spool_path(shard: usize) -> PathBuf {
    std::env::temp_dir().join(format!("adasense-shard-{}-{shard}.spool", std::process::id()))
}

fn run_shards_in_process(
    scheduler: &FleetScheduler<'_>,
    fleet: &FleetSpec,
    shards: usize,
) -> Result<FleetReport, Box<dyn std::error::Error>> {
    let mut merged = FleetReport::new(fleet.controller.label());
    let mut spooled = 0u64;
    for (index, range) in fleet.shards(shards).into_iter().enumerate() {
        let path = spool_path(index);
        let mut sink = SpoolWriter::new(BufWriter::new(File::create(&path)?))?;
        let report = scheduler.run_shard(fleet, range, &mut sink)?;
        sink.finish()?.flush()?;

        // The spool must hold exactly the shard's rows, and folding them back
        // must reproduce the shard's own report — the on-disk path loses
        // nothing the in-memory path kept.
        let mut replayed = FleetReport::new(fleet.controller.label());
        for row in SpoolReader::new(BufReader::new(File::open(&path)?))? {
            replayed.observe(&row?);
        }
        std::fs::remove_file(&path).ok();
        if replayed != report {
            return Err(format!("shard {index} {range}: spool replay diverges from report").into());
        }
        spooled += replayed.len();
        merged.merge(&report)?;
    }
    if spooled != fleet.devices {
        return Err(format!("spools hold {spooled} rows, expected {}", fleet.devices).into());
    }
    Ok(merged)
}

fn run_shards_as_processes(
    fleet: &FleetSpec,
    shards: usize,
    scale: RunScale,
    backend_flag: Option<&str>,
) -> Result<FleetReport, Box<dyn std::error::Error>> {
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let port = listener.local_addr()?.port();
    let exe = std::env::current_exe()?;

    let mut children = Vec::new();
    for (index, range) in fleet.shards(shards).into_iter().enumerate() {
        let mut cmd = Command::new(&exe);
        cmd.arg("--worker")
            .arg("--shard-index")
            .arg(index.to_string())
            .arg("--shard-start")
            .arg(range.start.to_string())
            .arg("--shard-end")
            .arg(range.end.to_string())
            .arg("--connect")
            .arg(format!("127.0.0.1:{port}"))
            .arg("--devices")
            .arg(fleet.devices.to_string())
            .arg("--duration")
            .arg((fleet.duration_s as u64).to_string())
            .arg("--shards")
            .arg(shards.to_string());
        if let Some(backend) = backend_flag {
            cmd.arg("--backend").arg(backend);
        }
        if scale == RunScale::Quick {
            cmd.arg("--quick");
        }
        children.push((index, cmd.spawn()?));
    }

    // Accept one report per worker, in whatever order they finish.
    let mut reports: Vec<Option<FleetReport>> = (0..shards).map(|_| None).collect();
    for _ in 0..shards {
        let (stream, _) = listener.accept()?;
        let (shard, report) = receive_report(stream)?;
        if shard as usize >= shards || reports[shard as usize].is_some() {
            return Err(format!("unexpected or duplicate report for shard {shard}").into());
        }
        reports[shard as usize] = Some(report);
    }
    for (index, mut child) in children {
        let status = child.wait()?;
        if !status.success() {
            return Err(format!("worker for shard {index} exited with {status}").into());
        }
    }

    // Canonical merge order: ascending shard index.
    let mut merged = FleetReport::new(fleet.controller.label());
    for (index, report) in reports.into_iter().enumerate() {
        let report = report.ok_or(format!("no report for shard {index}"))?;
        merged.merge(&report)?;
    }
    Ok(merged)
}

/// Reads one framed stream (header, report frame, end marker) off a worker
/// connection.
fn receive_report(stream: TcpStream) -> Result<(u32, FleetReport), Box<dyn std::error::Error>> {
    let mut reader = BufReader::new(stream);
    let mut decoder = FrameDecoder::new();
    decoder.read_header(&mut reader)?;
    let mut scratch = TelemetryBatch::placeholder();
    let shard = match decoder.read_frame(&mut reader, &mut scratch)? {
        FrameKind::Report { shard } => shard,
        other => return Err(format!("expected a report frame, got {other:?}").into()),
    };
    let report = FleetReport::decode(decoder.report_payload())?;
    match decoder.read_frame(&mut reader, &mut scratch)? {
        FrameKind::End { batches: 0 } => {}
        other => return Err(format!("expected the end-of-stream marker, got {other:?}").into()),
    }
    Ok((shard, report))
}

// --- worker ----------------------------------------------------------------

fn worker() -> Result<(), Box<dyn std::error::Error>> {
    let shape = parse_shape()?;
    let index = int_arg("--shard-index")?.ok_or("--worker requires --shard-index")?;
    let start = int_arg("--shard-start")?.ok_or("--worker requires --shard-start")?;
    let end = int_arg("--shard-end")?.ok_or("--worker requires --shard-end")?;
    let connect = string_arg("--connect")?.ok_or("--worker requires --connect")?;
    let range = ShardRange { start, end };

    let (spec, system) = train_system(shape.scale)?;
    let scheduler = FleetScheduler::new(&spec, &system);
    eprintln!("[fleet_shard worker {index}] running {range}…");
    let report = scheduler.run_shard(&shape.fleet, range, &mut DiscardSink)?;

    let stream = TcpStream::connect(&connect)?;
    let mut writer = BufWriter::new(stream);
    let mut encoder = FrameEncoder::new();
    writer.write_all(encoder.header())?;
    writer.write_all(encoder.report(index as u32, &report.encode()))?;
    writer.write_all(encoder.end(0))?;
    writer.flush()?;
    Ok(())
}
