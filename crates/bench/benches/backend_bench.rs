//! Benchmarks of the pluggable inference backends: single-row and batched
//! prediction through the full-precision f64 [`Mlp`] and the post-training
//! int8 [`QuantizedMlp`], at the batch sizes the fleet scheduler actually
//! produces (one lockstep chunk's worth of rows per forward pass).

use adasense_ml::prelude::*;
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

/// Feature rows shaped like the paper's 15-dimensional vectors.
fn synthetic_rows(n: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            (0..15)
                .map(|d| (i % 6) as f64 * 0.3 + 0.1 * d as f64 + rng.random_range(-0.2..0.2))
                .collect()
        })
        .collect()
}

fn bench_single_row(c: &mut Criterion) {
    let mlp = Mlp::new(MlpConfig::paper(), &mut StdRng::seed_from_u64(1));
    let quantized = QuantizedMlp::from_mlp(&mlp);
    let features: Vec<f64> = (0..15).map(|d| 0.1 * d as f64).collect();

    let mut group = c.benchmark_group("backend_single_row");
    group.bench_function("f64", |b| {
        b.iter(|| black_box(Classifier::predict(&mlp, black_box(&features))))
    });
    group.bench_function("int8", |b| {
        b.iter(|| black_box(Classifier::predict(&quantized, black_box(&features))))
    });
    group.finish();
}

fn bench_batched(c: &mut Criterion) {
    let mlp = Mlp::new(MlpConfig::paper(), &mut StdRng::seed_from_u64(1));
    let quantized = QuantizedMlp::from_mlp(&mlp);

    let mut group = c.benchmark_group("backend_batch");
    for batch in [16usize, 256] {
        let rows = synthetic_rows(batch, 7);
        let mut out = Vec::new();
        group.bench_function(format!("f64_{batch}"), |b| {
            b.iter(|| {
                mlp.predict_batch_into(black_box(&rows), &mut out);
                black_box(&out);
            })
        });
        group.bench_function(format!("int8_{batch}"), |b| {
            b.iter(|| {
                quantized.predict_batch_into(black_box(&rows), &mut out);
                black_box(&out);
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_single_row, bench_batched);
criterion_main!(benches);
