//! All-day activity monitoring for an elderly user — the paper's second motivating
//! scenario (health decline detection needs continuous sensing, so battery life is
//! the limiting factor).
//!
//! Elderly daily activity is dominated by long stable periods (the paper's "Low"
//! user activity setting), which is exactly where AdaSense shines.  The example
//! compares every controller on a randomized low-change-rate day and converts the
//! average sensor current into an estimated battery lifetime.
//!
//! Run with `cargo run --release --example elderly_monitoring`.

use adasense_repro::adasense::prelude::*;

/// A small coin-cell style budget: capacity (mAh) available to the accelerometer.
const SENSOR_BATTERY_BUDGET_MAH: f64 = 40.0;

fn battery_days(average_current_ua: f64) -> f64 {
    if average_current_ua <= 0.0 {
        return f64::INFINITY;
    }
    let hours = SENSOR_BATTERY_BUDGET_MAH * 1000.0 / average_current_ua;
    hours / 24.0
}

fn main() -> Result<(), AdaSenseError> {
    let spec = ExperimentSpec::quick();
    let system = TrainedSystem::train(&spec)?;

    // Twenty minutes of simulated "slow day" is enough to estimate the steady-state
    // current of each controller (activities change only every 1–2 minutes).
    let scenario = ScenarioSpec::random(ActivityChangeSetting::Low, 1200.0, 7);

    let controllers = [
        ControllerKind::StaticHigh,
        ControllerKind::IntensityBased,
        ControllerKind::Spot { stability_threshold: 15 },
        ControllerKind::SpotWithConfidence { stability_threshold: 15, confidence_threshold: 0.85 },
    ];

    let mut baseline_current = None;
    println!("controller                              uA    accuracy   est. battery life");
    for kind in controllers {
        let report = Simulator::new(&spec, &system).with_controller(kind).run(scenario.clone())?;
        let current = report.average_current_ua();
        if baseline_current.is_none() {
            baseline_current = Some(current);
        }
        println!(
            "{:<36} {:>6.1} {:>9.1}% {:>12.1} days",
            kind.label(),
            current,
            100.0 * report.accuracy(),
            battery_days(current)
        );
    }

    if let Some(baseline) = baseline_current {
        println!(
            "\nWith the sensor budgeted at {SENSOR_BATTERY_BUDGET_MAH} mAh, the static baseline lasts {:.1} days;\n\
             every extra day past that is battery the adaptive controllers bought for free.",
            battery_days(baseline)
        );
    }
    Ok(())
}
