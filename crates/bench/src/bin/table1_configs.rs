//! Regenerates Table I: the 16 sampling-frequency / averaging-window combinations,
//! annotated with the modelled operation mode, duty cycle, current and noise.
//!
//! Run with `cargo run --release -p adasense-bench --bin table1_configs`.

use adasense::experiments::config_table;
use adasense_sensor::{EnergyModel, NoiseModel};

fn main() {
    let report = config_table(&EnergyModel::bmi160(), &NoiseModel::bmi160());
    println!("Table I — accelerometer sampling frequency and averaging window combinations\n");
    println!("{}", report.to_table_string());
    println!(
        "paper Pareto front: {}",
        adasense_sensor::SensorConfig::paper_pareto_front()
            .iter()
            .map(|c| c.label())
            .collect::<Vec<_>>()
            .join(", ")
    );
}
