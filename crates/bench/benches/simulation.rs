//! Benchmarks of the closed-loop simulator behind Figs. 5–7: simulated seconds per
//! wall-clock second for each controller, using a small trained system.

use adasense::prelude::*;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::OnceLock;

fn shared_system() -> &'static (ExperimentSpec, TrainedSystem) {
    static SYSTEM: OnceLock<(ExperimentSpec, TrainedSystem)> = OnceLock::new();
    SYSTEM.get_or_init(|| {
        let spec = ExperimentSpec {
            dataset: DatasetSpec { windows_per_class_per_config: 12, ..DatasetSpec::quick() },
            ..ExperimentSpec::quick()
        };
        let system = TrainedSystem::train(&spec).expect("training succeeds");
        (spec, system)
    })
}

fn bench_simulation(c: &mut Criterion) {
    let (spec, system) = shared_system();
    let mut group = c.benchmark_group("closed_loop_60s_scenario");
    group.sample_size(10);
    let controllers = [
        ("static_baseline", ControllerKind::StaticHigh),
        ("spot_t5", ControllerKind::Spot { stability_threshold: 5 }),
        (
            "spot_confidence_t5",
            ControllerKind::SpotWithConfidence {
                stability_threshold: 5,
                confidence_threshold: 0.85,
            },
        ),
        ("intensity_based", ControllerKind::IntensityBased),
    ];
    for (name, kind) in controllers {
        group.bench_function(name, |b| {
            b.iter(|| {
                let report = Simulator::new(spec, system)
                    .with_controller(kind)
                    .run(ScenarioSpec::sit_then_walk(30.0, 30.0))
                    .expect("simulation runs");
                black_box(report.average_current_ua())
            })
        });
    }
    group.finish();
}

fn bench_behavioural_trace(c: &mut Criterion) {
    let (spec, system) = shared_system();
    let mut group = c.benchmark_group("fig5_behavioural_trace_120s");
    group.sample_size(10);
    group.bench_function("spot_t9", |b| {
        b.iter(|| {
            black_box(
                adasense::experiments::behavioural_trace(spec, system, 9, 60.0, 60.0)
                    .expect("trace runs"),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_simulation, bench_behavioural_trace);
criterion_main!(benches);
