//! Benchmarks of the fleet scheduler: devices simulated per wall-clock second,
//! single- vs multi-threaded, and the lockstep-batched classification path.

use adasense::prelude::*;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::OnceLock;

fn shared_system() -> &'static (ExperimentSpec, TrainedSystem) {
    static SYSTEM: OnceLock<(ExperimentSpec, TrainedSystem)> = OnceLock::new();
    SYSTEM.get_or_init(|| {
        let spec = ExperimentSpec {
            dataset: DatasetSpec { windows_per_class_per_config: 12, ..DatasetSpec::quick() },
            ..ExperimentSpec::quick()
        };
        let system = TrainedSystem::train(&spec).expect("training succeeds");
        (spec, system)
    })
}

fn bench_fleet_scheduler(c: &mut Criterion) {
    let (spec, system) = shared_system();
    let mut group = c.benchmark_group("fleet_16_devices_30s");
    group.sample_size(10);
    let fleet = FleetSpec::new(16, 30.0, 64);
    group.bench_function("one_worker", |b| {
        b.iter(|| {
            let report =
                FleetScheduler::new(spec, system).with_threads(1).run(&fleet).expect("fleet runs");
            black_box(report.mean_current_ua())
        })
    });
    group.bench_function("all_workers", |b| {
        b.iter(|| {
            let report = FleetScheduler::new(spec, system).run(&fleet).expect("fleet runs");
            black_box(report.mean_current_ua())
        })
    });
    group.finish();
}

fn bench_lockstep_chunking(c: &mut Criterion) {
    let (spec, system) = shared_system();
    let mut group = c.benchmark_group("fleet_lockstep_batching");
    group.sample_size(10);
    for (name, lockstep_devices) in [("per_device", 1), ("lockstep_16", 16)] {
        let fleet = FleetSpec { lockstep_devices, ..FleetSpec::new(16, 20.0, 64) };
        group.bench_function(name, |b| {
            b.iter(|| {
                let report = FleetScheduler::new(spec, system)
                    .with_threads(1)
                    .run(&fleet)
                    .expect("fleet runs");
                black_box(report.mean_accuracy())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fleet_scheduler, bench_lockstep_chunking);
criterion_main!(benches);
