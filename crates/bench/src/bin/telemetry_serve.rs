//! `telemetry_serve`: exposes a simulated fleet as live telemetry sockets.
//!
//! Trains the HAR system, records one wire-format trace per fleet device,
//! then serves the whole cohort from ONE listening TCP socket on one
//! poll-driven thread (`adasense::ingest::serve::TelemetryServe`).  Each
//! connection asks for a device with a RESUME frame and receives that
//! device's stream; `--kill-at BYTES` additionally tears every device's
//! first stream at a byte offset to force clients through the RESUME
//! reconnect path.
//!
//! Pair it with `reactor_fleet` in another process for a production-like
//! soak test (the CI `serve-smoke` job runs exactly that at ≥512 concurrent
//! connections):
//!
//! ```text
//! telemetry_serve --quick --devices 512 --addr-file /tmp/serve.addr &
//! reactor_fleet   --quick --devices 512 --connect-file /tmp/serve.addr
//! ```
//!
//! Flags: `--quick` (reduced training set), `--devices N` (default 64),
//! `--duration S` (default 20), `--routine NAME` (default office_day),
//! `--seed N` (default 42), `--port P` (default 0 = ephemeral),
//! `--addr-file PATH` (write the bound address atomically for scripting),
//! `--kill-at BYTES` (chaos: tear first streams), `--streams N` (serve
//! exactly N completed streams then exit; default `devices`).
//! The fleet-shaping flags must match the consuming `reactor_fleet` run, or
//! its byte-identity gate will (correctly) fail.

#[cfg(not(unix))]
fn main() {
    eprintln!("telemetry_serve needs poll(2) and is only built on Unix platforms");
    std::process::exit(2);
}

#[cfg(unix)]
fn main() -> Result<(), Box<dyn std::error::Error>> {
    use adasense::prelude::*;
    use adasense_bench::{int_arg, record_fleet_traces, string_arg, train_system, RunScale};

    let scale = RunScale::from_args();
    let devices = int_arg("--devices")?.unwrap_or(64);
    let duration_s = int_arg("--duration")?.unwrap_or(20) as f64;
    let routine = string_arg("--routine")?.unwrap_or_else(|| "office_day".to_string());
    let seed = int_arg("--seed")?.unwrap_or(42);
    let port = int_arg("--port")?.unwrap_or(0);
    let addr_file = string_arg("--addr-file")?;
    let kill_at = int_arg("--kill-at")?;
    let preset =
        RoutinePreset::from_name(&routine).ok_or_else(|| format!("unknown routine `{routine}`"))?;
    // Each device's trace completes exactly once even under `--kill-at`: the
    // torn first stream counts as killed, only the resumed one as completed.
    let expected = int_arg("--streams")?.unwrap_or(devices);

    let (spec, system) = train_system(scale)?;
    let mut fleet = FleetSpec::new(devices, duration_s, seed);
    fleet.population = PopulationSpec::single(preset, FaultLevel::None);

    eprintln!("[telemetry_serve] recording {devices} device traces…");
    let traces = record_fleet_traces(&spec, &system, &fleet)?;
    let batches: usize = traces.iter().map(|(_, t)| t.len()).sum();

    let mut serve = TelemetryServe::bind(&format!("127.0.0.1:{port}"), traces)?;
    if let Some(bytes) = kill_at {
        serve = serve.with_kill_at(bytes as usize);
    }
    let addr = serve.local_addr();
    println!("listening on {addr} ({devices} devices, {batches} batches)");
    use std::io::Write as _;
    std::io::stdout().flush()?;
    if let Some(path) = addr_file {
        // Write-then-rename so a polling client never reads a torn address.
        let tmp = format!("{path}.tmp");
        std::fs::write(&tmp, format!("{addr}\n"))?;
        std::fs::rename(&tmp, &path)?;
    }

    serve.serve_streams(expected, 200)?;
    let stats = serve.stats();
    println!(
        "served {} streams ({} resumed, {} killed, {} rejected), peak {} concurrent connections",
        stats.streams_completed,
        stats.resume_requests,
        stats.killed_streams,
        stats.rejected_requests,
        stats.peak_open
    );
    Ok(())
}
