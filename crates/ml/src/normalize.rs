//! Per-feature z-score normalization.
//!
//! The raw features mix quantities of very different scales (means around 1 g,
//! Fourier magnitudes of a few hundredths of a g), so the classifier is trained on
//! standardized inputs.  The fitted statistics are stored with the model and applied
//! automatically at inference time.

use serde::{Deserialize, Serialize};

use crate::matrix::Matrix;

/// Per-feature standardization: `x' = (x - mean) / std`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Normalizer {
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl Normalizer {
    /// Fits a normalizer to a set of feature vectors.
    ///
    /// Features with (near-)zero variance get a standard deviation of 1 so they pass
    /// through unscaled rather than blowing up.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty or rows have inconsistent lengths.
    pub fn fit(data: &[Vec<f64>]) -> Self {
        assert!(!data.is_empty(), "cannot fit a normalizer to an empty dataset");
        let dim = data[0].len();
        let n = data.len() as f64;
        let mut means = vec![0.0; dim];
        for row in data {
            assert_eq!(row.len(), dim, "all feature vectors must have the same length");
            for (m, v) in means.iter_mut().zip(row) {
                *m += v;
            }
        }
        for m in &mut means {
            *m /= n;
        }
        let mut stds = vec![0.0; dim];
        for row in data {
            for ((s, v), m) in stds.iter_mut().zip(row).zip(&means) {
                *s += (v - m).powi(2);
            }
        }
        for s in &mut stds {
            *s = (*s / n).sqrt();
            if *s < 1e-9 {
                *s = 1.0;
            }
        }
        Self { means, stds }
    }

    /// Number of features this normalizer was fitted on.
    pub fn dim(&self) -> usize {
        self.means.len()
    }

    /// The fitted per-feature means.
    pub fn means(&self) -> &[f64] {
        &self.means
    }

    /// The fitted per-feature standard deviations (zero-variance features are
    /// reported as `1.0`).
    pub fn stds(&self) -> &[f64] {
        &self.stds
    }

    /// Standardizes one feature vector.
    ///
    /// # Panics
    ///
    /// Panics if the vector length differs from the fitted dimension.
    pub fn transform(&self, features: &[f64]) -> Vec<f64> {
        assert_eq!(features.len(), self.dim(), "feature dimension mismatch");
        features
            .iter()
            .zip(self.means.iter().zip(&self.stds))
            .map(|(v, (m, s))| (v - m) / s)
            .collect()
    }

    /// Standardizes a batch of feature vectors stored as matrix rows.
    pub fn transform_matrix(&self, input: &Matrix) -> Matrix {
        let rows: Vec<Vec<f64>> = (0..input.rows()).map(|r| self.transform(input.row(r))).collect();
        Matrix::from_rows(&rows)
    }

    /// Standardizes a whole dataset.
    pub fn transform_all(&self, data: &[Vec<f64>]) -> Vec<Vec<f64>> {
        data.iter().map(|row| self.transform(row)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fitted_statistics_standardize_the_training_data() {
        let data = vec![vec![1.0, 10.0], vec![3.0, 30.0], vec![5.0, 50.0]];
        let normalizer = Normalizer::fit(&data);
        let transformed = normalizer.transform_all(&data);
        for c in 0..2 {
            let mean: f64 = transformed.iter().map(|r| r[c]).sum::<f64>() / 3.0;
            let var: f64 = transformed.iter().map(|r| (r[c] - mean).powi(2)).sum::<f64>() / 3.0;
            assert!(mean.abs() < 1e-12);
            assert!((var - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn constant_features_pass_through_centred() {
        let data = vec![vec![7.0], vec![7.0], vec![7.0]];
        let normalizer = Normalizer::fit(&data);
        assert_eq!(normalizer.transform(&[7.0]), vec![0.0]);
        assert_eq!(normalizer.transform(&[9.0]), vec![2.0]);
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn fitting_an_empty_dataset_panics() {
        let _ = Normalizer::fit(&[]);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn transforming_the_wrong_dimension_panics() {
        let normalizer = Normalizer::fit(&[vec![1.0, 2.0]]);
        let _ = normalizer.transform(&[1.0]);
    }

    #[test]
    fn matrix_transform_matches_vector_transform() {
        let data = vec![vec![1.0, -5.0, 0.3], vec![2.0, 5.0, 0.9], vec![0.5, 0.0, 0.6]];
        let normalizer = Normalizer::fit(&data);
        let matrix = Matrix::from_rows(&data);
        let transformed = normalizer.transform_matrix(&matrix);
        for (r, row) in data.iter().enumerate() {
            assert_eq!(transformed.row(r), normalizer.transform(row).as_slice());
        }
    }
}
