//! Quickstart: train the AdaSense HAR system on synthetic data and watch the SPOT
//! controller cut the sensor's power draw on a simple sit-then-walk scenario.
//!
//! Run with `cargo run --release --example quickstart`.

use adasense_repro::adasense::prelude::*;

fn main() -> Result<(), AdaSenseError> {
    // 1. Describe the experiment.  `quick()` keeps the synthetic dataset small so
    //    this example finishes in seconds; `ExperimentSpec::paper()` reproduces the
    //    paper-scale ~7300-window dataset.
    let spec = ExperimentSpec::quick();

    // 2. Train the unified classifier (one network for all sensor configurations).
    let system = TrainedSystem::train(&spec)?;
    println!(
        "unified classifier: {:.1}% held-out accuracy across {} configurations",
        100.0 * system.unified_test_accuracy(),
        spec.dataset.configs.len()
    );
    for (config, accuracy) in system.per_config_accuracy() {
        println!("  {:<12} {:>5.1}%", config.label(), 100.0 * accuracy);
    }

    // 3. Simulate two minutes of activity: 60 s sitting, then 60 s walking.
    let scenario = ScenarioSpec::sit_then_walk(60.0, 60.0);

    let baseline = Simulator::new(&spec, &system)
        .with_controller(ControllerKind::StaticHigh)
        .run(scenario.clone())?;
    let spot = Simulator::new(&spec, &system)
        .with_controller(ControllerKind::Spot { stability_threshold: 9 })
        .run(scenario.clone())?;
    let spot_confidence = Simulator::new(&spec, &system)
        .with_controller(ControllerKind::SpotWithConfidence {
            stability_threshold: 9,
            confidence_threshold: 0.85,
        })
        .run(scenario)?;

    // 4. Compare.
    println!("\ncontroller                     current(uA)  accuracy  power saving");
    for report in [&baseline, &spot, &spot_confidence] {
        println!(
            "{:<30} {:>11.1} {:>8.1}% {:>12.1}%",
            report.controller,
            report.average_current_ua(),
            100.0 * report.accuracy(),
            100.0 * report.power_reduction_vs(baseline.average_current_ua())
        );
    }

    // 5. Peek at the Fig. 5-style behaviour: when does SPOT reach the lowest state?
    let lowest = SensorConfig::paper_pareto_front()[3];
    if let Some(first) = spot.records().iter().find(|r| r.config == lowest) {
        println!(
            "\nSPOT settled into {} after {:.0} s of stable sitting",
            lowest.label(),
            first.t_s
        );
    }
    Ok(())
}
