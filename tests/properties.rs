//! Cross-crate property-based tests: invariants that must hold for any activity,
//! sensor configuration and seed.

use adasense_repro::adasense::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn any_activity() -> impl Strategy<Value = Activity> {
    prop::sample::select(Activity::ALL.to_vec())
}

fn any_config() -> impl Strategy<Value = SensorConfig> {
    prop::sample::select(SensorConfig::table_i())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The unified feature vector is always 15-dimensional and finite, whatever the
    /// activity, configuration or seed — the invariant that makes a single
    /// classifier possible.
    #[test]
    fn features_are_uniform_across_the_whole_design_space(
        activity in any_activity(),
        config in any_config(),
        seed in 0u64..10_000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let subject = SubjectParams::sample(&mut rng);
        let signal = ActivitySignalModel::canonical(activity).realize(&subject);
        let accel = Accelerometer::new(config);
        let window = accel.capture(&signal, 0.0, 2.0, &mut rng);
        let features = FeatureExtractor::paper().extract(&window, config.frequency.hz());
        prop_assert_eq!(features.len(), FEATURE_DIM);
        prop_assert!(features.as_slice().iter().all(|v| v.is_finite()));
        prop_assert!(features.stds().iter().all(|v| *v >= 0.0));
    }

    /// SPOT never skips states on the way down, never steps below the last state,
    /// and always returns to state 0 on a (trusted) activity change.
    #[test]
    fn spot_fsm_invariants(
        threshold in 0u32..20,
        seed in 0u64..10_000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut spot = SpotController::paper(threshold);
        let mut previous_index = spot.state_index();
        for _ in 0..200 {
            let activity = Activity::ALL[(rng.random::<u32>() % 6) as usize];
            // Bias towards repetition so the FSM actually descends sometimes.
            let activity = if rng.random::<f64>() < 0.8 {
                spot.last_activity().unwrap_or(activity)
            } else {
                activity
            };
            let changed = spot.last_activity().map(|l| l != activity).unwrap_or(false);
            spot.observe(&ControllerInput {
                predicted: activity,
                confidence: 0.99,
                intensity_g_per_s: 0.0,
                escalated: false,
            });
            let index = spot.state_index();
            prop_assert!(index < spot.states().len());
            if changed {
                prop_assert_eq!(index, 0, "a trusted change must reset to the first state");
            } else {
                prop_assert!(
                    index == previous_index || index == previous_index + 1,
                    "stable activity may only hold or descend one state"
                );
            }
            previous_index = index;
        }
    }

    /// The energy model's Pareto-state currents are strictly decreasing regardless
    /// of (positive) calibration constants.
    #[test]
    fn pareto_state_currents_decrease_for_any_calibration(
        active in 120.0f64..260.0,
        suspend in 0.5f64..8.0,
        wakeup in 0.0f64..0.2,
        digital in 0.0f64..0.2,
    ) {
        let model = EnergyModel {
            active_current_ua: active,
            suspend_current_ua: suspend,
            internal_rate_hz: 1600.0,
            wakeup_charge_uc: wakeup,
            digital_overhead_ua_per_hz: digital,
        };
        let currents: Vec<f64> = SensorConfig::paper_pareto_front()
            .iter()
            .map(|c| model.current_ua(*c))
            .collect();
        for pair in currents.windows(2) {
            prop_assert!(pair[0] > pair[1], "{currents:?}");
        }
    }

    /// Simulation charge accounting is exactly residency-weighted current, for any
    /// controller and seed (short scenarios keep this property test fast).
    #[test]
    fn simulation_energy_accounting_is_exact(seed in 0u64..50) {
        let (spec, system) = shared_system();
        let kind = match seed % 3 {
            0 => ControllerKind::StaticHigh,
            1 => ControllerKind::Spot { stability_threshold: (seed % 7) as u32 },
            _ => ControllerKind::SpotWithConfidence {
                stability_threshold: (seed % 7) as u32,
                confidence_threshold: 0.85,
            },
        };
        let report = Simulator::new(spec, system)
            .with_controller(kind)
            .run(ScenarioSpec::sit_then_walk(8.0, 8.0))
            .unwrap();
        let energy = spec.dataset.energy_model;
        let expected: f64 = report
            .seconds_in_config
            .iter()
            .map(|(label, seconds)| {
                let config: SensorConfig = label.parse().unwrap();
                energy.current_ua(config) * seconds
            })
            .sum();
        prop_assert!((report.total_charge.micro_coulombs() - expected).abs() < 1e-6 * expected.max(1.0));
    }
}

use std::sync::OnceLock;

fn shared_system() -> &'static (ExperimentSpec, TrainedSystem) {
    static SYSTEM: OnceLock<(ExperimentSpec, TrainedSystem)> = OnceLock::new();
    SYSTEM.get_or_init(|| {
        let spec = ExperimentSpec {
            dataset: DatasetSpec { windows_per_class_per_config: 6, ..DatasetSpec::quick() },
            trainer: TrainerConfig { epochs: 15, ..TrainerConfig::default() },
            ..ExperimentSpec::quick()
        };
        let system = TrainedSystem::train(&spec).expect("training succeeds");
        (spec, system)
    })
}
