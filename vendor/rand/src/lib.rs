//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this repository has no access to crates.io, so the
//! workspace vendors a minimal, dependency-free implementation of the exact API
//! surface the AdaSense reproduction uses:
//!
//! * [`rngs::StdRng`] — a deterministic xoshiro256++ generator seeded with
//!   SplitMix64, matching the statistical quality the synthetic-data generators
//!   need.
//! * [`SeedableRng::seed_from_u64`] — the only constructor the workspace calls.
//! * [`Rng::random`] / [`Rng::random_range`] — uniform sampling for `f64` and the
//!   integer types, over `Range` and `RangeInclusive`.
//!
//! The generator is *not* cryptographically secure and the crate intentionally
//! implements nothing beyond what the workspace exercises.

use core::ops::{Range, RangeInclusive};

/// Low-level source of randomness: a stream of `u64` words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from their "standard" distribution:
/// `[0, 1)` for floats, the full value range for integers, fair coin for `bool`.
pub trait StandardUniform: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardUniform for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high-quality mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardUniform for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardUniform for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardUniform for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that can produce a uniform sample of `T`.
pub trait SampleRange<T> {
    /// Draws one value from the range. Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let v = self.start + (self.end - self.start) * f64::sample_standard(rng);
        // For ill-conditioned ranges the rounding of `start + span * u` can land
        // exactly on (or above) `end`; clamp to keep the half-open contract.
        if v < self.end {
            v
        } else {
            self.end.next_down().max(self.start)
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + (hi - lo) * f64::sample_standard(rng)
    }
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + offset) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128 % span) as i128;
                (lo as i128 + offset) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// High-level sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution of `T`.
    fn random<T: StandardUniform>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed, expanding it deterministically.
    fn seed_from_u64(state: u64) -> Self;
}

pub mod rngs {
    //! Concrete generator implementations.

    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator, seeded via SplitMix64.
    ///
    /// Unlike the real `rand::rngs::StdRng` this is not a CSPRNG, but it passes
    /// the statistical bar for synthetic-signal generation and is fully
    /// reproducible across platforms.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut sm);
            }
            // An all-zero state would be a fixed point; SplitMix64 cannot
            // produce four zero outputs in a row, but guard anyway.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// Alias kept for API parity with the real crate.
    pub type SmallRng = StdRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.random::<u64>() == b.random::<u64>()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn float_range_bounds_hold() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.random_range(-0.25..0.25);
            assert!((-0.25..0.25).contains(&v));
        }
    }

    #[test]
    fn unit_floats_cover_the_interval() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut lo = 1.0f64;
        let mut hi = 0.0f64;
        for _ in 0..10_000 {
            let v: f64 = rng.random();
            assert!((0.0..1.0).contains(&v));
            lo = lo.min(v);
            hi = hi.max(v);
        }
        assert!(lo < 0.01 && hi > 0.99);
    }

    #[test]
    fn integer_ranges_hit_every_value() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 6];
        for _ in 0..1_000 {
            seen[rng.random_range(0usize..6)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1_000 {
            let v = rng.random_range(0usize..=3);
            assert!(v <= 3);
        }
        for _ in 0..1_000 {
            let v = rng.random_range(-5i32..5);
            assert!((-5..5).contains(&v));
        }
    }
}
