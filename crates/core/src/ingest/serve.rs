//! The live-telemetry server: one thread exposes a whole simulated fleet's
//! recorded traces as per-device socket streams, with server-side frame
//! resume (the other half of the RESUME handshake in `docs/WIRE_FORMAT.md`).
//!
//! A [`TelemetryServe`] binds one listening TCP socket and readiness-polls
//! it together with every accepted connection on a single thread (via
//! `poll(2)`, like the [`reactor`](crate::ingest::reactor) on the consuming
//! side).  Each connection speaks one stream of the protocol:
//!
//! 1. The client sends a stream header followed by one RESUME frame naming
//!    the device it wants and the index of the next batch it has not yet
//!    received (`0` for a fresh subscription).
//! 2. The server answers with a stream header, the device's batch frames
//!    from that index on, and an END frame whose count covers *this* stream,
//!    then closes the connection.
//!
//! A malformed request (bad header, torn frame, any frame kind other than
//! RESUME, an unknown device, an index past the trace) drops only that
//! connection and is counted in [`ServeStats`] — one bad client cannot harm
//! the rest of the fleet.
//!
//! For soak-testing the reconnect path, [`TelemetryServe::with_kill_at`]
//! makes the server tear each device's *first* stream at a fixed byte
//! offset; the resumed second stream is then served in full.  The
//! `telemetry_serve` binary wraps all of this behind a CLI.

use std::collections::HashMap;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;

use polling::{poll_fds, PollFd, POLLIN, POLLOUT};

use adasense_sensor::TelemetryBatch;

use super::{FrameEncoder, FrameKind, StreamParser, TelemetryTrace};
use crate::error::AdaSenseError;

/// Per-read scratch size.  Requests are tiny (29 bytes), so one block always
/// holds a whole request; the constant exists to bound hostile senders.
const READ_BLOCK: usize = 4096;

/// Counters describing everything a [`TelemetryServe`] did, readable at any
/// point between polls.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Connections accepted.
    pub accepted: u64,
    /// Streams served to completion (END frame fully written).
    pub streams_completed: u64,
    /// Requests that resumed mid-trace (`next_batch > 0`).
    pub resume_requests: u64,
    /// Connections dropped for a malformed or unserviceable request.
    pub rejected_requests: u64,
    /// Streams deliberately torn by [`TelemetryServe::with_kill_at`].
    pub killed_streams: u64,
    /// Highest number of simultaneously open connections observed.
    pub peak_open: u64,
}

/// One device's pre-encoded stream: the batch frames, individually framed so
/// any suffix can be served on resume.
#[derive(Debug)]
struct DeviceStream {
    frames: Vec<Vec<u8>>,
}

/// What one accepted connection is currently doing.
#[derive(Debug)]
enum ConnState {
    /// Waiting for the header + RESUME request.
    Reading,
    /// Writing the response; `written` bytes already sent.
    Writing { response: Vec<u8>, written: usize, kill_at: Option<usize> },
}

#[derive(Debug)]
struct ServeConn {
    stream: TcpStream,
    parser: StreamParser,
    state: ConnState,
}

/// A single-threaded, poll-driven server exposing recorded per-device
/// telemetry traces as live socket streams.  See the [module
/// docs](self) for the protocol.
#[derive(Debug)]
pub struct TelemetryServe {
    listener: TcpListener,
    devices: HashMap<u64, DeviceStream>,
    conns: Vec<Option<ServeConn>>,
    stats: ServeStats,
    kill_at: Option<usize>,
    /// Devices whose first stream has already been torn by `kill_at`.
    killed: std::collections::HashSet<u64>,
}

impl TelemetryServe {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// pre-encodes one stream per `(device_id, trace)` pair.
    ///
    /// # Errors
    ///
    /// Returns [`AdaSenseError::Ingest`] if the listener cannot be bound.
    pub fn bind(addr: &str, traces: Vec<(u64, TelemetryTrace)>) -> Result<Self, AdaSenseError> {
        let listener = TcpListener::bind(addr)
            .map_err(|e| AdaSenseError::ingest(format!("binding {addr} failed: {e}")))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| AdaSenseError::ingest(format!("nonblocking listener failed: {e}")))?;
        let mut encoder = FrameEncoder::new();
        let devices = traces
            .into_iter()
            .map(|(device_id, trace)| {
                let frames = trace.batches.iter().map(|b| encoder.batch(b).to_vec()).collect();
                (device_id, DeviceStream { frames })
            })
            .collect();
        Ok(Self {
            listener,
            devices,
            conns: Vec::new(),
            stats: ServeStats::default(),
            kill_at: None,
            killed: std::collections::HashSet::new(),
        })
    }

    /// Like [`bind`](TelemetryServe::bind), but every batch is served as a v3
    /// COMPRESSED frame at roughly `ratio`× compression, seeded per frame by
    /// [`compressed_frame_seed`](crate::ingest::compressed_frame_seed).
    /// Everything else — the RESUME handshake, per-frame resume offsets,
    /// chaos kills — behaves identically, which is exactly the point:
    /// compressed payloads ride the same frame machinery.
    ///
    /// # Errors
    ///
    /// Returns [`AdaSenseError::Ingest`] if the listener cannot be bound.
    pub fn bind_compressed(
        addr: &str,
        traces: Vec<(u64, TelemetryTrace)>,
        ratio: u32,
    ) -> Result<Self, AdaSenseError> {
        let mut serve = Self::bind(addr, Vec::new())?;
        let mut encoder = FrameEncoder::new();
        serve.devices = traces
            .into_iter()
            .map(|(device_id, trace)| {
                let frames = trace
                    .batches
                    .iter()
                    .enumerate()
                    .map(|(index, b)| {
                        let seed = crate::ingest::compressed_frame_seed(device_id, index as u64);
                        encoder.compressed(b, ratio, seed).to_vec()
                    })
                    .collect();
                (device_id, DeviceStream { frames })
            })
            .collect();
        Ok(serve)
    }

    /// Tears each device's *first* stream after `bytes` of the response have
    /// been written (clamped so at least the stream's final byte is still
    /// unsent), forcing the client through the RESUME reconnect path.  The
    /// device's next stream is served in full.
    pub fn with_kill_at(mut self, bytes: usize) -> Self {
        self.kill_at = Some(bytes);
        self
    }

    /// The bound listening address.
    ///
    /// # Panics
    ///
    /// Panics if the OS cannot report the local address of a bound listener.
    pub fn local_addr(&self) -> SocketAddr {
        self.listener.local_addr().expect("a bound listener has a local address")
    }

    /// The server's counters so far.
    pub fn stats(&self) -> ServeStats {
        self.stats
    }

    /// Number of currently open connections.
    pub fn open_connections(&self) -> usize {
        self.conns.iter().filter(|c| c.is_some()).count()
    }

    /// Serves until `streams` streams have completed (torn streams do not
    /// count), polling in `timeout_ms` slices.
    ///
    /// # Errors
    ///
    /// Propagates `poll(2)` failures; per-connection errors only drop that
    /// connection.
    pub fn serve_streams(&mut self, streams: u64, timeout_ms: i32) -> Result<(), AdaSenseError> {
        while self.stats.streams_completed < streams {
            self.poll_once(timeout_ms)?;
        }
        Ok(())
    }

    /// One pass of the event loop: polls the listener and every open
    /// connection for readiness, accepts, reads requests, writes responses.
    /// Returns the number of descriptors that were ready.
    ///
    /// # Errors
    ///
    /// Propagates `poll(2)` failures; per-connection errors only drop that
    /// connection.
    pub fn poll_once(&mut self, timeout_ms: i32) -> Result<usize, AdaSenseError> {
        let mut fds = Vec::with_capacity(self.conns.len() + 1);
        fds.push(PollFd::new(self.listener.as_raw_fd(), POLLIN));
        for conn in &self.conns {
            fds.push(match conn {
                None => PollFd::parked(),
                Some(c) => PollFd::new(
                    c.stream.as_raw_fd(),
                    match c.state {
                        ConnState::Reading => POLLIN,
                        ConnState::Writing { .. } => POLLOUT,
                    },
                ),
            });
        }
        let ready = poll_fds(&mut fds, timeout_ms)
            .map_err(|e| AdaSenseError::ingest(format!("poll failed: {e}")))?;
        if ready == 0 {
            return Ok(0);
        }
        // Snapshot before accepting: newly accepted connections have no slot
        // in this poll round's fd array.
        let polled = fds.len() - 1;
        if fds[0].readable() {
            self.accept_ready();
        }
        for i in 0..polled {
            let slot = &fds[i + 1];
            if !(slot.readable() || slot.writable()) {
                continue;
            }
            if let Some(mut conn) = self.conns[i].take() {
                if self.advance(&mut conn) {
                    self.conns[i] = Some(conn);
                }
            }
        }
        Ok(ready)
    }

    /// Accepts every pending connection.
    fn accept_ready(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    self.stats.accepted += 1;
                    let conn = ServeConn {
                        stream,
                        parser: StreamParser::telemetry(),
                        state: ConnState::Reading,
                    };
                    match self.conns.iter().position(Option::is_none) {
                        Some(slot) => self.conns[slot] = Some(conn),
                        None => self.conns.push(Some(conn)),
                    }
                    self.stats.peak_open = self.stats.peak_open.max(self.open_connections() as u64);
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(_) => break,
            }
        }
    }

    /// Drives one ready connection as far as it will go without blocking.
    /// Returns `false` when the connection is finished (served, torn or
    /// rejected) and its slot should be freed.
    fn advance(&mut self, conn: &mut ServeConn) -> bool {
        match &mut conn.state {
            ConnState::Reading => {
                let mut block = [0u8; READ_BLOCK];
                loop {
                    match conn.stream.read(&mut block) {
                        Ok(0) => {
                            // Peer went away before completing a request.
                            self.stats.rejected_requests += 1;
                            return false;
                        }
                        Ok(n) => conn.parser.feed(&block[..n]),
                        Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                        Err(_) => {
                            self.stats.rejected_requests += 1;
                            return false;
                        }
                    }
                }
                let mut scratch = TelemetryBatch::placeholder();
                match conn.parser.next_frame(&mut scratch) {
                    Ok(None) => true, // request still incomplete; keep waiting
                    Ok(Some(FrameKind::Resume { device_id, next_batch })) => {
                        match self.build_response(device_id, next_batch) {
                            Some((response, kill_at)) => {
                                if next_batch > 0 {
                                    self.stats.resume_requests += 1;
                                }
                                conn.state = ConnState::Writing { response, written: 0, kill_at };
                                // Try to write immediately; the socket is
                                // almost certainly writable already.
                                self.advance_write(conn)
                            }
                            None => {
                                self.stats.rejected_requests += 1;
                                false
                            }
                        }
                    }
                    Ok(Some(_)) | Err(_) => {
                        // Wrong first frame or torn/corrupt request bytes.
                        self.stats.rejected_requests += 1;
                        false
                    }
                }
            }
            ConnState::Writing { .. } => self.advance_write(conn),
        }
    }

    /// Writes as much of the response as the socket accepts, honoring a
    /// pending chaos kill.  Returns `false` when the connection is done.
    fn advance_write(&mut self, conn: &mut ServeConn) -> bool {
        let ConnState::Writing { response, written, kill_at } = &mut conn.state else {
            return true;
        };
        loop {
            if let Some(kill) = *kill_at {
                if *written >= kill {
                    // Tear the stream mid-flight: the client must reconnect
                    // and resume.
                    self.stats.killed_streams += 1;
                    let _ = conn.stream.shutdown(std::net::Shutdown::Both);
                    return false;
                }
            }
            if *written == response.len() {
                self.stats.streams_completed += 1;
                return false;
            }
            let end = kill_at.map_or(response.len(), |k| k.min(response.len()));
            match conn.stream.write(&response[*written..end.max(*written)]) {
                Ok(0) => return false,
                Ok(n) => *written += n,
                Err(e) if e.kind() == ErrorKind::WouldBlock => return true,
                Err(_) => return false,
            }
        }
    }

    /// Pre-renders the full response stream for one request, and decides
    /// whether this stream is the device's designated chaos kill.  Returns
    /// `None` for an unknown device or an index past its trace.
    fn build_response(
        &mut self,
        device_id: u64,
        next_batch: u64,
    ) -> Option<(Vec<u8>, Option<usize>)> {
        let device = self.devices.get(&device_id)?;
        let total = device.frames.len() as u64;
        if next_batch > total {
            return None;
        }
        let mut encoder = FrameEncoder::new();
        let mut response = Vec::new();
        response.extend_from_slice(encoder.header());
        for frame in &device.frames[next_batch as usize..] {
            response.extend_from_slice(frame);
        }
        response.extend_from_slice(encoder.end(total - next_batch));
        let kill_at = match self.kill_at {
            Some(bytes) if !self.killed.contains(&device_id) => {
                self.killed.insert(device_id);
                // Clamp so the END frame is never fully delivered: the
                // client must observe a torn stream, not a complete one.
                Some(bytes.min(response.len() - 1))
            }
            _ => None,
        };
        Some((response, kill_at))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ingest::FrameDecoder;
    use adasense_sensor::{Sample3, SensorConfig};

    fn sample_trace(batches: usize) -> TelemetryTrace {
        let config = SensorConfig::paper_pareto_front()[0];
        let mut trace = TelemetryTrace::new();
        for i in 0..batches {
            trace.batches.push(TelemetryBatch::new(
                config,
                2.0 * (i + 1) as f64,
                2.0,
                0,
                vec![Sample3::new(i as f64, 0.5, -0.5, 1.0)],
            ));
        }
        trace
    }

    /// Connects, sends the RESUME handshake, and returns everything the
    /// server streamed back.
    fn request(addr: SocketAddr, device_id: u64, next_batch: u64) -> Vec<u8> {
        let mut stream = TcpStream::connect(addr).unwrap();
        let mut encoder = FrameEncoder::new();
        stream.write_all(encoder.header()).unwrap();
        stream.write_all(encoder.resume(device_id, next_batch)).unwrap();
        let mut response = Vec::new();
        stream.read_to_end(&mut response).unwrap();
        response
    }

    fn decode_stream(bytes: &[u8]) -> (Vec<TelemetryBatch>, u64) {
        let mut reader = bytes;
        let mut decoder = FrameDecoder::new();
        decoder.read_header(&mut reader).unwrap();
        let mut batches = Vec::new();
        loop {
            let mut batch = TelemetryBatch::placeholder();
            match decoder.read_frame(&mut reader, &mut batch).unwrap() {
                FrameKind::Batch => batches.push(batch),
                FrameKind::End { batches: count } => return (batches, count),
                other => panic!("unexpected frame {other:?}"),
            }
        }
    }

    #[test]
    fn serves_full_and_resumed_streams() {
        let trace = sample_trace(4);
        let mut serve = TelemetryServe::bind("127.0.0.1:0", vec![(7, trace.clone())]).unwrap();
        let addr = serve.local_addr();
        let client = std::thread::spawn(move || (request(addr, 7, 0), request(addr, 7, 3)));
        serve.serve_streams(2, 50).unwrap();
        let (full, resumed) = client.join().unwrap();
        let (batches, count) = decode_stream(&full);
        assert_eq!(batches, trace.batches);
        assert_eq!(count, 4);
        let (tail, tail_count) = decode_stream(&resumed);
        assert_eq!(tail, trace.batches[3..]);
        assert_eq!(tail_count, 1, "END counts only this stream's batches");
        assert_eq!(serve.stats().streams_completed, 2);
        assert_eq!(serve.stats().resume_requests, 1);
        assert_eq!(serve.open_connections(), 0, "served connections are closed");
    }

    #[test]
    fn bad_requests_are_rejected_without_harming_good_ones() {
        let trace = sample_trace(2);
        let mut serve = TelemetryServe::bind("127.0.0.1:0", vec![(1, trace.clone())]).unwrap();
        let addr = serve.local_addr();
        let client = std::thread::spawn(move || {
            // Garbage magic: rejected at the stream header.
            let mut bad = TcpStream::connect(addr).unwrap();
            bad.write_all(b"NOPEnope____").unwrap();
            let mut sink = Vec::new();
            assert_eq!(bad.read_to_end(&mut sink).unwrap(), 0, "server closed on us");
            // Unknown device: valid frames, unserviceable request.
            let mut stream = TcpStream::connect(addr).unwrap();
            let mut encoder = FrameEncoder::new();
            stream.write_all(encoder.header()).unwrap();
            stream.write_all(encoder.resume(99, 0)).unwrap();
            let mut sink = Vec::new();
            assert_eq!(stream.read_to_end(&mut sink).unwrap(), 0);
            // Index past the trace: also rejected.
            let mut stream = TcpStream::connect(addr).unwrap();
            stream.write_all(encoder.header()).unwrap();
            stream.write_all(encoder.resume(1, 3)).unwrap();
            let mut sink = Vec::new();
            assert_eq!(stream.read_to_end(&mut sink).unwrap(), 0);
            // The good request still goes through.
            request(addr, 1, 0)
        });
        serve.serve_streams(1, 50).unwrap();
        let good = client.join().unwrap();
        assert_eq!(decode_stream(&good).0, trace.batches);
        assert_eq!(serve.stats().rejected_requests, 3);
        assert_eq!(serve.stats().streams_completed, 1);
    }

    #[test]
    fn kill_at_tears_only_the_first_stream_per_device() {
        let trace = sample_trace(3);
        let mut serve =
            TelemetryServe::bind("127.0.0.1:0", vec![(5, trace.clone())]).unwrap().with_kill_at(20);
        let addr = serve.local_addr();
        let client = std::thread::spawn(move || {
            let torn = request(addr, 5, 0);
            let retry = request(addr, 5, 0);
            (torn, retry)
        });
        serve.serve_streams(1, 50).unwrap();
        let (torn, retry) = client.join().unwrap();
        assert!(torn.len() <= 20, "first stream dies at the kill offset");
        assert_eq!(decode_stream(&retry).0, trace.batches, "second stream is whole");
        assert_eq!(serve.stats().killed_streams, 1);
        assert_eq!(serve.stats().streams_completed, 1);
    }
}
