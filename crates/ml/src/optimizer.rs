//! Gradient-descent optimizers.
//!
//! The paper does not describe its training setup in detail, so two standard
//! first-order optimizers are provided: SGD with momentum (the default) and Adam.
//! Both operate on flat parameter slices; the trainer keeps one state buffer per
//! layer parameter group.

use serde::{Deserialize, Serialize};

/// Which optimization algorithm to use.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum OptimizerKind {
    /// Stochastic gradient descent with momentum.
    Sgd {
        /// Momentum coefficient (0 disables momentum).
        momentum: f64,
    },
    /// Adam with the usual β₁/β₂/ε defaults.
    Adam,
}

impl Default for OptimizerKind {
    fn default() -> Self {
        OptimizerKind::Sgd { momentum: 0.9 }
    }
}

/// Optimizer state for one group of parameter buffers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Optimizer {
    kind: OptimizerKind,
    learning_rate: f64,
    /// First-moment (or velocity) buffers, one per registered parameter group.
    m: Vec<Vec<f64>>,
    /// Second-moment buffers (Adam only).
    v: Vec<Vec<f64>>,
    /// Number of steps taken (for Adam bias correction).
    steps: u64,
}

impl Optimizer {
    /// Creates an optimizer for parameter groups of the given sizes.
    pub fn new(kind: OptimizerKind, learning_rate: f64, group_sizes: &[usize]) -> Self {
        Self {
            kind,
            learning_rate,
            m: group_sizes.iter().map(|&n| vec![0.0; n]).collect(),
            v: group_sizes.iter().map(|&n| vec![0.0; n]).collect(),
            steps: 0,
        }
    }

    /// The learning rate.
    pub fn learning_rate(&self) -> f64 {
        self.learning_rate
    }

    /// Marks the start of a new optimization step (needed for Adam bias correction).
    pub fn begin_step(&mut self) {
        self.steps += 1;
    }

    /// Applies one update to parameter group `group` in place.
    ///
    /// # Panics
    ///
    /// Panics if `group` is out of range or the slice lengths do not match the
    /// registered group size.
    pub fn update(&mut self, group: usize, params: &mut [f64], grads: &[f64]) {
        assert!(group < self.m.len(), "unknown parameter group {group}");
        assert_eq!(params.len(), grads.len(), "parameter/gradient length mismatch");
        assert_eq!(params.len(), self.m[group].len(), "group size mismatch");
        match self.kind {
            OptimizerKind::Sgd { momentum } => {
                let velocity = &mut self.m[group];
                for ((p, &g), v) in params.iter_mut().zip(grads).zip(velocity.iter_mut()) {
                    *v = momentum * *v - self.learning_rate * g;
                    *p += *v;
                }
            }
            OptimizerKind::Adam => {
                const BETA1: f64 = 0.9;
                const BETA2: f64 = 0.999;
                const EPS: f64 = 1e-8;
                let t = self.steps.max(1) as f64;
                let m = &mut self.m[group];
                let v = &mut self.v[group];
                for (((p, &g), mi), vi) in
                    params.iter_mut().zip(grads).zip(m.iter_mut()).zip(v.iter_mut())
                {
                    *mi = BETA1 * *mi + (1.0 - BETA1) * g;
                    *vi = BETA2 * *vi + (1.0 - BETA2) * g * g;
                    let m_hat = *mi / (1.0 - BETA1.powf(t));
                    let v_hat = *vi / (1.0 - BETA2.powf(t));
                    *p -= self.learning_rate * m_hat / (v_hat.sqrt() + EPS);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimizing f(x) = (x - 3)² should converge to 3 with either optimizer.
    fn minimize(kind: OptimizerKind, learning_rate: f64) -> f64 {
        let mut x = vec![0.0f64];
        let mut optimizer = Optimizer::new(kind, learning_rate, &[1]);
        for _ in 0..500 {
            optimizer.begin_step();
            let grad = vec![2.0 * (x[0] - 3.0)];
            optimizer.update(0, &mut x, &grad);
        }
        x[0]
    }

    #[test]
    fn sgd_converges_on_a_quadratic() {
        let x = minimize(OptimizerKind::Sgd { momentum: 0.9 }, 0.05);
        assert!((x - 3.0).abs() < 1e-3, "got {x}");
    }

    #[test]
    fn plain_sgd_converges_without_momentum() {
        let x = minimize(OptimizerKind::Sgd { momentum: 0.0 }, 0.1);
        assert!((x - 3.0).abs() < 1e-3, "got {x}");
    }

    #[test]
    fn adam_converges_on_a_quadratic() {
        let x = minimize(OptimizerKind::Adam, 0.05);
        assert!((x - 3.0).abs() < 1e-2, "got {x}");
    }

    #[test]
    fn groups_are_independent() {
        let mut optimizer = Optimizer::new(OptimizerKind::Sgd { momentum: 0.5 }, 0.1, &[1, 2]);
        let mut a = vec![1.0];
        let mut b = vec![1.0, 2.0];
        optimizer.begin_step();
        optimizer.update(0, &mut a, &[1.0]);
        optimizer.update(1, &mut b, &[0.0, 1.0]);
        assert!((a[0] - 0.9).abs() < 1e-12);
        assert!((b[0] - 1.0).abs() < 1e-12);
        assert!((b[1] - 1.9).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "unknown parameter group")]
    fn unknown_group_panics() {
        let mut optimizer = Optimizer::new(OptimizerKind::Adam, 0.1, &[1]);
        let mut p = vec![0.0];
        optimizer.update(5, &mut p, &[0.0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_gradient_length_panics() {
        let mut optimizer = Optimizer::new(OptimizerKind::Adam, 0.1, &[2]);
        let mut p = vec![0.0, 0.0];
        optimizer.update(0, &mut p, &[0.0]);
    }
}
