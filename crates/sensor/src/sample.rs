//! The 3-axis accelerometer sample type.

use std::ops::{Add, Div, Mul, Sub};

use serde::{Deserialize, Serialize};

/// One timestamped 3-axis accelerometer reading, in units of g.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Sample3 {
    /// Time of the reading, in seconds from the start of the trace.
    pub t: f64,
    /// Acceleration along the x axis, in g.
    pub x: f64,
    /// Acceleration along the y axis, in g.
    pub y: f64,
    /// Acceleration along the z axis, in g.
    pub z: f64,
}

impl Sample3 {
    /// Creates a sample from a timestamp and the three axis values.
    ///
    /// ```
    /// use adasense_sensor::Sample3;
    /// let s = Sample3::new(0.5, 0.0, 0.0, 1.0);
    /// assert_eq!(s.magnitude(), 1.0);
    /// ```
    pub fn new(t: f64, x: f64, y: f64, z: f64) -> Self {
        Self { t, x, y, z }
    }

    /// Creates a sample at time zero from an `[x, y, z]` array.
    pub fn from_axes(axes: [f64; 3]) -> Self {
        Self { t: 0.0, x: axes[0], y: axes[1], z: axes[2] }
    }

    /// The axis values as an `[x, y, z]` array.
    pub fn axes(&self) -> [f64; 3] {
        [self.x, self.y, self.z]
    }

    /// Euclidean norm of the acceleration vector, in g.
    pub fn magnitude(&self) -> f64 {
        (self.x * self.x + self.y * self.y + self.z * self.z).sqrt()
    }

    /// Returns a copy of the sample with the timestamp replaced.
    pub fn at(mut self, t: f64) -> Self {
        self.t = t;
        self
    }
}

impl Add for Sample3 {
    type Output = Sample3;
    /// Component-wise addition of the axis values; the timestamp of `self` is kept.
    fn add(self, rhs: Sample3) -> Sample3 {
        Sample3 { t: self.t, x: self.x + rhs.x, y: self.y + rhs.y, z: self.z + rhs.z }
    }
}

impl Sub for Sample3 {
    type Output = Sample3;
    /// Component-wise subtraction of the axis values; the timestamp of `self` is kept.
    fn sub(self, rhs: Sample3) -> Sample3 {
        Sample3 { t: self.t, x: self.x - rhs.x, y: self.y - rhs.y, z: self.z - rhs.z }
    }
}

impl Mul<f64> for Sample3 {
    type Output = Sample3;
    /// Scales the axis values; the timestamp is kept.
    fn mul(self, rhs: f64) -> Sample3 {
        Sample3 { t: self.t, x: self.x * rhs, y: self.y * rhs, z: self.z * rhs }
    }
}

impl Div<f64> for Sample3 {
    type Output = Sample3;
    /// Divides the axis values; the timestamp is kept.
    fn div(self, rhs: f64) -> Sample3 {
        Sample3 { t: self.t, x: self.x / rhs, y: self.y / rhs, z: self.z / rhs }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn magnitude_of_unit_gravity_is_one() {
        let s = Sample3::new(0.0, 0.0, 0.0, 1.0);
        assert!((s.magnitude() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn arithmetic_is_component_wise() {
        let a = Sample3::new(1.0, 1.0, 2.0, 3.0);
        let b = Sample3::new(2.0, 0.5, 0.5, 0.5);
        let sum = a + b;
        assert_eq!(sum.axes(), [1.5, 2.5, 3.5]);
        assert_eq!(sum.t, 1.0, "timestamp of the left operand is kept");
        let diff = a - b;
        assert_eq!(diff.axes(), [0.5, 1.5, 2.5]);
        let scaled = a * 2.0;
        assert_eq!(scaled.axes(), [2.0, 4.0, 6.0]);
        let halved = a / 2.0;
        assert_eq!(halved.axes(), [0.5, 1.0, 1.5]);
    }

    #[test]
    fn from_axes_round_trips() {
        let s = Sample3::from_axes([0.1, -0.2, 0.98]);
        assert_eq!(s.axes(), [0.1, -0.2, 0.98]);
        assert_eq!(s.t, 0.0);
        assert_eq!(s.at(3.5).t, 3.5);
    }
}
