//! Post-training int8 quantization of a trained [`Mlp`].
//!
//! The paper deploys its classifier on a fixed-point microcontroller
//! (Section V: a TI CC2640R2F with "few KBs of memory"), and the related
//! embedded-HAR literature ships int8/fixed-point classifiers on-device.
//! [`QuantizedMlp`] is that deployment artefact for this reproduction: an
//! int8 copy of a trained [`Mlp`] built by [`QuantizedMlp::from_mlp`] with
//!
//! * **per-layer symmetric weight scales** — each layer's weights are mapped to
//!   `i8` with one scale `max|w| / 127` (no zero points, no calibration data),
//! * **i32 accumulators** — every output neuron is an exact integer dot
//!   product of `i8` inputs and `i8` weights, and
//! * **requantized activations** — each layer's input row is dynamically
//!   quantized with its own symmetric scale, so no activation statistics need
//!   to be collected at conversion time.
//!
//! Biases stay in `f64` and are added after the integer accumulation is scaled
//! back (`acc × s_x × s_w + b`), which matches the usual dynamic-quantization
//! recipe.  The quantized forward pass is allocation-free per row once its
//! scratch buffers have grown, which is what makes the batched int8 path
//! measurably faster than the `f64` matrix path at fleet batch sizes (see the
//! `backend_bench` Criterion bench and the `backend_sweep` binary).

use serde::{Deserialize, Serialize};

use crate::classifier::{BackendKind, Classifier};
use crate::network::{prediction_from_logits, Mlp, MlpConfig, Prediction};

/// The symmetric scale mapping `values` onto the `i8` range: `max|v| / 127`,
/// or `1.0` for an all-zero (or empty) slice so quantization stays a no-op.
pub fn symmetric_scale(values: &[f64]) -> f64 {
    scale_from_max_abs(max_abs(values))
}

/// `max|v|` over the slice, accumulated in four independent lanes so the
/// reduction is not one serial `max` dependency chain.  `max` is exact, so
/// the reassociation cannot change the result.
fn max_abs(values: &[f64]) -> f64 {
    let mut lanes = [0.0f64; 4];
    let mut chunks = values.chunks_exact(4);
    for c in &mut chunks {
        lanes[0] = lanes[0].max(c[0].abs());
        lanes[1] = lanes[1].max(c[1].abs());
        lanes[2] = lanes[2].max(c[2].abs());
        lanes[3] = lanes[3].max(c[3].abs());
    }
    let mut m = lanes[0].max(lanes[1]).max(lanes[2].max(lanes[3]));
    for v in chunks.remainder() {
        m = m.max(v.abs());
    }
    m
}

/// Turns a `max|v|` bound into the symmetric i8 scale (`1.0` when the bound
/// is zero, so quantizing an all-zero vector stays a no-op).
fn scale_from_max_abs(max_abs: f64) -> f64 {
    if max_abs > 0.0 {
        max_abs / 127.0
    } else {
        1.0
    }
}

/// Branchless hot-path equivalent of `(v / scale).round()` (round half away
/// from zero) followed by the `[-127, 127]` clamp: multiply by the
/// reciprocal, add `±0.5` via `copysign`, truncate.
#[inline]
fn quantize_value(v: f64, inv_scale: f64) -> i8 {
    let t = v * inv_scale;
    ((t + 0.5f64.copysign(t)) as i32).clamp(-127, 127) as i8
}

/// The same quantization as [`quantize_value`], but producing the integer
/// *value* as an `f64` (used by the batched path, which evaluates the exact
/// integer arithmetic on the host's float units).  For every input —
/// including NaN, which Rust's saturating float→int cast maps to 0 —
/// `quantize_grid(v, s) == f64::from(quantize_value(v, s))`, so the
/// batch≡single contract holds even for garbage feature rows.
#[inline]
fn quantize_grid(v: f64, inv_scale: f64) -> f64 {
    let t = v * inv_scale;
    let r = (t + 0.5f64.copysign(t)).trunc().clamp(-127.0, 127.0);
    if r.is_nan() {
        0.0
    } else {
        r
    }
}

/// Quantizes `values` to `i8` with the given symmetric `scale`
/// (`q = round(v / scale)` clamped to `[-127, 127]`).
///
/// # Panics
///
/// Panics if `scale` is not strictly positive.
pub fn quantize_symmetric(values: &[f64], scale: f64) -> Vec<i8> {
    assert!(scale > 0.0, "quantization scale must be positive, got {scale}");
    values.iter().map(|v| (v / scale).round().clamp(-127.0, 127.0) as i8).collect()
}

/// Maps int8 quantized values back to `f64`: `v ≈ q × scale`.
pub fn dequantize(quantized: &[i8], scale: f64) -> Vec<f64> {
    quantized.iter().map(|&q| f64::from(q) * scale).collect()
}

/// The column-block width of the batched GEMM microkernel: accumulators are
/// fixed `[f64; 8]` blocks the compiler keeps in registers across the whole
/// input loop.
const GEMM_BLOCK: usize = 8;

/// One dense layer of a [`QuantizedMlp`]: int8 weights with a per-layer
/// symmetric scale, plus the original `f64` biases.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantizedLayer {
    inputs: usize,
    outputs: usize,
    /// `outputs` rounded up to a multiple of [`GEMM_BLOCK`].
    outputs_padded: usize,
    /// Row-major `inputs × outputs` int8 weights.
    weights: Vec<i8>,
    /// The same int8 weight values widened to `f64`, zero-padded to
    /// `inputs × outputs_padded` and stored **block-column-major**: for each
    /// [`GEMM_BLOCK`]-wide column block, its `inputs × GEMM_BLOCK` panel is
    /// contiguous (row by row).  The batched path streams these panels with
    /// zero index arithmetic and runs the exact integer accumulation on the
    /// host's float units (every product and partial sum is an integer far
    /// below 2^53, so the result is bit-identical to the i32 accumulation of
    /// the scalar path).
    weights_wide: Vec<f64>,
    /// The layer's symmetric weight scale (`max|w| / 127`).
    weight_scale: f64,
    /// Biases, kept in `f64` and added after the accumulator is rescaled.
    biases: Vec<f64>,
    /// The biases zero-padded to `outputs_padded`, so the batched GEMM can
    /// apply them block-wise straight from the register accumulators.
    biases_padded: Vec<f64>,
}

impl QuantizedLayer {
    /// Number of inputs.
    pub fn inputs(&self) -> usize {
        self.inputs
    }

    /// Number of outputs.
    pub fn outputs(&self) -> usize {
        self.outputs
    }

    /// The per-layer symmetric weight scale.
    pub fn weight_scale(&self) -> f64 {
        self.weight_scale
    }

    /// The int8 weights (row-major, `inputs × outputs`).
    pub fn weights(&self) -> &[i8] {
        &self.weights
    }

    /// Computes `out = relu?(q_x · W × (s_x × s_w) + b)` with i32 accumulators.
    ///
    /// `q_x` must hold `inputs` quantized activations at scale `s_x`; `out`
    /// must hold `outputs` slots and `acc` is the i32 accumulator row.  The
    /// loops run over plain slices with no loop-carried state so they
    /// auto-vectorize; integer accumulation is exact, so the evaluation order
    /// is free to change without affecting the result bit for bit.
    fn forward(&self, q_x: &[i8], s_x: f64, relu: bool, out: &mut [f64], acc: &mut [i32]) {
        debug_assert_eq!(q_x.len(), self.inputs);
        debug_assert_eq!(out.len(), self.outputs);
        acc.fill(0);
        for (i, &xi) in q_x.iter().enumerate() {
            let xi = i32::from(xi);
            let row = &self.weights[i * self.outputs..(i + 1) * self.outputs];
            // Fixed-width 8-blocks give the compiler compile-time trip counts
            // to unroll and vectorize; the remainder covers narrow layers.
            let mut a_blocks = acc.chunks_exact_mut(8);
            let mut w_blocks = row.chunks_exact(8);
            for (ab, wb) in (&mut a_blocks).zip(&mut w_blocks) {
                for t in 0..8 {
                    ab[t] += xi * i32::from(wb[t]);
                }
            }
            for (a, &w) in a_blocks.into_remainder().iter_mut().zip(w_blocks.remainder()) {
                *a += xi * i32::from(w);
            }
        }
        let rescale = s_x * self.weight_scale;
        if relu {
            for ((y, &a), &b) in out.iter_mut().zip(acc.iter()).zip(&self.biases) {
                *y = (f64::from(a) * rescale + b).max(0.0);
            }
        } else {
            for ((y, &a), &b) in out.iter_mut().zip(acc.iter()).zip(&self.biases) {
                *y = f64::from(a) * rescale + b;
            }
        }
    }
}

/// Reusable per-row buffers of the quantized forward pass.  Retained across
/// rows by [`QuantizedMlp::predict_batch_into`], so batched inference performs
/// no allocation once the buffers have grown.
#[derive(Debug, Default)]
struct QuantScratch {
    x: Vec<f64>,
    y: Vec<f64>,
    q: Vec<i8>,
    acc: Vec<i32>,
}

/// A post-training int8 quantized copy of a trained [`Mlp`].
///
/// Produces the same [`Prediction`] shape as the float model (softmax
/// probabilities, argmax class, confidence) from an integer-arithmetic forward
/// pass; per-row output is bit-identical between
/// [`predict`](Classifier::predict) and batched prediction, so quantized
/// device cohorts keep the fleet's worker-count determinism.
///
/// # Examples
///
/// ```
/// use adasense_ml::{Classifier, Mlp, MlpConfig, QuantizedMlp};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mlp = Mlp::new(MlpConfig::new(4, vec![8], 3), &mut StdRng::seed_from_u64(1));
/// let quantized = QuantizedMlp::from_mlp(&mlp);
/// assert_eq!(quantized.config(), mlp.config());
///
/// // The int8 model predicts the same class as the float model on easy inputs,
/// // with probabilities that only differ by quantization noise.
/// let features = [0.5, -1.0, 0.25, 2.0];
/// let (f64_out, int8_out) = (mlp.predict(&features), quantized.predict(&features));
/// assert_eq!(int8_out.probabilities.len(), f64_out.probabilities.len());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantizedMlp {
    config: MlpConfig,
    layers: Vec<QuantizedLayer>,
    /// Per-feature means of the carried-over input normalizer (empty when the
    /// source model had none).
    norm_means: Vec<f64>,
    /// Per-feature *reciprocal* standard deviations — stored inverted so the
    /// hot path multiplies instead of divides.
    norm_inv_stds: Vec<f64>,
}

impl QuantizedMlp {
    /// Quantizes a trained [`Mlp`]: every layer's weights are mapped to `i8`
    /// with a per-layer symmetric scale; biases are carried over unchanged and
    /// the fitted input normalizer is carried over with its standard
    /// deviations pre-inverted (the int8 path multiplies by the reciprocal
    /// instead of dividing — its own arithmetic, chosen for the
    /// microcontroller-style hot path).
    pub fn from_mlp(mlp: &Mlp) -> Self {
        let layers = mlp
            .layers()
            .iter()
            .map(|layer| {
                let (inputs, outputs) = (layer.inputs(), layer.outputs());
                let outputs_padded = outputs.div_ceil(GEMM_BLOCK) * GEMM_BLOCK;
                let weight_scale = symmetric_scale(layer.weights.as_slice());
                let weights = quantize_symmetric(layer.weights.as_slice(), weight_scale);
                let mut weights_wide = vec![0.0f64; inputs * outputs_padded];
                for i in 0..inputs {
                    for j in 0..outputs {
                        let (jb, jt) = (j / GEMM_BLOCK, j % GEMM_BLOCK);
                        weights_wide[(jb * inputs + i) * GEMM_BLOCK + jt] =
                            f64::from(weights[i * outputs + j]);
                    }
                }
                let mut biases_padded = layer.biases.clone();
                biases_padded.resize(outputs_padded, 0.0);
                QuantizedLayer {
                    inputs,
                    outputs,
                    outputs_padded,
                    weights,
                    weights_wide,
                    weight_scale,
                    biases: layer.biases.clone(),
                    biases_padded,
                }
            })
            .collect();
        let (norm_means, norm_inv_stds) = match mlp.normalizer() {
            Some(n) => (n.means().to_vec(), n.stds().iter().map(|s| 1.0 / s).collect()),
            None => (Vec::new(), Vec::new()),
        };
        Self { config: mlp.config().clone(), layers, norm_means, norm_inv_stds }
    }

    /// The architecture this model was quantized from.
    pub fn config(&self) -> &MlpConfig {
        &self.config
    }

    /// The quantized layers.
    pub fn layers(&self) -> &[QuantizedLayer] {
        &self.layers
    }

    /// The size of the int8 weight tensor in bytes (the quantity that must fit
    /// in the wearable's memory; biases and scales add a few `f64`s on top).
    pub fn weight_bytes(&self) -> usize {
        self.layers.iter().map(|l| l.weights.len()).sum()
    }

    fn assert_input(&self, features: &[f64]) {
        assert_eq!(
            features.len(),
            self.config.input_dim,
            "expected {} features, got {}",
            self.config.input_dim,
            features.len()
        );
    }

    /// The widest activation row any layer produces or consumes (padded
    /// output widths included, so every GEMM block store stays in bounds).
    fn max_width(&self) -> usize {
        self.layers
            .iter()
            .map(|l| l.inputs.max(l.outputs_padded))
            .max()
            .unwrap_or(self.config.input_dim)
    }

    /// One full forward pass over `scratch` buffers; returns the prediction.
    ///
    /// Every stage is a separate pass over plain slices (standardize →
    /// max-abs → quantize → integer GEMV → rescale) with no loop-carried
    /// state other than the exact integer accumulators, so the compiler can
    /// vectorize each pass independently.
    fn forward_row(&self, features: &[f64], scratch: &mut QuantScratch) -> Prediction {
        self.assert_input(features);
        let width = self.max_width();
        scratch.x.resize(width, 0.0);
        scratch.y.resize(width, 0.0);
        scratch.q.resize(width, 0);
        scratch.acc.resize(width, 0);

        let mut dim = self.config.input_dim;
        if self.norm_means.is_empty() {
            scratch.x[..dim].copy_from_slice(features);
        } else {
            for (((x, v), m), inv_s) in scratch.x[..dim]
                .iter_mut()
                .zip(features)
                .zip(&self.norm_means)
                .zip(&self.norm_inv_stds)
            {
                *x = (v - m) * inv_s;
            }
        }
        let last = self.layers.len() - 1;
        for (i, layer) in self.layers.iter().enumerate() {
            // Dynamic symmetric requantization of the layer input, in fixed
            // 4-blocks (see `QuantizedLayer::forward` for the rationale).
            let s_x = scale_from_max_abs(max_abs(&scratch.x[..dim]));
            let inv_s = 1.0 / s_x;
            let mut q_blocks = scratch.q[..dim].chunks_exact_mut(4);
            let mut x_blocks = scratch.x[..dim].chunks_exact(4);
            for (qb, xb) in (&mut q_blocks).zip(&mut x_blocks) {
                for t in 0..4 {
                    qb[t] = quantize_value(xb[t], inv_s);
                }
            }
            for (q, &v) in q_blocks.into_remainder().iter_mut().zip(x_blocks.remainder()) {
                *q = quantize_value(v, inv_s);
            }
            layer.forward(
                &scratch.q[..dim],
                s_x,
                i < last,
                &mut scratch.y[..layer.outputs],
                &mut scratch.acc[..layer.outputs],
            );
            dim = layer.outputs;
            std::mem::swap(&mut scratch.x, &mut scratch.y);
        }
        prediction_from_logits(&scratch.x[..dim])
    }
}

impl Classifier for QuantizedMlp {
    fn input_dim(&self) -> usize {
        self.config.input_dim
    }

    fn output_dim(&self) -> usize {
        self.config.output_dim
    }

    fn label(&self) -> &str {
        BackendKind::Int8.label()
    }

    fn predict(&self, features: &[f64]) -> Prediction {
        self.forward_row(features, &mut QuantScratch::default())
    }

    /// Batched inference: the same dynamic-quantization arithmetic as
    /// [`predict`](Classifier::predict), evaluated stage by stage over flat
    /// per-batch buffers.
    ///
    /// The integer accumulation runs on the host's float units: quantized
    /// activations and weights are integers with magnitude ≤ 127, so every
    /// product (≤ 16129) and every partial sum (≤ `inputs × 16129`, far below
    /// 2^53) is exactly representable in `f64`, and the accumulated value is
    /// **bit-identical** to the scalar path's i32 accumulator.  This is what
    /// makes the batched int8 path faster than the `f64` matrix path — no
    /// per-row matrix allocations, fused normalize/quantize/rescale passes —
    /// without giving up a single bit of the integer-arithmetic semantics
    /// (property-tested against [`predict`](Classifier::predict) row by row).
    fn predict_batch_into(&self, rows: &[Vec<f64>], out: &mut Vec<Prediction>) {
        out.clear();
        if rows.is_empty() {
            return;
        }
        for row in rows {
            self.assert_input(row);
        }
        let n = rows.len();
        let width = self.max_width();
        // Thread-local scratch: the current activations in the first half,
        // the next layer's outputs in the second (row stride = `width`), plus
        // the per-row max-magnitude feeding each dynamic requantization.
        // Reusing the buffers across calls keeps the hot path free of
        // allocation *and* of the zero-initialization a fresh `vec!` pays.
        thread_local! {
            static SCRATCH: std::cell::RefCell<(Vec<f64>, Vec<f64>)> =
                const { std::cell::RefCell::new((Vec::new(), Vec::new())) };
        }
        SCRATCH.with(|cell| {
            let mut borrow = cell.borrow_mut();
            let (buf, maxes) = &mut *borrow;
            if buf.len() < 2 * n * width {
                buf.resize(2 * n * width, 0.0);
            }
            if maxes.len() < n {
                maxes.resize(n, 0.0);
            }
            let (mut a, mut b) = buf.split_at_mut(n * width);
            let mut dim = self.config.input_dim;

            // Standardize every row into `a` (multiply by the pre-inverted
            // stds).
            for (r, row) in rows.iter().enumerate() {
                let dst = &mut a[r * width..r * width + dim];
                if self.norm_means.is_empty() {
                    dst.copy_from_slice(row);
                } else {
                    for (((x, v), m), inv_s) in
                        dst.iter_mut().zip(row).zip(&self.norm_means).zip(&self.norm_inv_stds)
                    {
                        *x = (v - m) * inv_s;
                    }
                }
                maxes[r] = max_abs(dst);
            }

            let last = self.layers.len() - 1;
            for (li, layer) in self.layers.iter().enumerate() {
                for r in 0..n {
                    let arow = &mut a[r * width..r * width + dim];
                    // Dynamic symmetric requantization onto the integer grid
                    // (fixed 4-blocks so the pass unrolls and vectorizes).
                    let s_x = scale_from_max_abs(maxes[r]);
                    let inv_s = 1.0 / s_x;
                    let mut blocks = arow.chunks_exact_mut(4);
                    for block in &mut blocks {
                        let block: &mut [f64; 4] =
                            block.try_into().expect("chunks_exact yields 4-wide blocks");
                        for v in block {
                            *v = quantize_grid(*v, inv_s);
                        }
                    }
                    for v in blocks.into_remainder() {
                        *v = quantize_grid(*v, inv_s);
                    }
                    // Exact integer accumulation (see the method docs).  The
                    // microkernel streams one contiguous weight panel per
                    // column block, keeps the whole accumulator block in
                    // registers across the input loop, and applies the
                    // rescale/bias/ReLU epilogue straight from those
                    // registers; the padded columns and biases make every
                    // block full-width.  Hidden layers track the next
                    // requantization's max in independent lanes (exact: `max`
                    // reassociates freely, ReLU outputs need no `abs`, and
                    // padded lanes contribute an exact 0).
                    let rescale = s_x * layer.weight_scale;
                    let brow = &mut b[r * width..r * width + layer.outputs_padded];
                    let mut row_max = 0.0f64;
                    for (jb, block) in brow.chunks_exact_mut(GEMM_BLOCK).enumerate() {
                        let panel =
                            &layer.weights_wide[jb * dim * GEMM_BLOCK..(jb + 1) * dim * GEMM_BLOCK];
                        let mut acc = [0.0f64; GEMM_BLOCK];
                        for (&xk, wk) in arow.iter().zip(panel.chunks_exact(GEMM_BLOCK)) {
                            for t in 0..GEMM_BLOCK {
                                acc[t] += xk * wk[t];
                            }
                        }
                        let bias = &layer.biases_padded[jb * GEMM_BLOCK..(jb + 1) * GEMM_BLOCK];
                        if li < last {
                            let mut lanes = [0.0f64; GEMM_BLOCK];
                            for t in 0..GEMM_BLOCK {
                                let y = (acc[t] * rescale + bias[t]).max(0.0);
                                lanes[t] = lanes[t].max(y);
                                acc[t] = y;
                            }
                            for lane in lanes {
                                row_max = row_max.max(lane);
                            }
                        } else {
                            for t in 0..GEMM_BLOCK {
                                acc[t] = acc[t] * rescale + bias[t];
                            }
                        }
                        block.copy_from_slice(&acc);
                    }
                    maxes[r] = row_max;
                }
                dim = layer.outputs;
                std::mem::swap(&mut a, &mut b);
            }
            out.extend((0..n).map(|r| prediction_from_logits(&a[r * width..r * width + dim])));
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_mlp(seed: u64) -> Mlp {
        Mlp::new(MlpConfig::new(6, vec![10, 8], 4), &mut StdRng::seed_from_u64(seed))
    }

    #[test]
    fn round_trip_error_is_bounded_by_half_a_step() {
        let mut rng = StdRng::seed_from_u64(3);
        let values: Vec<f64> = (0..512).map(|_| rng.random_range(-4.0..4.0)).collect();
        let scale = symmetric_scale(&values);
        let restored = dequantize(&quantize_symmetric(&values, scale), scale);
        for (v, r) in values.iter().zip(&restored) {
            assert!(
                (v - r).abs() <= scale / 2.0 + 1e-12,
                "round-trip error {} exceeds half a quantization step {}",
                (v - r).abs(),
                scale / 2.0
            );
        }
    }

    #[test]
    fn extreme_values_saturate_at_the_i8_range() {
        // A scale chosen too small must clamp, not wrap.
        let q = quantize_symmetric(&[10.0, -10.0], 0.01);
        assert_eq!(q, vec![127, -127]);
        // The max-abs scale maps the extremes exactly onto ±127.
        let values = [2.54, -2.54, 0.0];
        let scale = symmetric_scale(&values);
        assert_eq!(quantize_symmetric(&values, scale), vec![127, -127, 0]);
    }

    #[test]
    fn zero_and_empty_slices_get_the_neutral_scale() {
        assert_eq!(symmetric_scale(&[]), 1.0);
        assert_eq!(symmetric_scale(&[0.0, 0.0]), 1.0);
        assert_eq!(quantize_symmetric(&[0.0], 1.0), vec![0]);
    }

    #[test]
    #[should_panic(expected = "scale must be positive")]
    fn non_positive_scales_are_rejected() {
        let _ = quantize_symmetric(&[1.0], 0.0);
    }

    #[test]
    fn quantized_model_mirrors_the_float_architecture() {
        let mlp = random_mlp(5);
        let q = QuantizedMlp::from_mlp(&mlp);
        assert_eq!(q.config(), mlp.config());
        assert_eq!(q.layers().len(), mlp.layers().len());
        for (ql, fl) in q.layers().iter().zip(mlp.layers()) {
            assert_eq!(ql.inputs(), fl.inputs());
            assert_eq!(ql.outputs(), fl.outputs());
            assert_eq!(ql.weights().len(), fl.weights.element_count());
            assert!(ql.weight_scale() > 0.0);
        }
        assert_eq!(q.weight_bytes(), 6 * 10 + 10 * 8 + 8 * 4);
        assert_eq!(Classifier::label(&q), "int8");
    }

    #[test]
    fn quantized_predictions_stay_close_to_the_float_model() {
        let mlp = random_mlp(11);
        let q = QuantizedMlp::from_mlp(&mlp);
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..64 {
            let features: Vec<f64> = (0..6).map(|_| rng.random_range(-2.0..2.0)).collect();
            let f = Mlp::predict(&mlp, &features);
            let i = Classifier::predict(&q, &features);
            for (pf, pi) in f.probabilities.iter().zip(&i.probabilities) {
                assert!(
                    (pf - pi).abs() < 0.15,
                    "quantization moved a probability by {} (f64 {pf}, int8 {pi})",
                    (pf - pi).abs()
                );
            }
            assert!((0.0..=1.0).contains(&i.confidence));
            assert!((i.probabilities.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn batch_rows_are_bit_identical_to_single_rows() {
        let mlp = random_mlp(17);
        let q = QuantizedMlp::from_mlp(&mlp);
        let rows: Vec<Vec<f64>> =
            (0..23).map(|r| (0..6).map(|c| ((r * 6 + c) as f64 * 0.37).sin()).collect()).collect();
        let mut batch = Vec::new();
        q.predict_batch_into(&rows, &mut batch);
        assert_eq!(batch.len(), rows.len());
        for (row, prediction) in rows.iter().zip(&batch) {
            assert_eq!(prediction, &Classifier::predict(&q, row), "must be bit-identical");
        }
    }

    #[test]
    #[should_panic(expected = "expected 6 features")]
    fn wrong_input_size_is_rejected() {
        let _ = Classifier::predict(&QuantizedMlp::from_mlp(&random_mlp(1)), &[1.0]);
    }

    #[test]
    fn non_finite_rows_stay_bit_identical_between_batch_and_single() {
        // Garbage inputs (a dead upstream source) must not split the batched
        // and scalar paths: the saturating float→int cast maps NaN to 0 and
        // the grid path mirrors that explicitly.
        let q = QuantizedMlp::from_mlp(&random_mlp(23));
        let rows = vec![
            vec![f64::NAN, 1.0, -2.0, 0.5, 0.0, 3.0],
            vec![f64::INFINITY, 1.0, -2.0, 0.5, 0.0, 3.0],
            vec![f64::NEG_INFINITY, f64::NAN, -2.0, 0.5, 0.0, 3.0],
            vec![0.25; 6],
        ];
        let mut batch = Vec::new();
        q.predict_batch_into(&rows, &mut batch);
        for (row, prediction) in rows.iter().zip(&batch) {
            let single = Classifier::predict(&q, row);
            assert_eq!(single.class, prediction.class);
            assert_eq!(single.probabilities, prediction.probabilities, "must stay bit-identical");
        }
    }
}
