//! Seeded sparse random projection — the compressed-sensing payload path.
//!
//! The compressed-sensing telemetry frameworks the paper cites (Pagán et al.)
//! cut radio energy by transmitting `m ≪ n` random projections of each
//! `n`-sample window instead of the window itself.  This module provides both
//! halves of that path:
//!
//! * **Device side** — [`SparseProjection::project_into`]: an Achlioptas-style
//!   sparse ±1 projection whose matrix is *streamed* from a splitmix64 hash of
//!   `(seed, row, column)`, so the device stores no matrix, allocates nothing,
//!   and — because the entries are `{+1, 0, −1}` — needs only integer
//!   adds/subtracts until the final scaling (int-friendly on an MCU).
//! * **Host side** — [`SparseProjection::reconstruct_into`]: a deterministic
//!   Landweber (gradient) solve of the projection in a truncated DCT model.
//!   Accelerometer windows are dominated by low frequencies, so fitting the
//!   lowest `k = m/2` DCT coefficients to the `m` measurements is an
//!   overdetermined least-squares problem that reconstructs smooth windows
//!   faithfully — exactly the property the unified feature vector (means,
//!   standard deviations, low-frequency Fourier magnitudes) depends on.
//!
//! Both directions are pure functions of `(seed, lengths, input)` with a fixed
//! iteration count and no data-dependent branching, so a fixed seed gives
//! bit-identical results on every run — the determinism contract the wire
//! format's replay guarantees extend to compressed frames.

/// Fixed number of Landweber iterations in [`SparseProjection::reconstruct_into`].
///
/// Chosen so the dominant (low-frequency) modes of the least-squares fit
/// converge to well below the sensor's own noise floor; being a constant keeps
/// reconstruction a pure function of its inputs.
const RECONSTRUCT_ITERS: usize = 40;

/// splitmix64 finalizer — the same mixing the fleet uses for device seeding.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seeded `m × n` sparse random projection (compressed-sensing encoder and
/// its matching reconstruction operator).
///
/// # Examples
///
/// ```
/// use adasense_dsp::projection::SparseProjection;
///
/// // A smooth 1 Hz oscillation sampled at 50 Hz for 2 s, compressed 2×.
/// let window: Vec<f64> =
///     (0..100).map(|i| (std::f64::consts::TAU * i as f64 / 50.0).sin()).collect();
/// let projection = SparseProjection::new(42, window.len(), 2);
/// let mut compressed = vec![0.0; projection.output_len()];
/// projection.project_into(&window, &mut compressed);
///
/// let mut restored = vec![0.0; window.len()];
/// let mut scratch = Default::default();
/// projection.reconstruct_into(&compressed, &mut restored, &mut scratch);
/// let err: f64 = window.iter().zip(&restored).map(|(a, b)| (a - b).powi(2)).sum();
/// let norm: f64 = window.iter().map(|a| a * a).sum();
/// assert!(err / norm < 0.05, "smooth windows survive 2x compression");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SparseProjection {
    seed: u64,
    input_len: usize,
    output_len: usize,
}

/// Reusable working memory for [`SparseProjection::reconstruct_into`]: the
/// expanded sign matrix, the DCT basis and the iteration buffers.  Buffers
/// grow to the largest problem seen and are then reused allocation-free.
#[derive(Debug, Clone, Default)]
pub struct ProjectionScratch {
    /// Cached `{+1, 0, −1}` matrix entries, row-major `m × n`.
    signs: Vec<i8>,
    /// Cached DCT basis values, row-major `k × n`.
    basis: Vec<f64>,
    /// Current DCT coefficient estimate (`k`).
    coeffs: Vec<f64>,
    /// Measurement-space residual (`m`).
    residual: Vec<f64>,
    /// Sample-space back-projection `Aᵀ residual` (`n`).
    back: Vec<f64>,
}

impl SparseProjection {
    /// A projection compressing `input_len` samples by roughly `ratio`
    /// (`output_len = max(1, input_len / ratio)`); `ratio` is clamped to at
    /// least 1.
    pub fn new(seed: u64, input_len: usize, ratio: u32) -> Self {
        let ratio = ratio.max(1) as usize;
        Self::with_lengths(seed, input_len, (input_len / ratio).max(1).min(input_len.max(1)))
    }

    /// A projection with explicit dimensions (`output_len` measurements of an
    /// `input_len`-sample window).
    pub fn with_lengths(seed: u64, input_len: usize, output_len: usize) -> Self {
        Self { seed, input_len, output_len }
    }

    /// The seed the matrix is streamed from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of input samples `n`.
    pub fn input_len(&self) -> usize {
        self.input_len
    }

    /// Number of measurements `m`.
    pub fn output_len(&self) -> usize {
        self.output_len
    }

    /// The `{+1, 0, −1}` matrix entry at `(row, col)`, before scaling.
    ///
    /// Achlioptas sparsity `s = 3`: `P(+1) = P(−1) = 1/6`, `P(0) = 2/3`.
    fn sign(&self, row: usize, col: usize) -> i8 {
        let cell = (row as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(col as u64);
        match splitmix64(self.seed ^ cell) % 6 {
            0 => 1,
            1 => -1,
            _ => 0,
        }
    }

    /// The common scale `sqrt(3 / m)` making the matrix's columns unit
    /// variance (`E[AᵀA] = I`).
    fn scale(&self) -> f64 {
        (3.0 / self.output_len.max(1) as f64).sqrt()
    }

    /// Projects `input` (length [`input_len`](Self::input_len)) into `output`
    /// (length [`output_len`](Self::output_len)).
    ///
    /// Allocation-free; per output row this is a streamed signed sum of the
    /// input followed by one multiplication, so an integer-sample device can
    /// run the whole inner loop in integer arithmetic.
    ///
    /// # Panics
    ///
    /// Panics when either slice length disagrees with the projection's
    /// dimensions.
    pub fn project_into(&self, input: &[f64], output: &mut [f64]) {
        assert_eq!(input.len(), self.input_len, "projection input length mismatch");
        assert_eq!(output.len(), self.output_len, "projection output length mismatch");
        let scale = self.scale();
        for (row, out) in output.iter_mut().enumerate() {
            let mut acc = 0.0;
            for (col, &value) in input.iter().enumerate() {
                match self.sign(row, col) {
                    1 => acc += value,
                    -1 => acc -= value,
                    _ => {}
                }
            }
            *out = acc * scale;
        }
    }

    /// Number of DCT coefficients the reconstruction model fits: half the
    /// measurement count keeps the least-squares system overdetermined and
    /// well conditioned while covering the low-frequency band the unified
    /// feature vector reads.
    fn model_dim(&self) -> usize {
        (self.output_len / 2).clamp(1, self.input_len.max(1))
    }

    /// Reconstructs an `input_len`-sample window from its `output_len`
    /// measurements by a fixed-iteration Landweber least-squares fit of a
    /// truncated DCT model (see the module docs).
    ///
    /// Deterministic: identical `(seed, measurements)` produce bit-identical
    /// output on every call.  `scratch` is reused across calls and grows to
    /// the largest problem dimensions seen.
    ///
    /// # Panics
    ///
    /// Panics when either slice length disagrees with the projection's
    /// dimensions.
    pub fn reconstruct_into(
        &self,
        measurements: &[f64],
        output: &mut [f64],
        scratch: &mut ProjectionScratch,
    ) {
        assert_eq!(measurements.len(), self.output_len, "reconstruction input length mismatch");
        assert_eq!(output.len(), self.input_len, "reconstruction output length mismatch");
        let (n, m, k) = (self.input_len, self.output_len, self.model_dim());
        if n == 0 {
            return;
        }

        // Expand the sign matrix once so the iterations pay no hashing cost.
        scratch.signs.clear();
        scratch.signs.reserve(m * n);
        for row in 0..m {
            for col in 0..n {
                scratch.signs.push(self.sign(row, col));
            }
        }
        // Orthonormal DCT-II basis rows: basis[j][i] = w_j · cos(π (i+½) j / n).
        scratch.basis.clear();
        scratch.basis.reserve(k * n);
        let norm0 = (1.0 / n as f64).sqrt();
        let norm = (2.0 / n as f64).sqrt();
        for j in 0..k {
            let w = if j == 0 { norm0 } else { norm };
            let step = std::f64::consts::PI * j as f64 / n as f64;
            for i in 0..n {
                scratch.basis.push(w * ((i as f64 + 0.5) * step).cos());
            }
        }

        scratch.coeffs.clear();
        scratch.coeffs.resize(k, 0.0);
        scratch.residual.clear();
        scratch.residual.resize(m, 0.0);
        scratch.back.clear();
        scratch.back.resize(n, 0.0);

        // Step size below 2 / λmax(BᵀB) for B = A·Ψ (an m×k matrix with unit
        // column variance): λmax ≈ (1 + √(k/m))² by Marchenko–Pastur.
        let step = 0.9 / (1.0 + (k as f64 / m as f64).sqrt()).powi(2);
        let scale = self.scale();

        for _ in 0..RECONSTRUCT_ITERS {
            // output ← Ψ·coeffs (the current window estimate).
            synthesize(&scratch.basis, &scratch.coeffs, output);
            // residual ← measurements − A·output.
            for (row, res) in scratch.residual.iter_mut().enumerate() {
                let mut acc = 0.0;
                for (col, &value) in output.iter().enumerate() {
                    match scratch.signs[row * n + col] {
                        1 => acc += value,
                        -1 => acc -= value,
                        _ => {}
                    }
                }
                *res = measurements[row] - acc * scale;
            }
            // back ← Aᵀ·residual.
            scratch.back.iter_mut().for_each(|v| *v = 0.0);
            for (row, &res) in scratch.residual.iter().enumerate() {
                let weighted = res * scale;
                for (col, back) in scratch.back.iter_mut().enumerate() {
                    match scratch.signs[row * n + col] {
                        1 => *back += weighted,
                        -1 => *back -= weighted,
                        _ => {}
                    }
                }
            }
            // coeffs += μ · Ψᵀ·back.
            for (j, coeff) in scratch.coeffs.iter_mut().enumerate() {
                let row = &scratch.basis[j * n..(j + 1) * n];
                let grad: f64 = row.iter().zip(scratch.back.iter()).map(|(b, v)| b * v).sum();
                *coeff += step * grad;
            }
        }
        synthesize(&scratch.basis, &scratch.coeffs, output);
    }
}

/// `output ← Ψ·coeffs` for the row-major truncated DCT basis.
fn synthesize(basis: &[f64], coeffs: &[f64], output: &mut [f64]) {
    let n = output.len();
    output.iter_mut().for_each(|v| *v = 0.0);
    for (j, &c) in coeffs.iter().enumerate() {
        if c == 0.0 {
            continue;
        }
        for (i, out) in output.iter_mut().enumerate() {
            *out += c * basis[j * n + i];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smooth_window(n: usize, hz: f64, rate: f64) -> Vec<f64> {
        (0..n)
            .map(|i| {
                let t = i as f64 / rate;
                1.0 + 0.4 * (std::f64::consts::TAU * hz * t).sin()
                    + 0.1 * (std::f64::consts::TAU * 2.0 * hz * t).cos()
            })
            .collect()
    }

    fn relative_error(a: &[f64], b: &[f64]) -> f64 {
        let err: f64 = a.iter().zip(b).map(|(x, y)| (x - y).powi(2)).sum();
        let norm: f64 = a.iter().map(|x| x * x).sum();
        err / norm.max(1e-12)
    }

    #[test]
    fn projection_is_bit_deterministic_for_a_fixed_seed() {
        let window = smooth_window(200, 1.5, 100.0);
        let projection = SparseProjection::new(7, window.len(), 4);
        let mut a = vec![0.0; projection.output_len()];
        let mut b = vec![0.0; projection.output_len()];
        projection.project_into(&window, &mut a);
        projection.project_into(&window, &mut b);
        assert!(a.iter().zip(&b).all(|(x, y)| x.to_bits() == y.to_bits()));

        let mut ra = vec![0.0; window.len()];
        let mut rb = vec![0.0; window.len()];
        let mut scratch = ProjectionScratch::default();
        projection.reconstruct_into(&a, &mut ra, &mut scratch);
        projection.reconstruct_into(&a, &mut rb, &mut scratch);
        assert!(ra.iter().zip(&rb).all(|(x, y)| x.to_bits() == y.to_bits()));
    }

    #[test]
    fn different_seeds_give_different_measurements() {
        let window = smooth_window(100, 1.0, 50.0);
        let a_proj = SparseProjection::new(1, window.len(), 2);
        let b_proj = SparseProjection::new(2, window.len(), 2);
        let mut a = vec![0.0; a_proj.output_len()];
        let mut b = vec![0.0; b_proj.output_len()];
        a_proj.project_into(&window, &mut a);
        b_proj.project_into(&window, &mut b);
        assert_ne!(a, b);
    }

    #[test]
    fn smooth_windows_reconstruct_accurately_at_low_ratios() {
        let window = smooth_window(200, 1.5, 100.0);
        let mut scratch = ProjectionScratch::default();
        for (ratio, budget) in [(2u32, 0.02), (4, 0.05)] {
            let projection = SparseProjection::new(99, window.len(), ratio);
            let mut compressed = vec![0.0; projection.output_len()];
            projection.project_into(&window, &mut compressed);
            let mut restored = vec![0.0; window.len()];
            projection.reconstruct_into(&compressed, &mut restored, &mut scratch);
            let err = relative_error(&window, &restored);
            assert!(err < budget, "ratio {ratio}: relative error {err} above {budget}");
        }
    }

    #[test]
    fn reconstruction_preserves_the_mean() {
        // The DC term is the model's first coefficient, so the window mean —
        // the feature the classifier leans on hardest — survives compression
        // almost exactly.
        let window = smooth_window(150, 2.0, 75.0);
        let projection = SparseProjection::new(5, window.len(), 8);
        let mut compressed = vec![0.0; projection.output_len()];
        projection.project_into(&window, &mut compressed);
        let mut restored = vec![0.0; window.len()];
        projection.reconstruct_into(&compressed, &mut restored, &mut ProjectionScratch::default());
        let mean = window.iter().sum::<f64>() / window.len() as f64;
        let restored_mean = restored.iter().sum::<f64>() / restored.len() as f64;
        assert!((mean - restored_mean).abs() < 0.05 * mean.abs().max(1.0));
    }

    #[test]
    fn ratio_clamps_and_degenerate_lengths_are_safe() {
        let projection = SparseProjection::new(3, 10, 0);
        assert_eq!(projection.output_len(), 10, "ratio clamps to 1");
        let tiny = SparseProjection::new(3, 1, 100);
        assert_eq!(tiny.output_len(), 1, "at least one measurement");
        let mut out = [0.0];
        tiny.project_into(&[2.5], &mut out);
        let mut restored = [0.0];
        tiny.reconstruct_into(&out, &mut restored, &mut ProjectionScratch::default());
        assert!(restored[0].is_finite());
    }

    #[test]
    fn signs_match_the_achlioptas_density() {
        let projection = SparseProjection::with_lengths(11, 400, 100);
        let mut nonzero = 0usize;
        let mut total = 0usize;
        for row in 0..projection.output_len() {
            for col in 0..projection.input_len() {
                total += 1;
                if projection.sign(row, col) != 0 {
                    nonzero += 1;
                }
            }
        }
        let density = nonzero as f64 / total as f64;
        assert!((density - 1.0 / 3.0).abs() < 0.02, "density {density} far from 1/3");
    }
}
