//! # adasense
//!
//! Reproduction of **AdaSense: Adaptive Low-Power Sensing and Activity Recognition
//! for Wearable Devices** (Neseem, Nelson, Reda — DAC 2020).
//!
//! AdaSense reduces the power consumption of a wearable's accelerometer by
//! dynamically switching among sensor configurations (sampling frequency ×
//! averaging window) as a function of how *stable* the user's activity is, while a
//! single classifier — fed by a configuration-independent feature vector — keeps
//! recognizing the activity.
//!
//! This crate is the top of the reproduction stack.  It combines the substrates
//! ([`adasense_sensor`], [`adasense_data`], [`adasense_dsp`], [`adasense_ml`]) into:
//!
//! * [`pipeline`] — the HAR pipeline of Fig. 1: buffer → unified feature extraction
//!   → classifier.
//! * [`training`] — dataset construction and training of the unified classifier and
//!   of per-configuration classifier banks (used by the baselines).
//! * [`controller`] — the adaptive sensing policies: SPOT, SPOT with confidence,
//!   the static high-power baseline and the intensity-based approach of NK et
//!   al. \[8\].
//! * [`pareto`] / [`dse`] — the sensor-configuration design-space exploration of
//!   Fig. 2 and Pareto-front extraction.
//! * [`simulation`] — the closed-loop simulator: a scheduled user activity stream is
//!   sensed under the controller-selected configuration, classified every second,
//!   and the sensor's charge consumption is accounted per configuration residency.
//! * [`scenario`] — the scenario library: daily-routine scripts, population-level
//!   activity priors and sensor-fault injection, wired through the fleet scheduler
//!   via [`FleetSpec::population`](fleet::FleetSpec::population).
//! * [`ingest`] — live telemetry ingestion: the versioned binary wire format
//!   (`docs/WIRE_FORMAT.md`), channel- and socket-backed [`SampleSource`]s, and
//!   trace recording/replay, so the same closed loop runs over real device feeds.
//! * [`shard`] — sharded million-device fleets: order-independent exact sums and
//!   mergeable quantile sketches behind [`FleetReport`],
//!   chunk-aligned device-range shard plans, and the on-disk device-summary
//!   spool that keeps fleet memory bounded (the `fleet_shard` coordinator
//!   proves sharded == monolithic byte-for-byte).
//! * [`experiments`] — one runner per paper table/figure (Table I, Fig. 2, Fig. 5,
//!   Fig. 6a/6b, Fig. 7, and the memory comparison), producing printable reports.
//!
//! # Quick start
//!
//! ```
//! use adasense::prelude::*;
//!
//! # fn main() -> Result<(), AdaSenseError> {
//! // Train the HAR system on a small synthetic dataset (use
//! // `ExperimentSpec::paper()` for the full-size configuration).
//! let spec = ExperimentSpec::quick();
//! let system = TrainedSystem::train(&spec)?;
//!
//! // Simulate two minutes of "sit then walk" under the SPOT controller.
//! let report = Simulator::new(&spec, &system)
//!     .with_controller(ControllerKind::Spot { stability_threshold: 9 })
//!     .run(ScenarioSpec::sit_then_walk(60.0, 60.0))?;
//!
//! println!(
//!     "accuracy {:.1}%, average sensor current {:.1} µA",
//!     100.0 * report.accuracy(),
//!     report.average_current_ua()
//! );
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod controller;
pub mod dse;
pub mod error;
pub mod experiments;
pub mod export;
pub mod fleet;
pub mod ingest;
pub mod pareto;
pub mod pipeline;
pub mod runtime;
pub mod scenario;
pub mod shard;
pub mod simulation;
pub mod training;

pub use controller::{ControllerInput, ControllerKind, SensorController, SpotController};
pub use dse::{
    ConfigEvaluation, DesignSpaceExploration, DseReport, TxDseReport, TxEvaluation, TxExploration,
};
pub use error::AdaSenseError;
pub use fleet::{
    BackendBreakdown, DeviceSummary, ExternalDevice, FleetReport, FleetRun, FleetRunBuilder,
    FleetScheduler, FleetSpec, RoutineBreakdown,
};
#[cfg(unix)]
pub use ingest::{
    reactor::{IngestReactor, ReactorHandle, ReactorStats, UNIX_ADDR_SCHEME},
    serve::{ServeStats, TelemetryServe},
};
pub use ingest::{
    telemetry_channel, ChannelSource, FrameDecoder, FrameEncoder, FrameKind, ReconnectPolicy,
    SocketSource, StreamParser, TelemetrySender, TelemetryTrace, TraceRecorder,
};
pub use pareto::pareto_front;
pub use pipeline::{ClassifiedBatch, HarPipeline};
pub use runtime::{
    DeviceRuntime, SampleSource, ScenarioSource, SourceStatus, TickPhase, TickResult, TxSetup,
    TxTally,
};
pub use scenario::{
    BackendSpec, DeviceProfile, FaultInjector, FaultLevel, FaultPlan, FaultProfile, FaultWindow,
    PopulationPrior, PopulationSpec, RoutinePreset, RoutineScript,
};
pub use shard::{
    DiscardSink, ExactSum, FleetStats, GroupStat, MetricStat, QuantileSketch, ShardRange,
    SpoolReader, SpoolWriter, SummarySink,
};
pub use simulation::{EpochRecord, ScenarioSpec, SimulationReport, Simulator};
pub use training::{ExperimentSpec, TrainedSystem};

/// Convenience re-exports of the most commonly used items, including the substrate
/// types needed to drive them.
pub mod prelude {
    pub use crate::controller::{
        ControllerInput, ControllerKind, IntensityBasedController, SensorController,
        SpotController, StaticController,
    };
    pub use crate::dse::{
        ConfigEvaluation, DesignSpaceExploration, DseReport, TxDseReport, TxEvaluation,
        TxExploration,
    };
    pub use crate::error::AdaSenseError;
    pub use crate::experiments;
    pub use crate::fleet::{
        BackendBreakdown, DeviceSummary, ExternalDevice, FleetReport, FleetRun, FleetRunBuilder,
        FleetScheduler, FleetSpec, RoutineBreakdown,
    };
    #[cfg(unix)]
    pub use crate::ingest::{
        reactor::{IngestReactor, ReactorHandle, ReactorStats, UNIX_ADDR_SCHEME},
        serve::{ServeStats, TelemetryServe},
    };
    pub use crate::ingest::{
        telemetry_channel, ChannelSource, FrameDecoder, FrameEncoder, FrameKind, ReconnectPolicy,
        SocketSource, StreamParser, TelemetrySender, TelemetryTrace, TraceRecorder,
    };
    pub use crate::pareto::pareto_front;
    pub use crate::pipeline::{ClassifiedBatch, HarPipeline};
    pub use crate::runtime::{
        DeviceRuntime, SampleSource, ScenarioSource, SourceStatus, TickPhase, TickResult, TxSetup,
        TxTally,
    };
    pub use crate::scenario::{
        BackendSpec, DeviceProfile, FaultInjector, FaultLevel, FaultPlan, FaultProfile,
        FaultWindow, PopulationPrior, PopulationSpec, RoutinePreset, RoutineScript,
    };
    pub use crate::shard::{
        DiscardSink, ExactSum, FleetStats, QuantileSketch, ShardRange, SpoolReader, SpoolWriter,
        SummarySink,
    };
    pub use crate::simulation::{EpochRecord, ScenarioSpec, SimulationReport, Simulator};
    pub use crate::training::{ExperimentSpec, TrainedSystem};
    pub use adasense_data::prelude::*;
    pub use adasense_dsp::prelude::*;
    pub use adasense_ml::prelude::*;
    pub use adasense_sensor::prelude::*;
}
