//! Fleet-scale parallel simulation: thousands of simulated wearables at once.
//!
//! The ROADMAP's north star is a production-scale system serving populations of
//! devices, and the related work (compressed-sensing and adaptive data-selection
//! frameworks) evaluates adaptive sensing over large subject populations.  This
//! module provides the machinery for that:
//!
//! * [`FleetSpec`] — N devices running a dwell-time scenario family, each with a
//!   deterministic seed derived from `(base_seed, device_id)` (a splitmix64 mix),
//!   so every device's whole life — schedule, subject variation, sensor noise —
//!   is reproducible independently of scheduling order.
//! * [`FleetScheduler`] — a `std::thread` worker pool pulling fixed-size device
//!   chunks from a shared atomic queue.  Each chunk ticks its devices in
//!   **lockstep** so their classifier calls are batched through one
//!   [`Classifier::predict_batch_into`](adasense_ml::Classifier::predict_batch_into)
//!   forward pass per backend per tick
//!   (cohorts may mix the full-precision f64 and quantized int8 backends via
//!   [`BackendSpec`](crate::scenario::BackendSpec)).  Chunk boundaries depend
//!   only on the spec — never on the worker count — so a fleet run is
//!   **bit-identical at any thread count**.
//! * [`FleetReport`] — mergeable population statistics (exact means, sketch
//!   percentiles of power, accuracy and per-configuration residency, per-routine
//!   and per-backend breakdowns) in memory bounded by the population's
//!   *diversity*, never its size.  Reports from device-range shards
//!   ([`FleetSpec::shards`], [`FleetScheduler::run_shard`]) merge into exactly
//!   the monolithic report — byte-for-byte under [`FleetReport::encode`] — and
//!   per-device rows stream to an on-disk [`SpoolWriter`](crate::shard::SpoolWriter)
//!   (or any [`SummarySink`]) instead of accumulating in RAM, so million-device
//!   cohorts fit one box.  [`FleetScheduler::run_collect`] keeps the rows for
//!   the workloads that want them.
//!
//! The scheduler also exposes [`FleetScheduler::run_scenarios`], an
//! order-preserving parallel runner for explicit `(scenario, controller)` job
//! lists; the Fig. 6 / Fig. 7 experiment sweeps run through it.  Live
//! telemetry joins the same machinery through
//! [`FleetScheduler::run_with_feeds`]: a cohort of [`ExternalDevice`]s —
//! channel- or socket-fed [`SampleSource`]s from [`crate::ingest`] — ticks in
//! the same lockstep chunks alongside the scenario-driven population.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use adasense_data::ActivityChangeSetting;
use adasense_ml::{BackendKind, CascadeStage, Prediction};
use adasense_sensor::{SensorConfig, TxPolicy};
use serde::{Deserialize, Serialize};

use crate::controller::ControllerKind;
use crate::error::AdaSenseError;
use crate::runtime::{DeviceRuntime, SampleSource, ScenarioSource, TickPhase, TxSetup};
use crate::scenario::{FaultInjector, PopulationSpec};
use crate::shard::{
    decode_str, encode_str, shard_ranges, ByteCursor, DiscardSink, FleetStats, ShardRange,
    SummarySink, REPORT_MAGIC, REPORT_VERSION,
};
use crate::simulation::{ScenarioSpec, SimulationReport, Simulator};
use crate::training::{ExperimentSpec, TrainedSystem};

/// Derives the seed of one device from the fleet's base seed and the device id.
///
/// Uses a splitmix64-style finalizer so that consecutive device ids produce
/// decorrelated seeds, and every `(base_seed, device_id)` pair maps to the same
/// seed on every run, platform and thread count.
pub fn device_seed(base_seed: u64, device_id: u64) -> u64 {
    let mut z = base_seed ^ device_id.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Describes one fleet run: a population of devices, the scenario family they
/// live through, and the controller they all run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetSpec {
    /// Number of simulated devices.
    pub devices: u64,
    /// Dwell-time distribution of every device's randomized activity timeline.
    /// Used only by devices the [`population`](FleetSpec::population) prior
    /// leaves on the legacy dwell-randomized path.
    pub setting: ActivityChangeSetting,
    /// The cohort description: routine mix, per-device dwell bias and sensor
    /// fault exposure.  [`PopulationSpec::legacy`] reproduces the historic
    /// homogeneous dwell-randomized fleet bit for bit.
    pub population: PopulationSpec,
    /// Requested timeline duration per device, in seconds (the generated
    /// schedule may overshoot by up to one dwell segment).
    pub duration_s: f64,
    /// The adaptive sensing controller every device runs.
    pub controller: ControllerKind,
    /// Base seed; each device's seed is [`device_seed`]`(base_seed, device_id)`.
    pub base_seed: u64,
    /// Devices ticked in lockstep per scheduler job (their classifier calls are
    /// batched into one forward pass).  Chunking depends only on this value, so
    /// changing the worker count never changes the results.
    pub lockstep_devices: usize,
    /// Compression ratio for transmission modelling: `None` leaves radios off
    /// (the historic fleet, bit for bit); `Some(ratio)` gives every device a
    /// BLE radio ([`TxSetup::ble`]) whose compressed path projects windows down
    /// by `ratio`, and the per-policy counters surface in the report.
    pub tx_ratio: Option<u32>,
}

impl FleetSpec {
    /// A fleet of `devices` Medium-activity devices under SPOT with confidence
    /// (the paper's best controller), 16 devices per lockstep chunk.
    pub fn new(devices: u64, duration_s: f64, base_seed: u64) -> Self {
        Self {
            devices,
            setting: ActivityChangeSetting::Medium,
            population: PopulationSpec::legacy(),
            duration_s,
            controller: ControllerKind::SpotWithConfidence {
                stability_threshold: 10,
                confidence_threshold: 0.85,
            },
            base_seed,
            lockstep_devices: 16,
            tx_ratio: None,
        }
    }

    /// The CI smoke configuration: 64 devices × 60 seconds.
    pub fn smoke() -> Self {
        Self::new(64, 60.0, 64)
    }

    /// Checks the specification for consistency.
    ///
    /// # Errors
    ///
    /// Returns [`AdaSenseError::InvalidSpec`] for an empty fleet, a timeline
    /// shorter than one classification window or a zero lockstep chunk.
    pub fn validate(&self) -> Result<(), AdaSenseError> {
        if self.devices == 0 {
            return Err(AdaSenseError::invalid_spec("a fleet needs at least one device"));
        }
        if self.duration_s < crate::runtime::WINDOW_S {
            return Err(AdaSenseError::invalid_spec(format!(
                "fleet duration {} s is shorter than one {} s classification window",
                self.duration_s,
                crate::runtime::WINDOW_S
            )));
        }
        if self.lockstep_devices == 0 {
            return Err(AdaSenseError::invalid_spec("lockstep_devices must be non-zero"));
        }
        if self.tx_ratio == Some(0) {
            return Err(AdaSenseError::invalid_spec("tx_ratio must be non-zero when set"));
        }
        self.population.validate()
    }

    /// Everything this spec determines about one device, derived purely from
    /// `(base_seed, device_id)`: its seed, its routine and backend assignment,
    /// and the realized scenario it will live.
    ///
    /// This is the exact setup [`FleetScheduler::run`] uses, exposed so replay
    /// tooling can rebuild a device's world outside the scheduler — record its
    /// stream with a [`TraceRecorder`](crate::ingest::TraceRecorder), then
    /// feed the trace back as an [`ExternalDevice`].
    pub fn device_plan(&self, device_id: u64) -> DevicePlan {
        let seed = device_seed(self.base_seed, device_id);
        let profile = self.population.prior.assign(seed);
        let backend = self.population.backend.assign(seed);
        let (scenario, routine) = match profile.routine {
            Some(preset) => (
                preset.script().scenario(self.duration_s, profile.dwell_scale, seed),
                preset.label().to_string(),
            ),
            None => (
                ScenarioSpec::random(self.setting, self.duration_s, seed),
                format!("dwell-{}", self.setting.label()),
            ),
        };
        DevicePlan { device_id, seed, routine, backend, scenario }
    }

    /// Splits the fleet into `shards` contiguous device-id ranges, aligned to
    /// [`lockstep_devices`](FleetSpec::lockstep_devices) chunk boundaries and
    /// maximally balanced (trailing ranges may be empty when there are fewer
    /// chunks than shards).  Each range, run through
    /// [`FleetScheduler::run_shard`], schedules exactly the lockstep chunks
    /// the monolithic run would, and the shard reports merge into exactly the
    /// monolithic report — per-device seeding makes every device's life
    /// independent of which shard runs it.  The canonical merge order is
    /// ascending shard index (see [`crate::shard`]).
    pub fn shards(&self, shards: usize) -> Vec<ShardRange> {
        shard_ranges(self.devices, self.lockstep_devices as u64, shards)
    }
}

/// One device's fully derived setup within a fleet (see
/// [`FleetSpec::device_plan`]).
#[derive(Debug, Clone, PartialEq)]
pub struct DevicePlan {
    /// The device's id within the fleet.
    pub device_id: u64,
    /// The derived seed ([`device_seed`]`(base_seed, device_id)`).
    pub seed: u64,
    /// The routine label the device's summary will carry.
    pub routine: String,
    /// The inference backend the device is assigned.
    pub backend: BackendKind,
    /// The realized scenario the device lives.
    pub scenario: ScenarioSpec,
}

/// An externally fed device joining a fleet run: a live [`SampleSource`]
/// (typically a [`ChannelSource`](crate::ingest::ChannelSource) or
/// [`SocketSource`](crate::ingest::SocketSource)) plus the metadata its
/// [`DeviceSummary`] row should carry.
///
/// The source is driven until it reports end-of-stream (or until
/// `duration_s`, when bounded).  Fault exposure is a capture-side property
/// the feed does not carry, so external rows always report
/// `faulted_epochs == 0`.
pub struct ExternalDevice {
    /// The id the device's summary row carries.  The caller is responsible
    /// for keeping feed ids distinct from the scenario cohort's `0..devices`.
    pub device_id: u64,
    /// The seed recorded in the summary row (`0` unless the feed replays a
    /// known seeded run).
    pub seed: u64,
    /// The routine label recorded in the summary row.
    pub routine: String,
    /// The inference backend the device classifies with.
    pub backend: BackendKind,
    /// Optional tick budget, in seconds.  `None` runs until the source
    /// exhausts — a feed that never signals end-of-stream then never returns.
    pub duration_s: Option<f64>,
    /// The fleet epoch at which the device joined the cohort (0 = present
    /// from run start); copied into the summary row for churn accounting.
    pub start_epoch: u64,
    /// Whether the device departed before draining its full stream (its row
    /// is finalized at the last completed epoch).
    pub departed: bool,
    /// The live sample feed.
    pub source: Box<dyn SampleSource + Send>,
}

impl ExternalDevice {
    /// Wraps `source` as an external device with neutral metadata: seed 0,
    /// routine `"external"`, the full-precision backend and no tick budget.
    pub fn new(device_id: u64, source: impl SampleSource + Send + 'static) -> Self {
        Self {
            device_id,
            seed: 0,
            routine: "external".to_string(),
            backend: BackendKind::F64,
            duration_s: None,
            start_epoch: 0,
            departed: false,
            source: Box::new(source),
        }
    }

    /// Sets the summary metadata this device's row carries (for example the
    /// plan of the recorded run a trace replays).
    pub fn with_metadata(mut self, seed: u64, routine: impl Into<String>) -> Self {
        self.seed = seed;
        self.routine = routine.into();
        self
    }

    /// Sets the inference backend this device classifies with.
    pub fn with_backend(mut self, backend: BackendKind) -> Self {
        self.backend = backend;
        self
    }

    /// Bounds the device's run to `duration_s` seconds even if the feed keeps
    /// producing.
    pub fn with_duration(mut self, duration_s: f64) -> Self {
        self.duration_s = Some(duration_s);
        self
    }

    /// Records the fleet epoch at which this device joined the cohort.
    pub fn with_start_epoch(mut self, start_epoch: u64) -> Self {
        self.start_epoch = start_epoch;
        self
    }

    /// Marks this device as an early departure (finalized at its last
    /// completed epoch rather than a drained stream).
    pub fn with_departed(mut self, departed: bool) -> Self {
        self.departed = departed;
        self
    }
}

/// The summary metadata of one externally fed device, separated from its
/// boxed source so the scheduler can keep it while the runtime owns the feed.
#[derive(Debug, Clone)]
struct FeedMeta {
    device_id: u64,
    seed: u64,
    routine: String,
    backend: BackendKind,
    start_epoch: u64,
    departed: bool,
}

impl std::fmt::Debug for ExternalDevice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExternalDevice")
            .field("device_id", &self.device_id)
            .field("seed", &self.seed)
            .field("routine", &self.routine)
            .field("backend", &self.backend)
            .field("duration_s", &self.duration_s)
            .finish_non_exhaustive()
    }
}

/// The aggregate outcome of one device's run (no per-epoch records, so memory
/// per device is constant regardless of scenario length).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceSummary {
    /// The device's id within the fleet (`0..devices`).
    pub device_id: u64,
    /// The derived seed the device ran with.
    pub seed: u64,
    /// The routine the device lived: a [`RoutinePreset`] label, or
    /// `dwell-<setting>` for legacy dwell-randomized devices.
    ///
    /// [`RoutinePreset`]: crate::scenario::RoutinePreset
    pub routine: String,
    /// The inference backend the device was assigned (a [`BackendKind`]
    /// label, e.g. `f64` or `int8`).  The intensity baseline carries the
    /// label but classifies through its per-configuration bank instead.
    pub backend: String,
    /// Number of classified epochs whose sensed window overlapped at least one
    /// injected fault window (0 for a pristine population).
    pub faulted_epochs: usize,
    /// Number of classified epochs.
    pub epochs: usize,
    /// Number of correctly classified epochs.
    pub correct_epochs: usize,
    /// Epochs a cascade backend answered at its cheap first stage (0 for
    /// single-stage backends).
    pub early_exit_epochs: usize,
    /// Early-exit epochs classified correctly.
    pub early_exit_correct: usize,
    /// Epochs a cascade backend escalated to its full second stage.
    pub escalated_epochs: usize,
    /// Escalated epochs classified correctly.
    pub escalated_correct: usize,
    /// Recognition accuracy (0–1).
    pub accuracy: f64,
    /// Average sensor current over the run, in µA.
    pub average_current_ua: f64,
    /// Total sensor charge over the run, in µC.
    pub total_charge_uc: f64,
    /// Simulated duration, in seconds.
    pub duration_s: f64,
    /// Seconds spent in each configuration, indexed by [`SensorConfig::index`].
    pub residency_s: Vec<f64>,
    /// Classified epochs transmitted under each [`TxPolicy`], indexed by
    /// [`TxPolicy::index`] (all zero when transmission modelling is off).
    pub tx_epochs: Vec<u64>,
    /// Payload bytes transmitted under each policy.
    pub tx_bytes: Vec<u64>,
    /// Radio charge spent under each policy, in µC.
    pub tx_charge_uc: Vec<f64>,
    /// The fleet epoch at which the device joined the cohort (0 = present
    /// from run start).
    pub start_epoch: u64,
    /// Whether the device departed before draining its full stream.
    pub departed: bool,
}

impl DeviceSummary {
    /// The fraction of this device's time spent in `config` (0–1).
    pub fn residency_fraction(&self, config: SensorConfig) -> f64 {
        if self.duration_s <= 0.0 {
            return 0.0;
        }
        self.residency_s.get(config.index()).copied().unwrap_or(0.0) / self.duration_s
    }

    /// The fraction of this device's classified epochs that were fault-exposed
    /// (0–1; 0 for a device that classified nothing).
    pub fn faulted_fraction(&self) -> f64 {
        if self.epochs == 0 {
            return 0.0;
        }
        self.faulted_epochs as f64 / self.epochs as f64
    }
}

/// Population statistics of the devices sharing one inference backend.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BackendBreakdown {
    /// The backend label (see [`DeviceSummary::backend`]).
    pub backend: String,
    /// Number of devices running this backend.
    pub devices: usize,
    /// Mean recognition accuracy of those devices (0–1); [`f64::NAN`] if the
    /// group is empty.
    pub mean_accuracy: f64,
    /// Mean average sensor current of those devices, in µA; [`f64::NAN`] if
    /// the group is empty.
    pub mean_current_ua: f64,
    /// Total classified epochs of those devices.
    pub epochs: usize,
}

/// Population statistics of the devices sharing one routine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoutineBreakdown {
    /// The routine label (see [`DeviceSummary::routine`]).
    pub routine: String,
    /// Number of devices living this routine.
    pub devices: usize,
    /// Mean recognition accuracy of those devices (0–1).
    pub mean_accuracy: f64,
    /// Mean average sensor current of those devices, in µA.
    pub mean_current_ua: f64,
    /// Mean fraction of fault-exposed epochs of those devices (0–1).
    pub mean_faulted_fraction: f64,
}

/// The aggregated result of a fleet run: mergeable population statistics in
/// memory bounded by the population's *diversity* (routines × backends ×
/// sketch buckets), never by its size.
///
/// Means are exact (an [`ExactSum`](crate::shard::ExactSum) per metric) and
/// percentiles come from a [`QuantileSketch`](crate::shard::QuantileSketch),
/// so reports built per device-range shard [`merge`](FleetReport::merge) into
/// *exactly* — bit for bit, in any merge order — the report of the monolithic
/// run; [`encode`](FleetReport::encode) is canonical, making that equality
/// checkable byte for byte (the `fleet_shard` binary gates it in CI).
/// Per-device rows no longer live in the report:
/// [`FleetScheduler::run_collect`] returns them alongside it, and
/// [`FleetScheduler::run_shard`] streams them to a [`SummarySink`] such as the
/// on-disk [`SpoolWriter`](crate::shard::SpoolWriter).
#[derive(Debug, Clone, PartialEq)]
pub struct FleetReport {
    /// Label of the controller the fleet ran.
    pub controller: String,
    /// The mergeable population statistics.
    pub stats: FleetStats,
}

impl FleetReport {
    /// An empty report for a fleet running `controller` (the merge identity).
    pub fn new(controller: impl Into<String>) -> Self {
        Self { controller: controller.into(), stats: FleetStats::new() }
    }

    /// Folds one completed device into the report.
    pub fn observe(&mut self, device: &DeviceSummary) {
        self.stats.observe(device);
    }

    /// Merges another shard's report into this one.  Any merge order gives
    /// bit-identical state; the canonical order is ascending shard index.
    ///
    /// # Errors
    ///
    /// Returns [`AdaSenseError::Shard`] when the reports ran different
    /// controllers — such populations are different experiments.
    pub fn merge(&mut self, other: &FleetReport) -> Result<(), AdaSenseError> {
        if self.controller != other.controller {
            return Err(AdaSenseError::shard(format!(
                "cannot merge a `{}` report into a `{}` report",
                other.controller, self.controller
            )));
        }
        self.stats.merge(&other.stats);
        Ok(())
    }

    /// Encodes the report canonically: equal reports — in particular a merged
    /// sharded run and its monolithic counterpart — produce identical bytes.
    /// The layout (magic `ADSR`) is specified in `docs/WIRE_FORMAT.md`.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&REPORT_MAGIC);
        out.extend_from_slice(&REPORT_VERSION.to_le_bytes());
        out.extend_from_slice(&0u16.to_le_bytes()); // flags, reserved
        encode_str(&mut out, &self.controller);
        self.stats.encode_into(&mut out);
        out
    }

    /// Decodes a report written by [`encode`](FleetReport::encode).
    ///
    /// # Errors
    ///
    /// Returns [`AdaSenseError::Shard`] on bad magic, an unsupported version,
    /// non-zero flags, or a truncated/corrupt body.
    pub fn decode(bytes: &[u8]) -> Result<Self, AdaSenseError> {
        if bytes.len() < 8 {
            return Err(AdaSenseError::shard("encoded report is shorter than its header"));
        }
        if bytes[0..4] != REPORT_MAGIC {
            return Err(AdaSenseError::shard(format!(
                "bad report magic {:02x?} (expected `ADSR`)",
                &bytes[0..4]
            )));
        }
        let version = u16::from_le_bytes([bytes[4], bytes[5]]);
        if version != REPORT_VERSION {
            return Err(AdaSenseError::shard(format!(
                "unsupported report version {version} (this build speaks {REPORT_VERSION})"
            )));
        }
        let flags = u16::from_le_bytes([bytes[6], bytes[7]]);
        if flags != 0 {
            return Err(AdaSenseError::shard(format!("unsupported report flags {flags:#06x}")));
        }
        let mut cursor = ByteCursor::new(&bytes[8..]);
        let controller = decode_str(&mut cursor)?;
        let stats = FleetStats::decode_from(&mut cursor)?;
        cursor.finish()?;
        Ok(Self { controller, stats })
    }

    /// Number of devices in the fleet.
    pub fn len(&self) -> u64 {
        self.stats.devices
    }

    /// Whether the fleet is empty.
    pub fn is_empty(&self) -> bool {
        self.stats.devices == 0
    }

    /// Total classified epochs across the population.
    pub fn total_epochs(&self) -> u64 {
        self.stats.epochs
    }

    /// Total simulated time across the population, in seconds (exact: the
    /// correctly rounded sum of every device's duration).
    pub fn total_duration_s(&self) -> f64 {
        self.stats.duration_s.value()
    }

    /// Mean recognition accuracy across the population (0–1).  [`f64::NAN`]
    /// for an empty fleet.
    pub fn mean_accuracy(&self) -> f64 {
        self.stats.accuracy.mean()
    }

    /// Devices that joined the cohort after fleet epoch 0 (late joiners).
    pub fn joined_devices(&self) -> u64 {
        self.stats.joined
    }

    /// Devices that departed before draining their full stream.
    pub fn departed_devices(&self) -> u64 {
        self.stats.departed
    }

    /// Peak number of simultaneously active devices over the fleet timeline
    /// (the maximum prefix sum of the per-epoch lifetime deltas).
    pub fn active_peak(&self) -> u64 {
        self.stats.active_peak()
    }

    /// Mean average sensor current across the population, in µA.  [`f64::NAN`]
    /// for an empty fleet.
    pub fn mean_current_ua(&self) -> f64 {
        self.stats.current_ua.mean()
    }

    /// The `p`-th percentile (nearest-rank, `0 < p <= 100`) of per-device
    /// accuracy, answered from the mergeable sketch (a magnitude-truncated
    /// bucket representative within 2^-12 relative error; see
    /// [`QuantileSketch::percentile`](crate::shard::QuantileSketch::percentile)).
    /// [`f64::NAN`] for an empty fleet (a percentile of nothing is undefined,
    /// and any numeric stand-in would read as a real accuracy).
    pub fn accuracy_percentile(&self, p: f64) -> f64 {
        self.stats.accuracy.percentile(p)
    }

    /// The `p`-th percentile (nearest-rank, sketch-answered) of per-device
    /// average current, µA.  [`f64::NAN`] for an empty fleet.
    pub fn current_percentile(&self, p: f64) -> f64 {
        self.stats.current_ua.percentile(p)
    }

    /// The `p`-th percentile (nearest-rank, sketch-answered) of the
    /// population's residency fraction in `config`.  [`f64::NAN`] for an
    /// empty fleet.
    pub fn residency_percentile(&self, config: SensorConfig, p: f64) -> f64 {
        self.stats.residency[config.index()].percentile(p)
    }

    /// Mean fraction of the population's time spent in `config` (0–1).
    /// [`f64::NAN`] for an empty fleet.
    pub fn mean_residency_fraction(&self, config: SensorConfig) -> f64 {
        self.stats.residency[config.index()].mean()
    }

    /// Mean fraction of fault-exposed classified epochs across the population
    /// (0–1).  [`f64::NAN`] for an empty fleet.
    pub fn mean_faulted_fraction(&self) -> f64 {
        self.stats.faulted_fraction.mean()
    }

    /// Total epochs cascade backends answered at their cheap first stage.
    pub fn total_early_exit_epochs(&self) -> u64 {
        self.stats.early_exit_epochs
    }

    /// Total epochs cascade backends escalated to their full second stage.
    pub fn total_escalated_epochs(&self) -> u64 {
        self.stats.escalated_epochs
    }

    /// Fraction of cascade-classified epochs that exited at the first stage
    /// (0–1).  [`f64::NAN`] when no device ran a cascade backend.
    pub fn cascade_exit_rate(&self) -> f64 {
        let total = self.stats.early_exit_epochs + self.stats.escalated_epochs;
        if total == 0 {
            f64::NAN
        } else {
            self.stats.early_exit_epochs as f64 / total as f64
        }
    }

    /// Accuracy over the epochs the cascade's first stage answered (0–1).
    /// [`f64::NAN`] when no epoch exited early.
    pub fn early_exit_accuracy(&self) -> f64 {
        if self.stats.early_exit_epochs == 0 {
            f64::NAN
        } else {
            self.stats.early_exit_correct as f64 / self.stats.early_exit_epochs as f64
        }
    }

    /// Accuracy over the epochs the cascade escalated to its second stage
    /// (0–1).  [`f64::NAN`] when no epoch escalated.
    pub fn escalated_accuracy(&self) -> f64 {
        if self.stats.escalated_epochs == 0 {
            f64::NAN
        } else {
            self.stats.escalated_correct as f64 / self.stats.escalated_epochs as f64
        }
    }

    /// Total classified epochs transmitted under `policy` across the
    /// population (0 when transmission modelling is off).
    pub fn tx_epochs(&self, policy: TxPolicy) -> u64 {
        self.stats.tx_epochs[policy.index()]
    }

    /// Total payload bytes transmitted under `policy`.
    pub fn tx_bytes(&self, policy: TxPolicy) -> u64 {
        self.stats.tx_bytes[policy.index()]
    }

    /// Total radio charge spent under `policy`, in µC (exact sum).
    pub fn tx_charge_uc(&self, policy: TxPolicy) -> f64 {
        self.stats.tx_charge_uc[policy.index()].value()
    }

    /// Total payload bytes transmitted across all policies.
    pub fn total_tx_bytes(&self) -> u64 {
        self.stats.tx_bytes.iter().sum()
    }

    /// Total radio charge across all policies, in µC.
    pub fn total_tx_charge_uc(&self) -> f64 {
        self.stats.tx_charge_uc.iter().map(crate::shard::ExactSum::value).sum()
    }

    /// Mean payload size per epoch under `policy`, in bytes.  [`f64::NAN`]
    /// when no epoch transmitted under the policy.
    pub fn tx_mean_bytes(&self, policy: TxPolicy) -> f64 {
        let epochs = self.stats.tx_epochs[policy.index()];
        if epochs == 0 {
            f64::NAN
        } else {
            self.stats.tx_bytes[policy.index()] as f64 / epochs as f64
        }
    }

    /// Mean radio charge per epoch under `policy`, in µC.  [`f64::NAN`] when
    /// no epoch transmitted under the policy.
    pub fn tx_mean_charge_uc(&self, policy: TxPolicy) -> f64 {
        let epochs = self.stats.tx_epochs[policy.index()];
        if epochs == 0 {
            f64::NAN
        } else {
            self.stats.tx_charge_uc[policy.index()].value() / epochs as f64
        }
    }

    /// Groups the population by routine, returning one [`RoutineBreakdown`]
    /// per distinct routine label, sorted by label.
    pub fn routine_breakdown(&self) -> Vec<RoutineBreakdown> {
        self.stats
            .routines
            .iter()
            .map(|(routine, group)| RoutineBreakdown {
                routine: routine.clone(),
                devices: group.devices as usize,
                mean_accuracy: group.mean_of(&group.accuracy),
                mean_current_ua: group.mean_of(&group.current_ua),
                mean_faulted_fraction: group.mean_of(&group.faulted_fraction),
            })
            .collect()
    }

    /// Groups the population by inference backend, returning one
    /// [`BackendBreakdown`] per distinct backend label, sorted by label.
    pub fn backend_breakdown(&self) -> Vec<BackendBreakdown> {
        self.stats
            .backends
            .iter()
            .map(|(backend, group)| BackendBreakdown {
                backend: backend.clone(),
                devices: group.devices as usize,
                mean_accuracy: group.mean_of(&group.accuracy),
                mean_current_ua: group.mean_of(&group.current_ua),
                epochs: group.epochs as usize,
            })
            .collect()
    }

    /// Renders the population percentiles, the per-state mean residencies and
    /// the per-routine / per-backend breakdowns as a table.  Undefined
    /// statistics (the [`f64::NAN`] sentinel of an empty fleet or group) are
    /// printed as `-` instead of fabricating a numeric figure.
    pub fn to_table_string(&self) -> String {
        let mut out = format!(
            "fleet of {} devices under {}\n\
             metric            p50      p90      p99     mean\n",
            self.len(),
            self.controller
        );
        out.push_str(&format!(
            "current(uA)  {} {} {} {}\n",
            cell(self.current_percentile(50.0), 8, 1),
            cell(self.current_percentile(90.0), 8, 1),
            cell(self.current_percentile(99.0), 8, 1),
            cell(self.mean_current_ua(), 8, 1)
        ));
        out.push_str(&format!(
            "accuracy(%)  {} {} {} {}\n",
            cell(100.0 * self.accuracy_percentile(50.0), 8, 2),
            cell(100.0 * self.accuracy_percentile(90.0), 8, 2),
            cell(100.0 * self.accuracy_percentile(99.0), 8, 2),
            cell(100.0 * self.mean_accuracy(), 8, 2)
        ));
        out.push_str("residency (population mean, SPOT states):\n");
        for config in SensorConfig::paper_pareto_front() {
            let fraction = self.mean_residency_fraction(config);
            out.push_str(&format!("  {:<12} {}%\n", config.label(), cell(100.0 * fraction, 6, 1)));
        }
        out.push_str("per-routine breakdown:\n");
        for group in self.routine_breakdown() {
            out.push_str(&format!(
                "  {:<16} {:>5} devices  acc {}%  current {} uA  faulted {}%\n",
                group.routine,
                group.devices,
                cell(100.0 * group.mean_accuracy, 6, 2),
                cell(group.mean_current_ua, 7, 1),
                cell(100.0 * group.mean_faulted_fraction, 5, 1)
            ));
        }
        out.push_str("per-backend breakdown:\n");
        for group in self.backend_breakdown() {
            out.push_str(&format!(
                "  {:<16} {:>5} devices  acc {}%  current {} uA  epochs {:>7}\n",
                group.backend,
                group.devices,
                cell(100.0 * group.mean_accuracy, 6, 2),
                cell(group.mean_current_ua, 7, 1),
                group.epochs
            ));
        }
        if self.stats.early_exit_epochs + self.stats.escalated_epochs > 0 {
            out.push_str(&format!(
                "cascade: exit rate {}%  stage-1 acc {}%  stage-2 acc {}%  ({} early / {} escalated)\n",
                cell(100.0 * self.cascade_exit_rate(), 5, 1),
                cell(100.0 * self.early_exit_accuracy(), 6, 2),
                cell(100.0 * self.escalated_accuracy(), 6, 2),
                self.stats.early_exit_epochs,
                self.stats.escalated_epochs
            ));
        }
        if self.stats.tx_epochs.iter().sum::<u64>() > 0 {
            out.push_str("transmission breakdown:\n");
            for policy in TxPolicy::ALL {
                let index = policy.index();
                out.push_str(&format!(
                    "  {:<12} {:>7} epochs  {:>10} B  {} B/epoch  {} uC/epoch\n",
                    policy.label(),
                    self.stats.tx_epochs[index],
                    self.stats.tx_bytes[index],
                    cell(self.tx_mean_bytes(policy), 7, 1),
                    cell(self.tx_mean_charge_uc(policy), 8, 1)
                ));
            }
        }
        out
    }
}

/// Formats one table cell: right-aligned to `width` with `prec` decimals, or
/// a right-aligned `-` when the value is the undefined-statistic [`f64::NAN`]
/// sentinel (a fabricated number would read as a real figure).
fn cell(value: f64, width: usize, prec: usize) -> String {
    if value.is_nan() {
        format!("{:>width$}", "-")
    } else {
        format!("{value:>width$.prec$}")
    }
}

/// Arithmetic mean of an iterator of values; [`f64::NAN`] for an empty input
/// — a fabricated 0 would read as a real figure.  Shared with the experiment
/// reports in [`crate::experiments`].
pub(crate) fn mean(values: impl Iterator<Item = f64>) -> f64 {
    let mut sum = 0.0;
    let mut count = 0usize;
    for v in values {
        sum += v;
        count += 1;
    }
    if count == 0 {
        f64::NAN
    } else {
        sum / count as f64
    }
}

/// A fleet run that kept its per-device rows: the mergeable [`FleetReport`]
/// plus one [`DeviceSummary`] per device.  Produced by
/// [`FleetScheduler::run_collect`] and [`FleetScheduler::run_with_feeds`] for
/// the workloads that need row-level detail in RAM (replay gates, per-device
/// assertions); memory grows with the cohort, so bounded-memory paths use
/// [`FleetScheduler::run`] or [`FleetScheduler::run_shard`] instead.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetRun {
    /// The mergeable population report.
    pub report: FleetReport,
    /// One summary per device: the scenario cohort first (by device id), then
    /// any feed cohort in the order given.
    pub summaries: Vec<DeviceSummary>,
}

/// The parallel fleet scheduler: a worker pool over a shared job queue.
#[derive(Debug, Clone, Copy)]
pub struct FleetScheduler<'a> {
    spec: &'a ExperimentSpec,
    system: &'a TrainedSystem,
    threads: usize,
}

impl<'a> FleetScheduler<'a> {
    /// Creates a scheduler around a trained system.  The worker count defaults
    /// to the machine's available parallelism; results never depend on it.
    pub fn new(spec: &'a ExperimentSpec, system: &'a TrainedSystem) -> Self {
        Self { spec, system, threads: 0 }
    }

    /// Pins the number of worker threads (`0` = available parallelism).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// The number of worker threads the scheduler will spawn.
    pub fn worker_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism().map(usize::from).unwrap_or(1)
        }
    }

    /// Runs `fleet`: every device plays its own randomized scenario through a
    /// [`DeviceRuntime`], chunks of devices tick in lockstep with batched
    /// classification, and the chunks are distributed over the worker pool.
    ///
    /// Memory is **bounded**: completed rows fold into the mergeable report
    /// and are dropped, so a million-device cohort costs no more RAM than a
    /// hundred-device one.  Use [`run_collect`](FleetScheduler::run_collect)
    /// to keep the rows, or [`run_shard`](FleetScheduler::run_shard) to
    /// stream them to an on-disk spool.
    ///
    /// The report is bit-identical for any worker count because device seeds
    /// and chunk boundaries depend only on the spec and every report
    /// statistic is independent of the chunk completion order.
    ///
    /// Deprecated in favor of the builder: this is a thin wrapper kept for
    /// compatibility, equivalent to
    /// [`builder()`](FleetScheduler::builder)`.spec(fleet).run()?.report`.
    ///
    /// # Errors
    ///
    /// Returns [`AdaSenseError::InvalidSpec`] for degenerate specs and
    /// propagates per-device simulation errors.
    pub fn run(&self, fleet: &FleetSpec) -> Result<FleetReport, AdaSenseError> {
        Ok(self.builder().spec(fleet).run()?.report)
    }

    /// Runs the devices of one [`ShardRange`] of `fleet`, streaming every
    /// completed [`DeviceSummary`] row to `sink` (a
    /// [`SpoolWriter`](crate::shard::SpoolWriter) for on-disk spooling,
    /// [`DiscardSink`] for report-only runs) and returning the shard's
    /// mergeable report.  Memory is bounded: no row outlives its sink push.
    ///
    /// Rows reach the sink grouped by lockstep chunk but in chunk-*completion*
    /// order, which depends on worker scheduling — consumers needing an order
    /// must sort by `device_id`.  The report is insensitive to that order, so
    /// it stays bit-identical at any worker count, and shard reports
    /// [`merge`](FleetReport::merge) into exactly the monolithic
    /// [`run`](FleetScheduler::run) report (canonically in ascending shard
    /// order; see [`FleetSpec::shards`]).
    ///
    /// Deprecated in favor of the builder: this is a thin wrapper kept for
    /// compatibility, equivalent to [`builder()`](FleetScheduler::builder)
    /// `.spec(fleet).shard(range).sink(sink).run()?.report`.
    ///
    /// # Errors
    ///
    /// Returns [`AdaSenseError::InvalidSpec`] for degenerate specs or a range
    /// outside the fleet, and propagates per-device and sink errors.
    pub fn run_shard(
        &self,
        fleet: &FleetSpec,
        range: ShardRange,
        sink: &mut dyn SummarySink,
    ) -> Result<FleetReport, AdaSenseError> {
        Ok(self.builder().spec(fleet).shard(range).sink(sink).run()?.report)
    }

    /// Runs `fleet` like [`run`](FleetScheduler::run) but keeps every
    /// [`DeviceSummary`] row in RAM, returned in device-id order alongside
    /// the report.  Memory grows with the cohort; prefer
    /// [`run`](FleetScheduler::run) or
    /// [`run_shard`](FleetScheduler::run_shard) for large fleets.
    ///
    /// Deprecated in favor of the builder: this is a thin wrapper kept for
    /// compatibility, equivalent to
    /// [`builder()`](FleetScheduler::builder)`.spec(fleet).collect().run()`.
    ///
    /// # Errors
    ///
    /// Returns [`AdaSenseError::InvalidSpec`] for degenerate specs and
    /// propagates per-device simulation errors.
    pub fn run_collect(&self, fleet: &FleetSpec) -> Result<FleetRun, AdaSenseError> {
        fleet.validate()?;
        self.builder().spec(fleet).collect().run()
    }

    /// Runs `fleet` with a cohort of externally fed devices alongside the
    /// scenario-driven ones: live telemetry feeds ([`ExternalDevice`]) join
    /// the same worker pool, tick in the same lockstep chunks of
    /// [`FleetSpec::lockstep_devices`], and batch their classifier calls the
    /// same way.  `fleet.devices` may be `0` for a feed-only run.
    ///
    /// The summaries list the scenario cohort first (by device id), then the
    /// feed cohort in the order given.  Scenario rows are bit-identical to
    /// [`run_collect`](FleetScheduler::run_collect); a feed row is
    /// bit-identical to the run that produced its trace when the feed replays
    /// a recording (the `telemetry_replay` binary gates exactly that in CI).
    ///
    /// Deprecated in favor of the builder: this is a thin wrapper kept for
    /// compatibility, equivalent to [`builder()`](FleetScheduler::builder)
    /// `.spec(fleet).feeds(feeds).collect().run()`.
    ///
    /// # Errors
    ///
    /// Returns [`AdaSenseError::InvalidSpec`] for degenerate specs (including
    /// no devices in either cohort) and propagates per-device errors.
    pub fn run_with_feeds(
        &self,
        fleet: &FleetSpec,
        feeds: Vec<ExternalDevice>,
    ) -> Result<FleetRun, AdaSenseError> {
        self.builder().spec(fleet).feeds(feeds).collect().run()
    }

    /// Runs an explicit list of `(scenario, controller)` simulations over the
    /// worker pool, returning their reports in job order.  This is the runner
    /// behind the experiment sweeps (Figs. 6 & 7).
    ///
    /// Deprecated in favor of the builder: this is a thin wrapper kept for
    /// compatibility, equivalent to
    /// [`builder()`](FleetScheduler::builder)`.sweep(jobs)`.
    ///
    /// # Errors
    ///
    /// Propagates the first simulation error encountered.
    pub fn run_scenarios(
        &self,
        jobs: &[(ScenarioSpec, ControllerKind)],
    ) -> Result<Vec<SimulationReport>, AdaSenseError> {
        self.builder().sweep(jobs)
    }

    /// Opens a [`FleetRunBuilder`]: the single entry point behind every way of
    /// driving a fleet.  Pick a [`spec`](FleetRunBuilder::spec), optionally
    /// add [`feeds`](FleetRunBuilder::feeds), a
    /// [`shard`](FleetRunBuilder::shard) range, a streaming
    /// [`sink`](FleetRunBuilder::sink) or in-RAM row
    /// [`collect`](FleetRunBuilder::collect)ion, then call
    /// [`run`](FleetRunBuilder::run) (or [`sweep`](FleetRunBuilder::sweep)
    /// for explicit scenario lists).
    pub fn builder<'s>(&self) -> FleetRunBuilder<'a, 's> {
        FleetRunBuilder {
            scheduler: *self,
            fleet: None,
            feeds: Vec::new(),
            intake: None,
            range: None,
            sink: None,
            collect: false,
        }
    }

    /// The exact sample source a fleet device runs over: the plan's realized
    /// scenario played through the simulated accelerometer, wrapped in the
    /// population's fault injector.  Exposed so replay tooling can rebuild a
    /// device's world outside the scheduler.
    pub fn device_source(
        &self,
        fleet: &FleetSpec,
        plan: &DevicePlan,
    ) -> FaultInjector<ScenarioSource> {
        FaultInjector::for_device(
            ScenarioSource::new(self.spec, &plan.scenario),
            fleet.population.fault,
            plan.scenario.duration_s(),
            plan.seed,
        )
    }

    /// Runs one lockstep chunk of scenario-driven devices to completion.
    fn run_chunk(
        &self,
        fleet: &FleetSpec,
        device_ids: std::ops::Range<u64>,
    ) -> Result<Vec<DeviceSummary>, AdaSenseError> {
        let chunk_len = (device_ids.end - device_ids.start) as usize;
        let mut plans = Vec::with_capacity(chunk_len);
        let mut backends = Vec::with_capacity(chunk_len);
        let mut runtimes = Vec::with_capacity(chunk_len);
        for device_id in device_ids {
            let plan = fleet.device_plan(device_id);
            let duration_s = plan.scenario.duration_s();
            let source = self.device_source(fleet, &plan);
            let mut runtime = DeviceRuntime::for_source(
                self.spec,
                self.system,
                fleet.controller,
                source,
                duration_s,
            )?
            .with_recording(false)
            .with_classifier(self.system.backend(plan.backend));
            if let Some(ratio) = fleet.tx_ratio {
                runtime = runtime.with_tx(TxSetup::ble(ratio).with_seed(plan.seed));
            }
            backends.push(plan.backend);
            plans.push(plan);
            runtimes.push(runtime);
        }

        self.run_lockstep(&mut runtimes, &backends);

        Ok(plans
            .into_iter()
            .zip(runtimes)
            .map(|(plan, runtime)| {
                let tally = runtime.cascade_tally();
                let tx = runtime.tx_tally();
                DeviceSummary {
                    device_id: plan.device_id,
                    seed: plan.seed,
                    routine: plan.routine,
                    backend: plan.backend.label().to_string(),
                    faulted_epochs: runtime.source().faulted_captures(),
                    epochs: runtime.epochs(),
                    correct_epochs: runtime.correct_epochs(),
                    early_exit_epochs: tally.early_exit_epochs,
                    early_exit_correct: tally.early_exit_correct,
                    escalated_epochs: tally.escalated_epochs,
                    escalated_correct: tally.escalated_correct,
                    accuracy: runtime.accuracy(),
                    average_current_ua: runtime.average_current_ua(),
                    total_charge_uc: runtime.total_charge().micro_coulombs(),
                    duration_s: runtime.elapsed_s(),
                    residency_s: runtime.residency_seconds().to_vec(),
                    tx_epochs: tx.epochs.to_vec(),
                    tx_bytes: tx.bytes.to_vec(),
                    tx_charge_uc: tx.charge_uc.to_vec(),
                    start_epoch: 0,
                    departed: false,
                }
            })
            .collect())
    }

    /// Builds the runtime driving one externally fed device, returning it
    /// alongside the metadata its summary row will carry.
    fn feed_runtime(
        &self,
        fleet: &FleetSpec,
        feed: ExternalDevice,
    ) -> Result<(FeedMeta, DeviceRuntime<'a, Box<dyn SampleSource + Send>>), AdaSenseError> {
        let ExternalDevice {
            device_id,
            seed,
            routine,
            backend,
            duration_s,
            start_epoch,
            departed,
            source,
        } = feed;
        let mut runtime = match duration_s {
            Some(duration_s) => DeviceRuntime::for_source(
                self.spec,
                self.system,
                fleet.controller,
                source,
                duration_s,
            )?,
            None => DeviceRuntime::new(self.spec, self.system, fleet.controller, source),
        }
        .with_recording(false)
        .with_classifier(self.system.backend(backend));
        if let Some(ratio) = fleet.tx_ratio {
            runtime = runtime.with_tx(TxSetup::ble(ratio).with_seed(seed));
        }
        Ok((FeedMeta { device_id, seed, routine, backend, start_epoch, departed }, runtime))
    }

    /// Finalizes one externally fed device into its summary row.  Fault
    /// exposure is a capture-side property the feed does not carry, so the
    /// row always reports `faulted_epochs == 0`.
    fn feed_summary<S: SampleSource>(
        meta: FeedMeta,
        runtime: &DeviceRuntime<'_, S>,
    ) -> DeviceSummary {
        let tally = runtime.cascade_tally();
        let tx = runtime.tx_tally();
        DeviceSummary {
            device_id: meta.device_id,
            seed: meta.seed,
            routine: meta.routine,
            backend: meta.backend.label().to_string(),
            faulted_epochs: 0,
            epochs: runtime.epochs(),
            correct_epochs: runtime.correct_epochs(),
            early_exit_epochs: tally.early_exit_epochs,
            early_exit_correct: tally.early_exit_correct,
            escalated_epochs: tally.escalated_epochs,
            escalated_correct: tally.escalated_correct,
            accuracy: runtime.accuracy(),
            average_current_ua: runtime.average_current_ua(),
            total_charge_uc: runtime.total_charge().micro_coulombs(),
            duration_s: runtime.elapsed_s(),
            residency_s: runtime.residency_seconds().to_vec(),
            tx_epochs: tx.epochs.to_vec(),
            tx_bytes: tx.bytes.to_vec(),
            tx_charge_uc: tx.charge_uc.to_vec(),
            start_epoch: meta.start_epoch,
            departed: meta.departed,
        }
    }

    /// Runs one lockstep chunk of externally fed devices until every feed
    /// exhausts (or hits its tick budget).  Fed devices inherit the fleet's
    /// controller and transmission setup; a feed's tx seed is its carried
    /// [`ExternalDevice::seed`], so a replayed scenario device prices and
    /// compresses exactly as the original did.
    fn run_feed_chunk(
        &self,
        fleet: &FleetSpec,
        feeds: Vec<ExternalDevice>,
    ) -> Result<Vec<DeviceSummary>, AdaSenseError> {
        let mut metas = Vec::with_capacity(feeds.len());
        let mut backends = Vec::with_capacity(feeds.len());
        let mut runtimes = Vec::with_capacity(feeds.len());
        for feed in feeds {
            let (meta, runtime) = self.feed_runtime(fleet, feed)?;
            backends.push(meta.backend);
            metas.push(meta);
            runtimes.push(runtime);
        }

        self.run_lockstep(&mut runtimes, &backends);

        Ok(metas
            .into_iter()
            .zip(runtimes)
            .map(|(meta, runtime)| Self::feed_summary(meta, &runtime))
            .collect())
    }

    /// Ticks every live device of a chunk once per iteration, batching all
    /// pending classifications of the tick into one forward pass *per
    /// backend* (devices on different backends cannot share a matrix product,
    /// but each backend group still batches).  The pools retain their row
    /// buffers, so the per-tick loop allocates nothing once they have grown.
    /// Devices are drained into the pools in device order and each pool is
    /// resolved in that same order, so the batch composition — and with it
    /// every per-row result — depends only on the spec, never on the worker
    /// count.  Devices whose source exhausts simply drop out of the lockstep.
    fn run_lockstep<S: crate::runtime::SampleSource>(
        &self,
        runtimes: &mut [DeviceRuntime<'_, S>],
        backends: &[BackendKind],
    ) {
        let mut scratch = LockstepScratch::default();
        while self.lockstep_tick(runtimes, backends, &mut scratch) {}
    }

    /// Advances every live device of a cohort by one tick (one iteration of
    /// [`run_lockstep`](Self::run_lockstep)'s loop), returning whether any
    /// device is still live.  Per-row results are independent of the batch
    /// composition, so the cohort may grow or shrink between ticks — the
    /// churn entry point [`FleetRunBuilder::intake`] relies on exactly that.
    fn lockstep_tick<S: crate::runtime::SampleSource>(
        &self,
        runtimes: &mut [DeviceRuntime<'_, S>],
        backends: &[BackendKind],
        scratch: &mut LockstepScratch,
    ) -> bool {
        let LockstepScratch { pools, predictions, stages } = scratch;
        let mut any_live = false;
        for pool in pools.iter_mut() {
            pool.reset();
        }
        for (i, runtime) in runtimes.iter_mut().enumerate() {
            if runtime.is_complete() {
                continue;
            }
            match runtime.begin_tick() {
                TickPhase::Exhausted => {}
                TickPhase::Idle(_) => any_live = true,
                TickPhase::Classify => {
                    any_live = true;
                    if runtime.batches_with_unified() {
                        pools[backend_index(backends[i])].push(i, runtime.pending_features());
                    } else {
                        // Bank classifiers are per-configuration; classify
                        // this device individually.
                        let (prediction, stage) = runtime
                            .active_classifier()
                            .predict_with_stage(runtime.pending_features());
                        runtime.complete_tick_staged(prediction, stage);
                    }
                }
            }
        }
        if !any_live {
            return false;
        }
        for (pool, kind) in pools.iter().zip(BackendKind::ALL) {
            if pool.used == 0 {
                continue;
            }
            self.system.backend(kind).predict_batch_staged(pool.rows(), predictions, stages);
            for ((&i, prediction), stage) in
                pool.members.iter().zip(predictions.drain(..)).zip(stages.drain(..))
            {
                runtimes[i].complete_tick_staged(prediction, stage);
            }
        }
        true
    }

    /// Drives a churning cohort fed through a channel: devices admitted
    /// between ticks as they arrive on `intake`, completed devices finalized
    /// immediately at their last completed epoch and handed to `on_row`.
    /// Returns once the cohort has drained *and* the intake has
    /// disconnected.
    fn run_intake_churn(
        &self,
        fleet: &FleetSpec,
        intake: std::sync::mpsc::Receiver<ExternalDevice>,
        on_row: &mut dyn FnMut(DeviceSummary) -> Result<(), AdaSenseError>,
    ) -> Result<(), AdaSenseError> {
        let mut metas: Vec<FeedMeta> = Vec::new();
        let mut backends: Vec<BackendKind> = Vec::new();
        let mut runtimes: Vec<DeviceRuntime<'a, Box<dyn SampleSource + Send>>> = Vec::new();
        let mut scratch = LockstepScratch::default();
        let mut open = true;
        loop {
            // Admit arrivals between ticks: block only when the cohort is
            // empty (nothing to tick anyway), otherwise drain without
            // waiting.
            loop {
                let feed = if runtimes.is_empty() && open {
                    match intake.recv() {
                        Ok(feed) => Some(feed),
                        Err(_) => {
                            open = false;
                            None
                        }
                    }
                } else {
                    match intake.try_recv() {
                        Ok(feed) => Some(feed),
                        Err(std::sync::mpsc::TryRecvError::Empty) => None,
                        Err(std::sync::mpsc::TryRecvError::Disconnected) => {
                            open = false;
                            None
                        }
                    }
                };
                let Some(feed) = feed else { break };
                let (meta, runtime) = self.feed_runtime(fleet, feed)?;
                backends.push(meta.backend);
                metas.push(meta);
                runtimes.push(runtime);
            }
            if runtimes.is_empty() {
                if open {
                    continue;
                }
                return Ok(());
            }
            self.lockstep_tick(&mut runtimes, &backends, &mut scratch);
            // Finalize and evict completed devices so a drained feed's row is
            // visible (to the shared aggregate and any sink) without waiting
            // for the rest of the cohort.  Eviction order is irrelevant to
            // the results: rows are bit-identical per device regardless of
            // batch composition.
            let mut i = 0;
            while i < runtimes.len() {
                if runtimes[i].is_complete() {
                    let runtime = runtimes.swap_remove(i);
                    let meta = metas.swap_remove(i);
                    backends.swap_remove(i);
                    on_row(Self::feed_summary(meta, &runtime))?;
                } else {
                    i += 1;
                }
            }
        }
    }
}

/// The retained per-tick buffers of one lockstep cohort (batch pools and
/// prediction scratch), kept across ticks so the loop allocates nothing once
/// they have grown.
struct LockstepScratch {
    pools: Vec<BatchPool>,
    predictions: Vec<Prediction>,
    stages: Vec<CascadeStage>,
}

impl Default for LockstepScratch {
    fn default() -> Self {
        Self {
            pools: BackendKind::ALL.iter().map(|_| BatchPool::default()).collect(),
            predictions: Vec::new(),
            stages: Vec::new(),
        }
    }
}

/// One configurable fleet run: the unified front door behind
/// [`FleetScheduler::run`], [`run_shard`](FleetScheduler::run_shard),
/// [`run_collect`](FleetScheduler::run_collect),
/// [`run_with_feeds`](FleetScheduler::run_with_feeds) and
/// [`run_scenarios`](FleetScheduler::run_scenarios), which all survive as
/// thin wrappers over it.  Built by [`FleetScheduler::builder`].
///
/// Every option composes with every other, which the legacy entry points
/// never allowed: a sharded run can keep its rows, a feed cohort can stream
/// to a spool, a reactor-fed live fleet can run report-only in bounded
/// memory.  The report is bit-identical across any combination of worker
/// count, sharding and row handling because it is a function of the row
/// multiset only.
///
/// ```
/// # use adasense::prelude::*;
/// # let exp = ExperimentSpec::quick();
/// # let system = TrainedSystem::train(&exp).unwrap();
/// let fleet = FleetSpec::new(12, 6.0, 42);
/// let scheduler = FleetScheduler::new(&exp, &system);
/// // The builder subsumes `run`, `run_collect`, `run_shard`, ...
/// let report = scheduler.builder().spec(&fleet).run().unwrap().report;
/// let rows = scheduler.builder().spec(&fleet).collect().run().unwrap();
/// assert_eq!(rows.report, report);
/// assert_eq!(rows.summaries.len(), 12);
/// ```
pub struct FleetRunBuilder<'a, 's> {
    scheduler: FleetScheduler<'a>,
    fleet: Option<&'s FleetSpec>,
    feeds: Vec<ExternalDevice>,
    intake: Option<std::sync::mpsc::Receiver<ExternalDevice>>,
    range: Option<ShardRange>,
    sink: Option<&'s mut dyn SummarySink>,
    collect: bool,
}

impl std::fmt::Debug for FleetRunBuilder<'_, '_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FleetRunBuilder")
            .field("scheduler", &self.scheduler)
            .field("fleet", &self.fleet)
            .field("feeds", &self.feeds.len())
            .field("intake", &self.intake.is_some())
            .field("range", &self.range)
            .field("sink", &self.sink.is_some())
            .field("collect", &self.collect)
            .finish()
    }
}

impl<'a, 's> FleetRunBuilder<'a, 's> {
    /// Sets the fleet spec: the scenario-driven cohort, the controller, the
    /// lockstep chunking and the population model.  Required by
    /// [`run`](FleetRunBuilder::run); a feed-only run passes a spec with
    /// `devices: 0`.
    pub fn spec(mut self, fleet: &'s FleetSpec) -> Self {
        self.fleet = Some(fleet);
        self
    }

    /// Appends a cohort of externally fed devices ([`ExternalDevice`]): live
    /// telemetry feeds that join the same worker pool and lockstep batching
    /// as the scenario cohort.  May be called repeatedly; feeds accumulate.
    pub fn feeds(mut self, feeds: Vec<ExternalDevice>) -> Self {
        self.feeds.extend(feeds);
        self
    }

    /// Appends one externally fed device.
    pub fn feed(mut self, feed: ExternalDevice) -> Self {
        self.feeds.push(feed);
        self
    }

    /// Attaches a *live intake*: devices sent on the channel join the cohort
    /// between lockstep ticks, so the fleet can grow while it runs — the
    /// churn counterpart of the up-front [`feeds`](FleetRunBuilder::feeds)
    /// list.  Each arriving device runs until its source exhausts (a
    /// departing device's sender is simply dropped) and its row folds into
    /// the report the moment it completes.  The run finishes when the
    /// scenario cohort, the feed chunks *and* the intake have all drained:
    /// drop the sender to close the intake.
    pub fn intake(mut self, intake: std::sync::mpsc::Receiver<ExternalDevice>) -> Self {
        self.intake = Some(intake);
        self
    }

    /// Restricts the scenario cohort to one [`ShardRange`] of the fleet
    /// (defaults to the whole fleet).  Feeds are never sharded: every feed
    /// given to the builder runs regardless of the range.
    pub fn shard(mut self, range: ShardRange) -> Self {
        self.range = Some(range);
        self
    }

    /// Streams every completed [`DeviceSummary`] row to `sink` (e.g. a
    /// [`SpoolWriter`](crate::shard::SpoolWriter)).  Rows arrive grouped by
    /// lockstep chunk but in chunk-*completion* order; consumers needing an
    /// order must sort by `device_id`.  Without a sink, rows that are not
    /// [`collect`](FleetRunBuilder::collect)ed are dropped after folding
    /// into the report, keeping memory bounded.
    pub fn sink(mut self, sink: &'s mut dyn SummarySink) -> Self {
        self.sink = Some(sink);
        self
    }

    /// Keeps every [`DeviceSummary`] row in RAM: the returned
    /// [`FleetRun::summaries`] lists the scenario cohort first (in device-id
    /// order), then the feed cohort in the order given.  Memory grows with
    /// the cohort; leave off for large fleets.
    pub fn collect(mut self) -> Self {
        self.collect = true;
        self
    }

    /// Runs the configured fleet: scenario chunks and feed chunks share one
    /// worker pool, every completed row folds into the mergeable report (and
    /// reaches the sink, if any), and the report is bit-identical for any
    /// worker count.
    ///
    /// # Errors
    ///
    /// Returns [`AdaSenseError::InvalidSpec`] if no spec was given, for
    /// degenerate specs (including no devices in either cohort), or for a
    /// shard range outside the fleet; propagates per-device and sink errors.
    pub fn run(self) -> Result<FleetRun, AdaSenseError> {
        let Self { scheduler, fleet, feeds, intake, range, sink, collect } = self;
        let Some(fleet) = fleet else {
            return Err(AdaSenseError::invalid_spec(
                "FleetRunBuilder::run needs a fleet spec (FleetRunBuilder::spec)",
            ));
        };
        if fleet.devices > 0 {
            fleet.validate()?;
        } else {
            if feeds.is_empty() && intake.is_none() {
                return Err(AdaSenseError::invalid_spec(
                    "a fleet needs at least one device (scenario-driven or external)",
                ));
            }
            if fleet.lockstep_devices == 0 {
                return Err(AdaSenseError::invalid_spec("lockstep_devices must be non-zero"));
            }
            fleet.population.validate()?;
        }
        let range = range.unwrap_or_else(|| ShardRange::whole(fleet.devices));
        if range.start > range.end || range.end > fleet.devices {
            return Err(AdaSenseError::invalid_spec(format!(
                "shard range {range} does not fit a fleet of {} devices",
                fleet.devices
            )));
        }
        let chunk = fleet.lockstep_devices as u64;
        let chunks: Vec<std::ops::Range<u64>> = (0..range.len().div_ceil(chunk))
            .map(|c| (range.start + c * chunk)..(range.start + (c + 1) * chunk).min(range.end))
            .collect();
        // Feed sources are stateful and owned, so each feed chunk sits in a
        // take-once slot its job claims exactly once.
        let mut feed_chunks: Vec<Mutex<Option<Vec<ExternalDevice>>>> = Vec::new();
        let mut feeds = feeds.into_iter();
        loop {
            let group: Vec<ExternalDevice> = feeds.by_ref().take(fleet.lockstep_devices).collect();
            if group.is_empty() {
                break;
            }
            feed_chunks.push(Mutex::new(Some(group)));
        }
        let scenario_jobs = chunks.len();
        let feed_jobs = feed_chunks.len();
        // The intake receiver is stateful and owned like a feed chunk, so it
        // sits in the same kind of take-once slot.
        let intake_jobs = usize::from(intake.is_some());
        let intake = Mutex::new(intake);
        let mut discard = DiscardSink;
        let sink: &mut dyn SummarySink = sink.unwrap_or(&mut discard);
        // The aggregate and the sink share one lock: rows are observed and
        // spooled under it in chunk-completion order.  The report is a
        // function of the row *multiset*, so that order never shows; the
        // collected rows are reassembled in job order below, so theirs does
        // not either.
        let shared = Mutex::new((FleetStats::new(), sink));
        let observe = |rows: &[DeviceSummary]| -> Result<(), AdaSenseError> {
            let mut guard = shared.lock().expect("no worker panicked holding the aggregate");
            let (stats, sink) = &mut *guard;
            for row in rows {
                stats.observe(row);
                sink.push(row)?;
            }
            Ok(())
        };
        let jobs = scenario_jobs + feed_jobs + intake_jobs;
        let kept = run_jobs(scheduler.worker_threads(), jobs, |i| {
            if i >= scenario_jobs + feed_jobs {
                // The intake job folds each row in as its device completes,
                // so departures are visible before the run ends.
                let intake = intake
                    .lock()
                    .expect("no worker panicked holding the intake slot")
                    .take()
                    .expect("the intake is claimed exactly once");
                let mut rows = Vec::new();
                scheduler.run_intake_churn(fleet, intake, &mut |row| {
                    observe(std::slice::from_ref(&row))?;
                    if collect {
                        rows.push(row);
                    }
                    Ok(())
                })?;
                return Ok(rows);
            }
            let rows = if i < scenario_jobs {
                scheduler.run_chunk(fleet, chunks[i].clone())
            } else {
                let group = feed_chunks[i - scenario_jobs]
                    .lock()
                    .expect("no worker panicked holding a feed slot")
                    .take()
                    .expect("each feed chunk is claimed exactly once");
                scheduler.run_feed_chunk(fleet, group)
            }?;
            observe(&rows)?;
            Ok(if collect { rows } else { Vec::new() })
        })?;
        let summaries: Vec<DeviceSummary> = kept.into_iter().flatten().collect();
        let (stats, _) = shared.into_inner().expect("no worker panicked holding the aggregate");
        Ok(FleetRun {
            report: FleetReport { controller: fleet.controller.label(), stats },
            summaries,
        })
    }

    /// Runs an explicit list of `(scenario, controller)` simulations over the
    /// worker pool, returning their reports in job order.  Only the
    /// scheduler's worker count applies here; the fleet-shaped options
    /// (`spec`/`feeds`/`shard`/`sink`/`collect`) do not.
    ///
    /// # Errors
    ///
    /// Propagates the first simulation error encountered.
    pub fn sweep(
        self,
        jobs: &[(ScenarioSpec, ControllerKind)],
    ) -> Result<Vec<SimulationReport>, AdaSenseError> {
        let scheduler = self.scheduler;
        run_jobs(scheduler.worker_threads(), jobs.len(), |i| {
            let (scenario, controller) = &jobs[i];
            Simulator::new(scheduler.spec, scheduler.system)
                .with_controller(*controller)
                .run(scenario.clone())
        })
    }
}

/// The position of `kind` in [`BackendKind::ALL`], used to index the per-tick
/// batch pools.
fn backend_index(kind: BackendKind) -> usize {
    BackendKind::ALL.iter().position(|k| *k == kind).expect("ALL lists every backend kind")
}

/// A retained pool of feature-row buffers holding one backend's pending
/// classifications for the current lockstep tick.  The first `used` rows are
/// live; `members[r]` is the chunk-local device index that contributed row
/// `r`.
#[derive(Debug, Default)]
struct BatchPool {
    features: Vec<Vec<f64>>,
    members: Vec<usize>,
    used: usize,
}

impl BatchPool {
    /// Empties the pool for the next tick, keeping the row allocations.
    fn reset(&mut self) {
        self.members.clear();
        self.used = 0;
    }

    /// Appends `row` on behalf of device `member`.
    fn push(&mut self, member: usize, row: &[f64]) {
        self.members.push(member);
        if self.used == self.features.len() {
            self.features.push(Vec::new());
        }
        let dst = &mut self.features[self.used];
        dst.clear();
        dst.extend_from_slice(row);
        self.used += 1;
    }

    /// The live rows of this tick.
    fn rows(&self) -> &[Vec<f64>] {
        &self.features[..self.used]
    }
}

/// Runs `jobs` closures over `threads` workers pulling indices from a shared
/// atomic queue, collecting the results in job order.  Returns the first error
/// encountered; remaining workers stop picking up new jobs once one failed.
fn run_jobs<T, F>(threads: usize, jobs: usize, job: F) -> Result<Vec<T>, AdaSenseError>
where
    T: Send,
    F: Fn(usize) -> Result<T, AdaSenseError> + Sync,
{
    if jobs == 0 {
        return Ok(Vec::new());
    }
    let next = AtomicUsize::new(0);
    let failed = std::sync::atomic::AtomicBool::new(false);
    let results: Vec<Mutex<Option<Result<T, AdaSenseError>>>> =
        (0..jobs).map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for _ in 0..threads.clamp(1, jobs) {
            scope.spawn(|| loop {
                if failed.load(Ordering::Relaxed) {
                    break;
                }
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= jobs {
                    break;
                }
                let outcome = job(i);
                if outcome.is_err() {
                    failed.store(true, Ordering::Relaxed);
                }
                *results[i].lock().expect("no worker panicked holding the slot lock") =
                    Some(outcome);
            });
        }
    });

    let mut out = Vec::with_capacity(jobs);
    for slot in results {
        match slot.into_inner().expect("no worker panicked holding the slot lock") {
            Some(Ok(value)) => out.push(value),
            Some(Err(error)) => return Err(error),
            // A job may be unstarted only if an earlier job failed; surface that
            // error instead.
            None => break,
        }
    }
    if out.len() < jobs {
        // Some job failed (its slot held the error) or was skipped after a
        // failure; find and return the error.
        return Err(AdaSenseError::simulation("a fleet job failed before completing"));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulation::tests::shared_system;

    #[test]
    fn device_seeds_are_deterministic_and_decorrelated() {
        let a = device_seed(64, 0);
        assert_eq!(a, device_seed(64, 0), "same inputs must give the same seed");
        let seeds: std::collections::BTreeSet<u64> =
            (0..1000).map(|id| device_seed(64, id)).collect();
        assert_eq!(seeds.len(), 1000, "consecutive device ids must not collide");
        assert_ne!(device_seed(64, 1), device_seed(65, 1), "base seed must matter");
    }

    #[test]
    fn fleet_runs_are_bit_identical_across_worker_counts() {
        let (spec, system) = shared_system();
        let fleet = FleetSpec { lockstep_devices: 5, ..FleetSpec::new(12, 24.0, 7) };
        let single = FleetScheduler::new(spec, system).with_threads(1).run(&fleet).unwrap();
        for threads in [4, 8] {
            let parallel =
                FleetScheduler::new(spec, system).with_threads(threads).run(&fleet).unwrap();
            assert_eq!(single, parallel, "{threads}-thread run must be bit-identical");
            assert_eq!(single.encode(), parallel.encode(), "encodings must match bytewise");
        }
        assert_eq!(single.len(), 12);
        let collected = FleetScheduler::new(spec, system).run_collect(&fleet).unwrap();
        assert_eq!(collected.report, single, "collecting rows must not change the report");
        assert!(collected.summaries.iter().enumerate().all(|(i, d)| d.device_id == i as u64));
    }

    #[test]
    fn lockstep_chunking_does_not_change_the_results() {
        let (spec, system) = shared_system();
        let scheduler = FleetScheduler::new(spec, system).with_threads(2);
        let chunked = scheduler
            .run(&FleetSpec { lockstep_devices: 3, ..FleetSpec::new(8, 20.0, 11) })
            .unwrap();
        let unchunked = scheduler
            .run(&FleetSpec { lockstep_devices: 1, ..FleetSpec::new(8, 20.0, 11) })
            .unwrap();
        assert_eq!(chunked, unchunked, "batching must not change any device's outcome");
    }

    #[test]
    fn fleet_devices_match_standalone_simulations() {
        let (spec, system) = shared_system();
        let fleet = FleetSpec::new(4, 20.0, 3);
        let run = FleetScheduler::new(spec, system).with_threads(2).run_collect(&fleet).unwrap();
        for device in &run.summaries {
            let scenario = ScenarioSpec::random(fleet.setting, fleet.duration_s, device.seed);
            let standalone = Simulator::new(spec, system)
                .with_controller(fleet.controller)
                .run(scenario)
                .unwrap();
            assert_eq!(device.accuracy, standalone.accuracy());
            assert_eq!(device.average_current_ua, standalone.average_current_ua());
            assert_eq!(device.duration_s, standalone.duration_s);
        }
    }

    #[test]
    fn intensity_fleet_uses_the_bank_path() {
        let (spec, system) = shared_system();
        let fleet =
            FleetSpec { controller: ControllerKind::IntensityBased, ..FleetSpec::new(3, 12.0, 5) };
        let run = FleetScheduler::new(spec, system).with_threads(2).run_collect(&fleet).unwrap();
        assert_eq!(run.report.len(), 3);
        assert!(run.summaries.iter().all(|d| d.epochs > 0));
    }

    #[test]
    fn run_scenarios_preserves_job_order() {
        let (spec, system) = shared_system();
        let jobs = vec![
            (ScenarioSpec::sit_then_walk(6.0, 6.0), ControllerKind::StaticHigh),
            (
                ScenarioSpec::sit_then_walk(7.0, 5.0),
                ControllerKind::Spot { stability_threshold: 2 },
            ),
        ];
        let reports =
            FleetScheduler::new(spec, system).with_threads(2).run_scenarios(&jobs).unwrap();
        assert_eq!(reports.len(), 2);
        assert_eq!(reports[0].controller, jobs[0].1.label());
        assert_eq!(reports[1].controller, jobs[1].1.label());
        for (report, (scenario, controller)) in reports.iter().zip(&jobs) {
            let serial =
                Simulator::new(spec, system).with_controller(*controller).run(scenario.clone());
            assert_eq!(report, &serial.unwrap());
        }
    }

    #[test]
    fn degenerate_fleets_are_rejected() {
        let (spec, system) = shared_system();
        let scheduler = FleetScheduler::new(spec, system);
        assert!(scheduler.run(&FleetSpec::new(0, 30.0, 1)).is_err());
        assert!(scheduler.run(&FleetSpec::new(4, 1.0, 1)).is_err());
        assert!(scheduler
            .run(&FleetSpec { lockstep_devices: 0, ..FleetSpec::new(4, 30.0, 1) })
            .is_err());
    }

    #[test]
    fn errors_from_jobs_propagate() {
        let (spec, system) = shared_system();
        let jobs = vec![(
            ScenarioSpec::sit_then_walk(0.5, 0.5), // too short: simulation error
            ControllerKind::StaticHigh,
        )];
        assert!(FleetScheduler::new(spec, system).run_scenarios(&jobs).is_err());
    }

    #[test]
    fn channel_fed_cohorts_join_scenario_fleets() {
        use crate::ingest::{telemetry_channel, TraceRecorder};

        let (spec, system) = shared_system();
        let fleet = FleetSpec::new(4, 20.0, 3);
        let scheduler = FleetScheduler::new(spec, system).with_threads(2);
        let baseline = scheduler.run_collect(&fleet).unwrap();

        // Record every device's stream, then replay the recordings as a
        // channel-fed cohort running alongside the same scenario cohort.
        let mut feeds = Vec::new();
        let mut feeders = Vec::new();
        for device_id in 0..fleet.devices {
            let plan = fleet.device_plan(device_id);
            let recorder = TraceRecorder::new(scheduler.device_source(&fleet, &plan));
            let mut runtime = DeviceRuntime::for_source(
                spec,
                system,
                fleet.controller,
                recorder,
                plan.scenario.duration_s(),
            )
            .unwrap();
            runtime.run_to_completion();
            let trace = runtime.source().trace().clone();
            let (mut tx, source) = telemetry_channel(4);
            feeders.push(std::thread::spawn(move || tx.send_trace(&trace)));
            feeds.push(
                ExternalDevice::new(fleet.devices + device_id, source)
                    .with_metadata(plan.seed, plan.routine.clone())
                    .with_backend(plan.backend),
            );
        }
        let combined = scheduler.run_with_feeds(&fleet, feeds).unwrap();
        for feeder in feeders {
            feeder.join().expect("feeder thread").expect("all batches accepted");
        }

        assert_eq!(combined.summaries.len(), 2 * baseline.summaries.len());
        assert_eq!(
            combined.summaries[..baseline.summaries.len()],
            baseline.summaries[..],
            "scenario rows must be unchanged by the feed cohort"
        );
        for (scenario_row, feed_row) in
            baseline.summaries.iter().zip(&combined.summaries[baseline.summaries.len()..])
        {
            assert_eq!(feed_row.device_id, scenario_row.device_id + fleet.devices);
            assert_eq!(feed_row.seed, scenario_row.seed);
            assert_eq!(feed_row.routine, scenario_row.routine);
            assert_eq!(feed_row.backend, scenario_row.backend);
            assert_eq!(feed_row.epochs, scenario_row.epochs);
            assert_eq!(feed_row.correct_epochs, scenario_row.correct_epochs);
            assert_eq!(feed_row.accuracy, scenario_row.accuracy);
            assert_eq!(feed_row.average_current_ua, scenario_row.average_current_ua);
            assert_eq!(feed_row.total_charge_uc, scenario_row.total_charge_uc);
            assert_eq!(feed_row.duration_s, scenario_row.duration_s);
            assert_eq!(feed_row.residency_s, scenario_row.residency_s);
            assert_eq!(feed_row.tx_epochs, scenario_row.tx_epochs);
            assert_eq!(feed_row.tx_bytes, scenario_row.tx_bytes);
            assert_eq!(feed_row.tx_charge_uc, scenario_row.tx_charge_uc);
        }
    }

    #[test]
    fn feed_only_fleets_run_with_zero_scenario_devices() {
        use crate::ingest::{telemetry_channel, TraceRecorder};

        let (spec, system) = shared_system();
        let fleet = FleetSpec::new(1, 12.0, 5);
        let scheduler = FleetScheduler::new(spec, system).with_threads(2);
        let plan = fleet.device_plan(0);
        let recorder = TraceRecorder::new(scheduler.device_source(&fleet, &plan));
        let mut runtime = DeviceRuntime::for_source(
            spec,
            system,
            fleet.controller,
            recorder,
            plan.scenario.duration_s(),
        )
        .unwrap();
        runtime.run_to_completion();
        let epochs = runtime.epochs();
        let trace = runtime.source().trace().clone();

        let (mut tx, source) = telemetry_channel(2);
        let feeder = std::thread::spawn(move || tx.send_trace(&trace));
        let empty = FleetSpec { devices: 0, ..fleet };
        let report = scheduler
            .run_with_feeds(&empty, vec![ExternalDevice::new(7, source)])
            .expect("feed-only fleets are valid");
        feeder.join().expect("feeder thread").expect("all batches accepted");
        assert_eq!(report.summaries.len(), 1);
        assert_eq!(report.summaries[0].device_id, 7);
        assert_eq!(report.summaries[0].routine, "external");
        assert_eq!(report.summaries[0].epochs, epochs);
    }

    #[test]
    fn fleets_with_no_devices_at_all_are_rejected() {
        let (spec, system) = shared_system();
        let scheduler = FleetScheduler::new(spec, system);
        let empty = FleetSpec { devices: 0, ..FleetSpec::new(1, 12.0, 5) };
        assert!(scheduler.run_with_feeds(&empty, Vec::new()).is_err());
    }

    #[test]
    fn sharded_runs_merge_into_the_monolithic_report() {
        let (spec, system) = shared_system();
        let fleet = FleetSpec { lockstep_devices: 4, ..FleetSpec::new(12, 20.0, 7) };
        let scheduler = FleetScheduler::new(spec, system).with_threads(2);
        let monolithic = scheduler.run(&fleet).unwrap();
        for shards in [1, 3, 4, 6] {
            let ranges = fleet.shards(shards);
            assert_eq!(ranges.len(), shards);
            assert_eq!(ranges.iter().map(ShardRange::len).sum::<u64>(), fleet.devices);
            let mut merged = FleetReport::new(fleet.controller.label());
            for range in ranges {
                let part = scheduler.run_shard(&fleet, range, &mut DiscardSink).unwrap();
                merged.merge(&part).unwrap();
            }
            assert_eq!(merged, monolithic, "{shards} shards must merge into the monolithic run");
            assert_eq!(merged.encode(), monolithic.encode(), "byte equality at {shards} shards");
        }
    }

    #[test]
    fn run_shard_spools_every_row() {
        use crate::shard::{SpoolReader, SpoolWriter};

        let (spec, system) = shared_system();
        let fleet = FleetSpec { lockstep_devices: 3, ..FleetSpec::new(8, 20.0, 11) };
        let scheduler = FleetScheduler::new(spec, system).with_threads(4);
        let mut bytes = Vec::new();
        let mut writer = SpoolWriter::new(&mut bytes).unwrap();
        let report =
            scheduler.run_shard(&fleet, ShardRange::whole(fleet.devices), &mut writer).unwrap();
        assert_eq!(writer.rows(), fleet.devices);
        writer.finish().unwrap();

        let mut rows: Vec<DeviceSummary> =
            SpoolReader::new(&bytes[..]).unwrap().collect::<Result<_, _>>().unwrap();
        rows.sort_by_key(|r| r.device_id);
        let collected = scheduler.run_collect(&fleet).unwrap();
        assert_eq!(rows, collected.summaries, "spooled rows must round-trip bit-exactly");
        assert_eq!(report, collected.report);
    }

    #[test]
    fn tx_enabled_fleets_price_every_classified_epoch_deterministically() {
        let (spec, system) = shared_system();
        let fleet =
            FleetSpec { tx_ratio: Some(2), lockstep_devices: 4, ..FleetSpec::new(8, 24.0, 17) };
        let single = FleetScheduler::new(spec, system).with_threads(1).run(&fleet).unwrap();
        let parallel = FleetScheduler::new(spec, system).with_threads(4).run(&fleet).unwrap();
        assert_eq!(single, parallel, "tx fleets must stay worker-count deterministic");
        assert_eq!(single.encode(), parallel.encode(), "encodings must match bytewise");
        // Every classified epoch transmits under exactly one policy.
        assert_eq!(single.stats.tx_epochs.iter().sum::<u64>(), single.total_epochs());
        assert!(single.total_tx_bytes() > 0);
        assert!(single.total_tx_charge_uc() > 0.0);
        let text = single.to_table_string();
        assert!(text.contains("transmission breakdown:"), "missing tx section in:\n{text}");
        // A radio-off fleet keeps the section (and the counters) out entirely.
        let off = FleetScheduler::new(spec, system)
            .run(&FleetSpec { tx_ratio: None, ..fleet.clone() })
            .unwrap();
        assert_eq!(off.stats.tx_epochs.iter().sum::<u64>(), 0);
        assert!(!off.to_table_string().contains("transmission breakdown:"));
        // The radio only ever adds charge on top of the sensing cost.
        assert!(single.stats.charge_uc.value() > off.stats.charge_uc.value());
    }

    #[test]
    fn tx_counters_survive_sharding_and_spool_replay() {
        use crate::shard::{SpoolReader, SpoolWriter};

        let (spec, system) = shared_system();
        let fleet =
            FleetSpec { tx_ratio: Some(4), lockstep_devices: 4, ..FleetSpec::new(12, 24.0, 23) };
        let scheduler = FleetScheduler::new(spec, system).with_threads(2);
        let monolithic = scheduler.run(&fleet).unwrap();
        let mut bytes = Vec::new();
        let mut writer = SpoolWriter::new(&mut bytes).unwrap();
        let mut merged = FleetReport::new(fleet.controller.label());
        for range in fleet.shards(3) {
            merged.merge(&scheduler.run_shard(&fleet, range, &mut writer).unwrap()).unwrap();
        }
        writer.finish().unwrap();
        assert_eq!(merged.encode(), monolithic.encode(), "shards must merge bytewise");
        // Replaying the spooled rows rebuilds the identical report, per-policy
        // transmission counters included.
        let mut replayed = FleetReport::new(fleet.controller.label());
        for row in SpoolReader::new(&bytes[..]).unwrap() {
            replayed.observe(&row.unwrap());
        }
        assert_eq!(replayed.encode(), monolithic.encode(), "spool replay must match bytewise");
        assert!(monolithic.stats.tx_epochs.iter().sum::<u64>() > 0);
    }

    #[test]
    fn zero_tx_ratio_is_rejected() {
        let fleet = FleetSpec { tx_ratio: Some(0), ..FleetSpec::new(4, 30.0, 1) };
        assert!(fleet.validate().is_err(), "a zero compression ratio must not validate");
    }

    #[test]
    fn reports_encode_and_decode_round_trip() {
        let (spec, system) = shared_system();
        let fleet = FleetSpec::new(5, 20.0, 9);
        let report = FleetScheduler::new(spec, system).run(&fleet).unwrap();
        let bytes = report.encode();
        let decoded = FleetReport::decode(&bytes).unwrap();
        assert_eq!(decoded, report);
        assert_eq!(decoded.encode(), bytes, "re-encoding must reproduce the bytes");
        assert!(FleetReport::decode(&bytes[..bytes.len() - 1]).is_err(), "truncation detected");
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(FleetReport::decode(&bad).is_err(), "bad magic detected");
    }

    #[test]
    fn reports_for_different_controllers_refuse_to_merge() {
        let mut spot = FleetReport::new("spot");
        let high = FleetReport::new("static-high");
        assert!(spot.merge(&high).is_err());
    }

    #[test]
    fn out_of_range_shards_are_rejected() {
        let (spec, system) = shared_system();
        let fleet = FleetSpec::new(4, 20.0, 3);
        let scheduler = FleetScheduler::new(spec, system);
        let range = ShardRange { start: 0, end: fleet.devices + 1 };
        assert!(scheduler.run_shard(&fleet, range, &mut DiscardSink).is_err());
    }

    #[test]
    fn empty_fleet_percentiles_are_nan_not_zero() {
        let empty = FleetReport::new("none");
        assert!(empty.is_empty());
        for p in [1.0, 50.0, 99.0, 100.0] {
            assert!(empty.accuracy_percentile(p).is_nan(), "accuracy p{p} must be NaN");
            assert!(empty.current_percentile(p).is_nan(), "current p{p} must be NaN");
            for config in SensorConfig::paper_pareto_front() {
                assert!(empty.residency_percentile(config, p).is_nan());
            }
        }
        assert!(empty.routine_breakdown().is_empty());
        assert!(empty.mean_accuracy().is_nan());
        assert!(empty.mean_current_ua().is_nan());
        assert!(empty.mean_faulted_fraction().is_nan());
    }

    #[test]
    fn population_fleets_are_bit_identical_across_worker_counts() {
        let (spec, system) = shared_system();
        let fleet = FleetSpec {
            population: crate::scenario::PopulationSpec::mixed(crate::scenario::FaultLevel::Heavy),
            lockstep_devices: 4,
            ..FleetSpec::new(10, 24.0, 13)
        };
        let single = FleetScheduler::new(spec, system).with_threads(1).run(&fleet).unwrap();
        let parallel = FleetScheduler::new(spec, system).with_threads(4).run(&fleet).unwrap();
        assert_eq!(single, parallel, "population fleets must stay worker-count deterministic");
        assert!(
            single.stats.faulted_epochs > 0,
            "a heavy-fault cohort must see fault-exposed epochs"
        );
        let breakdown = single.routine_breakdown();
        assert!(!breakdown.is_empty());
        assert_eq!(breakdown.iter().map(|g| g.devices as u64).sum::<u64>(), single.len());
        assert!(breakdown.iter().all(|g| !g.routine.starts_with("dwell-")));
        let text = single.to_table_string();
        for group in &breakdown {
            assert!(text.contains(&group.routine), "missing {} in:\n{text}", group.routine);
        }
    }

    #[test]
    fn mixed_backend_fleets_are_bit_identical_across_worker_counts() {
        let (spec, system) = shared_system();
        let fleet = FleetSpec {
            population: PopulationSpec::legacy()
                .with_backend(crate::scenario::BackendSpec::half_int8()),
            lockstep_devices: 4,
            ..FleetSpec::new(12, 24.0, 21)
        };
        let single = FleetScheduler::new(spec, system).with_threads(1).run(&fleet).unwrap();
        let parallel = FleetScheduler::new(spec, system).with_threads(4).run(&fleet).unwrap();
        assert_eq!(single, parallel, "mixed-backend fleets must stay worker-count deterministic");
        let backends: Vec<&str> = single.stats.backends.keys().map(String::as_str).collect();
        assert_eq!(
            backends,
            vec!["f64", "int8"],
            "a half-int8 cohort of 12 devices should realize both backends"
        );
        let breakdown = single.backend_breakdown();
        assert_eq!(breakdown.len(), 2);
        assert_eq!(breakdown.iter().map(|g| g.devices as u64).sum::<u64>(), single.len());
        assert!(breakdown.iter().all(|g| g.epochs > 0));
        let text = single.to_table_string();
        assert!(text.contains("per-backend breakdown:"), "missing backend section in:\n{text}");
        assert!(text.contains("int8"), "missing int8 group in:\n{text}");
    }

    #[test]
    fn cascade_cohort_fleets_are_bit_identical_across_worker_counts() {
        let (spec, system) = shared_system();
        let fleet = FleetSpec {
            population: PopulationSpec::legacy()
                .with_backend(crate::scenario::BackendSpec::half_cascade()),
            lockstep_devices: 4,
            ..FleetSpec::new(12, 24.0, 21)
        };
        let single = FleetScheduler::new(spec, system).with_threads(1).run(&fleet).unwrap();
        let parallel = FleetScheduler::new(spec, system).with_threads(4).run(&fleet).unwrap();
        assert_eq!(single, parallel, "cascade cohorts must stay worker-count deterministic");
        assert_eq!(single.encode(), parallel.encode(), "encodings must match bytewise");
        let backends: Vec<&str> = single.stats.backends.keys().map(String::as_str).collect();
        assert_eq!(backends, vec!["cascade", "f64"]);
        // Every cascade epoch lands in exactly one stage counter.
        let cascade_epochs = single.stats.backends["cascade"].epochs;
        assert_eq!(
            single.total_early_exit_epochs() + single.total_escalated_epochs(),
            cascade_epochs,
            "stage counters must partition the cascade group's epochs"
        );
        assert!(cascade_epochs > 0);
        let text = single.to_table_string();
        assert!(text.contains("cascade: exit rate"), "missing cascade section in:\n{text}");
    }

    #[test]
    fn cascade_fleet_devices_match_standalone_cascade_simulations() {
        let (spec, system) = shared_system();
        let fleet = FleetSpec {
            population: PopulationSpec::legacy()
                .with_backend(crate::scenario::BackendSpec::Uniform(BackendKind::Cascade)),
            ..FleetSpec::new(3, 20.0, 3)
        };
        let run = FleetScheduler::new(spec, system).with_threads(2).run_collect(&fleet).unwrap();
        for device in &run.summaries {
            assert_eq!(device.backend, "cascade");
            assert_eq!(
                device.early_exit_epochs + device.escalated_epochs,
                device.epochs,
                "every cascade epoch exits at exactly one stage"
            );
            assert!(device.early_exit_correct <= device.early_exit_epochs);
            assert!(device.escalated_correct <= device.escalated_epochs);
            assert_eq!(device.early_exit_correct + device.escalated_correct, device.correct_epochs);
            let scenario = ScenarioSpec::random(fleet.setting, fleet.duration_s, device.seed);
            let standalone = Simulator::new(spec, system)
                .with_controller(fleet.controller)
                .with_classifier(system.cascade_classifier())
                .run(scenario)
                .unwrap();
            assert_eq!(device.accuracy, standalone.accuracy());
            assert_eq!(device.average_current_ua, standalone.average_current_ua());
        }
    }

    #[test]
    fn int8_fleet_devices_match_standalone_quantized_simulations() {
        let (spec, system) = shared_system();
        let fleet = FleetSpec {
            population: PopulationSpec::legacy()
                .with_backend(crate::scenario::BackendSpec::Uniform(BackendKind::Int8)),
            ..FleetSpec::new(3, 20.0, 3)
        };
        let run = FleetScheduler::new(spec, system).with_threads(2).run_collect(&fleet).unwrap();
        for device in &run.summaries {
            assert_eq!(device.backend, "int8");
            let scenario = ScenarioSpec::random(fleet.setting, fleet.duration_s, device.seed);
            let standalone = Simulator::new(spec, system)
                .with_controller(fleet.controller)
                .with_classifier(system.quantized_classifier())
                .run(scenario)
                .unwrap();
            assert_eq!(device.accuracy, standalone.accuracy());
            assert_eq!(device.average_current_ua, standalone.average_current_ua());
        }
    }

    #[test]
    fn backend_assignment_does_not_perturb_the_rest_of_the_device_stream() {
        // Switching a cohort's backend must change classifications only —
        // seeds, routines and schedules (and thus durations) stay identical.
        let (spec, system) = shared_system();
        let base = FleetSpec::new(6, 20.0, 17);
        let f64_fleet = FleetScheduler::new(spec, system).run_collect(&base).unwrap();
        let int8_fleet = FleetScheduler::new(spec, system)
            .run_collect(&FleetSpec {
                population: PopulationSpec::legacy()
                    .with_backend(crate::scenario::BackendSpec::Uniform(BackendKind::Int8)),
                ..base
            })
            .unwrap();
        for (a, b) in f64_fleet.summaries.iter().zip(&int8_fleet.summaries) {
            assert_eq!(a.seed, b.seed);
            assert_eq!(a.routine, b.routine);
            assert_eq!(a.duration_s, b.duration_s);
            assert_eq!(a.epochs, b.epochs);
        }
    }

    #[test]
    fn empty_fleet_table_prints_dashes_not_fabricated_zeros() {
        let empty = FleetReport::new("none");
        let text = empty.to_table_string();
        assert!(text.contains('-'), "NaN statistics must render as `-`:\n{text}");
        assert!(!text.contains("NaN"), "raw NaN must not leak into the table:\n{text}");
        assert!(!text.contains("0.0"), "an empty fleet must not fabricate zeros:\n{text}");
        assert!(empty.backend_breakdown().is_empty());
    }

    #[test]
    fn invalid_backend_mixes_are_rejected() {
        let (spec, system) = shared_system();
        let mut fleet = FleetSpec::new(2, 20.0, 1);
        fleet.population.backend = crate::scenario::BackendSpec::Mixed { int8_fraction: 1.5 };
        assert!(FleetScheduler::new(spec, system).run(&fleet).is_err());
    }

    #[test]
    fn legacy_population_reproduces_the_historic_fleet() {
        let (spec, system) = shared_system();
        let fleet = FleetSpec::new(4, 20.0, 3);
        assert_eq!(fleet.population, crate::scenario::PopulationSpec::legacy());
        let run = FleetScheduler::new(spec, system).with_threads(2).run_collect(&fleet).unwrap();
        for device in &run.summaries {
            assert_eq!(device.routine, "dwell-Medium");
            assert_eq!(device.faulted_epochs, 0, "legacy populations are fault-free");
        }
    }

    #[test]
    fn invalid_populations_are_rejected() {
        let (spec, system) = shared_system();
        let mut fleet = FleetSpec::new(4, 30.0, 1);
        fleet.population.prior.mix = vec![(crate::scenario::RoutinePreset::OfficeDay, -2.0)];
        assert!(FleetScheduler::new(spec, system).run(&fleet).is_err());
    }

    #[test]
    fn report_rendering_mentions_every_spot_state() {
        let (spec, system) = shared_system();
        let report =
            FleetScheduler::new(spec, system).with_threads(2).run(&FleetSpec::new(4, 20.0, 9));
        let text = report.unwrap().to_table_string();
        for config in SensorConfig::paper_pareto_front() {
            assert!(text.contains(&config.label()), "missing {config} in:\n{text}");
        }
    }

    #[test]
    fn builder_without_a_spec_is_rejected() {
        let (spec, system) = shared_system();
        let err = FleetScheduler::new(spec, system).builder().run().unwrap_err();
        assert!(err.to_string().contains("fleet spec"), "unexpected error: {err}");
    }

    #[test]
    fn builder_matches_every_legacy_entry_point() {
        let (spec, system) = shared_system();
        let fleet = FleetSpec::new(5, 20.0, 11);
        let scheduler = FleetScheduler::new(spec, system).with_threads(2);

        let legacy_report = scheduler.run(&fleet).unwrap();
        let via_builder = scheduler.builder().spec(&fleet).run().unwrap();
        assert_eq!(via_builder.report, legacy_report);
        assert!(via_builder.summaries.is_empty(), "no collect() means no rows kept");

        let legacy_rows = scheduler.run_collect(&fleet).unwrap();
        let collected = scheduler.builder().spec(&fleet).collect().run().unwrap();
        assert_eq!(collected, legacy_rows);
    }

    #[test]
    fn builder_composes_shard_sink_and_collect() {
        let (spec, system) = shared_system();
        let fleet = FleetSpec::new(6, 20.0, 7);
        let scheduler = FleetScheduler::new(spec, system).with_threads(2);
        let whole = scheduler.run_collect(&fleet).unwrap();

        // Sharded + collected + spooled in one run: the legacy API never
        // allowed this combination.
        let range = ShardRange { start: 2, end: 5 };
        let mut spool = Vec::new();
        let shard = {
            let mut sink = crate::shard::SpoolWriter::new(&mut spool).unwrap();
            let run = scheduler
                .builder()
                .spec(&fleet)
                .shard(range)
                .sink(&mut sink)
                .collect()
                .run()
                .unwrap();
            sink.finish().unwrap();
            run
        };
        assert_eq!(shard.summaries.len(), 3);
        let expected: Vec<DeviceSummary> = whole
            .summaries
            .iter()
            .filter(|row| (range.start..range.end).contains(&row.device_id))
            .cloned()
            .collect();
        assert_eq!(shard.summaries, expected, "collected rows are the shard's, in id order");
        let spooled: Vec<DeviceSummary> =
            crate::shard::SpoolReader::new(&spool[..]).unwrap().collect::<Result<_, _>>().unwrap();
        assert_eq!(spooled.len(), 3, "the sink saw the same rows");
        assert_eq!(shard.report, scheduler.run_shard(&fleet, range, &mut DiscardSink).unwrap());
    }

    #[test]
    fn builder_sweep_matches_run_scenarios() {
        let (spec, system) = shared_system();
        let scheduler = FleetScheduler::new(spec, system).with_threads(2);
        let jobs = vec![
            (ScenarioSpec::sit_then_walk(20.0, 20.0), ControllerKind::StaticHigh),
            (
                ScenarioSpec::sit_then_walk(15.0, 25.0),
                ControllerKind::Spot { stability_threshold: 2 },
            ),
        ];
        let legacy = scheduler.run_scenarios(&jobs).unwrap();
        let via_builder = scheduler.builder().sweep(&jobs).unwrap();
        assert_eq!(via_builder, legacy);
    }
}
