//! The event-driven ingestion reactor: one thread readiness-polls thousands
//! of nonblocking sockets, decodes wire-format frames incrementally, and
//! hands complete [`TelemetryBatch`]es to channel-fed fleet devices.
//!
//! # Data flow
//!
//! ```text
//!  telemetry_serve / device gateways            one reactor thread
//!  ┌──────────┐  TCP   ┌───────────────────────────────────────────┐
//!  │ stream 0 │───────▶│ poll(2) ─ readable fds ─▶ StreamParser ──┐│
//!  │ stream 1 │───────▶│   ▲                                      ││
//!  │   ...    │        │   └─ park fd while its ring is full      ││
//!  │ stream N │───────▶│                  TelemetrySender.try_send◀┘│
//!  └──────────┘        └──────────────┬────────────────────────────┘
//!                                     │ bounded telemetry_channel rings
//!                            ┌────────▼─────────┐
//!                            │ FleetScheduler   │  ChannelSource feeds
//!                            │ (lockstep ticks) │  via FleetRunBuilder
//!                            └──────────────────┘
//! ```
//!
//! Each subscription ([`IngestReactor::subscribe`]) dials one stream and
//! returns the [`ChannelSource`] end of a bounded
//! [`telemetry_channel`](crate::ingest::telemetry_channel()); the scheduler
//! consumes it like any other [`ExternalDevice`](crate::fleet::ExternalDevice)
//! feed.  Backpressure never blocks the event loop: when a device's ring is
//! full the decoded batch waits in a small overflow queue and the connection
//! is *parked* (dropped from the poll set) until the runtime drains it.
//!
//! # Failure handling
//!
//! * **Torn connection** (EOF or I/O error before the END frame): the
//!   reactor redials per its [`ReconnectPolicy`] and sends a RESUME frame
//!   naming the next batch index it has not yet received; the server replays
//!   the remainder.  Because every delivered batch is counted exactly once,
//!   a resumed fleet run is bit-identical to an uninterrupted one.
//! * **Corrupt frame** (bad header, bad length prefix, unknown kind, torn
//!   payload): the stream has lost framing, so the feed fails with an
//!   [`AdaSenseError`] recorded in [`ReactorStats::errors`]; its channel
//!   closes (the device simply ends early) and every other feed is
//!   untouched.  One bad client cannot take down the fleet.

use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::os::unix::io::AsRawFd;
use std::os::unix::net::UnixStream;
use std::sync::mpsc::{Receiver, Sender, TryRecvError};
use std::time::Instant;

use polling::{poll_fds, PollFd, POLLIN};

use adasense_sensor::TelemetryBatch;

use super::{
    telemetry_channel, ChannelSource, FrameEncoder, FrameKind, ReconnectPolicy, StreamParser,
    TelemetrySender,
};
use crate::error::AdaSenseError;

/// Per-read scratch size: large enough to drain several frames per
/// readiness event, small enough to keep per-connection memory trivial.
const READ_BLOCK: usize = 8192;

/// Decoded-but-undelivered batches a feed may hold before its connection is
/// parked.  This is the reactor-side overflow on top of the channel ring.
const PARK_THRESHOLD: usize = 32;

/// Counters and outcomes for one [`IngestReactor::run`], returned when every
/// feed has completed or failed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReactorStats {
    /// Feeds subscribed.
    pub feeds: u64,
    /// Feeds whose stream completed (END frame, every batch delivered).
    pub completed: u64,
    /// Feeds that failed (corrupt stream, redials exhausted, or consumer
    /// gone before end-of-stream).
    pub failed: u64,
    /// Batches handed to device channels across all feeds.
    pub batches: u64,
    /// Successful reconnects after a torn connection.
    pub reconnects: u64,
    /// Feeds dropped because their stream lost framing (corrupt bytes).
    pub corrupt_streams: u64,
    /// Highest number of simultaneously connected feeds observed.
    pub peak_open: u64,
    /// Feeds subscribed while the reactor was already running (via
    /// [`ReactorHandle::subscribe`]).
    pub joined: u64,
    /// Feeds unsubscribed mid-run (via [`ReactorHandle::unsubscribe`]): their
    /// channels closed at the last delivered batch, so the device finalized
    /// at its last completed epoch.
    pub departed: u64,
    /// Per-feed failures: `(device_id, error)`.
    pub errors: Vec<(u64, AdaSenseError)>,
}

/// Lifecycle of one subscription.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FeedState {
    /// Needs a (re)connect.
    Dialing,
    /// Connected and reading frames.
    Streaming,
    /// END seen; delivering the overflow queue, then closing the channel.
    Draining,
    /// All batches delivered and the channel closed.
    Completed,
    /// Unsubscribed mid-run; the channel closed at the last delivered batch.
    Departed,
    /// Gave up; error recorded.
    Failed,
}

/// One feed transport: loopback/remote TCP, or a Unix-domain socket for
/// local fleets that skip the TCP stack.  Address scheme: `unix:<path>`
/// dials a Unix socket, anything else is `host:port`.
#[derive(Debug)]
enum FeedSocket {
    Tcp(TcpStream),
    Unix(UnixStream),
}

/// The `unix:<path>` address prefix selecting a Unix-domain-socket feed.
pub const UNIX_ADDR_SCHEME: &str = "unix:";

impl FeedSocket {
    /// Dials `addr`, honoring the `unix:` scheme.
    fn connect(addr: &str) -> std::io::Result<Self> {
        match addr.strip_prefix(UNIX_ADDR_SCHEME) {
            Some(path) => Ok(Self::Unix(UnixStream::connect(path)?)),
            None => {
                let stream = TcpStream::connect(addr)?;
                stream.set_nodelay(true)?;
                Ok(Self::Tcp(stream))
            }
        }
    }

    fn set_nonblocking(&self, nonblocking: bool) -> std::io::Result<()> {
        match self {
            Self::Tcp(s) => s.set_nonblocking(nonblocking),
            Self::Unix(s) => s.set_nonblocking(nonblocking),
        }
    }
}

impl Read for FeedSocket {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Self::Tcp(s) => s.read(buf),
            Self::Unix(s) => s.read(buf),
        }
    }
}

impl Write for FeedSocket {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Self::Tcp(s) => s.write(buf),
            Self::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Self::Tcp(s) => s.flush(),
            Self::Unix(s) => s.flush(),
        }
    }
}

impl AsRawFd for FeedSocket {
    fn as_raw_fd(&self) -> std::os::unix::io::RawFd {
        match self {
            Self::Tcp(s) => s.as_raw_fd(),
            Self::Unix(s) => s.as_raw_fd(),
        }
    }
}

#[derive(Debug)]
struct Conn {
    stream: FeedSocket,
    parser: StreamParser,
    /// Batches received on *this* connection (END validates against it).
    received_this_stream: u64,
}

/// A churn command sent from a [`ReactorHandle`] to its running reactor.
enum Command {
    Subscribe { device_id: u64, addr: String, sender: TelemetrySender },
    Unsubscribe { device_id: u64 },
}

/// A cloneable handle for subscribing and unsubscribing feeds while the
/// reactor runs (see [`IngestReactor::handle`]).  The reactor keeps running
/// until every feed is terminal *and* every handle has been dropped, so hold
/// a handle only as long as the fleet may still churn.
#[derive(Clone)]
pub struct ReactorHandle {
    commands: Sender<Command>,
    capacity: usize,
}

impl ReactorHandle {
    /// Registers a new feed with the *running* reactor: device `device_id`
    /// served at `addr` (`host:port`, or `unix:<path>`), starting from batch
    /// `0`.  Returns the [`ChannelSource`] the device runtime consumes —
    /// typically handed to the fleet through
    /// [`FleetRunBuilder::intake`](crate::fleet::FleetRunBuilder::intake).
    /// If the reactor has already exited, the source reports end-of-stream
    /// immediately.
    pub fn subscribe(&self, addr: &str, device_id: u64) -> ChannelSource {
        let (sender, source) = telemetry_channel(self.capacity);
        let _ =
            self.commands.send(Command::Subscribe { device_id, addr: addr.to_string(), sender });
        source
    }

    /// Removes a live feed: its connection is dropped, undelivered batches
    /// are discarded and its channel closes, so the device finalizes at its
    /// last completed epoch.  Unknown or already-terminal device ids are
    /// ignored.
    pub fn unsubscribe(&self, device_id: u64) {
        let _ = self.commands.send(Command::Unsubscribe { device_id });
    }
}

impl std::fmt::Debug for ReactorHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReactorHandle").field("capacity", &self.capacity).finish_non_exhaustive()
    }
}

struct Feed {
    device_id: u64,
    addr: String,
    sender: Option<TelemetrySender>,
    conn: Option<Conn>,
    state: FeedState,
    /// Total batches received across all of this feed's connections — the
    /// RESUME index sent on reconnect.
    received_total: u64,
    /// Decoded batches waiting for room in the channel ring.
    overflow: VecDeque<TelemetryBatch>,
    /// Redials left for the current disconnect burst.
    redials_left: u32,
    /// When the last dial was attempted, pacing redials by the policy delay.
    last_dial: Option<Instant>,
    /// Whether any connection has ever been established (a later dial is a
    /// reconnect).
    ever_connected: bool,
    reconnects: u64,
}

impl std::fmt::Debug for Feed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Feed")
            .field("device_id", &self.device_id)
            .field("addr", &self.addr)
            .field("state", &self.state)
            .field("received_total", &self.received_total)
            .field("overflow", &self.overflow.len())
            .finish()
    }
}

/// The event-driven ingestion reactor.  Subscribe feeds, hand their
/// [`ChannelSource`]s to the fleet scheduler, then [`run`](Self::run) the
/// reactor on its own thread; it returns a [`ReactorStats`] once every feed
/// has either completed or failed.  See the [module docs](self).
///
/// One reactor thread comfortably sustains thousands of concurrent feeds:
/// per feed it keeps one nonblocking socket, one incremental parser and a
/// bounded overflow queue — no per-connection threads, no unbounded buffers.
#[derive(Debug)]
pub struct IngestReactor {
    feeds: Vec<Feed>,
    policy: ReconnectPolicy,
    capacity: usize,
    stats: ReactorStats,
    /// Command intake from live [`ReactorHandle`]s, created on first
    /// [`handle`](Self::handle) call.
    commands: Option<Receiver<Command>>,
    /// The reactor's own sender, kept only until [`run`](Self::run) starts so
    /// `handle` can clone it; dropped at run start so intake disconnection
    /// means "every user handle is gone".
    handle_tx: Option<Sender<Command>>,
    /// Whether the intake was still connected at the last drain (run-loop
    /// state: an open intake keeps the reactor alive and the poll timeout
    /// short).
    intake_open: bool,
}

impl IngestReactor {
    /// A reactor with the default [`ReconnectPolicy`] and a per-feed channel
    /// ring of 8 batches.
    pub fn new() -> Self {
        Self {
            feeds: Vec::new(),
            policy: ReconnectPolicy::default(),
            capacity: 8,
            stats: ReactorStats::default(),
            commands: None,
            handle_tx: None,
            intake_open: false,
        }
    }

    /// Returns a cloneable [`ReactorHandle`] for subscribing and
    /// unsubscribing feeds *while the reactor runs*.  With at least one
    /// handle outstanding the reactor keeps running after its current feeds
    /// finish, waiting for churn; it exits once every handle is dropped and
    /// every feed is terminal.
    pub fn handle(&mut self) -> ReactorHandle {
        let tx = match &self.handle_tx {
            Some(tx) => tx.clone(),
            None => {
                let (tx, rx) = std::sync::mpsc::channel();
                self.commands = Some(rx);
                self.handle_tx = Some(tx.clone());
                tx
            }
        };
        ReactorHandle { commands: tx, capacity: self.capacity }
    }

    /// Replaces the reconnect policy (applies per disconnect: each torn
    /// connection gets `attempts` redials, `delay` apart).
    pub fn with_policy(mut self, policy: ReconnectPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the per-feed channel ring capacity, in batches, for subsequent
    /// [`subscribe`](Self::subscribe) calls.
    pub fn with_channel_capacity(mut self, capacity: usize) -> Self {
        self.capacity = capacity;
        self
    }

    /// Registers one feed: device `device_id` served at `addr`
    /// (`host:port`, or `unix:<path>` for a Unix-domain socket), starting
    /// from batch `0`.  Returns the [`ChannelSource`] the device runtime
    /// consumes.  The connection is dialed when [`run`](Self::run) starts;
    /// to subscribe feeds *after* that, take a [`handle`](Self::handle)
    /// first.
    pub fn subscribe(&mut self, addr: &str, device_id: u64) -> ChannelSource {
        let (sender, source) = telemetry_channel(self.capacity);
        self.admit(device_id, addr.to_string(), sender);
        source
    }

    /// Adds one feed in its initial dialing state.
    fn admit(&mut self, device_id: u64, addr: String, sender: TelemetrySender) {
        self.feeds.push(Feed {
            device_id,
            addr,
            sender: Some(sender),
            conn: None,
            state: FeedState::Dialing,
            received_total: 0,
            overflow: VecDeque::new(),
            redials_left: self.policy.attempts,
            last_dial: None,
            ever_connected: false,
            reconnects: 0,
        });
    }

    /// Number of subscribed feeds.
    pub fn feed_count(&self) -> usize {
        self.feeds.len()
    }

    /// Runs the event loop until every feed has completed or failed, then
    /// returns the final [`ReactorStats`].
    ///
    /// # Errors
    ///
    /// Returns [`AdaSenseError::Ingest`] only for reactor-global failures
    /// (the `poll(2)` syscall itself); per-feed failures are recorded in
    /// [`ReactorStats::errors`] instead.
    pub fn run(mut self) -> Result<ReactorStats, AdaSenseError> {
        // Drop the reactor's own sender: from here on, intake disconnection
        // means every user handle is gone and no further churn can arrive.
        drop(self.handle_tx.take());
        let commands = self.commands.take();
        self.intake_open = commands.is_some();
        self.stats.feeds = self.feeds.len() as u64;
        loop {
            if let Some(rx) = &commands {
                self.intake_open = loop {
                    match rx.try_recv() {
                        Ok(command) => self.apply(command),
                        Err(TryRecvError::Empty) => break true,
                        Err(TryRecvError::Disconnected) => break false,
                    }
                };
            }
            let mut live = false;
            for i in 0..self.feeds.len() {
                self.service_feed(i);
                match self.feeds[i].state {
                    FeedState::Completed | FeedState::Departed | FeedState::Failed => {}
                    _ => live = true,
                }
            }
            if !live && !self.intake_open {
                break;
            }
            self.poll_ready()?;
        }
        for feed in &self.feeds {
            self.stats.reconnects += feed.reconnects;
        }
        Ok(self.stats)
    }

    /// Applies one churn command from a [`ReactorHandle`].
    fn apply(&mut self, command: Command) {
        match command {
            Command::Subscribe { device_id, addr, sender } => {
                self.admit(device_id, addr, sender);
                self.stats.feeds += 1;
                self.stats.joined += 1;
            }
            Command::Unsubscribe { device_id } => {
                // Latest matching live feed wins; terminal feeds are left
                // alone so a departure cannot retroactively fail a stream.
                let Some(i) = self.feeds.iter().rposition(|f| {
                    f.device_id == device_id
                        && !matches!(
                            f.state,
                            FeedState::Completed | FeedState::Departed | FeedState::Failed
                        )
                }) else {
                    return;
                };
                let feed = &mut self.feeds[i];
                feed.conn = None;
                feed.overflow.clear();
                // Dropping the sender closes the channel at the last
                // *delivered* batch: the device runtime sees end-of-stream on
                // its next tick and finalizes at its last completed epoch.
                feed.sender = None;
                feed.state = FeedState::Departed;
                self.stats.departed += 1;
            }
        }
    }

    /// Polls every streaming, un-parked connection for readability, reading
    /// and decoding whatever arrived.  Uses a short timeout when any feed is
    /// waiting on channel room or a redial, so those make progress too.
    fn poll_ready(&mut self) -> Result<(), AdaSenseError> {
        let mut fds = Vec::with_capacity(self.feeds.len());
        let mut owners = Vec::with_capacity(self.feeds.len());
        let mut impatient = false;
        let open = self.feeds.iter().filter(|f| f.conn.is_some()).count() as u64;
        self.stats.peak_open = self.stats.peak_open.max(open);
        for (i, feed) in self.feeds.iter().enumerate() {
            match feed.state {
                FeedState::Streaming if feed.overflow.len() < PARK_THRESHOLD => {
                    let conn = feed.conn.as_ref().expect("streaming feeds hold a connection");
                    fds.push(PollFd::new(conn.stream.as_raw_fd(), POLLIN));
                    owners.push(i);
                }
                // Parked (ring full), draining, or waiting to redial: no fd
                // to poll, but check back soon.
                FeedState::Streaming | FeedState::Draining | FeedState::Dialing => impatient = true,
                FeedState::Completed | FeedState::Departed | FeedState::Failed => {}
            }
        }
        // An open intake keeps the wait short so fresh subscribe commands are
        // admitted promptly even while every current feed is quiescent.
        let timeout_ms = if impatient {
            1
        } else if self.intake_open {
            25
        } else {
            250
        };
        if fds.is_empty() {
            // Nothing pollable; pace the retry/drain loop without spinning.
            std::thread::sleep(std::time::Duration::from_millis(timeout_ms as u64));
            return Ok(());
        }
        let ready = poll_fds(&mut fds, timeout_ms)
            .map_err(|e| AdaSenseError::ingest(format!("reactor poll failed: {e}")))?;
        if ready == 0 {
            return Ok(());
        }
        for (slot, &owner) in fds.iter().zip(&owners) {
            if slot.readable() {
                self.read_feed(owner);
            }
        }
        Ok(())
    }

    /// Advances one feed's non-read work: dials, drains overflow into the
    /// channel, closes finished channels.
    fn service_feed(&mut self, i: usize) {
        // Deliver overflow first: room may have opened since the last pass.
        self.drain_overflow(i);
        match self.feeds[i].state {
            FeedState::Dialing => self.dial(i),
            FeedState::Draining if self.feeds[i].overflow.is_empty() => {
                // Dropping the sender is the end-of-stream signal.
                self.feeds[i].sender = None;
                self.feeds[i].state = FeedState::Completed;
                self.stats.completed += 1;
            }
            _ => {}
        }
    }

    /// Hands as many overflow batches to the channel as it will take
    /// without blocking.
    fn drain_overflow(&mut self, i: usize) {
        let feed = &mut self.feeds[i];
        while let Some(batch) = feed.overflow.pop_front() {
            let Some(sender) = feed.sender.as_mut() else {
                feed.overflow.clear();
                break;
            };
            match sender.try_send(batch) {
                Ok(None) => self.stats.batches += 1,
                Ok(Some(batch)) => {
                    feed.overflow.push_front(batch);
                    break;
                }
                Err(_) => {
                    // The runtime dropped its source (e.g. a bounded-duration
                    // device finished).  Nothing is left to deliver to.
                    let state = feed.state;
                    self.finish_consumer_gone(i, state);
                    break;
                }
            }
        }
    }

    /// The consumer went away mid-stream: a draining feed just completes,
    /// anything else counts as a failure.
    fn finish_consumer_gone(&mut self, i: usize, state: FeedState) {
        let feed = &mut self.feeds[i];
        feed.overflow.clear();
        feed.conn = None;
        feed.sender = None;
        if state == FeedState::Draining {
            feed.state = FeedState::Completed;
            self.stats.completed += 1;
        } else {
            feed.state = FeedState::Failed;
            self.stats.failed += 1;
            self.stats.errors.push((
                feed.device_id,
                AdaSenseError::ingest("the telemetry consumer disconnected mid-stream"),
            ));
        }
    }

    /// Attempts one (re)connect + handshake for a dialing feed, honoring the
    /// policy's pacing and attempt budget.
    fn dial(&mut self, i: usize) {
        let feed = &mut self.feeds[i];
        if let Some(last) = feed.last_dial {
            if last.elapsed() < self.policy.delay {
                return; // not due yet; poll_ready's short timeout re-checks
            }
        }
        feed.last_dial = Some(Instant::now());
        match Self::connect(&feed.addr, feed.device_id, feed.received_total) {
            Ok(stream) => {
                if feed.ever_connected {
                    feed.reconnects += 1;
                }
                feed.ever_connected = true;
                feed.conn = Some(Conn {
                    stream,
                    parser: StreamParser::telemetry(),
                    received_this_stream: 0,
                });
                feed.redials_left = self.policy.attempts;
                feed.state = FeedState::Streaming;
            }
            Err(e) => {
                feed.redials_left = feed.redials_left.saturating_sub(1);
                let error = AdaSenseError::ingest(format!(
                    "connecting to {} failed after {} attempts: {e}",
                    feed.addr, self.policy.attempts
                ));
                if feed.redials_left == 0 {
                    self.fail_feed(i, error, false);
                }
            }
        }
    }

    /// Dials `addr` (TCP or `unix:<path>`) and performs the client half of
    /// the handshake: stream header + RESUME naming the next batch wanted.
    /// The handshake is 29 bytes — it always fits the socket send buffer —
    /// so it is written before the socket goes nonblocking.
    fn connect(addr: &str, device_id: u64, next_batch: u64) -> std::io::Result<FeedSocket> {
        let mut stream = FeedSocket::connect(addr)?;
        let mut encoder = FrameEncoder::new();
        stream.write_all(encoder.header())?;
        stream.write_all(encoder.resume(device_id, next_batch))?;
        stream.set_nonblocking(true)?;
        Ok(stream)
    }

    /// Reads everything available on one feed's connection and decodes it.
    fn read_feed(&mut self, i: usize) {
        let mut torn = false;
        {
            let feed = &mut self.feeds[i];
            let Some(conn) = feed.conn.as_mut() else { return };
            let mut block = [0u8; READ_BLOCK];
            // Bounded per readiness event so a flooding peer cannot starve
            // the other feeds or grow the parse buffer without limit.
            for _ in 0..16 {
                match conn.stream.read(&mut block) {
                    Ok(0) => {
                        torn = true;
                        break;
                    }
                    Ok(n) => conn.parser.feed(&block[..n]),
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(_) => {
                        torn = true;
                        break;
                    }
                }
            }
        }
        self.decode_feed(i, torn);
    }

    /// Decodes every complete frame buffered on feed `i`, then handles a
    /// torn connection if the read hit EOF/error.
    fn decode_feed(&mut self, i: usize, torn: bool) {
        let mut batch = TelemetryBatch::placeholder();
        loop {
            let feed = &mut self.feeds[i];
            let Some(conn) = feed.conn.as_mut() else { return };
            match conn.parser.next_frame(&mut batch) {
                Ok(None) => break,
                Ok(Some(FrameKind::Batch)) => {
                    conn.received_this_stream += 1;
                    feed.received_total += 1;
                    feed.overflow
                        .push_back(std::mem::replace(&mut batch, TelemetryBatch::placeholder()));
                    self.drain_overflow(i);
                }
                Ok(Some(FrameKind::End { batches })) => {
                    let received = conn.received_this_stream;
                    if batches == received {
                        feed.conn = None;
                        feed.state = FeedState::Draining;
                    } else {
                        self.fail_feed(
                            i,
                            AdaSenseError::ingest(format!(
                                "end-of-stream count {batches} disagrees with the {received} \
                                 batches this stream delivered"
                            )),
                            true,
                        );
                    }
                    return;
                }
                Ok(Some(FrameKind::Join { device_id, .. })) => {
                    // v4 servers open every stream (fresh or resumed) with a
                    // join handshake; validate it and move on.  The carried
                    // config/start-epoch are advisory to the fleet layer.
                    if device_id != feed.device_id {
                        let expected = feed.device_id;
                        self.fail_feed(
                            i,
                            AdaSenseError::ingest(format!(
                                "join handshake names device {device_id}, but this feed \
                                 subscribed device {expected}"
                            )),
                            true,
                        );
                        return;
                    }
                    if conn.received_this_stream > 0 {
                        self.fail_feed(
                            i,
                            AdaSenseError::ingest(
                                "join handshake arrived mid-stream (after a batch frame)",
                            ),
                            true,
                        );
                        return;
                    }
                }
                Ok(Some(other)) => {
                    self.fail_feed(
                        i,
                        AdaSenseError::ingest(format!(
                            "unexpected {other:?} frame on a device telemetry feed"
                        )),
                        true,
                    );
                    return;
                }
                Err(e) => {
                    self.fail_feed(i, e, true);
                    return;
                }
            }
        }
        if torn {
            let feed = &mut self.feeds[i];
            // Partial frame bytes die with the connection; RESUME re-fetches
            // from the last complete batch.
            feed.conn = None;
            feed.state = FeedState::Dialing;
        }
    }

    /// Marks feed `i` failed with `error`; `corrupt` distinguishes lost
    /// framing from connect exhaustion in the stats.
    fn fail_feed(&mut self, i: usize, error: AdaSenseError, corrupt: bool) {
        let feed = &mut self.feeds[i];
        feed.conn = None;
        feed.sender = None; // closes the channel; the device ends early
        feed.overflow.clear();
        feed.state = FeedState::Failed;
        self.stats.failed += 1;
        if corrupt {
            self.stats.corrupt_streams += 1;
        }
        self.stats.errors.push((feed.device_id, error));
    }
}

impl Default for IngestReactor {
    /// Equivalent to [`IngestReactor::new`].
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ingest::serve::TelemetryServe;
    use crate::ingest::TelemetryTrace;
    use crate::runtime::{SampleSource, SourceStatus};
    use adasense_sensor::{Sample3, SensorConfig};
    use std::time::Duration;

    fn sample_trace(batches: usize) -> TelemetryTrace {
        let config = SensorConfig::paper_pareto_front()[0];
        let mut trace = TelemetryTrace::new();
        for i in 0..batches {
            trace.batches.push(TelemetryBatch::new(
                config,
                2.0 * (i + 1) as f64,
                2.0,
                0,
                vec![Sample3::new(i as f64, 0.25, -0.25, 1.0)],
            ));
        }
        trace
    }

    /// Drains every batch out of `source` by walking the known tick
    /// schedule, returning the reassembled trace.
    fn drain(mut source: ChannelSource, batches: usize) -> TelemetryTrace {
        let config = SensorConfig::paper_pareto_front()[0];
        let mut out = TelemetryTrace::new();
        for i in 0..batches {
            assert_eq!(source.status(), SourceStatus::Ready, "batch {i} should be coming");
            let mut window = Vec::new();
            let t_end = 2.0 * (i + 1) as f64;
            source.capture_window(config, t_end, 2.0, &mut window);
            out.batches.push(TelemetryBatch::new(config, t_end, 2.0, 0, window));
        }
        assert_eq!(source.status(), SourceStatus::Exhausted);
        out
    }

    fn fast_policy() -> ReconnectPolicy {
        ReconnectPolicy { attempts: 10, delay: Duration::from_millis(1) }
    }

    #[test]
    fn delivers_a_full_stream() {
        let trace = sample_trace(5);
        let mut serve = TelemetryServe::bind("127.0.0.1:0", vec![(3, trace.clone())]).unwrap();
        let addr = serve.local_addr().to_string();
        let server = std::thread::spawn(move || {
            serve.serve_streams(1, 50).unwrap();
            serve.stats()
        });

        let mut reactor = IngestReactor::new().with_policy(fast_policy());
        let source = reactor.subscribe(&addr, 3);
        let consumer = std::thread::spawn(move || drain(source, 5));
        let stats = reactor.run().unwrap();

        assert_eq!(consumer.join().unwrap().batches, trace.batches);
        assert_eq!(
            (stats.completed, stats.failed, stats.batches, stats.reconnects),
            (1, 0, 5, 0),
            "{stats:?}"
        );
        assert_eq!(server.join().unwrap().streams_completed, 1);
    }

    #[test]
    fn kill_and_resume_delivers_every_batch_exactly_once() {
        let trace = sample_trace(6);
        // One batch frame is 60 bytes (4-byte length prefix + 24-byte head +
        // one 32-byte sample) after the 8-byte header and 22-byte JOIN
        // handshake: killing at byte 100 tears the stream inside the *second*
        // batch frame, so the client resumes from batch index 1.
        let mut serve = TelemetryServe::bind("127.0.0.1:0", vec![(9, trace.clone())])
            .unwrap()
            .with_kill_at(100);
        let addr = serve.local_addr().to_string();
        let server = std::thread::spawn(move || {
            serve.serve_streams(1, 50).unwrap();
            serve.stats()
        });

        let mut reactor = IngestReactor::new().with_policy(fast_policy());
        let source = reactor.subscribe(&addr, 9);
        let consumer = std::thread::spawn(move || drain(source, 6));
        let stats = reactor.run().unwrap();

        assert_eq!(consumer.join().unwrap().batches, trace.batches, "no gap, no duplicate");
        assert_eq!((stats.completed, stats.failed, stats.batches), (1, 0, 6), "{stats:?}");
        assert!(stats.reconnects >= 1, "the torn stream forced a resume: {stats:?}");
        let served = server.join().unwrap();
        assert_eq!(served.killed_streams, 1);
        assert_eq!(served.resume_requests, 1, "the reconnect asked to resume mid-trace");
    }

    #[test]
    fn a_corrupt_stream_fails_only_its_own_feed() {
        use std::io::Write as _;
        let trace = sample_trace(4);
        let mut serve = TelemetryServe::bind("127.0.0.1:0", vec![(1, trace.clone())]).unwrap();
        let good_addr = serve.local_addr().to_string();
        let server = std::thread::spawn(move || {
            serve.serve_streams(1, 50).unwrap();
        });
        // A rogue peer: valid header, then garbage that can never frame.
        let rogue = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let rogue_addr = rogue.local_addr().unwrap().to_string();
        let rogue_thread = std::thread::spawn(move || {
            let (mut conn, _) = rogue.accept().unwrap();
            let mut encoder = FrameEncoder::new();
            let mut bytes = encoder.header().to_vec();
            bytes.extend_from_slice(&[0u8; 8]); // length prefix 0: instant framing error
            conn.write_all(&bytes).unwrap();
            // Hold the socket open: the reactor must fail on the bad bytes,
            // not on EOF.
            std::thread::sleep(Duration::from_millis(300));
        });

        let mut reactor = IngestReactor::new().with_policy(fast_policy());
        let good = reactor.subscribe(&good_addr, 1);
        let bad = reactor.subscribe(&rogue_addr, 2);
        let consumer = std::thread::spawn(move || drain(good, 4));
        let bad_consumer = std::thread::spawn(move || {
            // The failed feed's channel just ends: no batch ever arrives.
            let mut source = bad;
            assert_eq!(source.status(), SourceStatus::Exhausted);
        });
        let stats = reactor.run().unwrap();

        assert_eq!(consumer.join().unwrap().batches, trace.batches, "good feed unharmed");
        bad_consumer.join().unwrap();
        assert_eq!((stats.completed, stats.failed, stats.corrupt_streams), (1, 1, 1), "{stats:?}");
        assert_eq!(stats.errors.len(), 1);
        assert_eq!(stats.errors[0].0, 2, "the failure names the corrupt feed's device");
        assert!(
            stats.errors[0].1.to_string().contains("frame length"),
            "surfaced as a framing AdaSenseError: {}",
            stats.errors[0].1
        );
        server.join().unwrap();
        rogue_thread.join().unwrap();
    }

    #[test]
    fn handle_subscribes_feeds_while_the_reactor_runs() {
        let trace = sample_trace(4);
        let mut serve =
            TelemetryServe::bind("127.0.0.1:0", vec![(3, trace.clone()), (4, trace.clone())])
                .unwrap();
        let addr = serve.local_addr().to_string();
        let server = std::thread::spawn(move || serve.serve_streams(2, 50).unwrap());

        // The reactor starts with zero feeds: only the open handle keeps it
        // alive, waiting for churn.
        let mut reactor = IngestReactor::new().with_policy(fast_policy());
        let handle = reactor.handle();
        let runner = std::thread::spawn(move || reactor.run().unwrap());

        let first = handle.subscribe(&addr, 3);
        assert_eq!(drain(first, 4).batches, trace.batches);
        let second = handle.subscribe(&addr, 4);
        assert_eq!(drain(second, 4).batches, trace.batches);
        drop(handle); // last handle gone: the reactor may now exit

        let stats = runner.join().unwrap();
        assert_eq!(
            (stats.feeds, stats.joined, stats.completed, stats.failed),
            (2, 2, 2, 0),
            "{stats:?}"
        );
        server.join().unwrap();
    }

    #[test]
    fn unsubscribe_departs_the_feed_at_the_last_delivered_batch() {
        use std::io::Write as _;
        // A server that streams three batches and never sends END: without a
        // departure the feed would sit in Streaming forever.
        let trace = sample_trace(3);
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            let (mut conn, _) = listener.accept().unwrap();
            let mut encoder = FrameEncoder::new();
            let mut bytes = encoder.header().to_vec();
            for batch in &trace.batches {
                bytes.extend_from_slice(encoder.batch(batch));
            }
            conn.write_all(&bytes).unwrap();
            // Hold the socket open until the reactor drops it on departure.
            let mut sink = [0u8; 64];
            while matches!(conn.read(&mut sink), Ok(n) if n > 0) {}
        });

        let mut reactor = IngestReactor::new().with_policy(fast_policy());
        let handle = reactor.handle();
        let source = reactor.subscribe(&addr, 9);
        let runner = std::thread::spawn(move || reactor.run().unwrap());

        let (got_batches, done) = std::sync::mpsc::channel();
        let consumer = std::thread::spawn(move || {
            let mut source = source;
            let config = SensorConfig::paper_pareto_front()[0];
            let mut delivered = 0usize;
            for i in 0..3 {
                assert_eq!(source.status(), SourceStatus::Ready, "batch {i} should arrive");
                let mut window = Vec::new();
                source.capture_window(config, 2.0 * (i + 1) as f64, 2.0, &mut window);
                delivered += 1;
            }
            got_batches.send(()).unwrap();
            // After the departure the channel just ends — no error, no hang.
            assert_eq!(source.status(), SourceStatus::Exhausted);
            delivered
        });

        done.recv().unwrap();
        handle.unsubscribe(9);
        drop(handle);
        let stats = runner.join().unwrap();
        assert_eq!(consumer.join().unwrap(), 3, "every delivered batch was consumed");
        assert_eq!(
            (stats.departed, stats.completed, stats.failed),
            (1, 0, 0),
            "a departure is neither a completion nor a failure: {stats:?}"
        );
        server.join().unwrap();
    }

    #[test]
    fn unix_domain_feeds_deliver_like_tcp() {
        let trace = sample_trace(5);
        let dir = std::env::temp_dir().join(format!("adasense-reactor-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("feed.sock");
        let path_str = path.to_str().unwrap().to_string();
        let mut serve =
            crate::ingest::serve::TelemetryServe::bind_unix(&path_str, vec![(6, trace.clone())])
                .unwrap();
        let server = std::thread::spawn(move || {
            serve.serve_streams(1, 50).unwrap();
            serve.stats()
        });

        let mut reactor = IngestReactor::new().with_policy(fast_policy());
        let source = reactor.subscribe(&format!("unix:{path_str}"), 6);
        let consumer = std::thread::spawn(move || drain(source, 5));
        let stats = reactor.run().unwrap();

        assert_eq!(consumer.join().unwrap().batches, trace.batches);
        assert_eq!((stats.completed, stats.failed, stats.batches), (1, 0, 5), "{stats:?}");
        assert_eq!(server.join().unwrap().streams_completed, 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn exhausted_redials_fail_the_feed_with_an_error() {
        // Nothing listens on this ephemeral port (bind then drop to claim a
        // dead address).
        let dead = {
            let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            listener.local_addr().unwrap().to_string()
        };
        let mut reactor = IngestReactor::new()
            .with_policy(ReconnectPolicy { attempts: 2, delay: Duration::from_millis(1) });
        let source = reactor.subscribe(&dead, 4);
        let stats = reactor.run().unwrap();
        assert_eq!((stats.completed, stats.failed), (0, 1), "{stats:?}");
        assert_eq!(stats.errors[0].0, 4);
        drop(source);
    }
}
