//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest) crate.
//!
//! The build environment has no crates.io access, so this vendored crate
//! implements the subset of proptest the workspace's property tests use:
//!
//! * [`strategy::Strategy`] with `prop_map`, implemented for numeric ranges and
//!   tuples of strategies;
//! * [`collection::vec`] and [`sample::select`];
//! * the [`proptest!`] macro (with optional `#![proptest_config(...)]`),
//!   [`prop_assert!`], [`prop_assert_eq!`] and [`prop_assume!`];
//! * a deterministic runner: each test derives its RNG seed from the test name,
//!   so failures reproduce exactly across runs and machines. Shrinking is not
//!   implemented — a failing case reports its inputs via the assertion message
//!   and its case index instead.
//!
//! The number of cases per test defaults to [`test_runner::DEFAULT_CASES`] and
//! can be overridden with the `PROPTEST_CASES` environment variable or
//! `ProptestConfig::with_cases`.

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A source of random values of one type.
    ///
    /// Unlike real proptest there is no value tree / shrinking: a strategy just
    /// produces a value from an RNG.
    pub trait Strategy {
        /// The type of value this strategy yields.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.random_range(self.clone())
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(f64, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($($s:ident . $idx:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A.0);
    impl_tuple_strategy!(A.0, B.1);
    impl_tuple_strategy!(A.0, B.1, C.2);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
}

pub mod collection {
    //! Strategies for collections.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::Range;

    /// Size specification for [`vec()`]: a fixed length or a half-open range.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(len: usize) -> Self {
            SizeRange { lo: len, hi: len + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(range: Range<usize>) -> Self {
            assert!(range.start < range.end, "empty vec size range");
            SizeRange { lo: range.start, hi: range.end }
        }
    }

    /// Strategy producing `Vec`s whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// Strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.random_range(self.size.lo..self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod sample {
    //! Strategies that pick from an explicit set of values.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Strategy yielding a uniformly chosen clone of one of `options`.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "cannot select from an empty set");
        Select { options }
    }

    /// Strategy returned by [`select`].
    #[derive(Clone, Debug)]
    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.options[rng.random_range(0..self.options.len())].clone()
        }
    }
}

pub mod test_runner {
    //! The deterministic case runner.

    use rand::SeedableRng;

    /// RNG handed to strategies.
    pub type TestRng = rand::rngs::StdRng;

    /// Cases per test when no config or environment override is present.
    pub const DEFAULT_CASES: u32 = 64;

    /// Why a single test case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// The case was vetoed by `prop_assume!` — generate a replacement.
        Reject(String),
        /// A `prop_assert!` failed — the whole test fails.
        Fail(String),
    }

    impl TestCaseError {
        /// Builds the failure variant.
        pub fn fail(message: String) -> Self {
            TestCaseError::Fail(message)
        }

        /// Builds the rejection variant.
        pub fn reject(message: String) -> Self {
            TestCaseError::Reject(message)
        }
    }

    /// Runner configuration; only the case count is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of (non-rejected) cases to run.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(DEFAULT_CASES);
            ProptestConfig { cases }
        }
    }

    fn fnv1a(name: &str) -> u64 {
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        hash
    }

    /// Runs `case` up to `config.cases` times with a name-derived deterministic
    /// seed, panicking on the first failing case.
    pub fn run_cases<F>(name: &str, config: &ProptestConfig, case: F)
    where
        F: Fn(&mut TestRng) -> Result<(), TestCaseError>,
    {
        let seed = fnv1a(name);
        let max_rejects = 32 * config.cases.max(1);
        let mut rejects = 0u32;
        let mut ran = 0u32;
        let mut attempt = 0u64;
        while ran < config.cases {
            let mut rng =
                TestRng::seed_from_u64(seed ^ attempt.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            attempt += 1;
            match case(&mut rng) {
                Ok(()) => ran += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejects += 1;
                    assert!(
                        rejects <= max_rejects,
                        "{name}: too many rejected cases ({rejects}) — loosen prop_assume!"
                    );
                }
                Err(TestCaseError::Fail(message)) => {
                    panic!(
                        "{name}: case {ran} (attempt {attempt}, seed {seed:#x}) failed: {message}"
                    )
                }
            }
        }
    }
}

pub mod prelude {
    //! Single-import surface mirroring `proptest::prelude`.

    pub use crate as prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Declares property tests; each `fn` runs once per generated case.
///
/// Supports the plain form and the `#![proptest_config(...)]` header form.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                $crate::test_runner::run_cases(stringify!($name), &config, |runner_rng| {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strategy), runner_rng);)+
                    let case = || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    };
                    case()
                });
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config(::std::default::Default::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strategy),+) $body
            )*
        }
    };
}

/// `assert!` for property tests: fails the current case instead of panicking
/// directly, so the runner can report the case context.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// `assert_eq!` for property tests.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` != `{:?}` ({} != {})",
            left,
            right,
            stringify!($left),
            stringify!($right)
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` != `{:?}`: {}",
            left,
            right,
            format!($($fmt)+)
        );
    }};
}

/// `assert_ne!` for property tests.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{:?}` == `{:?}` ({} == {})",
            left,
            right,
            stringify!($left),
            stringify!($right)
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{:?}` == `{:?}`: {}",
            left,
            right,
            format!($($fmt)+)
        );
    }};
}

/// Rejects the current case unless `cond` holds; the runner draws a fresh case.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 0.0f64..1.0, n in 1usize..10) {
            prop_assert!((0.0..1.0).contains(&x));
            prop_assert!((1..10).contains(&n));
        }

        #[test]
        fn vec_lengths_respect_size_range(v in prop::collection::vec(0u32..5, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&e| e < 5));
        }

        #[test]
        fn select_only_yields_options(v in prop::sample::select(vec![1, 3, 5])) {
            prop_assert!([1, 3, 5].contains(&v));
        }

        #[test]
        fn tuples_and_maps_compose(pair in (0u32..4, 10u32..14).prop_map(|(a, b)| a + b)) {
            prop_assert!((10..18).contains(&pair));
        }

        #[test]
        fn assume_rejects_cases(n in 0usize..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn config_header_form_parses(x in 0u64..10) {
            prop_assert!(x < 10);
        }
    }
}
