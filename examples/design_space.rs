//! Sensor-configuration design-space exploration (the Fig. 2 analysis) as a library
//! user would run it: evaluate a set of candidate configurations, extract the Pareto
//! front, and feed those states straight into a SPOT controller.
//!
//! Run with `cargo run --release --example design_space`.

use adasense_repro::adasense::dse::DesignSpaceExploration;
use adasense_repro::adasense::prelude::*;

fn main() -> Result<(), AdaSenseError> {
    // A reduced dataset keeps the 16 per-configuration trainings quick; switch to
    // `ExperimentSpec::paper()` for the full-fidelity exploration.
    let spec = ExperimentSpec::quick();

    println!("evaluating the 16 Table I configurations…");
    let report = DesignSpaceExploration::new(spec.clone()).run()?;
    println!("{}", report.to_table_string());

    let states = report.pareto_configs();
    println!(
        "Pareto front (highest→lowest power): {}",
        states.iter().map(|c| c.label()).collect::<Vec<_>>().join(" > ")
    );

    // Use the measured front as the SPOT states (instead of the hard-coded paper
    // front) and check that the controller still saves power on a stable scenario.
    let system = TrainedSystem::train(&spec)?;
    let scenario = ScenarioSpec::random(ActivityChangeSetting::Low, 300.0, 3);
    let baseline = Simulator::new(&spec, &system)
        .with_controller(ControllerKind::StaticHigh)
        .run(scenario.clone())?;

    let mut spot = SpotController::new(states, 10);
    // Drive the custom-front controller by hand through the recorded baseline
    // predictions, and price its residency with the energy model — a lightweight
    // what-if that avoids a second full simulation.
    let energy = EnergyModel::bmi160();
    let mut charge = Charge::ZERO;
    for record in baseline.records() {
        charge += energy.charge_over(spot.config(), 1.0);
        spot.observe(&ControllerInput {
            predicted: record.predicted,
            confidence: record.confidence,
            intensity_g_per_s: 0.0,
            escalated: false,
        });
    }
    let custom_front_current = charge.average_current_ua(baseline.records().len() as f64);

    println!(
        "\nstatic baseline: {:.1} uA, SPOT over the measured front (replayed): {:.1} uA ({:.0}% lower)",
        baseline.average_current_ua(),
        custom_front_current,
        100.0 * (1.0 - custom_front_current / baseline.average_current_ua())
    );
    Ok(())
}
