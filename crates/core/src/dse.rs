//! Sensor-configuration design-space exploration (Fig. 2 and Table I).
//!
//! For every candidate configuration the exploration trains a dedicated classifier
//! on windows of that configuration, measures its held-out recognition accuracy and
//! pairs it with the configuration's model current.  The Pareto front of the
//! resulting (current, accuracy) cloud is what SPOT uses as its states.
//!
//! [`TxExploration`] extends the plane with the *transmission* axis: each
//! configuration is additionally priced under every [`TxPolicy`] (raw samples,
//! the feature vector, or a compressed-sensing payload at each requested
//! ratio), with compressed accuracy measured on host-reconstructed held-out
//! windows — the trade-off the `tx_sweep` binary tabulates.

use adasense_data::{DatasetSpec, WindowDataset};
use adasense_dsp::{FeatureExtractor, ProjectionScratch, SparseProjection};
use adasense_ml::{accuracy, Trainer};
use adasense_sensor::{EnergyModel, RadioModel, SensorConfig, TxPolicy};
use serde::{Deserialize, Serialize};

use crate::error::AdaSenseError;
use crate::pareto::{dominated_points, pareto_front, DominatedBy};
use crate::training::{features_and_labels, train_for_config, ExperimentSpec};

/// The evaluation of a single sensor configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConfigEvaluation {
    /// The evaluated configuration.
    pub config: SensorConfig,
    /// Held-out recognition accuracy (0–1) of a classifier dedicated to this
    /// configuration.
    pub accuracy: f64,
    /// Modelled average sensor current, in µA.
    pub current_ua: f64,
}

/// The complete result of a design-space exploration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DseReport {
    /// Every evaluated configuration.
    pub evaluations: Vec<ConfigEvaluation>,
    /// The Pareto-optimal subset, ordered from highest to lowest current.
    pub pareto: Vec<ConfigEvaluation>,
    /// Dominated configurations with a dominating witness each.
    pub dominated: Vec<DominatedBy>,
}

impl DseReport {
    /// The Pareto-optimal configurations only (the SPOT states), ordered from
    /// highest to lowest current.
    pub fn pareto_configs(&self) -> Vec<SensorConfig> {
        self.pareto.iter().map(|e| e.config).collect()
    }

    /// Renders the report as a plain-text table (one row per configuration).
    pub fn to_table_string(&self) -> String {
        let mut out = String::from("configuration     current(uA)   accuracy(%)   pareto\n");
        for eval in &self.evaluations {
            let on_front = self.pareto.iter().any(|p| p.config == eval.config);
            out.push_str(&format!(
                "{:<17} {:>11.1} {:>13.2} {:>8}\n",
                eval.config.label(),
                eval.current_ua,
                100.0 * eval.accuracy,
                if on_front { "yes" } else { "" }
            ));
        }
        out
    }
}

/// Runs the design-space exploration of Fig. 2.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DesignSpaceExploration {
    /// Training/evaluation specification (the per-configuration window counts and
    /// classifier hyper-parameters come from here).
    pub spec: ExperimentSpec,
    /// The candidate configurations (defaults to Table I).
    pub candidates: Vec<SensorConfig>,
    /// The energy model used to attach a current to each configuration.
    pub energy_model: EnergyModel,
    /// How many independently seeded trainings are averaged per configuration.
    ///
    /// Per-configuration accuracies differ by fractions of a percent while a single
    /// training/evaluation carries roughly ±1 % of seed noise, so averaging a few
    /// repeats keeps the Pareto front from being decided by that noise.
    pub repeats: usize,
}

impl DesignSpaceExploration {
    /// An exploration over the paper's Table I candidates.
    pub fn new(spec: ExperimentSpec) -> Self {
        Self {
            spec,
            candidates: SensorConfig::table_i(),
            energy_model: EnergyModel::bmi160(),
            repeats: 3,
        }
    }

    /// Restricts the exploration to an explicit candidate list.
    pub fn with_candidates(mut self, candidates: Vec<SensorConfig>) -> Self {
        self.candidates = candidates;
        self
    }

    /// Sets how many independently seeded trainings are averaged per configuration.
    pub fn with_repeats(mut self, repeats: usize) -> Self {
        self.repeats = repeats.max(1);
        self
    }

    /// Evaluates every candidate configuration and extracts the Pareto front.
    ///
    /// # Errors
    ///
    /// Returns [`AdaSenseError::InvalidSpec`] if the candidate list is empty or the
    /// spec is inconsistent, and [`AdaSenseError::Training`] if a per-configuration
    /// training set ends up empty.
    pub fn run(&self) -> Result<DseReport, AdaSenseError> {
        if self.candidates.is_empty() {
            return Err(AdaSenseError::invalid_spec("the candidate list must not be empty"));
        }
        self.spec.validate()?;
        let repeats = self.repeats.max(1);
        let mut evaluations = Vec::with_capacity(self.candidates.len());
        for (i, &config) in self.candidates.iter().enumerate() {
            let mut accuracy_sum = 0.0;
            for r in 0..repeats {
                let seed_offset = 1000 + i as u64 + 10_000 * r as u64;
                let trained = train_for_config(&self.spec, config, seed_offset)?;
                accuracy_sum += trained.test_accuracy;
            }
            evaluations.push(ConfigEvaluation {
                config,
                accuracy: accuracy_sum / repeats as f64,
                current_ua: self.energy_model.current_ua(config),
            });
        }
        let pareto = pareto_front(&evaluations);
        let dominated = dominated_points(&evaluations);
        Ok(DseReport { evaluations, pareto, dominated })
    }
}

/// One point of the transmission-aware design space: a sensor configuration
/// paired with a transmit policy (and, for the compressed policy, the
/// projection ratio the payload was shrunk by).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TxEvaluation {
    /// The evaluated sensor configuration.
    pub config: SensorConfig,
    /// The transmit policy this row prices.
    pub policy: TxPolicy,
    /// Compression ratio (1 for the uncompressed policies).
    pub ratio: u32,
    /// Held-out recognition accuracy (0–1).  For the compressed policy this
    /// is measured on *host-reconstructed* windows, so the compression loss
    /// is inside the number.
    pub accuracy: f64,
    /// Sensing charge per classification epoch, in µC.
    pub sense_charge_uc: f64,
    /// Radio charge per classification epoch, in µC.
    pub radio_charge_uc: f64,
    /// Payload bytes per classification epoch.
    pub tx_bytes: u64,
}

impl TxEvaluation {
    /// Total (sensing + radio) charge per classification epoch, in µC.
    pub fn total_charge_uc(&self) -> f64 {
        self.sense_charge_uc + self.radio_charge_uc
    }

    /// A compact row label, e.g. `F100_A128/raw` or `F100_A128/cx4`.
    pub fn label(&self) -> String {
        match self.policy {
            TxPolicy::Compressed => format!("{}/cx{}", self.config.label(), self.ratio),
            _ => format!("{}/{}", self.config.label(), self.policy.label()),
        }
    }
}

/// Whether `a` dominates `b` in the accuracy-vs-total-charge sense.
fn tx_dominates(a: &TxEvaluation, b: &TxEvaluation) -> bool {
    let no_worse = a.accuracy >= b.accuracy && a.total_charge_uc() <= b.total_charge_uc();
    let strictly_better = a.accuracy > b.accuracy || a.total_charge_uc() < b.total_charge_uc();
    no_worse && strictly_better
}

/// The complete result of a transmission-aware exploration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TxDseReport {
    /// Every evaluated (configuration × policy × ratio) point.
    pub evaluations: Vec<TxEvaluation>,
    /// The Pareto-optimal subset over (total charge, accuracy), ordered from
    /// highest to lowest charge.
    pub pareto: Vec<TxEvaluation>,
}

impl TxDseReport {
    /// Renders the report as a plain-text table (one row per point).
    pub fn to_table_string(&self) -> String {
        let mut out = String::from(
            "point                  bytes/epoch   sense(uC)   radio(uC)   total(uC)   accuracy(%)   pareto\n",
        );
        for eval in &self.evaluations {
            let on_front = self.pareto.iter().any(|p| p == eval);
            out.push_str(&format!(
                "{:<22} {:>11} {:>11.1} {:>11.1} {:>11.1} {:>13.2} {:>8}\n",
                eval.label(),
                eval.tx_bytes,
                eval.sense_charge_uc,
                eval.radio_charge_uc,
                eval.total_charge_uc(),
                100.0 * eval.accuracy,
                if on_front { "yes" } else { "" }
            ));
        }
        out
    }
}

/// The Fig. 2 exploration extended with the transmission axis: every candidate
/// configuration is trained once per repeat, then priced under transmit-raw,
/// transmit-features and transmit-compressed at each requested ratio, reusing
/// the *same* trained classifier and held-out split so the only difference
/// between a clean row and a compressed row is the payload the host decodes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TxExploration {
    /// Training/evaluation specification.
    pub spec: ExperimentSpec,
    /// The candidate configurations (defaults to the paper's Pareto front —
    /// the compression axis is explored on top of the Fig. 2 winners).
    pub candidates: Vec<SensorConfig>,
    /// The sensing energy model.
    pub energy_model: EnergyModel,
    /// The radio energy model pricing every transmitted byte.
    pub radio: RadioModel,
    /// Compression ratios evaluated for the compressed policy.
    pub ratios: Vec<u32>,
    /// Independently seeded trainings averaged per configuration.
    pub repeats: usize,
}

impl TxExploration {
    /// An exploration over the paper's Pareto-front configurations with a BLE
    /// radio and 2×/4× compression.
    pub fn new(spec: ExperimentSpec) -> Self {
        Self {
            spec,
            candidates: SensorConfig::paper_pareto_front().to_vec(),
            energy_model: EnergyModel::bmi160(),
            radio: RadioModel::ble(),
            ratios: vec![2, 4],
            repeats: 2,
        }
    }

    /// Restricts the exploration to an explicit candidate list.
    pub fn with_candidates(mut self, candidates: Vec<SensorConfig>) -> Self {
        self.candidates = candidates;
        self
    }

    /// Sets the compression ratios evaluated for the compressed policy.
    pub fn with_ratios(mut self, ratios: Vec<u32>) -> Self {
        self.ratios = ratios;
        self
    }

    /// Sets how many independently seeded trainings are averaged per point.
    pub fn with_repeats(mut self, repeats: usize) -> Self {
        self.repeats = repeats.max(1);
        self
    }

    /// Evaluates every (configuration × policy × ratio) point and extracts
    /// the Pareto front over (total charge per epoch, accuracy).
    ///
    /// # Errors
    ///
    /// Returns [`AdaSenseError::InvalidSpec`] for an empty candidate or ratio
    /// list or a zero ratio, and [`AdaSenseError::Training`] if a
    /// per-configuration training set ends up empty.
    pub fn run(&self) -> Result<TxDseReport, AdaSenseError> {
        if self.candidates.is_empty() {
            return Err(AdaSenseError::invalid_spec("the candidate list must not be empty"));
        }
        if self.ratios.is_empty() || self.ratios.contains(&0) {
            return Err(AdaSenseError::invalid_spec("ratios must be non-empty and non-zero"));
        }
        self.spec.validate()?;
        let repeats = self.repeats.max(1);
        let extractor = FeatureExtractor::paper();
        let mut evaluations = Vec::new();
        for (i, &config) in self.candidates.iter().enumerate() {
            let mut clean_sum = 0.0;
            let mut compressed_sum = vec![0.0; self.ratios.len()];
            let mut window_len = 0usize;
            for r in 0..repeats {
                let seed_offset = 2000 + i as u64 + 10_000 * r as u64;
                let seed = self.spec.seed.wrapping_add(seed_offset);
                let dataset_spec =
                    DatasetSpec { configs: vec![config], ..self.spec.dataset.clone() };
                let dataset = WindowDataset::generate(&dataset_spec, seed);
                if dataset.is_empty() {
                    return Err(AdaSenseError::training(format!(
                        "no windows generated for {config}"
                    )));
                }
                let split = dataset.split(self.spec.train_fraction, seed.wrapping_add(1));
                let (train_x, train_y) = features_and_labels(&extractor, &split.train);
                let (test_x, test_y) = features_and_labels(&extractor, &split.test);
                let trainer = Trainer::new(self.spec.trainer);
                let outcome = trainer.train(&self.spec.architecture, &train_x, &train_y, seed);
                clean_sum += accuracy(&outcome.model, &test_x, &test_y);
                for (k, &ratio) in self.ratios.iter().enumerate() {
                    let (x, y) = reconstructed_features(&extractor, &split.test, ratio, seed);
                    compressed_sum[k] += accuracy(&outcome.model, &x, &y);
                }
                window_len = split.test.iter().next().map(|w| w.samples.len()).unwrap_or(0);
            }
            let clean_accuracy = clean_sum / repeats as f64;
            let sense_charge_uc =
                self.energy_model.charge_over(config, crate::runtime::EPOCH_S).micro_coulombs();
            let mut push = |policy: TxPolicy, ratio: u32, acc: f64, bytes: usize| {
                evaluations.push(TxEvaluation {
                    config,
                    policy,
                    ratio,
                    accuracy: acc,
                    sense_charge_uc,
                    radio_charge_uc: self.radio.tx_charge(bytes).micro_coulombs(),
                    tx_bytes: bytes as u64,
                });
            };
            push(TxPolicy::Raw, 1, clean_accuracy, crate::ingest::raw_tx_bytes(window_len));
            push(TxPolicy::Features, 1, clean_accuracy, crate::ingest::features_tx_bytes());
            for (k, &ratio) in self.ratios.iter().enumerate() {
                push(
                    TxPolicy::Compressed,
                    ratio,
                    compressed_sum[k] / repeats as f64,
                    crate::ingest::compressed_tx_bytes(window_len, ratio),
                );
            }
        }
        let mut pareto: Vec<TxEvaluation> = evaluations
            .iter()
            .filter(|candidate| !evaluations.iter().any(|other| tx_dominates(other, candidate)))
            .cloned()
            .collect();
        pareto.sort_by(|a, b| {
            b.total_charge_uc()
                .partial_cmp(&a.total_charge_uc())
                .expect("charges are finite")
                .then(b.accuracy.partial_cmp(&a.accuracy).expect("accuracies are finite"))
        });
        Ok(TxDseReport { evaluations, pareto })
    }
}

/// Extracts features from `windows` after simulating the compressed transport:
/// each axis is sparsely projected down by `ratio` and reconstructed the way
/// the host-side decode stage would, so the classifier sees exactly what a
/// compressed payload delivers.  Deterministic in `(seed, window index)`.
fn reconstructed_features(
    extractor: &FeatureExtractor,
    windows: &WindowDataset,
    ratio: u32,
    seed: u64,
) -> (Vec<Vec<f64>>, Vec<usize>) {
    let mut x = Vec::with_capacity(windows.len());
    let mut y = Vec::with_capacity(windows.len());
    let mut axis = Vec::new();
    let mut measurements = Vec::new();
    let mut recon = Vec::new();
    let mut scratch = ProjectionScratch::default();
    for (index, window) in windows.iter().enumerate() {
        let mut samples = window.samples.clone();
        let n = samples.len();
        if n > 0 {
            let frame_seed = crate::ingest::compressed_frame_seed(
                seed.wrapping_add(u64::from(ratio)),
                index as u64,
            );
            let projection = SparseProjection::new(frame_seed, n, ratio);
            axis.resize(n, 0.0);
            measurements.resize(projection.output_len(), 0.0);
            recon.resize(n, 0.0);
            for axis_index in 0..3 {
                for (slot, sample) in axis.iter_mut().zip(samples.iter()) {
                    *slot = match axis_index {
                        0 => sample.x,
                        1 => sample.y,
                        _ => sample.z,
                    };
                }
                projection.project_into(&axis, &mut measurements);
                projection.reconstruct_into(&measurements, &mut recon, &mut scratch);
                for (sample, value) in samples.iter_mut().zip(recon.iter()) {
                    match axis_index {
                        0 => sample.x = *value,
                        1 => sample.y = *value,
                        _ => sample.z = *value,
                    }
                }
            }
        }
        let features = extractor.extract(&samples, window.config.frequency.hz());
        x.push(features.into_inner());
        y.push(window.activity.index());
    }
    (x, y)
}

#[cfg(test)]
mod tests {
    use super::*;
    use adasense_data::DatasetSpec;
    use adasense_ml::TrainerConfig;
    use adasense_sensor::{AveragingWindow, SamplingFrequency};

    fn tiny_spec() -> ExperimentSpec {
        ExperimentSpec {
            dataset: DatasetSpec { windows_per_class_per_config: 6, ..DatasetSpec::quick() },
            trainer: TrainerConfig { epochs: 15, ..TrainerConfig::default() },
            ..ExperimentSpec::quick()
        }
    }

    #[test]
    fn exploration_over_a_small_candidate_set() {
        let candidates = vec![
            SensorConfig::new(SamplingFrequency::F100, AveragingWindow::A128),
            SensorConfig::new(SamplingFrequency::F12_5, AveragingWindow::A8),
        ];
        let dse = DesignSpaceExploration::new(tiny_spec())
            .with_candidates(candidates.clone())
            .with_repeats(1);
        let report = dse.run().expect("exploration succeeds");
        assert_eq!(report.evaluations.len(), 2);
        assert!(!report.pareto.is_empty());
        // Currents come straight from the energy model.
        assert!(report.evaluations[0].current_ua > report.evaluations[1].current_ua);
        // The table rendering mentions every configuration.
        let table = report.to_table_string();
        for config in candidates {
            assert!(table.contains(&config.label()));
        }
    }

    #[test]
    fn tx_exploration_prices_every_policy_and_finds_a_front() {
        let config = SensorConfig::new(SamplingFrequency::F25, AveragingWindow::A32);
        let dse = TxExploration::new(tiny_spec())
            .with_candidates(vec![config])
            .with_ratios(vec![2, 4])
            .with_repeats(1);
        let report = dse.run().expect("tx exploration succeeds");
        assert_eq!(report.evaluations.len(), 4, "raw + features + two compressed ratios");
        assert!(!report.pareto.is_empty());
        let raw = &report.evaluations[0];
        let features = &report.evaluations[1];
        let cx2 = &report.evaluations[2];
        let cx4 = &report.evaluations[3];
        assert_eq!(raw.policy, TxPolicy::Raw);
        // Raw ships every sample; the alternatives must be strictly smaller,
        // and deeper compression must be smaller still.
        assert!(raw.tx_bytes > cx2.tx_bytes && cx2.tx_bytes > cx4.tx_bytes);
        assert!(features.tx_bytes < raw.tx_bytes);
        // Byte counts drive the radio charge monotonically.
        assert!(raw.radio_charge_uc > cx2.radio_charge_uc);
        assert!(cx2.radio_charge_uc > cx4.radio_charge_uc);
        // Sensing cost is policy-independent.
        assert_eq!(raw.sense_charge_uc, cx4.sense_charge_uc);
        // Reconstruction is lossy but must stay in the same league as the
        // clean accuracy even on this tiny training set (the tight ≤1 pt
        // iso-accuracy gate runs at full scale in `tx_sweep`).
        assert!(cx2.accuracy >= raw.accuracy - 0.25, "cx2 {} raw {}", cx2.accuracy, raw.accuracy);
        // Deterministic: a second run reproduces the report bit for bit.
        assert_eq!(dse.run().unwrap(), report);
        let table = report.to_table_string();
        assert!(table.contains("/cx4") && table.contains("/raw"), "labels in:\n{table}");
    }

    #[test]
    fn tx_exploration_rejects_degenerate_ratio_lists() {
        let dse = TxExploration::new(tiny_spec());
        assert!(dse.clone().with_ratios(Vec::new()).run().is_err());
        assert!(dse.with_ratios(vec![2, 0]).run().is_err());
    }

    #[test]
    fn empty_candidate_list_is_rejected() {
        let dse = DesignSpaceExploration::new(tiny_spec()).with_candidates(Vec::new());
        assert!(matches!(dse.run(), Err(AdaSenseError::InvalidSpec { .. })));
    }

    #[test]
    fn default_candidates_are_table_i() {
        let dse = DesignSpaceExploration::new(tiny_spec());
        assert_eq!(dse.candidates.len(), 16);
        assert!(dse.repeats >= 1);
        assert_eq!(dse.with_repeats(0).repeats, 1, "repeats are clamped to at least one");
    }
}
