//! Regenerates Fig. 5: AdaSense's behaviour over a 120-second interval in which the
//! user sits for 60 seconds and then walks for 60 seconds — the per-second sensor
//! current trace and the time needed to settle into the lowest-power state.
//!
//! Run with `cargo run --release -p adasense-bench --bin fig5_behaviour`
//! (add `--quick` for a reduced training set).

use adasense::experiments::behavioural_trace;
use adasense_bench::{train_system, RunScale};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = RunScale::from_args();
    let (spec, system) = train_system(scale)?;

    // A stability threshold of 9 seconds steps through the three lower states in
    // roughly 28 seconds, matching the paper's description of Fig. 5.
    let stability_threshold = 9;
    let report = behavioural_trace(&spec, &system, stability_threshold, 60.0, 60.0)?;

    println!("Fig. 5 — AdaSense behavioural analysis (sit 60 s, then walk 60 s)\n");
    println!("{}", report.to_table_string());
    println!(
        "paper: the sensor reaches the minimum-power configuration ~28 s after the start\n\
         and again ~28 s after the activity change at t = 60 s."
    );
    Ok(())
}
