//! The HAR pipeline of Fig. 1: buffer → feature extraction → classification.

use adasense_data::Activity;
use adasense_dsp::{BatchBuffer, FeatureExtractor, FeatureVector};
use adasense_ml::{Mlp, Prediction};
use adasense_sensor::{Sample3, SensorConfig};
use serde::{Deserialize, Serialize};

/// The result of classifying one buffered batch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassifiedBatch {
    /// The recognized activity.
    pub activity: Activity,
    /// The classifier's softmax confidence for that activity.
    pub confidence: f64,
    /// The full prediction (per-class probabilities).
    pub prediction: Prediction,
    /// The feature vector the decision was based on.
    pub features: FeatureVector,
    /// End time of the classified batch, in seconds.
    pub t_end: f64,
}

/// The HAR pipeline: unified feature extraction plus the activity classifier.
///
/// The pipeline is configuration-agnostic by design — the same instance classifies
/// batches recorded under any [`SensorConfig`], because the feature vector has a
/// fixed size and the classifier was trained on data from several configurations.
#[derive(Debug, Clone, PartialEq)]
pub struct HarPipeline {
    extractor: FeatureExtractor,
    classifier: Mlp,
    buffer: BatchBuffer,
}

impl HarPipeline {
    /// Creates a pipeline around a trained classifier, using the paper's feature
    /// extractor and 2-second / 1-second-hop buffering.
    pub fn new(classifier: Mlp) -> Self {
        Self { extractor: FeatureExtractor::paper(), classifier, buffer: BatchBuffer::paper() }
    }

    /// Replaces the feature extractor (for ablations).
    pub fn with_extractor(mut self, extractor: FeatureExtractor) -> Self {
        self.extractor = extractor;
        self
    }

    /// The classifier in use.
    pub fn classifier(&self) -> &Mlp {
        &self.classifier
    }

    /// The feature extractor in use.
    pub fn extractor(&self) -> &FeatureExtractor {
        &self.extractor
    }

    /// Classifies one already-assembled batch recorded under `config`.
    ///
    /// Returns `None` if the batch is empty.
    pub fn classify_batch(
        &self,
        samples: &[Sample3],
        config: SensorConfig,
    ) -> Option<ClassifiedBatch> {
        if samples.is_empty() {
            return None;
        }
        let features = self.extractor.extract(samples, config.frequency.hz());
        let prediction = self.classifier.predict(features.as_slice());
        let activity = Activity::from_index(prediction.class)?;
        Some(ClassifiedBatch {
            activity,
            confidence: prediction.confidence,
            prediction,
            features,
            t_end: samples.last().map(|s| s.t).unwrap_or_default(),
        })
    }

    /// Streams one sample into the internal buffer; classifies when a batch is due.
    ///
    /// This is the on-device flavour of the pipeline: push samples as the sensor
    /// produces them and act on the occasional classification result.
    pub fn push_sample(
        &mut self,
        sample: Sample3,
        config: SensorConfig,
    ) -> Option<ClassifiedBatch> {
        let batch = self.buffer.push(sample)?;
        self.classify_batch(&batch, config)
    }

    /// Clears the streaming buffer (for example after a configuration switch that
    /// changes the sampling rate).
    pub fn reset_buffer(&mut self) {
        self.buffer.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adasense_data::{ActivitySignalModel, SubjectParams};
    use adasense_ml::{MlpConfig, Trainer, TrainerConfig};
    use adasense_sensor::{Accelerometer, AveragingWindow, SamplingFrequency};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn untrained_pipeline() -> HarPipeline {
        let mut rng = StdRng::seed_from_u64(0);
        HarPipeline::new(adasense_ml::Mlp::new(MlpConfig::paper(), &mut rng))
    }

    fn capture_window(activity: Activity, config: SensorConfig, seed: u64) -> Vec<Sample3> {
        let signal = ActivitySignalModel::canonical(activity).realize(&SubjectParams::neutral());
        let accel = Accelerometer::new(config);
        let mut rng = StdRng::seed_from_u64(seed);
        accel.capture(&signal, 0.0, 2.0, &mut rng)
    }

    #[test]
    fn classify_batch_returns_a_valid_activity_and_confidence() {
        let pipeline = untrained_pipeline();
        let config = SensorConfig::new(SamplingFrequency::F50, AveragingWindow::A16);
        let window = capture_window(Activity::Walk, config, 1);
        let result = pipeline.classify_batch(&window, config).expect("non-empty batch");
        assert!((0.0..=1.0).contains(&result.confidence));
        assert!((result.prediction.probabilities.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert_eq!(result.t_end, window.last().unwrap().t);
    }

    #[test]
    fn empty_batches_are_rejected() {
        let pipeline = untrained_pipeline();
        let config = SensorConfig::new(SamplingFrequency::F50, AveragingWindow::A16);
        assert!(pipeline.classify_batch(&[], config).is_none());
    }

    #[test]
    fn streaming_mode_emits_classifications_every_second() {
        let mut pipeline = untrained_pipeline();
        let config = SensorConfig::new(SamplingFrequency::F25, AveragingWindow::A16);
        let signal =
            ActivitySignalModel::canonical(Activity::Sit).realize(&SubjectParams::neutral());
        let accel = Accelerometer::new(config);
        let mut rng = StdRng::seed_from_u64(3);
        let samples = accel.capture(&signal, 0.0, 6.0, &mut rng);
        let mut classifications = 0;
        for s in samples {
            if pipeline.push_sample(s, config).is_some() {
                classifications += 1;
            }
        }
        assert!((4..=5).contains(&classifications), "got {classifications}");
        pipeline.reset_buffer();
    }

    #[test]
    fn a_trained_pipeline_recognizes_an_easy_activity() {
        // Train a small model to separate "lie down" (gravity on x) from "stand"
        // (gravity on z) — two classes the feature means separate trivially.
        let config = SensorConfig::new(SamplingFrequency::F50, AveragingWindow::A16);
        let extractor = FeatureExtractor::paper();
        let mut x = Vec::new();
        let mut y = Vec::new();
        for seed in 0..30u64 {
            for activity in [Activity::Stand, Activity::LieDown] {
                let window = capture_window(activity, config, seed);
                x.push(extractor.extract(&window, config.frequency.hz()).into_inner());
                y.push(activity.index());
            }
        }
        let trainer = Trainer::new(TrainerConfig { epochs: 40, ..TrainerConfig::default() });
        let model = trainer.train(&MlpConfig::paper(), &x, &y, 5).model;
        let pipeline = HarPipeline::new(model);

        let stand = capture_window(Activity::Stand, config, 999);
        let lie = capture_window(Activity::LieDown, config, 998);
        assert_eq!(pipeline.classify_batch(&stand, config).unwrap().activity, Activity::Stand);
        assert_eq!(pipeline.classify_batch(&lie, config).unwrap().activity, Activity::LieDown);
    }
}
