//! Dataset construction and classifier training for the AdaSense system.
//!
//! The paper trains **one** network on feature vectors pooled from the four
//! Pareto-optimal sensor configurations (Section III-C, V-A).  The baselines need
//! something different: the intensity-based approach of NK et al. \[8\] retrains a
//! separate classifier per configuration, and the design-space exploration of Fig. 2
//! evaluates a dedicated classifier for each of the 16 Table I configurations.
//! [`TrainedSystem`] prepares all of the above from a single [`ExperimentSpec`].

use std::collections::BTreeMap;

use adasense_data::{Activity, DatasetSpec, WindowDataset};
use adasense_dsp::{FeatureExtractor, TIME_DOMAIN_DIM};
use adasense_ml::{
    accuracy, calibrate_margin_threshold, BackendKind, CascadeClassifier, CascadeOperatingPoint,
    Classifier, Mlp, MlpConfig, QuantizedMlp, Trainer, TrainerConfig,
};
use adasense_sensor::{AveragingWindow, SamplingFrequency, SensorConfig};
use serde::{Deserialize, Serialize};

use crate::error::AdaSenseError;
use crate::pipeline::HarPipeline;

/// Maximum calibration-set accuracy the cascade may give up relative to the
/// full classifier when its margin threshold is calibrated (0.5 points —
/// half of the one-point budget the `backend_sweep` gate enforces end to end).
const CASCADE_ACCURACY_BUDGET: f64 = 0.005;

/// Everything needed to build, train and evaluate the HAR system.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentSpec {
    /// How the training/evaluation windows are generated.
    pub dataset: DatasetSpec,
    /// Architecture of the classifier(s).
    pub architecture: MlpConfig,
    /// Training hyper-parameters.
    pub trainer: TrainerConfig,
    /// Fraction of windows used for training (the rest is held out for evaluation).
    pub train_fraction: f64,
    /// Master seed: dataset generation, splits and training all derive from it.
    pub seed: u64,
    /// The low-power configuration used by the intensity-based baseline
    /// (its high-power configuration is always `F100_A128`).
    pub intensity_low_config: SensorConfig,
}

impl ExperimentSpec {
    /// The paper-scale specification: ~7300 windows over the four Pareto
    /// configurations, 2-layer classifier, 60 training epochs.
    pub fn paper() -> Self {
        Self {
            dataset: DatasetSpec::paper_scale(),
            architecture: MlpConfig::paper(),
            trainer: TrainerConfig::default(),
            train_fraction: 0.8,
            seed: 2020,
            intensity_low_config: SensorConfig::new(SamplingFrequency::F25, AveragingWindow::A32),
        }
    }

    /// A reduced specification for tests and doc examples (smaller dataset, fewer
    /// epochs); everything else matches [`ExperimentSpec::paper`].
    pub fn quick() -> Self {
        Self {
            dataset: DatasetSpec::quick(),
            trainer: TrainerConfig { epochs: 30, ..TrainerConfig::default() },
            ..Self::paper()
        }
    }

    /// Checks the specification for consistency.
    ///
    /// # Errors
    ///
    /// Returns [`AdaSenseError::InvalidSpec`] when the configuration list is empty,
    /// the train fraction is outside `(0, 1)`, no windows are requested, or the
    /// classifier input size does not match the feature dimension.
    pub fn validate(&self) -> Result<(), AdaSenseError> {
        if self.dataset.configs.is_empty() {
            return Err(AdaSenseError::invalid_spec(
                "at least one sensor configuration is required",
            ));
        }
        if self.dataset.windows_per_class_per_config == 0 {
            return Err(AdaSenseError::invalid_spec(
                "windows_per_class_per_config must be non-zero",
            ));
        }
        if !(self.train_fraction > 0.0 && self.train_fraction < 1.0) {
            return Err(AdaSenseError::invalid_spec(format!(
                "train_fraction must lie strictly between 0 and 1, got {}",
                self.train_fraction
            )));
        }
        if self.architecture.input_dim != adasense_dsp::FEATURE_DIM {
            return Err(AdaSenseError::invalid_spec(format!(
                "classifier input dimension {} does not match the feature dimension {}",
                self.architecture.input_dim,
                adasense_dsp::FEATURE_DIM
            )));
        }
        if self.architecture.output_dim != Activity::COUNT {
            return Err(AdaSenseError::invalid_spec(format!(
                "classifier output dimension {} does not match the {} activity classes",
                self.architecture.output_dim,
                Activity::COUNT
            )));
        }
        Ok(())
    }

    /// The configurations the intensity-based baseline switches between:
    /// `[high, low]`.
    pub fn intensity_configs(&self) -> [SensorConfig; 2] {
        [
            SensorConfig::new(SamplingFrequency::F100, AveragingWindow::A128),
            self.intensity_low_config,
        ]
    }
}

impl Default for ExperimentSpec {
    fn default() -> Self {
        Self::paper()
    }
}

/// Converts labelled windows into (features, labels) pairs for the trainer.
pub fn features_and_labels(
    extractor: &FeatureExtractor,
    windows: &WindowDataset,
) -> (Vec<Vec<f64>>, Vec<usize>) {
    let mut x = Vec::with_capacity(windows.len());
    let mut y = Vec::with_capacity(windows.len());
    for window in windows.iter() {
        let features = extractor.extract(&window.samples, window.config.frequency.hz());
        x.push(features.into_inner());
        y.push(window.activity.index());
    }
    (x, y)
}

/// A classifier trained on windows from a single sensor configuration, with its
/// held-out accuracy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PerConfigModel {
    /// The configuration the model was trained for.
    pub config: SensorConfig,
    /// The trained classifier.
    pub model: Mlp,
    /// Accuracy on the held-out windows of that configuration.
    pub test_accuracy: f64,
}

/// Trains one classifier on windows of a single configuration.
///
/// Used both by the classifier bank of the intensity-based baseline and by the
/// design-space exploration of Fig. 2.
///
/// # Errors
///
/// Returns [`AdaSenseError::Training`] if no windows could be generated.
pub fn train_for_config(
    spec: &ExperimentSpec,
    config: SensorConfig,
    seed_offset: u64,
) -> Result<PerConfigModel, AdaSenseError> {
    let dataset_spec = DatasetSpec { configs: vec![config], ..spec.dataset.clone() };
    let dataset = WindowDataset::generate(&dataset_spec, spec.seed.wrapping_add(seed_offset));
    if dataset.is_empty() {
        return Err(AdaSenseError::training(format!("no windows generated for {config}")));
    }
    let split =
        dataset.split(spec.train_fraction, spec.seed.wrapping_add(seed_offset).wrapping_add(1));
    let extractor = FeatureExtractor::paper();
    let (train_x, train_y) = features_and_labels(&extractor, &split.train);
    let (test_x, test_y) = features_and_labels(&extractor, &split.test);
    let trainer = Trainer::new(spec.trainer);
    let outcome =
        trainer.train(&spec.architecture, &train_x, &train_y, spec.seed.wrapping_add(seed_offset));
    let test_accuracy = accuracy(&outcome.model, &test_x, &test_y);
    Ok(PerConfigModel { config, model: outcome.model, test_accuracy })
}

/// The fully trained HAR system: the unified classifier plus the per-configuration
/// classifier bank used by the baselines.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainedSystem {
    spec: ExperimentSpec,
    extractor: FeatureExtractor,
    unified: Mlp,
    quantized: QuantizedMlp,
    cascade: CascadeClassifier,
    cascade_operating_point: CascadeOperatingPoint,
    unified_test_accuracy: f64,
    per_config_accuracy: Vec<(SensorConfig, f64)>,
    bank: BTreeMap<String, PerConfigModel>,
}

impl TrainedSystem {
    /// Generates the dataset described by `spec`, trains the unified classifier on
    /// the pooled training windows, evaluates it per configuration, and trains the
    /// per-configuration classifier bank needed by the intensity-based baseline.
    ///
    /// # Errors
    ///
    /// Returns [`AdaSenseError::InvalidSpec`] for inconsistent specifications and
    /// [`AdaSenseError::Training`] if any training set ends up empty.
    pub fn train(spec: &ExperimentSpec) -> Result<Self, AdaSenseError> {
        spec.validate()?;
        let extractor = FeatureExtractor::paper();

        // Unified classifier on pooled data from every requested configuration.
        let dataset = WindowDataset::generate(&spec.dataset, spec.seed);
        let split = dataset.split(spec.train_fraction, spec.seed.wrapping_add(1));
        if split.train.is_empty() || split.test.is_empty() {
            return Err(AdaSenseError::training(
                "train/test split produced an empty partition; increase windows_per_class_per_config",
            ));
        }
        let (train_x, train_y) = features_and_labels(&extractor, &split.train);
        let (test_x, test_y) = features_and_labels(&extractor, &split.test);
        let trainer = Trainer::new(spec.trainer);
        let outcome = trainer.train(&spec.architecture, &train_x, &train_y, spec.seed);
        let unified = outcome.model;
        let unified_test_accuracy = accuracy(&unified, &test_x, &test_y);

        // Per-configuration accuracy of the unified model (the quantity the paper's
        // single-classifier argument is about).
        let mut per_config_accuracy = Vec::with_capacity(spec.dataset.configs.len());
        for &config in &spec.dataset.configs {
            let subset = split.test.for_config(config);
            let (x, y) = features_and_labels(&extractor, &subset);
            per_config_accuracy.push((config, accuracy(&unified, &x, &y)));
        }

        // Classifier bank for the intensity-based baseline: one model per
        // configuration that baseline can select.
        let mut bank = BTreeMap::new();
        for (i, config) in spec.intensity_configs().into_iter().enumerate() {
            let per_config = train_for_config(spec, config, 100 + i as u64)?;
            bank.insert(config.label(), per_config);
        }

        // Post-training int8 quantization of the unified classifier, so device
        // cohorts can run the fixed-point backend without retraining.
        let quantized = QuantizedMlp::from_mlp(&unified);

        // Early-exit cascade: a tiny int8 network over the time-domain feature
        // prefix, gated by a margin threshold calibrated on the training rows
        // so the cascade gives up at most `CASCADE_ACCURACY_BUDGET` of the
        // full classifier's accuracy.
        let stage1_rows: Vec<Vec<f64>> =
            train_x.iter().map(|row| row[..TIME_DOMAIN_DIM].to_vec()).collect();
        let stage1_architecture =
            MlpConfig::new(TIME_DOMAIN_DIM, vec![8], spec.architecture.output_dim);
        let stage1_outcome =
            trainer.train(&stage1_architecture, &stage1_rows, &train_y, spec.seed.wrapping_add(9));
        let stage1 = QuantizedMlp::from_mlp(&stage1_outcome.model);
        let cascade_operating_point = calibrate_margin_threshold(
            &stage1,
            &quantized,
            &train_x,
            &train_y,
            CASCADE_ACCURACY_BUDGET,
        );
        let cascade = CascadeClassifier::new(
            stage1,
            quantized.clone(),
            cascade_operating_point.margin_threshold,
        );

        Ok(Self {
            spec: spec.clone(),
            extractor,
            unified,
            quantized,
            cascade,
            cascade_operating_point,
            unified_test_accuracy,
            per_config_accuracy,
            bank,
        })
    }

    /// The specification the system was trained from.
    pub fn spec(&self) -> &ExperimentSpec {
        &self.spec
    }

    /// The feature extractor shared by every classifier of the system.
    pub fn extractor(&self) -> &FeatureExtractor {
        &self.extractor
    }

    /// The unified classifier (trained on data from all configurations).
    pub fn unified_classifier(&self) -> &Mlp {
        &self.unified
    }

    /// The post-training int8 quantization of the unified classifier.
    pub fn quantized_classifier(&self) -> &QuantizedMlp {
        &self.quantized
    }

    /// The calibrated early-exit cascade (tiny int8 time-domain first stage,
    /// full int8 second stage).
    pub fn cascade_classifier(&self) -> &CascadeClassifier {
        &self.cascade
    }

    /// The calibration-set operating point of the cascade: the chosen margin
    /// threshold and the exit rate / accuracy measured while calibrating it.
    pub fn cascade_operating_point(&self) -> CascadeOperatingPoint {
        self.cascade_operating_point
    }

    /// The unified inference backend of the given kind, behind the object-safe
    /// [`Classifier`] trait — the seam the runtime and fleet layers plug
    /// device cohorts into.
    pub fn backend(&self, kind: BackendKind) -> &dyn Classifier {
        match kind {
            BackendKind::F64 => &self.unified,
            BackendKind::Int8 => &self.quantized,
            BackendKind::Cascade => &self.cascade,
        }
    }

    /// Held-out accuracy of the unified classifier over all configurations.
    pub fn unified_test_accuracy(&self) -> f64 {
        self.unified_test_accuracy
    }

    /// Held-out accuracy of the unified classifier per configuration.
    pub fn per_config_accuracy(&self) -> &[(SensorConfig, f64)] {
        &self.per_config_accuracy
    }

    /// The per-configuration classifier trained for `config`, if one exists in the
    /// bank (the bank covers the configurations the intensity-based baseline uses).
    pub fn bank_classifier(&self, config: SensorConfig) -> Option<&PerConfigModel> {
        self.bank.get(&config.label())
    }

    /// All per-configuration classifiers in the bank.
    pub fn bank(&self) -> impl Iterator<Item = &PerConfigModel> {
        self.bank.values()
    }

    /// A ready-to-use HAR pipeline around the unified classifier.
    pub fn pipeline(&self) -> HarPipeline {
        HarPipeline::new(self.unified.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> ExperimentSpec {
        ExperimentSpec {
            dataset: DatasetSpec {
                windows_per_class_per_config: 8,
                configs: SensorConfig::paper_pareto_front().to_vec(),
                ..DatasetSpec::paper_scale()
            },
            trainer: TrainerConfig { epochs: 20, ..TrainerConfig::default() },
            ..ExperimentSpec::quick()
        }
    }

    #[test]
    fn paper_spec_validates() {
        assert!(ExperimentSpec::paper().validate().is_ok());
        assert!(ExperimentSpec::quick().validate().is_ok());
    }

    #[test]
    fn invalid_specs_are_rejected() {
        let mut spec = ExperimentSpec::quick();
        spec.dataset.configs.clear();
        assert!(matches!(spec.validate(), Err(AdaSenseError::InvalidSpec { .. })));

        let mut spec = ExperimentSpec::quick();
        spec.train_fraction = 1.0;
        assert!(spec.validate().is_err());

        let mut spec = ExperimentSpec::quick();
        spec.architecture = MlpConfig::new(3, vec![4], Activity::COUNT);
        assert!(spec.validate().is_err());

        let mut spec = ExperimentSpec::quick();
        spec.architecture = MlpConfig::new(adasense_dsp::FEATURE_DIM, vec![4], 2);
        assert!(spec.validate().is_err());

        let mut spec = ExperimentSpec::quick();
        spec.dataset.windows_per_class_per_config = 0;
        assert!(spec.validate().is_err());
    }

    #[test]
    fn trained_system_learns_the_synthetic_activities() {
        let system = TrainedSystem::train(&tiny_spec()).expect("training succeeds");
        assert!(
            system.unified_test_accuracy() > 0.6,
            "unified accuracy {} unexpectedly low even for a tiny dataset",
            system.unified_test_accuracy()
        );
        assert_eq!(system.per_config_accuracy().len(), 4);
        // The bank contains the two configurations the intensity baseline needs.
        for config in tiny_spec().intensity_configs() {
            assert!(system.bank_classifier(config).is_some(), "missing bank model for {config}");
        }
    }

    #[test]
    fn backends_expose_the_unified_and_quantized_classifiers() {
        let system = TrainedSystem::train(&tiny_spec()).expect("training succeeds");
        assert_eq!(system.backend(BackendKind::F64).label(), "f64");
        assert_eq!(system.backend(BackendKind::Int8).label(), "int8");
        assert_eq!(
            system.quantized_classifier().config(),
            system.unified_classifier().config(),
            "quantization must preserve the architecture"
        );
        // The int8 copy agrees with the float model on most held-out-style
        // inputs: evaluate both on a fresh batch of training-distribution data.
        let spec = tiny_spec();
        let dataset = WindowDataset::generate(&spec.dataset, spec.seed.wrapping_add(9));
        let (x, y) = features_and_labels(&FeatureExtractor::paper(), &dataset);
        let f64_hits = x
            .iter()
            .zip(&y)
            .filter(|(f, &label)| system.unified_classifier().predict(f).class == label)
            .count();
        let int8_hits = x
            .iter()
            .zip(&y)
            .filter(|(f, &label)| {
                Classifier::predict(system.backend(BackendKind::Int8), f).class == label
            })
            .count();
        let delta = (f64_hits as f64 - int8_hits as f64).abs() / x.len() as f64;
        assert!(
            delta <= 0.02,
            "int8 accuracy drifted {:.2} pts from f64 ({f64_hits} vs {int8_hits} of {})",
            100.0 * delta,
            x.len()
        );
    }

    #[test]
    fn training_is_deterministic_in_the_spec_seed() {
        let spec = tiny_spec();
        let a = TrainedSystem::train(&spec).unwrap();
        let b = TrainedSystem::train(&spec).unwrap();
        assert_eq!(a.unified_classifier(), b.unified_classifier());
        assert_eq!(a.unified_test_accuracy(), b.unified_test_accuracy());
    }

    #[test]
    fn features_and_labels_align() {
        let spec = tiny_spec();
        let dataset = WindowDataset::generate(&spec.dataset, 0);
        let (x, y) = features_and_labels(&FeatureExtractor::paper(), &dataset);
        assert_eq!(x.len(), dataset.len());
        assert_eq!(y.len(), dataset.len());
        assert!(x.iter().all(|f| f.len() == adasense_dsp::FEATURE_DIM));
        assert!(y.iter().all(|&l| l < Activity::COUNT));
    }

    #[test]
    fn per_config_training_reports_accuracy() {
        let spec = tiny_spec();
        let config = SensorConfig::new(SamplingFrequency::F100, AveragingWindow::A128);
        let trained = train_for_config(&spec, config, 0).unwrap();
        assert_eq!(trained.config, config);
        assert!((0.0..=1.0).contains(&trained.test_accuracy));
    }
}
