//! # adasense-ml
//!
//! From-scratch machine-learning substrate for the AdaSense (DAC 2020) reproduction.
//!
//! The paper's classifier is deliberately tiny: "one neural network with two layers:
//! one hidden layer with RELU activation function and an output layer with 6 neurons
//! and a softmax" (Section III-C), trained on feature vectors from several sensor
//! configurations at once.  This crate implements everything needed to train and run
//! that network without any external ML framework:
//!
//! * [`matrix`] — a small dense row-major matrix type with the operations needed for
//!   forward and backward passes.
//! * [`network`] — dense layers, ReLU, softmax and the [`Mlp`] multi-layer
//!   perceptron with prediction + confidence output.
//! * [`classifier`] — the object-safe [`Classifier`] trait every inference
//!   backend implements, and the [`BackendKind`] naming the built-in backends.
//! * [`quantized`] — [`QuantizedMlp`], a post-training int8 copy of a trained
//!   [`Mlp`] (per-layer symmetric weight scales, i32 accumulators, dynamically
//!   requantized activations) for the paper's fixed-point deployment target.
//! * [`loss`] — softmax cross-entropy with gradient.
//! * [`optimizer`] — stochastic gradient descent with momentum, and Adam.
//! * [`normalize`] — per-feature z-score normalization (fit on training data, stored
//!   with the model).
//! * [`trainer`] — mini-batch training loop with deterministic shuffling.
//! * [`metrics`] — accuracy and confusion matrices.
//! * [`memory`] — classifier weight-memory accounting (for the paper's memory
//!   comparison against per-configuration classifier banks).
//!
//! # Example
//!
//! ```
//! use adasense_ml::prelude::*;
//!
//! // Learn a linearly separable toy problem.
//! let x: Vec<Vec<f64>> = (0..40)
//!     .map(|i| vec![f64::from(i % 2), f64::from(i % 2) * 0.5 + 0.1])
//!     .collect();
//! let y: Vec<usize> = (0..40).map(|i| (i % 2) as usize).collect();
//! let config = MlpConfig::new(2, vec![8], 2);
//! let trainer = Trainer::new(TrainerConfig { epochs: 200, ..TrainerConfig::default() });
//! let outcome = trainer.train(&config, &x, &y, 7);
//! assert!(accuracy(&outcome.model, &x, &y) > 0.95);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod cascade;
pub mod classifier;
pub mod loss;
pub mod matrix;
pub mod memory;
pub mod metrics;
pub mod network;
pub mod normalize;
pub mod optimizer;
pub mod quantized;
pub mod trainer;

pub use cascade::{
    calibrate_margin_threshold, prediction_margin, CascadeClassifier, CascadeOperatingPoint,
};
pub use classifier::{BackendKind, CascadeStage, Classifier};
pub use matrix::Matrix;
pub use memory::MemoryFootprint;
pub use metrics::{accuracy, ConfusionMatrix};
pub use network::{Mlp, MlpConfig, Prediction};
pub use normalize::Normalizer;
pub use optimizer::{Optimizer, OptimizerKind};
pub use quantized::QuantizedMlp;
pub use trainer::{Trainer, TrainerConfig, TrainingOutcome};

/// Convenience re-exports of the most commonly used items.
pub mod prelude {
    pub use crate::cascade::{
        calibrate_margin_threshold, prediction_margin, CascadeClassifier, CascadeOperatingPoint,
    };
    pub use crate::classifier::{BackendKind, CascadeStage, Classifier};
    pub use crate::loss::{cross_entropy, softmax};
    pub use crate::matrix::Matrix;
    pub use crate::memory::MemoryFootprint;
    pub use crate::metrics::{accuracy, ConfusionMatrix};
    pub use crate::network::{Mlp, MlpConfig, Prediction};
    pub use crate::normalize::Normalizer;
    pub use crate::optimizer::{Optimizer, OptimizerKind};
    pub use crate::quantized::QuantizedMlp;
    pub use crate::trainer::{Trainer, TrainerConfig, TrainingOutcome};
}
